//! PSO — Process-Similarity-aware Optimization (Shim et al., MICRO'19 \[84\]),
//! the state-of-the-art read-retry *reduction* technique the paper compares
//! against and composes with (§7.3, Fig. 15).
//!
//! PSO reuses the V_REF values recently found by read-retry on pages with
//! similar error characteristics: instead of walking the retry table from
//! entry 0, a read starts a few entries *before* the most recent successful
//! entry for its similarity cluster. The paper reports PSO cuts the retry
//! step count by ~70 % but can never eliminate retries — "every read still
//! incurs at least three retry steps in an aged SSD" — because V_OPT drifts
//! and a guard band is required.
//!
//! We implement PSO as a **decorator** over any inner mechanism: it offsets
//! the retry-table indices the inner controller works with, so `PSO`
//! (over the regular baseline) and `PSO+PnAR2` (Fig. 15) fall out of one
//! implementation. Clusters are per (die, thermal-class) — cold
//! (long-retention) and hot (recently written) pages have very different
//! V_OPT and must not share predictions.

use rr_sim::readflow::{Actions, ReadAction, ReadContext, RetryController, TxnTable};
use rr_sim::request::TxnId;
use std::collections::{HashMap, VecDeque};

/// How many retry-table entries before the cluster's recent optimum a read
/// starts — the guard band that makes PSO's "at least three retry steps".
pub const PSO_GUARD_STEPS: u32 = 3;

/// Sliding-window length of remembered successful entries per cluster.
const PSO_WINDOW: usize = 8;

/// The per-cluster V_REF (retry-entry) predictor.
#[derive(Debug)]
pub struct PsoPredictor {
    guard: u32,
    cache: HashMap<(u32, bool), VecDeque<u32>>,
}

impl Default for PsoPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl PsoPredictor {
    /// Creates an empty predictor (all clusters cold) with the default guard.
    pub fn new() -> Self {
        Self::with_guard(PSO_GUARD_STEPS)
    }

    /// Creates a predictor with an explicit guard band (ablation knob: a
    /// smaller guard means fewer retry steps but more overshoot fallbacks).
    pub fn with_guard(guard: u32) -> Self {
        Self {
            guard,
            cache: HashMap::new(),
        }
    }

    /// The configured guard band.
    pub fn guard(&self) -> u32 {
        self.guard
    }

    /// The retry-table entry a read on `die` with thermal class `cold`
    /// should start from (0 when the cluster has no history).
    pub fn predict(&self, die: u32, cold: bool) -> u32 {
        self.cache
            .get(&(die, cold))
            .and_then(|w| w.iter().min().copied())
            .map(|m| m.saturating_sub(self.guard))
            .unwrap_or(0)
    }

    /// Records the entry at which a read on `die`/`cold` finally succeeded.
    pub fn record(&mut self, die: u32, cold: bool, successful_entry: u32) {
        let w = self.cache.entry((die, cold)).or_default();
        w.push_back(successful_entry);
        if w.len() > PSO_WINDOW {
            w.pop_front();
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PsoTxn {
    offset: u32,
    fell_back: bool,
}

/// PSO as a decorator over an inner read-retry mechanism.
///
/// All retry-table indices the inner controller sees are *virtual*: physical
/// entry = virtual entry + the cluster-predicted offset. If the shifted walk
/// exhausts the table without success (the prediction overshot V_OPT — rare,
/// because clusters track the minimum of recent optima), PSO falls back to a
/// full walk from entry 0 once.
pub struct PsoController<C> {
    inner: C,
    predictor: PsoPredictor,
    states: TxnTable<PsoTxn>,
    label: String,
}

impl<C: RetryController> PsoController<C> {
    /// Wraps `inner` with PSO prediction.
    pub fn new(inner: C) -> Self {
        Self::with_predictor(inner, PsoPredictor::new())
    }

    /// Wraps `inner` with an explicitly configured predictor (ablations).
    pub fn with_predictor(inner: C, predictor: PsoPredictor) -> Self {
        let label = if inner.name() == "Baseline" {
            "PSO".to_string()
        } else {
            format!("PSO+{}", inner.name())
        };
        Self {
            inner,
            predictor,
            states: TxnTable::new(),
            label,
        }
    }

    /// Read access to the predictor (diagnostics, tests).
    pub fn predictor(&self) -> &PsoPredictor {
        &self.predictor
    }

    fn offset(&self, txn: TxnId) -> u32 {
        self.states.get(txn).map(|s| s.offset).unwrap_or(0)
    }

    fn inner_ctx(&self, ctx: &ReadContext) -> ReadContext {
        let offset = self.offset(ctx.txn);
        ReadContext {
            max_step: ctx.max_step - offset,
            ..*ctx
        }
    }

    /// Maps the inner controller's virtual actions to physical table entries,
    /// intercepting `CompleteFailure` for the one-shot full-walk fallback.
    fn map_actions(&mut self, ctx: &ReadContext, actions: Actions) -> Actions {
        let state = *self
            .states
            .get(ctx.txn)
            .expect("mapping for unknown PSO read");
        let mut out = Actions::new();
        for a in actions.iter() {
            match a {
                ReadAction::Sense { step } => out.push(ReadAction::Sense {
                    step: step + state.offset,
                }),
                ReadAction::Transfer { step } => out.push(ReadAction::Transfer {
                    step: step + state.offset,
                }),
                ReadAction::CompleteSuccess { step } => out.push(ReadAction::CompleteSuccess {
                    step: step + state.offset,
                }),
                ReadAction::CompleteFailure if state.offset > 0 && !state.fell_back => {
                    // The prediction overshot: restart the inner mechanism on
                    // the full table from entry 0.
                    let inner_ctx = self.inner_ctx(ctx);
                    self.inner.on_end(&inner_ctx, None);
                    let s = self.states.get_mut(ctx.txn).expect("state exists");
                    s.offset = 0;
                    s.fell_back = true;
                    let restart = self.inner.on_start(ctx);
                    for r in restart.iter() {
                        out.push(r);
                    }
                }
                other => out.push(other),
            }
        }
        out
    }
}

impl<C: RetryController> RetryController for PsoController<C> {
    fn on_start(&mut self, ctx: &ReadContext) -> Actions {
        let offset = self
            .predictor
            .predict(ctx.die, ctx.cold)
            .min(ctx.max_step.saturating_sub(PSO_GUARD_STEPS));
        self.states.insert(
            ctx.txn,
            PsoTxn {
                offset,
                fell_back: false,
            },
        );
        let inner_ctx = self.inner_ctx(ctx);
        let actions = self.inner.on_start(&inner_ctx);
        self.map_actions(ctx, actions)
    }

    fn on_sense_done(&mut self, ctx: &ReadContext, step: u32) -> Actions {
        let inner_ctx = self.inner_ctx(ctx);
        let v = step - self.offset(ctx.txn);
        let actions = self.inner.on_sense_done(&inner_ctx, v);
        self.map_actions(ctx, actions)
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        margin: u32,
    ) -> Actions {
        let inner_ctx = self.inner_ctx(ctx);
        let v = step - self.offset(ctx.txn);
        let actions = self.inner.on_decode_done(&inner_ctx, v, success, margin);
        self.map_actions(ctx, actions)
    }

    fn on_feature_applied(&mut self, ctx: &ReadContext) -> Actions {
        let inner_ctx = self.inner_ctx(ctx);
        let actions = self.inner.on_feature_applied(&inner_ctx);
        self.map_actions(ctx, actions)
    }

    fn on_reset_done(&mut self, ctx: &ReadContext) -> Actions {
        let inner_ctx = self.inner_ctx(ctx);
        let actions = self.inner.on_reset_done(&inner_ctx);
        self.map_actions(ctx, actions)
    }

    fn on_end(&mut self, ctx: &ReadContext, successful_step: Option<u32>) {
        let inner_ctx = self.inner_ctx(ctx);
        let offset = self.offset(ctx.txn);
        if let Some(p) = successful_step {
            self.predictor.record(ctx.die, ctx.cold, p);
        }
        self.inner
            .on_end(&inner_ctx, successful_step.map(|p| p - offset));
        self.states.remove(ctx.txn);
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_flash::calibration::OperatingCondition;
    use rr_sim::readflow::BaselineController;

    fn ctx(txn: u32, die: u32, cold: bool) -> ReadContext {
        ReadContext {
            txn: TxnId(txn),
            die,
            condition: OperatingCondition::new(1000.0, 6.0, 30.0),
            cold,
            max_step: 40,
        }
    }

    #[test]
    fn cold_cache_starts_from_zero() {
        let mut pso = PsoController::new(BaselineController::new());
        assert_eq!(pso.name(), "PSO");
        let x = ctx(1, 0, true);
        assert_eq!(
            pso.on_start(&x).to_vec(),
            vec![ReadAction::Sense { step: 0 }]
        );
    }

    #[test]
    fn warm_cache_skips_ahead_with_guard() {
        let mut pso = PsoController::new(BaselineController::new());
        // Teach the predictor: die 0's cold pages succeed around entry 12.
        let x = ctx(1, 0, true);
        pso.on_start(&x);
        pso.on_end(&x, Some(12));
        // The next cold read on die 0 starts at 12 − guard = 9.
        let y = ctx(2, 0, true);
        assert_eq!(
            pso.on_start(&y).to_vec(),
            vec![ReadAction::Sense { step: 9 }]
        );
        // ...which guarantees at least `guard` retry rounds ("at least three
        // retry steps", §3.1) when the page's optimum matches the cluster's.
    }

    #[test]
    fn clusters_are_per_die_and_thermal_class() {
        let mut p = PsoPredictor::new();
        p.record(0, true, 15);
        assert_eq!(p.predict(0, true), 12);
        assert_eq!(p.predict(0, false), 0, "hot pages have their own cluster");
        assert_eq!(p.predict(1, true), 0, "other dies are unaffected");
    }

    #[test]
    fn predictor_tracks_minimum_of_window() {
        let mut p = PsoPredictor::new();
        for s in [20, 18, 22, 19] {
            p.record(3, true, s);
        }
        assert_eq!(p.predict(3, true), 18 - PSO_GUARD_STEPS);
    }

    #[test]
    fn steps_are_translated_between_virtual_and_physical() {
        let mut pso = PsoController::new(BaselineController::new());
        let x = ctx(1, 0, true);
        pso.on_start(&x);
        pso.on_end(&x, Some(10));
        let y = ctx(2, 0, true);
        assert_eq!(
            pso.on_start(&y).to_vec(),
            vec![ReadAction::Sense { step: 7 }]
        );
        // Physical sense 7 completes; baseline (virtual 0) transfers it.
        assert_eq!(
            pso.on_sense_done(&y, 7).to_vec(),
            vec![ReadAction::Transfer { step: 7 }]
        );
        // Decode failure walks to physical 8.
        assert_eq!(
            pso.on_decode_done(&y, 7, false, 0).to_vec(),
            vec![ReadAction::Sense { step: 8 }]
        );
        // Success at physical 9 completes with the physical index.
        pso.on_sense_done(&y, 8);
        pso.on_decode_done(&y, 8, false, 0);
        pso.on_sense_done(&y, 9);
        assert_eq!(
            pso.on_decode_done(&y, 9, true, 30).to_vec(),
            vec![ReadAction::CompleteSuccess { step: 9 }]
        );
    }

    #[test]
    fn overshoot_falls_back_to_full_walk() {
        let mut pso = PsoController::new(BaselineController::new());
        let x = ctx(1, 0, true);
        pso.on_start(&x);
        pso.on_end(&x, Some(39)); // cluster thinks the optimum is deep
        let y = ctx(2, 0, true);
        let start = match pso.on_start(&y).to_vec()[0] {
            ReadAction::Sense { step } => step,
            ref a => panic!("expected sense, got {a:?}"),
        };
        assert_eq!(start, 36);
        // Walk to the end of the table without success...
        let mut step = start;
        loop {
            pso.on_sense_done(&y, step);
            let acts = pso.on_decode_done(&y, step, false, 0).to_vec();
            match acts.first() {
                Some(&ReadAction::Sense { step: next }) if next > step => step = next,
                // ...the virtual CompleteFailure must convert into a restart
                // from physical entry 0.
                Some(&ReadAction::Sense { step: 0 }) => break,
                other => panic!("unexpected action at step {step}: {other:?}"),
            }
            assert!(step <= 40, "ran past the table");
        }
        // The second exhaustion genuinely fails.
        let mut step = 0;
        loop {
            pso.on_sense_done(&y, step);
            let acts = pso.on_decode_done(&y, step, false, 0).to_vec();
            match acts.first() {
                Some(&ReadAction::Sense { step: next }) => step = next,
                Some(&ReadAction::CompleteFailure) => break,
                other => panic!("unexpected action: {other:?}"),
            }
        }
    }

    #[test]
    fn name_composes_with_inner() {
        let pso = PsoController::new(crate::mechanisms::PnAr2Controller::new(
            crate::rpt::ReadTimingParamTable::default(),
        ));
        assert_eq!(pso.name(), "PSO+PnAR2");
    }
}
