//! The Read-timing Parameter Table (RPT) — AR²'s lookup table (§6.2, Fig. 13).
//!
//! SSD manufacturers profile each chip generation offline and store, per
//! (P/E-cycle count, retention age) bucket, the best (largest safe) tPRE
//! reduction. At run time the controller queries the RPT once per read-retry
//! operation and installs the reduced timing with `SET FEATURE`.
//!
//! Two constructors exist:
//!
//! * [`ReadTimingParamTable::from_calibration`] derives the table analytically
//!   from the `rr-flash` calibration with the paper's 14-bit safety margin —
//!   7 bits for temperature-induced errors, 7 for outlier pages (Fig. 11);
//! * `rr-charact::rpt` builds the same table the way the paper does, by
//!   sweeping a simulated chip population (the two must agree; an integration
//!   test checks it).

use rr_flash::calibration::{
    Calibration, OperatingCondition, ECC_CAPABILITY_PER_KIB, RPT_SAFETY_MARGIN_BITS,
    TPRE_MAX_PROFILED_REDUCTION,
};
use rr_flash::timing::SensePhases;
use serde::{Deserialize, Serialize};

/// One RPT row: the largest safe tPRE reduction for all conditions up to
/// (`pec_max`, `retention_months_max`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RptRow {
    /// Upper bound (inclusive) of the P/E-cycle bucket.
    pub pec_max: f64,
    /// Upper bound (inclusive) of the retention bucket, in months.
    pub retention_months_max: f64,
    /// Safe tPRE reduction fraction for this bucket.
    pub pre_reduction: f64,
}

/// The Read-timing Parameter Table.
///
/// # Example
///
/// ```
/// use rr_core::rpt::ReadTimingParamTable;
/// use rr_flash::calibration::{Calibration, OperatingCondition};
///
/// let rpt = ReadTimingParamTable::from_calibration(&Calibration::asplos21());
/// // Fig. 11: between 40 % (worst case) and 54 % (best case) reduction.
/// let worst = rpt.pre_reduction(OperatingCondition::new(2000.0, 12.0, 30.0));
/// let best = rpt.pre_reduction(OperatingCondition::new(0.0, 0.0, 30.0));
/// assert!(worst >= 0.40 - 1e-9);
/// assert!(best <= 0.54 + 1e-9);
/// assert!(best > worst);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadTimingParamTable {
    /// Rows sorted by (pec_max, retention_months_max); lookup picks the first
    /// row whose bounds cover the query.
    rows: Vec<RptRow>,
    /// PEC bucket upper bounds.
    pec_buckets: Vec<f64>,
    /// Retention bucket upper bounds (months).
    ret_buckets: Vec<f64>,
}

/// The paper's bucket granularity (§6.2 estimates ~36 combinations, 144 B).
const PEC_BUCKETS: [f64; 6] = [250.0, 500.0, 1000.0, 1500.0, 2000.0, f64::MAX];
const RET_BUCKETS: [f64; 6] = [0.25, 1.0, 3.0, 6.0, 12.0, f64::MAX];

/// Reduction search granularity (1 %).
const SEARCH_STEP: f64 = 0.01;

impl ReadTimingParamTable {
    /// Builds the RPT from the analytic calibration, reserving the 14-bit
    /// safety margin of Fig. 11 and capping at the 54 % maximum the paper
    /// ever profiles.
    pub fn from_calibration(cal: &Calibration) -> Self {
        Self::build(|pec, months, reduction| {
            // Profiling is done at 85 °C; the margin covers lower-temperature
            // and outlier-page extra errors (Fig. 11's 7 + 7 bits).
            let cond = OperatingCondition::new(pec, months, 85.0);
            cal.m_err_with_timing(cond, reduction, 0.0, 0.0) + RPT_SAFETY_MARGIN_BITS as f64
                <= ECC_CAPABILITY_PER_KIB as f64
        })
    }

    /// Builds an RPT from an arbitrary safety oracle
    /// (`is_safe(pec, retention_months, reduction)`), used by the
    /// characterization crate's measured-profile construction.
    pub fn build(is_safe: impl Fn(f64, f64, f64) -> bool) -> Self {
        let mut rows = Vec::new();
        for &pec_max in &PEC_BUCKETS {
            for &ret_max in &RET_BUCKETS {
                // Evaluate at the bucket's worst corner (clamped to the
                // characterized range).
                let pec = pec_max.min(2000.0);
                let months = ret_max.min(12.0);
                let mut best = 0.0f64;
                let mut x = SEARCH_STEP;
                while x <= TPRE_MAX_PROFILED_REDUCTION + 1e-9 {
                    if is_safe(pec, months, x) {
                        best = x;
                    }
                    x += SEARCH_STEP;
                }
                rows.push(RptRow {
                    pec_max,
                    retention_months_max: ret_max,
                    pre_reduction: best,
                });
            }
        }
        Self {
            rows,
            pec_buckets: PEC_BUCKETS.to_vec(),
            ret_buckets: RET_BUCKETS.to_vec(),
        }
    }

    /// A *non-adaptive* table applying the same reduction to every bucket —
    /// the ablation baseline showing why AR² "carefully decides the reduction
    /// amount considering the current operating conditions" (§6.2): a fixed
    /// aggressive value is unsafe on worn/old blocks, a fixed conservative
    /// one wastes margin on fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if `reduction` is not within `[0, 0.58)` (the hard-fail wall).
    pub fn fixed(reduction: f64) -> Self {
        assert!(
            (0.0..0.58).contains(&reduction),
            "fixed reduction {reduction} outside the physically meaningful range"
        );
        let mut table = Self::build(|_, _, _| false);
        for row in &mut table.rows {
            row.pre_reduction = reduction;
        }
        table
    }

    /// The rows (bucket grid in row-major PEC × retention order).
    pub fn rows(&self) -> &[RptRow] {
        &self.rows
    }

    /// Estimated on-device size in bytes (§6.2: ~4 B per entry).
    pub fn storage_bytes(&self) -> usize {
        self.rows.len() * 4
    }

    /// The safe tPRE reduction for an operating condition.
    pub fn pre_reduction(&self, cond: OperatingCondition) -> f64 {
        let pi = self
            .pec_buckets
            .iter()
            .position(|&b| cond.pec <= b)
            .expect("last bucket is unbounded");
        let ri = self
            .ret_buckets
            .iter()
            .position(|&b| cond.retention_months <= b)
            .expect("last bucket is unbounded");
        self.rows[pi * self.ret_buckets.len() + ri].pre_reduction
    }

    /// The reduced sensing phases AR² installs for a condition.
    pub fn reduced_phases(&self, cond: OperatingCondition) -> SensePhases {
        SensePhases::table1().with_reduction(self.pre_reduction(cond), 0.0, 0.0)
    }

    /// Eq. 5's ρ — the tR ratio achieved at a condition.
    pub fn rho(&self, cond: OperatingCondition) -> f64 {
        SensePhases::table1().rho_vs(&self.reduced_phases(cond))
    }
}

impl Default for ReadTimingParamTable {
    fn default() -> Self {
        Self::from_calibration(&Calibration::asplos21())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rpt() -> ReadTimingParamTable {
        ReadTimingParamTable::from_calibration(&Calibration::asplos21())
    }

    #[test]
    fn fig11_reduction_range_40_to_54_pct() {
        // Fig. 11: "we can significantly reduce tPRE by at least 40 % (up to
        // 54 %) under any operating condition", with the 14-bit margin.
        let t = rpt();
        for row in t.rows() {
            assert!(
                row.pre_reduction >= 0.40 - 1e-9,
                "bucket ({}, {}) got only {:.0}%",
                row.pec_max,
                row.retention_months_max,
                row.pre_reduction * 100.0
            );
            assert!(row.pre_reduction <= TPRE_MAX_PROFILED_REDUCTION + 1e-9);
        }
        let worst = t.pre_reduction(OperatingCondition::new(2000.0, 12.0, 30.0));
        let best = t.pre_reduction(OperatingCondition::new(0.0, 0.0, 30.0));
        assert!(
            (worst - 0.40).abs() < 0.03,
            "worst-case ≈ 40 %, got {worst}"
        );
        assert!((best - 0.54).abs() < 0.01, "best-case ≈ 54 %, got {best}");
    }

    #[test]
    fn reduction_monotone_in_wear_and_age() {
        let t = rpt();
        let mut prev = 1.0;
        for pec in [0.0, 500.0, 1000.0, 1500.0, 2000.0] {
            let r = t.pre_reduction(OperatingCondition::new(pec, 12.0, 30.0));
            assert!(r <= prev + 1e-9, "reduction must not grow with wear");
            prev = r;
        }
        let young = t.pre_reduction(OperatingCondition::new(1000.0, 0.1, 30.0));
        let old = t.pre_reduction(OperatingCondition::new(1000.0, 12.0, 30.0));
        assert!(old <= young);
    }

    #[test]
    fn rho_reflects_25pct_tr_cut() {
        // §6.2: "a 25 % tR reduction (= 22.5 µs) ... is easily possible".
        let t = rpt();
        let rho = t.rho(OperatingCondition::new(2000.0, 12.0, 30.0));
        assert!(
            (1.0 - rho) >= 0.24,
            "worst-case tR cut should be ≈ 25 %, got {:.1} %",
            (1.0 - rho) * 100.0
        );
    }

    #[test]
    fn storage_matches_paper_estimate() {
        // §6.2: "with 36 (PEC, t_RET) combinations, we estimate the table
        // size to be only 144 bytes per chip."
        let t = rpt();
        assert_eq!(t.rows().len(), 36);
        assert_eq!(t.storage_bytes(), 144);
    }

    #[test]
    fn reduced_phases_only_touch_tpre() {
        let t = rpt();
        let p = t.reduced_phases(OperatingCondition::new(1000.0, 6.0, 30.0));
        let d = SensePhases::table1();
        assert!(p.t_pre < d.t_pre);
        assert_eq!(p.t_eval, d.t_eval);
        assert_eq!(p.t_disch, d.t_disch);
    }

    #[test]
    fn final_step_stays_safe_with_rpt_reduction() {
        // End-to-end safety: with the RPT's reduction, M_ERR plus the margin
        // stays within capability at every bucket corner and temperature.
        let t = rpt();
        let cal = Calibration::asplos21();
        for pec in [0.0, 250.0, 1000.0, 2000.0] {
            for months in [0.0, 1.0, 6.0, 12.0] {
                for temp in [30.0, 55.0, 85.0] {
                    let cond = OperatingCondition::new(pec, months, temp);
                    let red = t.pre_reduction(cond);
                    let m = cal.m_err_with_timing(cond, red, 0.0, 0.0);
                    assert!(
                        m <= ECC_CAPABILITY_PER_KIB as f64,
                        "unsafe at ({pec}, {months}, {temp}): {m}"
                    );
                }
            }
        }
    }
}
