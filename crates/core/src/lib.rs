//! # rr-core — PR² and AR²: the paper's contribution
//!
//! This crate implements the two read-retry optimizations of Park et al.,
//! *"Reducing Solid-State Drive Read Latency by Optimizing Read-Retry"*
//! (ASPLOS 2021), on top of the `rr-sim` SSD simulator:
//!
//! * [`mechanisms::Pr2Controller`] — **Pipelined Read-Retry**: overlap each
//!   retry step's sensing with the previous step's transfer + decode via
//!   `CACHE READ`, killing the one speculative extra step with `RESET`
//!   (Eq. 4, Fig. 12);
//! * [`mechanisms::Ar2Controller`] — **Adaptive Read-Retry**: spend the
//!   final retry step's large ECC-capability margin on a 40–54 % shorter
//!   bit-line precharge, looked up per (P/E cycles, retention age) in the
//!   [`rpt::ReadTimingParamTable`] and installed with `SET FEATURE`
//!   (Eq. 5, Fig. 13);
//! * [`mechanisms::PnAr2Controller`] — both combined;
//! * [`pso::PsoController`] — the MICRO'19 retry-*count* reducer the paper
//!   compares against (§7.3), as a decorator composable with any mechanism;
//! * [`experiment`] — the §7 evaluation harness producing Fig. 14/15.
//!
//! # Example
//!
//! ```
//! use rr_core::experiment::{run_one, Mechanism, OperatingPoint};
//! use rr_core::rpt::ReadTimingParamTable;
//! use rr_sim::config::SsdConfig;
//! use rr_sim::request::{HostRequest, IoOp};
//! use rr_workloads::trace::Trace;
//! use rr_util::time::SimTime;
//!
//! let base = SsdConfig::scaled_for_tests();
//! let rpt = ReadTimingParamTable::default();
//! let trace = Trace::new(
//!     "demo",
//!     (0..50).map(|i| HostRequest::new(SimTime::from_us(500 * i), IoOp::Read, i * 11, 1)).collect(),
//!     2_000,
//! );
//! let point = OperatingPoint::new(2000.0, 12.0); // end-of-life SSD
//! let baseline = run_one(&base, Mechanism::Baseline, point, &trace, &rpt);
//! let pnar2 = run_one(&base, Mechanism::PnAr2, point, &trace, &rpt);
//! // The paper's headline: PnAR2 substantially cuts response time.
//! assert!(pnar2.avg_response_us() < 0.8 * baseline.avg_response_us());
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod export;
pub mod extensions;
pub mod mechanisms;
pub mod pso;
pub mod rpt;

pub use experiment::{run_matrix, run_one, Mechanism, OperatingPoint};
pub use mechanisms::{Ar2Controller, PnAr2Controller, Pr2Controller};
pub use pso::{PsoController, PsoPredictor};
pub use rpt::ReadTimingParamTable;
