//! The §7 evaluation harness: mechanisms × workloads × operating conditions.
//!
//! [`Mechanism`] enumerates the SSD configurations of Fig. 14 and Fig. 15;
//! [`run_matrix`] replays workload traces under a grid of (P/E-cycle,
//! retention-age) operating points and reports response times normalized to
//! `Baseline`, exactly the quantity both figures plot.

use crate::extensions::{EagerPnAr2Controller, ExpectedStepsTable, RegularAr2Controller};
use crate::mechanisms::{Ar2Controller, PnAr2Controller, Pr2Controller};
use crate::pso::PsoController;
use crate::rpt::ReadTimingParamTable;
use rr_flash::calibration::OperatingCondition;
use rr_sim::array::{
    route_redundant, ArrayReport, DeviceSet, FailurePlan, PlacementPolicy, Redundancy,
    RedundancyStats, RedundantRouting,
};
use rr_sim::config::{ArbPolicy, ConfigError, SsdConfig};
use rr_sim::hostq::HostQueueConfig;
use rr_sim::metrics::{GcStalls, LatencySummary, SimReport};
use rr_sim::readflow::{BaselineController, RetryController};
use rr_sim::replay::ReplayMode;
use rr_sim::request::HostRequest;
use rr_sim::shard::{run_sharded_queued_from, worker_budget, ShardArena};
use rr_sim::snapshot::{DeviceImage, ImageBank};
use rr_sim::ssd::{SimArena, Ssd};
use rr_workloads::trace::Trace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The SSD configurations evaluated in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Regular read-retry (Fig. 12(a)) on the high-end baseline SSD.
    Baseline,
    /// Pipelined Read-Retry alone (§6.1).
    Pr2,
    /// Adaptive Read-Retry alone (§6.2).
    Ar2,
    /// PR² + AR² combined.
    PnAr2,
    /// Ideal SSD where no read-retry ever occurs (upper bound).
    NoRR,
    /// The MICRO'19 state-of-the-art retry-count reducer \[84\].
    Pso,
    /// PSO with PR² + AR² on top (Fig. 15's headline).
    PsoPnAr2,
    /// §8 extension: skip the doomed default initial read on aged data.
    EagerPnAr2,
    /// §8 extension: reduced-tPRE sensing for regular (no-retry) reads too.
    RegularAr2,
}

impl Mechanism {
    /// The five configurations of Fig. 14.
    pub const FIG14: [Mechanism; 5] = [
        Mechanism::Baseline,
        Mechanism::Pr2,
        Mechanism::Ar2,
        Mechanism::PnAr2,
        Mechanism::NoRR,
    ];

    /// The configurations of Fig. 15 (normalized to `Baseline`).
    pub const FIG15: [Mechanism; 4] = [
        Mechanism::Baseline,
        Mechanism::Pso,
        Mechanism::PsoPnAr2,
        Mechanism::NoRR,
    ];

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::Baseline => "Baseline",
            Mechanism::Pr2 => "PR2",
            Mechanism::Ar2 => "AR2",
            Mechanism::PnAr2 => "PnAR2",
            Mechanism::NoRR => "NoRR",
            Mechanism::Pso => "PSO",
            Mechanism::PsoPnAr2 => "PSO+PnAR2",
            Mechanism::EagerPnAr2 => "Eager-PnAR2",
            Mechanism::RegularAr2 => "AR2-Regular",
        }
    }

    /// Builds the retry controller implementing this mechanism.
    ///
    /// The controller is `Send` so the sharded engine can move one replica
    /// onto each channel-core worker thread; the legacy serial engine takes
    /// the same box unchanged (it coerces to `Box<dyn RetryController>`).
    pub fn make_controller(&self, rpt: &ReadTimingParamTable) -> Box<dyn RetryController + Send> {
        match self {
            Mechanism::Baseline | Mechanism::NoRR => Box::new(BaselineController::new()),
            Mechanism::Pr2 => Box::new(Pr2Controller::new()),
            Mechanism::Ar2 => Box::new(Ar2Controller::new(rpt.clone())),
            Mechanism::PnAr2 => Box::new(PnAr2Controller::new(rpt.clone())),
            Mechanism::Pso => Box::new(PsoController::new(BaselineController::new())),
            Mechanism::PsoPnAr2 => Box::new(PsoController::new(PnAr2Controller::new(rpt.clone()))),
            Mechanism::EagerPnAr2 => Box::new(EagerPnAr2Controller::new(
                rpt.clone(),
                ExpectedStepsTable::default(),
                2.0,
            )),
            Mechanism::RegularAr2 => Box::new(RegularAr2Controller::new(rpt.clone())),
        }
    }

    /// Whether this mechanism runs on the ideal no-read-retry SSD.
    pub fn is_ideal(&self) -> bool {
        matches!(self, Mechanism::NoRR)
    }
}

/// One (P/E cycles, retention age) operating point of Fig. 14/15's x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// P/E-cycle count of all blocks.
    pub pec: f64,
    /// Retention age of cold (preconditioned) data, months.
    pub retention_months: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(pec: f64, retention_months: f64) -> Self {
        Self {
            pec,
            retention_months,
        }
    }

    /// The grid used for the Fig. 14/15 reproduction (DESIGN.md §6): the
    /// prose highlights (2K, 6 mo) and 1-year ages; fresh data is covered by
    /// the hot pages inside every workload.
    pub fn evaluation_grid() -> Vec<OperatingPoint> {
        let mut grid = Vec::new();
        for pec in [1000.0, 2000.0] {
            for months in [0.0, 6.0, 12.0] {
                grid.push(OperatingPoint::new(pec, months));
            }
        }
        grid
    }
}

/// Runs one mechanism on one trace at one operating point (open-loop).
///
/// # Panics
///
/// Panics if the configuration or trace is invalid (these are programming
/// errors in experiment setup, not runtime conditions).
pub fn run_one(
    base: &SsdConfig,
    mechanism: Mechanism,
    point: OperatingPoint,
    trace: &Trace,
    rpt: &ReadTimingParamTable,
) -> SimReport {
    run_one_with_mode(base, mechanism, point, trace, rpt, ReplayMode::OpenLoop)
}

/// Runs one mechanism on one trace at one operating point under an explicit
/// replay mode (open-loop trace timestamps, rate-scaled open loop, or
/// closed-loop queue depth).
///
/// # Panics
///
/// Panics if the configuration, trace, or replay mode is invalid.
pub fn run_one_with_mode(
    base: &SsdConfig,
    mechanism: Mechanism,
    point: OperatingPoint,
    trace: &Trace,
    rpt: &ReadTimingParamTable,
    mode: ReplayMode,
) -> SimReport {
    let mut arena = SimArena::new();
    let cfg = prepared_config(base, point, mechanism.is_ideal());
    run_one_prepared(&mut arena, &cfg, mechanism, trace, rpt, mode, None)
}

/// Runs one closed-loop replay of `trace` under `mechanism` at `queue_depth`,
/// reusing `arena`'s simulation buffers and warm-starting from `image` when
/// one is given — the per-query unit of work behind `repro serve`, where the
/// image skips preconditioning and the arena skips reallocation between
/// queries.
#[allow(clippy::too_many_arguments)]
pub fn run_one_queued_from(
    arena: &mut SimArena,
    base: &SsdConfig,
    mechanism: Mechanism,
    point: OperatingPoint,
    trace: &Trace,
    rpt: &ReadTimingParamTable,
    setup: &QueueSetup,
    queue_depth: u32,
    image: Option<&DeviceImage>,
) -> SimReport {
    let cfg = prepared_config(base, point, mechanism.is_ideal());
    let front = setup.front(ReplayMode::closed_loop(queue_depth), Some(queue_depth));
    run_one_prepared_queued(arena, &cfg, mechanism, trace, rpt, &front, image)
}

/// [`run_one_queued_from`] on the channel-sharded engine — the per-query
/// unit behind `repro serve --shards N`. The long-lived [`ShardArena`]
/// plays the role `SimArena` plays serially; `shards` resolves to a
/// worker-thread budget exactly as in the sweep runners, and the answer is
/// bit-identical for any `shards ≥ 1`.
#[allow(clippy::too_many_arguments)]
pub fn run_one_queued_sharded_from(
    arena: &mut ShardArena,
    base: &SsdConfig,
    mechanism: Mechanism,
    point: OperatingPoint,
    trace: &Trace,
    rpt: &ReadTimingParamTable,
    setup: &QueueSetup,
    queue_depth: u32,
    image: Option<&DeviceImage>,
    shards: u32,
) -> SimReport {
    let cfg = prepared_config(base, point, mechanism.is_ideal());
    let front = setup.front(ReplayMode::closed_loop(queue_depth), Some(queue_depth));
    run_sharded_queued_from(
        arena,
        cfg,
        &|| mechanism.make_controller(rpt),
        trace.footprint_pages,
        &trace.requests,
        &front,
        image,
        worker_budget(shards, 1),
    )
    .expect("experiment configuration must be valid")
}

/// [`run_one_queued_from`] across a device array — the per-query unit
/// behind `repro serve` with `devices > 1`. `device_traces` is the routed
/// split of the query's workload (the server caches it per device count),
/// `images` the per-device warm-start fork from
/// [`rr_sim::snapshot::ImageBank::fork_for_array`], and `shards` composes
/// exactly as in the sweep runners (0 = legacy engine per device).
///
/// # Errors
///
/// Returns a typed error on a device-count mismatch between `set`,
/// `device_traces`, and `images`, or on any device-run configuration error.
#[allow(clippy::too_many_arguments)]
pub fn run_one_queued_array_from(
    set: &mut DeviceSet,
    base: &SsdConfig,
    mechanism: Mechanism,
    point: OperatingPoint,
    device_traces: &[Trace],
    footprint: u64,
    rpt: &ReadTimingParamTable,
    setup: &QueueSetup,
    queue_depth: u32,
    images: Option<&[&DeviceImage]>,
    shards: u32,
) -> Result<ArrayReport, ConfigError> {
    let cfg = prepared_config(base, point, mechanism.is_ideal());
    let front = setup.front(ReplayMode::closed_loop(queue_depth), Some(queue_depth));
    let devices = set.devices();
    let shard_workers = match Engine::select(shards, devices as usize) {
        Engine::Legacy => 0,
        Engine::Sharded { workers } => workers,
    };
    let slices: Vec<&[HostRequest]> = device_traces
        .iter()
        .map(|t| t.requests.as_slice())
        .collect();
    set.run_queued_from(
        &cfg,
        &|| mechanism.make_controller(rpt),
        footprint,
        &slices,
        &front,
        images,
        shard_workers,
        worker_budget(devices, 1),
    )
}

/// Builds the `Arc`-shared per-cell configuration once: `base` at `point`,
/// with the ideal-SSD switch set for `NoRR`-style mechanisms. Sharing the
/// `Arc` across a cell group keeps sweep setup from cloning the full config
/// (chip geometry, timing and ECC tables) per simulator.
fn prepared_config(base: &SsdConfig, point: OperatingPoint, ideal: bool) -> Arc<SsdConfig> {
    let mut cfg = base.clone().with_condition(OperatingCondition::new(
        point.pec,
        point.retention_months,
        base.condition.temp_c,
    ));
    cfg.ideal_no_retry = ideal;
    Arc::new(cfg)
}

/// The `Arc`-shared configs one cell group needs: the regular config plus
/// the ideal-SSD variant, the latter built only when an ideal mechanism is
/// in the set. Every runner selects per mechanism through [`Self::get`].
struct CellConfigs {
    regular: Arc<SsdConfig>,
    ideal: Option<Arc<SsdConfig>>,
}

impl CellConfigs {
    fn new(base: &SsdConfig, point: OperatingPoint, mechanisms: &[Mechanism]) -> Self {
        Self {
            regular: prepared_config(base, point, false),
            ideal: mechanisms
                .iter()
                .any(Mechanism::is_ideal)
                .then(|| prepared_config(base, point, true)),
        }
    }

    fn get(&self, m: Mechanism) -> &Arc<SsdConfig> {
        if m.is_ideal() {
            self.ideal.as_ref().expect("built for ideal mechanisms")
        } else {
            &self.regular
        }
    }
}

/// Runs one mechanism on a prepared (point-adjusted, `Arc`-shared) config,
/// reusing `arena`'s simulation buffers — the unit of work every matrix and
/// sweep runner dispatches per worker.
fn run_one_prepared(
    arena: &mut SimArena,
    cfg: &Arc<SsdConfig>,
    mechanism: Mechanism,
    trace: &Trace,
    rpt: &ReadTimingParamTable,
    mode: ReplayMode,
    image: Option<&DeviceImage>,
) -> SimReport {
    run_one_prepared_queued(
        arena,
        cfg,
        mechanism,
        trace,
        rpt,
        &HostQueueConfig::single(mode),
        image,
    )
}

/// [`run_one_prepared`] under an explicit multi-queue host front end,
/// warm-started from `image` when one is given (bit-identical either way —
/// the device image carries exactly the state preconditioning rebuilds).
fn run_one_prepared_queued(
    arena: &mut SimArena,
    cfg: &Arc<SsdConfig>,
    mechanism: Mechanism,
    trace: &Trace,
    rpt: &ReadTimingParamTable,
    queues: &HostQueueConfig,
    image: Option<&DeviceImage>,
) -> SimReport {
    Ssd::run_pooled_queued_from(
        arena,
        Arc::clone(cfg),
        mechanism.make_controller(rpt),
        trace.footprint_pages,
        &trace.requests,
        queues,
        image,
    )
    .expect("experiment configuration must be valid")
}

/// Which per-cell engine a runner drives: the legacy serial event loop
/// (`--shards 0`, today's default) or the channel-sharded engine of
/// [`rr_sim::shard`] with a per-cell worker-thread budget.
///
/// Sharded results are invariant to both the shard count and the `--jobs`
/// level (the engine pins event order structurally, not by thread count),
/// but they are **not** bit-comparable to `Legacy` output: cross-shard hops
/// quantize to conservative time windows there. The perf gate therefore
/// keys on `shards` the same way it keys on `wheel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// The historical serial engine ([`Ssd::run_pooled_queued_from`]).
    Legacy,
    /// The channel-sharded engine with this many worker threads per cell.
    Sharded {
        /// Worker threads driving the channel cores of one cell.
        workers: usize,
    },
}

impl Engine {
    /// Resolves the `--shards` × `--jobs` composition: `shards == 0` keeps
    /// the legacy serial engine; otherwise the host's parallelism is split
    /// between the `jobs` cell-level workers and each cell gets the
    /// remainder (at least 1, at most `shards`) as channel-core threads.
    fn select(shards: u32, jobs: usize) -> Self {
        if shards == 0 {
            Engine::Legacy
        } else {
            Engine::Sharded {
                workers: worker_budget(shards, jobs),
            }
        }
    }
}

/// Per-worker simulation buffers: the legacy serial arena plus the sharded
/// engine's arena. Whichever engine a run selects, the other arena stays
/// empty and costs nothing.
struct Arenas {
    legacy: SimArena,
    sharded: ShardArena,
}

impl Arenas {
    fn new() -> Self {
        Self {
            legacy: SimArena::new(),
            sharded: ShardArena::new(),
        }
    }
}

/// [`run_one_prepared_queued`] with the engine selectable per run — the
/// unit of work every engine-aware runner dispatches per worker.
#[allow(clippy::too_many_arguments)]
fn run_one_prepared_engine(
    arenas: &mut Arenas,
    engine: Engine,
    cfg: &Arc<SsdConfig>,
    mechanism: Mechanism,
    trace: &Trace,
    rpt: &ReadTimingParamTable,
    queues: &HostQueueConfig,
    image: Option<&DeviceImage>,
) -> SimReport {
    match engine {
        Engine::Legacy => run_one_prepared_queued(
            &mut arenas.legacy,
            cfg,
            mechanism,
            trace,
            rpt,
            queues,
            image,
        ),
        Engine::Sharded { workers } => run_sharded_queued_from(
            &mut arenas.sharded,
            Arc::clone(cfg),
            &|| mechanism.make_controller(rpt),
            trace.footprint_pages,
            &trace.requests,
            queues,
            image,
            workers,
        )
        .expect("experiment configuration must be valid"),
    }
}

/// The device-count axis of every array-aware runner: how many
/// full-footprint replica devices the trace is routed across (`--devices`)
/// and which [`PlacementPolicy`] does the routing (`--placement`).
/// [`ArraySetup::single`] makes every `run_*_array*` runner delegate
/// bit-identically to its single-device sibling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArraySetup {
    /// Number of devices in the array (≥ 1).
    pub devices: u32,
    /// Which device each request lands on (the redundancy anchor when a
    /// scheme fans out).
    pub placement: PlacementPolicy,
    /// How requests fan out across the array (`--redundancy`);
    /// [`Redundancy::None`] keeps the placement-only path byte-identical.
    pub redundancy: Redundancy,
    /// A mid-run device loss (`--fail-device D --fail-at-us T`), routed and
    /// rebuilt as [`route_redundant`] describes.
    pub failure: Option<FailurePlan>,
}

impl ArraySetup {
    /// The single-device setup: array runners reduce to today's paths.
    pub fn single() -> Self {
        Self {
            devices: 1,
            placement: PlacementPolicy::default(),
            redundancy: Redundancy::None,
            failure: None,
        }
    }

    /// An array of `devices` devices routed by `placement` (no redundancy,
    /// no failure — PR 9's signature).
    pub fn new(devices: u32, placement: PlacementPolicy) -> Self {
        Self {
            devices,
            placement,
            redundancy: Redundancy::None,
            failure: None,
        }
    }

    /// This setup with a redundancy scheme.
    pub fn with_redundancy(mut self, redundancy: Redundancy) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// This setup with a mid-run device loss.
    pub fn with_failure(mut self, failure: Option<FailurePlan>) -> Self {
        self.failure = failure;
        self
    }

    /// Whether this setup actually fans out (more than one device).
    pub fn is_array(&self) -> bool {
        self.devices > 1
    }

    /// Whether runs take the redundant routing/merge path — any fan-out
    /// scheme, or a failure plan (which re-routes even under `none`). The
    /// placement-only path stays byte-identical when this is false.
    pub fn is_redundant(&self) -> bool {
        self.is_array() && (self.redundancy.is_redundant() || self.failure.is_some())
    }
}

impl Default for ArraySetup {
    fn default() -> Self {
        Self::single()
    }
}

/// Per-device tail diagnostics of one array cell: enough to attribute an
/// array-level p99.9 excursion to the device (and the GC activity) that
/// caused it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceTail {
    /// Requests this device completed.
    pub completed: u64,
    /// This device's read latency distribution (µs).
    pub reads: LatencySummary,
    /// GC-induced stall attribution summed over this device's queues.
    pub gc: GcStalls,
    /// Discrete simulator events this device processed.
    pub events: u64,
}

/// Array-level statistics attached to a cell that ran on `devices > 1`:
/// per-device distributions plus the tail-amplification quantities (array
/// quantile ÷ best-device quantile), so one device's GC storm is visible in
/// the array p99.9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayCellStats {
    /// Number of devices the cell ran across.
    pub devices: u32,
    /// Placement policy name (`rr`, `hash`, `tier`).
    pub placement: String,
    /// Per-device tails, indexed by device id.
    pub per_device: Vec<DeviceTail>,
    /// Array read p99 ÷ best-device read p99.
    pub amplification_p99: Option<f64>,
    /// Array read p99.9 ÷ best-device read p99.9.
    pub amplification_p999: Option<f64>,
    /// Best (lowest) per-device read p99.9, µs.
    pub best_read_p999: Option<f64>,
    /// Median per-device read p99.9, µs.
    pub median_read_p999: Option<f64>,
    /// Device with the worst read p99.9 — the array-tail suspect.
    pub slowest_device: Option<u32>,
    /// Redundancy attribution when the cell fanned requests out
    /// (wait-for-k latency, rescued reads, fan-out and rebuild counters);
    /// `None` on the placement-only path.
    pub redundancy: Option<RedundancyStats>,
}

impl ArrayCellStats {
    fn from_report(report: &ArrayReport, placement: PlacementPolicy) -> Self {
        Self {
            redundancy: report.redundancy.clone(),
            devices: report.device_count(),
            placement: placement.name().to_string(),
            per_device: report
                .devices
                .iter()
                .enumerate()
                .map(|(d, r)| DeviceTail {
                    completed: r.requests_completed,
                    reads: r.read_latency,
                    gc: report.device_gc(d),
                    events: r.events_processed,
                })
                .collect(),
            amplification_p99: report.amplification_p99(),
            amplification_p999: report.amplification_p999(),
            best_read_p999: report.best_device_read_p999(),
            median_read_p999: report.median_device_read_p999(),
            slowest_device: report.slowest_device(),
        }
    }
}

/// Average retry steps per read across the array, weighted by each device's
/// retry-histogram population — the exact pooled mean, since every device's
/// histogram covers the full step range (the overflow bin is structurally
/// empty).
fn array_avg_retry_steps(report: &ArrayReport) -> f64 {
    let total: u64 = report.devices.iter().map(|d| d.retry_steps.total()).sum();
    if total == 0 {
        return 0.0;
    }
    report
        .devices
        .iter()
        .map(|d| d.retry_steps.mean() * d.retry_steps.total() as f64)
        .sum::<f64>()
        / total as f64
}

/// [`run_one_prepared_engine`] across a device array: the routed sub-traces
/// in `device_traces` run on `set`'s devices — each under the engine
/// `engine` selects (shard workers per device), at most `device_workers`
/// devices concurrently — and merge into one [`ArrayReport`].
#[allow(clippy::too_many_arguments)]
fn run_one_prepared_array(
    set: &mut DeviceSet,
    engine: Engine,
    device_workers: usize,
    cfg: &Arc<SsdConfig>,
    mechanism: Mechanism,
    footprint: u64,
    device_traces: &[Trace],
    rpt: &ReadTimingParamTable,
    queues: &HostQueueConfig,
    images: Option<&[&DeviceImage]>,
) -> ArrayReport {
    let slices: Vec<&[HostRequest]> = device_traces
        .iter()
        .map(|t| t.requests.as_slice())
        .collect();
    let shard_workers = match engine {
        Engine::Legacy => 0,
        Engine::Sharded { workers } => workers,
    };
    set.run_queued_from(
        cfg,
        &|| mechanism.make_controller(rpt),
        footprint,
        &slices,
        queues,
        images,
        shard_workers,
        device_workers,
    )
    .expect("experiment configuration must be valid")
}

/// One trace routed for an array run: the plain per-device split (the
/// placement-only path, byte-frozen) or the redundant routing with its copy
/// map (any fan-out scheme or failure plan).
enum RoutedTrace {
    /// Placement-only: one sub-trace per device.
    Plain(Vec<Trace>),
    /// Redundant: per-device copy/rebuild streams plus the merge bookkeeping.
    Redundant(RedundantRouting),
}

/// Routes `t` for `array`: the redundant path when a scheme fans out or a
/// failure plan re-routes, the plain split otherwise.
fn route_for_array(t: &Trace, array: &ArraySetup) -> RoutedTrace {
    if array.is_redundant() {
        RoutedTrace::Redundant(route_redundant(
            &t.requests,
            array.devices,
            array.placement,
            t.footprint_pages,
            array.redundancy,
            array.failure,
        ))
    } else {
        RoutedTrace::Plain(t.split_routed(array.devices, |i, r| {
            array
                .placement
                .route(i, r, array.devices, t.footprint_pages)
        }))
    }
}

/// [`run_one_prepared_array`] over either routing: the plain path merges
/// per-device populations, the redundant path reassembles logical requests
/// at their wait-for-k order statistic.
#[allow(clippy::too_many_arguments)]
fn run_one_prepared_routed(
    set: &mut DeviceSet,
    engine: Engine,
    device_workers: usize,
    cfg: &Arc<SsdConfig>,
    mechanism: Mechanism,
    footprint: u64,
    routed: &RoutedTrace,
    rpt: &ReadTimingParamTable,
    queues: &HostQueueConfig,
    images: Option<&[&DeviceImage]>,
) -> ArrayReport {
    match routed {
        RoutedTrace::Plain(device_traces) => run_one_prepared_array(
            set,
            engine,
            device_workers,
            cfg,
            mechanism,
            footprint,
            device_traces,
            rpt,
            queues,
            images,
        ),
        RoutedTrace::Redundant(routing) => {
            let shard_workers = match engine {
                Engine::Legacy => 0,
                Engine::Sharded { workers } => workers,
            };
            set.run_redundant_from(
                cfg,
                &|| mechanism.make_controller(rpt),
                footprint,
                routing,
                queues,
                images,
                shard_workers,
                device_workers,
            )
            .expect("experiment configuration must be valid")
        }
    }
}

/// [`run_one_queued_array_from`] under an [`ArraySetup`]'s redundancy scheme
/// and failure plan: routes `trace` itself (fanning copies out and
/// injecting rebuild reads as [`route_redundant`] describes) and runs the
/// resulting streams across the set — the per-query unit redundancy tests
/// build on. An `array` that is neither redundant nor failed takes the
/// plain split, bit-identical to [`run_one_queued_array_from`].
///
/// # Errors
///
/// As [`run_one_queued_array_from`].
#[allow(clippy::too_many_arguments)]
pub fn run_one_queued_redundant_from(
    set: &mut DeviceSet,
    base: &SsdConfig,
    mechanism: Mechanism,
    point: OperatingPoint,
    trace: &Trace,
    array: &ArraySetup,
    rpt: &ReadTimingParamTable,
    setup: &QueueSetup,
    queue_depth: u32,
    images: Option<&[&DeviceImage]>,
    shards: u32,
) -> Result<ArrayReport, ConfigError> {
    let cfg = prepared_config(base, point, mechanism.is_ideal());
    let front = setup.front(ReplayMode::closed_loop(queue_depth), Some(queue_depth));
    let devices = set.devices();
    let shard_workers = match Engine::select(shards, devices as usize) {
        Engine::Legacy => 0,
        Engine::Sharded { workers } => workers,
    };
    let device_workers = worker_budget(devices, 1);
    match route_for_array(trace, array) {
        RoutedTrace::Plain(device_traces) => {
            let slices: Vec<&[HostRequest]> = device_traces
                .iter()
                .map(|t| t.requests.as_slice())
                .collect();
            set.run_queued_from(
                &cfg,
                &|| mechanism.make_controller(rpt),
                trace.footprint_pages,
                &slices,
                &front,
                images,
                shard_workers,
                device_workers,
            )
        }
        RoutedTrace::Redundant(routing) => set.run_redundant_from(
            &cfg,
            &|| mechanism.make_controller(rpt),
            trace.footprint_pages,
            &routing,
            &front,
            images,
            shard_workers,
            device_workers,
        ),
    }
}

/// Builds the warm-start bank every runner forks across its cells: one
/// preconditioned image per distinct footprint in `traces`. This is the
/// "precondition once" half of the tentpole — per-cell work then reduces to
/// an allocation-retaining restore.
fn preconditioned_bank<'a>(
    base: &SsdConfig,
    traces: impl IntoIterator<Item = &'a Trace>,
) -> ImageBank {
    ImageBank::preconditioned(base, traces.into_iter().map(|t| t.footprint_pages))
        .expect("experiment configuration must be valid")
}

/// Checks that an externally supplied bank (`--from-image`) can warm-start
/// every cell of a run over `traces`: each footprint needs a matching image
/// captured under the same seed/outlier inputs.
fn validate_bank<'a>(
    bank: &ImageBank,
    base: &SsdConfig,
    traces: impl IntoIterator<Item = &'a Trace>,
) -> Result<(), ConfigError> {
    for trace in traces {
        let image = bank.get(trace.footprint_pages).ok_or_else(|| {
            ConfigError::new(format!(
                "image bank holds no image for the {}-page footprint of workload {}",
                trace.footprint_pages, trace.name
            ))
        })?;
        image.validate_for(base, trace.footprint_pages)?;
    }
    Ok(())
}

/// The host front-end axis of the load sweeps: how many NVMe-style
/// submission queues feed the device, under which arbitration policy, and
/// with what device admission window — the `--queues N --arb rr|wrr` knobs
/// of `repro sweep-qd` / `repro sweep-rate`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSetup {
    /// Number of submission queues (trace striped request *i* → queue
    /// *i mod N*).
    pub queues: u32,
    /// Round-robin or weighted-round-robin device arbitration.
    pub arb: ArbPolicy,
    /// Consecutive commands fetched per arbitration credit.
    pub burst: u32,
    /// Per-queue WRR weights. `None` defaults to all-1 under round-robin
    /// and to descending `[N, N−1, …, 1]` under weighted-round-robin, so the
    /// WRR skew is visible without extra flags.
    pub weights: Option<Vec<u32>>,
    /// Device admission window. `None` picks each sweep's natural default:
    /// the swept queue depth for QD sweeps (each queue backfills the shared
    /// window, so arbitration apportions a load comparable to the
    /// single-queue sweep), unbounded for open-loop rate sweeps.
    pub window: Option<u32>,
}

impl QueueSetup {
    /// The single-queue front end — sweeps behave bit-identically to the
    /// plain (pre-multi-queue) runners.
    pub fn single() -> Self {
        Self {
            queues: 1,
            arb: ArbPolicy::RoundRobin,
            burst: 1,
            weights: None,
            window: None,
        }
    }

    /// `queues` submission queues under `arb` with default burst/weights.
    pub fn multi(queues: u32, arb: ArbPolicy) -> Self {
        Self {
            queues,
            arb,
            ..Self::single()
        }
    }

    /// Resolved per-queue weights (see the `weights` field for defaults).
    pub fn resolved_weights(&self) -> Vec<u32> {
        match (&self.weights, self.arb) {
            (Some(w), _) => w.clone(),
            (None, ArbPolicy::WeightedRoundRobin) => (1..=self.queues).rev().collect(),
            (None, ArbPolicy::RoundRobin) => vec![1; self.queues as usize],
        }
    }

    /// Builds the concrete front end for one sweep cell: every queue
    /// replays `mode`, and the window falls back to `default_window` for
    /// multi-queue setups with no explicit window.
    fn front(&self, mode: ReplayMode, default_window: Option<u32>) -> HostQueueConfig {
        let mut cfg = HostQueueConfig::uniform(self.queues, mode)
            .with_arb(self.arb)
            .with_burst(self.burst)
            .with_weights(&self.resolved_weights());
        let window = self
            .window
            .or_else(|| (self.queues > 1).then_some(default_window).flatten());
        if let Some(w) = window {
            cfg = cfg.with_window(w);
        }
        cfg
    }
}

impl Default for QueueSetup {
    fn default() -> Self {
        Self::single()
    }
}

/// One cell of a Fig. 14/15-style matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Workload name.
    pub workload: String,
    /// Whether the workload is read-dominant (Fig. 14/15 grouping).
    pub read_dominant: bool,
    /// Operating point.
    pub point: OperatingPoint,
    /// Mechanism name.
    pub mechanism: String,
    /// Average response time, µs.
    pub avg_response_us: f64,
    /// Average response time normalized to Baseline at the same
    /// (workload, point).
    pub normalized: f64,
    /// Average retry steps per read (diagnostic).
    pub avg_retry_steps: f64,
    /// Read latency distribution (p50/p95/p99/p99.9, µs); quantiles are
    /// `None` when the workload completed no reads.
    pub read_latency: LatencySummary,
    /// Discrete simulator events this cell processed (the `repro perf`
    /// throughput numerator).
    pub events: u64,
    /// Array-level statistics when the cell ran on `devices > 1`; `None`
    /// for every single-device run (all pre-array output).
    pub array: Option<ArrayCellStats>,
}

/// Computes the cells of one (trace, operating-point) group: the `Baseline`
/// reference run first (every other mechanism is normalized to it), then each
/// requested mechanism.
///
/// This is the unit of work both [`run_matrix`] and [`run_matrix_parallel`]
/// share: every cell is a pure function of `(base, mechanism, point, trace,
/// rpt)` — the SSD seed comes from `base` and each [`run_one`] builds a fresh
/// simulator — so the result is identical no matter which thread (or order)
/// computes it.
#[allow(clippy::too_many_arguments)]
fn run_cell_group(
    arenas: &mut Arenas,
    engine: Engine,
    base: &SsdConfig,
    trace: &Trace,
    read_dominant: bool,
    point: OperatingPoint,
    mechanisms: &[Mechanism],
    rpt: &ReadTimingParamTable,
    bank: &ImageBank,
) -> Vec<MatrixCell> {
    // One shared config per (point, ideal-switch) — built once for the whole
    // group instead of cloned per mechanism run.
    let cfgs = CellConfigs::new(base, point, mechanisms);
    let image = bank.get(trace.footprint_pages);
    let queues = HostQueueConfig::single(ReplayMode::OpenLoop);
    let run = |arenas: &mut Arenas, m: Mechanism| {
        run_one_prepared_engine(arenas, engine, cfgs.get(m), m, trace, rpt, &queues, image)
    };
    let baseline = run(arenas, Mechanism::Baseline);
    let base_rt = baseline.avg_response_us();
    mechanisms
        .iter()
        .map(|&m| {
            let report = if m == Mechanism::Baseline {
                baseline.clone()
            } else {
                run(arenas, m)
            };
            MatrixCell {
                workload: trace.name.clone(),
                read_dominant,
                point,
                mechanism: m.name().to_string(),
                avg_response_us: report.avg_response_us(),
                normalized: if base_rt > 0.0 {
                    report.avg_response_us() / base_rt
                } else {
                    1.0
                },
                avg_retry_steps: report.avg_retry_steps(),
                read_latency: report.read_latency,
                events: report.events_processed,
                array: None,
            }
        })
        .collect()
}

/// Runs `mechanisms` × `points` over each trace, normalizing response times
/// to the `Baseline` mechanism (which is therefore always included).
///
/// `read_dominant` tags each trace for the Fig. 14/15 grouping.
pub fn run_matrix(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
) -> Vec<MatrixCell> {
    let bank = preconditioned_bank(base, traces.iter().map(|(t, _)| t));
    run_matrix_with_bank(base, traces, points, mechanisms, 1, Engine::Legacy, &bank)
}

/// The shared matrix core: every (trace × point) group forks its trace's
/// image out of `bank` instead of re-preconditioning per cell.
#[allow(clippy::too_many_arguments)]
fn run_matrix_with_bank(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
    engine: Engine,
    bank: &ImageBank,
) -> Vec<MatrixCell> {
    let rpt = ReadTimingParamTable::default();
    let groups: Vec<(&Trace, bool, OperatingPoint)> = traces
        .iter()
        .flat_map(|(trace, rd)| points.iter().map(move |&p| (trace, *rd, p)))
        .collect();
    parallel_ordered(
        &groups,
        jobs,
        Arenas::new,
        |arenas, &(trace, read_dominant, point)| {
            run_cell_group(
                arenas,
                engine,
                base,
                trace,
                read_dominant,
                point,
                mechanisms,
                &rpt,
                bank,
            )
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Maps `groups` through `f` on up to `jobs` worker threads, returning
/// results **in input order**. Each worker owns one context built by `ctx`
/// (a [`SimArena`] in the experiment runners), so simulation buffers are
/// recycled across the cells a worker processes instead of reallocated per
/// cell.
///
/// Work is distributed over a work-stealing index; each result lands in a
/// slot keyed by its input position, so the output is bit-identical to a
/// serial `groups.iter().map(..)` regardless of thread count or scheduling —
/// provided `f` itself is a pure function of its input (no shared mutable
/// state observable in the result), which every experiment runner here
/// guarantees by seeding each simulator from the configuration alone and by
/// the arena's reset-to-pristine contract.
fn parallel_ordered<T: Sync, R: Send, C>(
    groups: &[T],
    jobs: usize,
    ctx: impl Fn() -> C + Sync,
    f: impl Fn(&mut C, &T) -> R + Sync,
) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let jobs = jobs.max(1).min(groups.len());
    if jobs <= 1 {
        let mut c = ctx();
        return groups.iter().map(|g| f(&mut c, g)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = groups.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut c = ctx();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(g) = groups.get(i) else {
                        break;
                    };
                    *slots[i]
                        .lock()
                        .expect("no worker panicked holding the slot lock") = Some(f(&mut c, g));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding the slot lock")
                .expect("every slot below the group count was filled")
        })
        .collect()
}

/// [`run_matrix`] spread across `jobs` worker threads.
///
/// The (trace × point) groups run under the crate's order-preserving
/// work-stealing helper (`parallel_ordered`), so the returned vector is
/// **bit-identical to [`run_matrix`]'s output** regardless of thread count
/// or scheduling.
pub fn run_matrix_parallel(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
) -> Vec<MatrixCell> {
    run_matrix_sharded(base, traces, points, mechanisms, jobs, 0)
}

/// [`run_matrix_parallel`] with the per-cell engine selectable via
/// `shards`: 0 keeps the legacy serial engine; N ≥ 1 drives every cell
/// through the channel-sharded engine, whose output is bit-identical for
/// any N (and any `jobs`) but keyed separately from serial output in the
/// perf gate.
pub fn run_matrix_sharded(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
    shards: u32,
) -> Vec<MatrixCell> {
    let bank = preconditioned_bank(base, traces.iter().map(|(t, _)| t));
    run_matrix_with_bank(
        base,
        traces,
        points,
        mechanisms,
        jobs,
        Engine::select(shards, jobs),
        &bank,
    )
}

/// [`run_matrix_parallel`] warm-started from an externally supplied image
/// bank (`repro fig14 --from-image`): every cell restores its trace's aged
/// image instead of preconditioning, with bit-identical output.
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint or an image was captured under different model inputs.
pub fn run_matrix_parallel_from(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
    bank: &ImageBank,
) -> Result<Vec<MatrixCell>, ConfigError> {
    run_matrix_sharded_from(base, traces, points, mechanisms, jobs, 0, bank)
}

/// [`run_matrix_parallel_from`] with the per-cell engine selectable via
/// `shards` (see [`run_matrix_sharded`]).
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint or an image was captured under different model inputs.
pub fn run_matrix_sharded_from(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
    shards: u32,
    bank: &ImageBank,
) -> Result<Vec<MatrixCell>, ConfigError> {
    validate_bank(bank, base, traces.iter().map(|(t, _)| t))?;
    Ok(run_matrix_with_bank(
        base,
        traces,
        points,
        mechanisms,
        jobs,
        Engine::select(shards, jobs),
        bank,
    ))
}

/// [`run_matrix_sharded`]'s array sibling: routes every trace across
/// `array.devices` full-footprint replica devices (preconditioning one image
/// per footprint and forking it across the array) and reports array-merged
/// cells. `array.devices ≤ 1` delegates **bit-identically** to
/// [`run_matrix_sharded`] — the array layer adds no code to that path.
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_array(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
    shards: u32,
    array: ArraySetup,
) -> Vec<MatrixCell> {
    if !array.is_array() {
        return run_matrix_sharded(base, traces, points, mechanisms, jobs, shards);
    }
    let bank = preconditioned_bank(base, traces.iter().map(|(t, _)| t));
    matrix_array_with_bank(base, traces, points, mechanisms, jobs, shards, array, &bank)
        .expect("the preconditioned bank covers every footprint")
}

/// [`run_matrix_array`] warm-started from an externally supplied image bank
/// (`repro fig14 --from-image --devices N`): each footprint's single image
/// is forked across all `array.devices` devices. `array.devices ≤ 1`
/// delegates bit-identically to [`run_matrix_sharded_from`].
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint, an image was captured under different model inputs, or the
/// fork cannot cover the device count.
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_array_from(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
    shards: u32,
    array: ArraySetup,
    bank: &ImageBank,
) -> Result<Vec<MatrixCell>, ConfigError> {
    if !array.is_array() {
        return run_matrix_sharded_from(base, traces, points, mechanisms, jobs, shards, bank);
    }
    validate_bank(bank, base, traces.iter().map(|(t, _)| t))?;
    matrix_array_with_bank(base, traces, points, mechanisms, jobs, shards, array, bank)
}

/// The shared array-matrix core (`array.devices ≥ 2`): each trace is routed
/// once up front, its image forked across the array once, and every (trace
/// × point) group runs on a per-worker [`DeviceSet`] whose device arenas
/// persist across the groups that worker processes.
#[allow(clippy::too_many_arguments)]
fn matrix_array_with_bank(
    base: &SsdConfig,
    traces: &[(Trace, bool)],
    points: &[OperatingPoint],
    mechanisms: &[Mechanism],
    jobs: usize,
    shards: u32,
    array: ArraySetup,
    bank: &ImageBank,
) -> Result<Vec<MatrixCell>, ConfigError> {
    let devices = array.devices;
    let rpt = ReadTimingParamTable::default();
    // The device×shard worker budget: the host's cores split across `jobs`
    // cell workers × up to `devices` concurrent devices, each of which may
    // further run `shards` channel cores.
    let engine = Engine::select(shards, jobs.max(1).saturating_mul(devices as usize));
    let device_workers = worker_budget(devices, jobs.max(1));
    let routed: Vec<RoutedTrace> = traces
        .iter()
        .map(|(t, _)| route_for_array(t, &array))
        .collect();
    let mut forks: Vec<Vec<&DeviceImage>> = Vec::with_capacity(traces.len());
    for (t, _) in traces {
        forks.push(bank.fork_for_array(t.footprint_pages, devices)?);
    }
    let groups: Vec<(usize, OperatingPoint)> = (0..traces.len())
        .flat_map(|ti| points.iter().map(move |&p| (ti, p)))
        .collect();
    Ok(parallel_ordered(
        &groups,
        jobs,
        || DeviceSet::new(devices).expect("array setups have at least one device"),
        |set, &(ti, point)| {
            let (trace, read_dominant) = &traces[ti];
            run_array_cell_group(
                set,
                engine,
                device_workers,
                base,
                trace,
                &routed[ti],
                &forks[ti],
                *read_dominant,
                point,
                mechanisms,
                &rpt,
                array.placement,
            )
        },
    )
    .into_iter()
    .flatten()
    .collect())
}

/// The array sibling of [`run_cell_group`]: one (trace, point) group across
/// the device set, `Baseline` first so every other mechanism normalizes to
/// it, with each mechanism's report merged from the per-device runs.
#[allow(clippy::too_many_arguments)]
fn run_array_cell_group(
    set: &mut DeviceSet,
    engine: Engine,
    device_workers: usize,
    base: &SsdConfig,
    trace: &Trace,
    routed: &RoutedTrace,
    images: &[&DeviceImage],
    read_dominant: bool,
    point: OperatingPoint,
    mechanisms: &[Mechanism],
    rpt: &ReadTimingParamTable,
    placement: PlacementPolicy,
) -> Vec<MatrixCell> {
    let cfgs = CellConfigs::new(base, point, mechanisms);
    let queues = HostQueueConfig::single(ReplayMode::OpenLoop);
    let run = |set: &mut DeviceSet, m: Mechanism| {
        run_one_prepared_routed(
            set,
            engine,
            device_workers,
            cfgs.get(m),
            m,
            trace.footprint_pages,
            routed,
            rpt,
            &queues,
            Some(images),
        )
    };
    let baseline = run(set, Mechanism::Baseline);
    let base_rt = baseline.avg_response_us();
    mechanisms
        .iter()
        .map(|&m| {
            let report = if m == Mechanism::Baseline {
                baseline.clone()
            } else {
                run(set, m)
            };
            MatrixCell {
                workload: trace.name.clone(),
                read_dominant,
                point,
                mechanism: m.name().to_string(),
                avg_response_us: report.avg_response_us(),
                normalized: if base_rt > 0.0 {
                    report.avg_response_us() / base_rt
                } else {
                    1.0
                },
                avg_retry_steps: array_avg_retry_steps(&report),
                read_latency: report.read_latency,
                events: report.events_processed,
                array: Some(ArrayCellStats::from_report(&report, placement)),
            }
        })
        .collect()
}

/// One cell of a queue-depth sweep: closed-loop replay of one workload at
/// one queue depth under one mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QdSweepCell {
    /// Workload name.
    pub workload: String,
    /// Mechanism name.
    pub mechanism: String,
    /// Closed-loop queue depth (outstanding requests).
    pub queue_depth: u32,
    /// Operating point.
    pub point: OperatingPoint,
    /// Read latency distribution (µs).
    pub reads: LatencySummary,
    /// Write latency distribution (µs).
    pub writes: LatencySummary,
    /// Latency distribution of reads that needed ≥ 1 retry step (µs).
    pub retried_reads: LatencySummary,
    /// Average response time over all requests, µs.
    pub avg_response_us: f64,
    /// Throughput in thousands of IOPS of simulated time.
    pub kiops: f64,
    /// Discrete simulator events this cell processed.
    pub events: u64,
    /// Number of host submission queues feeding the device (1 = the plain
    /// single-generator closed loop).
    pub queues: u32,
    /// Per-queue read latency distributions, one entry per submission queue
    /// (submission-queue wait included).
    pub per_queue_reads: Vec<LatencySummary>,
    /// Per-queue GC-induced stall attribution (suspensions, preemptions,
    /// waits, deferrals, total stall µs), one entry per submission queue.
    /// Empty for array cells (per-device attribution lives in `array`).
    pub per_queue_gc: Vec<GcStalls>,
    /// Array-level statistics when the cell ran on `devices > 1`; `None`
    /// for every single-device run (all pre-array output).
    pub array: Option<ArrayCellStats>,
}

/// Sweeps closed-loop queue depths over `traces` × `queue_depths` ×
/// `mechanisms` at one operating point, on `jobs` worker threads.
///
/// Load is the independent variable here (the concurrency axis of
/// tail-latency plots): each cell replays the trace with `queue_depth`
/// requests kept outstanding and reports the full per-class latency
/// distribution plus throughput. Like [`run_matrix_parallel`], the output
/// is bit-identical for any `jobs` value.
pub fn run_qd_sweep(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    jobs: usize,
) -> Vec<QdSweepCell> {
    run_qd_sweep_queued(
        base,
        traces,
        point,
        queue_depths,
        mechanisms,
        &QueueSetup::single(),
        jobs,
    )
}

/// [`run_qd_sweep`] under a multi-queue host front end.
///
/// Each cell stripes the trace over `setup.queues` submission queues; every
/// queue runs closed-loop at the swept depth and the device window defaults
/// to that same depth, so the queues permanently backfill their submission
/// queues and the RR/WRR arbiter decides whose requests occupy the window —
/// host-side queueing (and any WRR weight skew) lands in the per-queue
/// tails. With [`QueueSetup::single`] this is exactly [`run_qd_sweep`].
/// Output is bit-identical for any `jobs` value.
pub fn run_qd_sweep_queued(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
) -> Vec<QdSweepCell> {
    let bank = preconditioned_bank(base, traces);
    qd_sweep_with_bank(
        base,
        traces,
        point,
        queue_depths,
        mechanisms,
        setup,
        jobs,
        Engine::Legacy,
        &bank,
    )
}

/// [`run_qd_sweep_queued`] with the per-cell engine selectable via
/// `shards` (see [`run_matrix_sharded`]): 0 keeps the legacy serial
/// engine, N ≥ 1 runs every cell on the channel-sharded engine.
#[allow(clippy::too_many_arguments)]
pub fn run_qd_sweep_sharded(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
) -> Vec<QdSweepCell> {
    let bank = preconditioned_bank(base, traces);
    qd_sweep_with_bank(
        base,
        traces,
        point,
        queue_depths,
        mechanisms,
        setup,
        jobs,
        Engine::select(shards, jobs),
        &bank,
    )
}

/// [`run_qd_sweep_sharded`] warm-started from an externally supplied image
/// bank.
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint or an image was captured under different model inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_qd_sweep_sharded_from(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    bank: &ImageBank,
) -> Result<Vec<QdSweepCell>, ConfigError> {
    validate_bank(bank, base, traces)?;
    Ok(qd_sweep_with_bank(
        base,
        traces,
        point,
        queue_depths,
        mechanisms,
        setup,
        jobs,
        Engine::select(shards, jobs),
        bank,
    ))
}

/// [`run_qd_sweep_queued`] warm-started from an externally supplied image
/// bank (`repro sweep-qd --from-image`), bit-identical to the cold-start
/// sweep.
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint or an image was captured under different model inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_qd_sweep_queued_from(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    bank: &ImageBank,
) -> Result<Vec<QdSweepCell>, ConfigError> {
    validate_bank(bank, base, traces)?;
    Ok(qd_sweep_with_bank(
        base,
        traces,
        point,
        queue_depths,
        mechanisms,
        setup,
        jobs,
        Engine::Legacy,
        bank,
    ))
}

/// [`run_qd_sweep_sharded`]'s array sibling: each cell routes its trace
/// across `array.devices` replica devices (every device closed-loop at the
/// swept depth) and reports the array-merged distributions plus per-device
/// tails. `array.devices ≤ 1` delegates bit-identically to
/// [`run_qd_sweep_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn run_qd_sweep_array(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    array: ArraySetup,
) -> Vec<QdSweepCell> {
    if !array.is_array() {
        return run_qd_sweep_sharded(
            base,
            traces,
            point,
            queue_depths,
            mechanisms,
            setup,
            jobs,
            shards,
        );
    }
    let bank = preconditioned_bank(base, traces);
    qd_sweep_array_with_bank(
        base,
        traces,
        point,
        queue_depths,
        mechanisms,
        setup,
        jobs,
        shards,
        array,
        &bank,
    )
    .expect("the preconditioned bank covers every footprint")
}

/// [`run_qd_sweep_array`] warm-started from an externally supplied image
/// bank. `array.devices ≤ 1` delegates bit-identically to
/// [`run_qd_sweep_sharded_from`].
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint, an image was captured under different model inputs, or the
/// fork cannot cover the device count.
#[allow(clippy::too_many_arguments)]
pub fn run_qd_sweep_array_from(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    array: ArraySetup,
    bank: &ImageBank,
) -> Result<Vec<QdSweepCell>, ConfigError> {
    if !array.is_array() {
        return run_qd_sweep_sharded_from(
            base,
            traces,
            point,
            queue_depths,
            mechanisms,
            setup,
            jobs,
            shards,
            bank,
        );
    }
    validate_bank(bank, base, traces)?;
    qd_sweep_array_with_bank(
        base,
        traces,
        point,
        queue_depths,
        mechanisms,
        setup,
        jobs,
        shards,
        array,
        bank,
    )
}

/// The shared array-QD-sweep core (`array.devices ≥ 2`).
#[allow(clippy::too_many_arguments)]
fn qd_sweep_array_with_bank(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    array: ArraySetup,
    bank: &ImageBank,
) -> Result<Vec<QdSweepCell>, ConfigError> {
    let devices = array.devices;
    let rpt = ReadTimingParamTable::default();
    let cfgs = CellConfigs::new(base, point, mechanisms);
    let engine = Engine::select(shards, jobs.max(1).saturating_mul(devices as usize));
    let device_workers = worker_budget(devices, jobs.max(1));
    let routed: Vec<RoutedTrace> = traces.iter().map(|t| route_for_array(t, &array)).collect();
    let mut forks: Vec<Vec<&DeviceImage>> = Vec::with_capacity(traces.len());
    for t in traces {
        forks.push(bank.fork_for_array(t.footprint_pages, devices)?);
    }
    let groups: Vec<(usize, u32, Mechanism)> = (0..traces.len())
        .flat_map(|ti| {
            queue_depths
                .iter()
                .flat_map(move |&qd| mechanisms.iter().map(move |&m| (ti, qd, m)))
        })
        .collect();
    Ok(parallel_ordered(
        &groups,
        jobs,
        || DeviceSet::new(devices).expect("array setups have at least one device"),
        |set, &(ti, queue_depth, m)| {
            let trace = &traces[ti];
            let front = setup.front(ReplayMode::closed_loop(queue_depth), Some(queue_depth));
            let report = run_one_prepared_routed(
                set,
                engine,
                device_workers,
                cfgs.get(m),
                m,
                trace.footprint_pages,
                &routed[ti],
                &rpt,
                &front,
                Some(forks[ti].as_slice()),
            );
            QdSweepCell {
                workload: trace.name.clone(),
                mechanism: m.name().to_string(),
                queue_depth,
                point,
                reads: report.read_latency,
                writes: report.write_latency,
                retried_reads: report.retried_read_latency,
                avg_response_us: report.avg_response_us(),
                kiops: report.kiops(),
                events: report.events_processed,
                queues: setup.queues,
                per_queue_reads: Vec::new(),
                per_queue_gc: Vec::new(),
                array: Some(ArrayCellStats::from_report(&report, array.placement)),
            }
        },
    ))
}

#[allow(clippy::too_many_arguments)]
fn qd_sweep_with_bank(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    queue_depths: &[u32],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    engine: Engine,
    bank: &ImageBank,
) -> Vec<QdSweepCell> {
    let rpt = ReadTimingParamTable::default();
    let cfgs = CellConfigs::new(base, point, mechanisms);
    // Unlike the figure matrices, no cell depends on another (there is no
    // in-group Baseline normalization), so mechanisms flatten into the
    // parallel work units too.
    let groups: Vec<(&Trace, u32, Mechanism)> = traces
        .iter()
        .flat_map(|t| {
            queue_depths
                .iter()
                .flat_map(move |&qd| mechanisms.iter().map(move |&m| (t, qd, m)))
        })
        .collect();
    parallel_ordered(
        &groups,
        jobs,
        Arenas::new,
        |arenas, &(trace, queue_depth, m)| {
            let front = setup.front(ReplayMode::closed_loop(queue_depth), Some(queue_depth));
            let image = bank.get(trace.footprint_pages);
            let report =
                run_one_prepared_engine(arenas, engine, cfgs.get(m), m, trace, &rpt, &front, image);
            QdSweepCell {
                workload: trace.name.clone(),
                mechanism: m.name().to_string(),
                queue_depth,
                point,
                reads: report.read_latency,
                writes: report.write_latency,
                retried_reads: report.retried_read_latency,
                avg_response_us: report.avg_response_us(),
                kiops: report.kiops(),
                events: report.events_processed,
                queues: setup.queues,
                per_queue_reads: report.per_queue.iter().map(|q| q.reads).collect(),
                per_queue_gc: report.per_queue.iter().map(|q| q.gc).collect(),
                array: None,
            }
        },
    )
}

/// One cell of an offered-load (arrival-rate) sweep: open-loop replay with
/// inter-arrival times scaled by `rate`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSweepCell {
    /// Workload name.
    pub workload: String,
    /// Mechanism name.
    pub mechanism: String,
    /// Arrival-rate multiplier over the trace's native timing (2.0 = twice
    /// the offered load).
    pub rate: f64,
    /// Operating point.
    pub point: OperatingPoint,
    /// Read latency distribution (µs).
    pub reads: LatencySummary,
    /// Write latency distribution (µs).
    pub writes: LatencySummary,
    /// Latency distribution of reads that needed ≥ 1 retry step (µs).
    pub retried_reads: LatencySummary,
    /// Average response time over all requests, µs.
    pub avg_response_us: f64,
    /// Throughput in thousands of IOPS of simulated time.
    pub kiops: f64,
    /// Discrete simulator events this cell processed.
    pub events: u64,
    /// Number of host submission queues feeding the device (1 = the plain
    /// single-generator open loop).
    pub queues: u32,
    /// Per-queue read latency distributions, one entry per submission queue
    /// (submission-queue wait included).
    pub per_queue_reads: Vec<LatencySummary>,
    /// Per-queue GC-induced stall attribution (suspensions, preemptions,
    /// waits, deferrals, total stall µs), one entry per submission queue.
    /// Empty for array cells (per-device attribution lives in `array`).
    pub per_queue_gc: Vec<GcStalls>,
    /// Array-level statistics when the cell ran on `devices > 1`; `None`
    /// for every single-device run (all pre-array output).
    pub array: Option<ArrayCellStats>,
}

/// Sweeps open-loop offered load over `traces` × `rates` × `mechanisms` at
/// one operating point, on `jobs` worker threads.
///
/// The rate axis is the open-loop sibling of [`run_qd_sweep`]'s queue-depth
/// axis: instead of pinning concurrency, each cell replays the trace with
/// every inter-arrival time divided by `rate`, producing the classic
/// latency-vs-offered-load hockey-stick as `rate` passes the device's
/// saturation point. Output is bit-identical for any `jobs` value.
pub fn run_rate_sweep(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    jobs: usize,
) -> Vec<RateSweepCell> {
    run_rate_sweep_queued(
        base,
        traces,
        point,
        rates,
        mechanisms,
        &QueueSetup::single(),
        jobs,
    )
}

/// [`run_rate_sweep`] under a multi-queue host front end.
///
/// Each cell stripes the trace over `setup.queues` open-loop queues, all
/// rate-scaled by the swept multiplier. The window defaults to unbounded
/// (arrivals admit at their timestamps); set [`QueueSetup::window`] to make
/// past-saturation arrivals park in their submission queues, where RR/WRR
/// arbitration splits the queueing delay between the queues. With
/// [`QueueSetup::single`] this is exactly [`run_rate_sweep`]. Output is
/// bit-identical for any `jobs` value.
pub fn run_rate_sweep_queued(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
) -> Vec<RateSweepCell> {
    let bank = preconditioned_bank(base, traces);
    rate_sweep_with_bank(
        base,
        traces,
        point,
        rates,
        mechanisms,
        setup,
        jobs,
        Engine::Legacy,
        &bank,
    )
}

/// [`run_rate_sweep_queued`] with the per-cell engine selectable via
/// `shards` (see [`run_matrix_sharded`]).
#[allow(clippy::too_many_arguments)]
pub fn run_rate_sweep_sharded(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
) -> Vec<RateSweepCell> {
    let bank = preconditioned_bank(base, traces);
    rate_sweep_with_bank(
        base,
        traces,
        point,
        rates,
        mechanisms,
        setup,
        jobs,
        Engine::select(shards, jobs),
        &bank,
    )
}

/// [`run_rate_sweep_sharded`] warm-started from an externally supplied
/// image bank.
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint or an image was captured under different model inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_rate_sweep_sharded_from(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    bank: &ImageBank,
) -> Result<Vec<RateSweepCell>, ConfigError> {
    validate_bank(bank, base, traces)?;
    Ok(rate_sweep_with_bank(
        base,
        traces,
        point,
        rates,
        mechanisms,
        setup,
        jobs,
        Engine::select(shards, jobs),
        bank,
    ))
}

/// [`run_rate_sweep_queued`] warm-started from an externally supplied image
/// bank (`repro sweep-rate --from-image`), bit-identical to the cold-start
/// sweep.
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint or an image was captured under different model inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_rate_sweep_queued_from(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    bank: &ImageBank,
) -> Result<Vec<RateSweepCell>, ConfigError> {
    validate_bank(bank, base, traces)?;
    Ok(rate_sweep_with_bank(
        base,
        traces,
        point,
        rates,
        mechanisms,
        setup,
        jobs,
        Engine::Legacy,
        bank,
    ))
}

/// [`run_rate_sweep_sharded`]'s array sibling: each cell routes its
/// rate-scaled open-loop trace across `array.devices` replica devices and
/// reports the array-merged distributions plus per-device tails.
/// `array.devices ≤ 1` delegates bit-identically to
/// [`run_rate_sweep_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn run_rate_sweep_array(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    array: ArraySetup,
) -> Vec<RateSweepCell> {
    if !array.is_array() {
        return run_rate_sweep_sharded(base, traces, point, rates, mechanisms, setup, jobs, shards);
    }
    let bank = preconditioned_bank(base, traces);
    rate_sweep_array_with_bank(
        base, traces, point, rates, mechanisms, setup, jobs, shards, array, &bank,
    )
    .expect("the preconditioned bank covers every footprint")
}

/// [`run_rate_sweep_array`] warm-started from an externally supplied image
/// bank. `array.devices ≤ 1` delegates bit-identically to
/// [`run_rate_sweep_sharded_from`].
///
/// # Errors
///
/// Returns a typed error when the bank lacks an image for some trace
/// footprint, an image was captured under different model inputs, or the
/// fork cannot cover the device count.
#[allow(clippy::too_many_arguments)]
pub fn run_rate_sweep_array_from(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    array: ArraySetup,
    bank: &ImageBank,
) -> Result<Vec<RateSweepCell>, ConfigError> {
    if !array.is_array() {
        return run_rate_sweep_sharded_from(
            base, traces, point, rates, mechanisms, setup, jobs, shards, bank,
        );
    }
    validate_bank(bank, base, traces)?;
    rate_sweep_array_with_bank(
        base, traces, point, rates, mechanisms, setup, jobs, shards, array, bank,
    )
}

/// The shared array-rate-sweep core (`array.devices ≥ 2`).
#[allow(clippy::too_many_arguments)]
fn rate_sweep_array_with_bank(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    shards: u32,
    array: ArraySetup,
    bank: &ImageBank,
) -> Result<Vec<RateSweepCell>, ConfigError> {
    let devices = array.devices;
    let rpt = ReadTimingParamTable::default();
    let cfgs = CellConfigs::new(base, point, mechanisms);
    let engine = Engine::select(shards, jobs.max(1).saturating_mul(devices as usize));
    let device_workers = worker_budget(devices, jobs.max(1));
    let routed: Vec<RoutedTrace> = traces.iter().map(|t| route_for_array(t, &array)).collect();
    let mut forks: Vec<Vec<&DeviceImage>> = Vec::with_capacity(traces.len());
    for t in traces {
        forks.push(bank.fork_for_array(t.footprint_pages, devices)?);
    }
    let groups: Vec<(usize, f64, Mechanism)> = (0..traces.len())
        .flat_map(|ti| {
            rates
                .iter()
                .flat_map(move |&rate| mechanisms.iter().map(move |&m| (ti, rate, m)))
        })
        .collect();
    Ok(parallel_ordered(
        &groups,
        jobs,
        || DeviceSet::new(devices).expect("array setups have at least one device"),
        |set, &(ti, rate, m)| {
            let trace = &traces[ti];
            let front = setup.front(ReplayMode::open_loop_rate(rate), None);
            let report = run_one_prepared_routed(
                set,
                engine,
                device_workers,
                cfgs.get(m),
                m,
                trace.footprint_pages,
                &routed[ti],
                &rpt,
                &front,
                Some(forks[ti].as_slice()),
            );
            RateSweepCell {
                workload: trace.name.clone(),
                mechanism: m.name().to_string(),
                rate,
                point,
                reads: report.read_latency,
                writes: report.write_latency,
                retried_reads: report.retried_read_latency,
                avg_response_us: report.avg_response_us(),
                kiops: report.kiops(),
                events: report.events_processed,
                queues: setup.queues,
                per_queue_reads: Vec::new(),
                per_queue_gc: Vec::new(),
                array: Some(ArrayCellStats::from_report(&report, array.placement)),
            }
        },
    ))
}

#[allow(clippy::too_many_arguments)]
fn rate_sweep_with_bank(
    base: &SsdConfig,
    traces: &[Trace],
    point: OperatingPoint,
    rates: &[f64],
    mechanisms: &[Mechanism],
    setup: &QueueSetup,
    jobs: usize,
    engine: Engine,
    bank: &ImageBank,
) -> Vec<RateSweepCell> {
    let rpt = ReadTimingParamTable::default();
    let cfgs = CellConfigs::new(base, point, mechanisms);
    let groups: Vec<(&Trace, f64, Mechanism)> = traces
        .iter()
        .flat_map(|t| {
            rates
                .iter()
                .flat_map(move |&rate| mechanisms.iter().map(move |&m| (t, rate, m)))
        })
        .collect();
    parallel_ordered(&groups, jobs, Arenas::new, |arenas, &(trace, rate, m)| {
        let front = setup.front(ReplayMode::open_loop_rate(rate), None);
        let image = bank.get(trace.footprint_pages);
        let report =
            run_one_prepared_engine(arenas, engine, cfgs.get(m), m, trace, &rpt, &front, image);
        RateSweepCell {
            workload: trace.name.clone(),
            mechanism: m.name().to_string(),
            rate,
            point,
            reads: report.read_latency,
            writes: report.write_latency,
            retried_reads: report.retried_read_latency,
            avg_response_us: report.avg_response_us(),
            kiops: report.kiops(),
            events: report.events_processed,
            queues: setup.queues,
            per_queue_reads: report.per_queue.iter().map(|q| q.reads).collect(),
            per_queue_gc: report.per_queue.iter().map(|q| q.gc).collect(),
            array: None,
        }
    })
}

/// Aggregate reduction statistics the paper quotes in prose
/// ("PnAR2 reduces SSD response time by up to X % (Y % on average)").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionSummary {
    /// Mean reduction vs. the reference, as a fraction (0.29 = 29 %).
    pub mean: f64,
    /// Maximum reduction vs. the reference.
    pub max: f64,
}

/// Summarizes the response-time reduction of `mechanism` relative to
/// `reference` over matching (workload, point) cells, optionally restricted
/// to read-dominant workloads.
pub fn reduction_vs(
    cells: &[MatrixCell],
    mechanism: &str,
    reference: &str,
    read_dominant_only: bool,
) -> ReductionSummary {
    let mut reductions = Vec::new();
    for c in cells.iter().filter(|c| c.mechanism == mechanism) {
        if read_dominant_only && !c.read_dominant {
            continue;
        }
        let reference_cell = cells.iter().find(|r| {
            r.mechanism == reference
                && r.workload == c.workload
                && r.point.pec == c.point.pec
                && r.point.retention_months == c.point.retention_months
        });
        if let Some(r) = reference_cell {
            if r.avg_response_us > 0.0 {
                reductions.push(1.0 - c.avg_response_us / r.avg_response_us);
            }
        }
    }
    if reductions.is_empty() {
        return ReductionSummary {
            mean: 0.0,
            max: 0.0,
        };
    }
    ReductionSummary {
        mean: reductions.iter().sum::<f64>() / reductions.len() as f64,
        max: reductions.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sim::request::{HostRequest, IoOp};
    use rr_util::time::SimTime;

    fn tiny_trace(name: &str, reads: usize) -> Trace {
        let requests = (0..reads)
            .map(|i| {
                HostRequest::new(
                    SimTime::from_us(400 * i as u64),
                    IoOp::Read,
                    (i as u64 * 37) % 5_000,
                    1,
                )
            })
            .collect();
        Trace::new(name, requests, 8_000)
    }

    #[test]
    fn mechanism_names_and_sets() {
        assert_eq!(Mechanism::FIG14.len(), 5);
        assert_eq!(Mechanism::FIG15.len(), 4);
        assert_eq!(Mechanism::PsoPnAr2.name(), "PSO+PnAR2");
        assert!(Mechanism::NoRR.is_ideal());
        assert!(!Mechanism::PnAr2.is_ideal());
    }

    #[test]
    fn fig14_ordering_holds_on_a_small_matrix() {
        // The fundamental shape of Fig. 14: NoRR ≤ PnAR2 ≤ {PR2, AR2} ≤
        // Baseline under aged conditions.
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![(tiny_trace("t", 150), true)];
        let points = [OperatingPoint::new(2000.0, 12.0)];
        let cells = run_matrix(&base, &traces, &points, &Mechanism::FIG14);
        let norm = |m: &str| {
            cells
                .iter()
                .find(|c| c.mechanism == m)
                .expect("cell present")
                .normalized
        };
        assert_eq!(norm("Baseline"), 1.0);
        assert!(norm("PR2") < 1.0, "PR2 = {}", norm("PR2"));
        assert!(norm("AR2") < 1.0, "AR2 = {}", norm("AR2"));
        assert!(norm("PnAR2") < norm("PR2"));
        assert!(norm("PnAR2") < norm("AR2"));
        assert!(norm("NoRR") < norm("PnAR2"));
    }

    #[test]
    fn pso_reduces_retry_steps_but_keeps_a_floor() {
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![(tiny_trace("t", 200), true)];
        let points = [OperatingPoint::new(2000.0, 12.0)];
        let cells = run_matrix(
            &base,
            &traces,
            &points,
            &[Mechanism::Baseline, Mechanism::Pso],
        );
        let base_steps = cells
            .iter()
            .find(|c| c.mechanism == "Baseline")
            .unwrap()
            .avg_retry_steps;
        let pso_steps = cells
            .iter()
            .find(|c| c.mechanism == "PSO")
            .unwrap()
            .avg_retry_steps;
        // ~70 % fewer steps (§3.1), but never below the ~3-step guard.
        assert!(
            pso_steps < 0.55 * base_steps,
            "PSO {pso_steps} vs baseline {base_steps}"
        );
        assert!(
            pso_steps >= 3.0,
            "PSO keeps at least three steps, got {pso_steps}"
        );
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_serial() {
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![
            (tiny_trace("a", 80), true),
            (tiny_trace("b", 60), false),
            (tiny_trace("c", 40), true),
        ];
        let points = [
            OperatingPoint::new(1000.0, 6.0),
            OperatingPoint::new(2000.0, 12.0),
        ];
        let serial = run_matrix(&base, &traces, &points, &Mechanism::FIG14);
        for jobs in [2, 4, 16] {
            let parallel = run_matrix_parallel(&base, &traces, &points, &Mechanism::FIG14, jobs);
            assert_eq!(serial, parallel, "jobs = {jobs} diverged from serial");
        }
    }

    #[test]
    fn parallel_matrix_degenerate_inputs() {
        let base = SsdConfig::scaled_for_tests();
        // More jobs than groups, and the jobs=1 serial fallback.
        let traces = vec![(tiny_trace("only", 30), true)];
        let points = [OperatingPoint::new(2000.0, 6.0)];
        let serial = run_matrix(&base, &traces, &points, &[Mechanism::PnAr2]);
        assert_eq!(
            serial,
            run_matrix_parallel(&base, &traces, &points, &[Mechanism::PnAr2], 8)
        );
        assert_eq!(
            serial,
            run_matrix_parallel(&base, &traces, &points, &[Mechanism::PnAr2], 1)
        );
        // Empty work lists must not hang or panic.
        assert!(run_matrix_parallel(&base, &[], &points, &Mechanism::FIG14, 4).is_empty());
        assert!(run_matrix_parallel(&base, &traces, &[], &Mechanism::FIG14, 4).is_empty());
    }

    #[test]
    fn reduction_summary_math() {
        let cells = vec![
            MatrixCell {
                workload: "w".into(),
                read_dominant: true,
                point: OperatingPoint::new(1000.0, 6.0),
                mechanism: "Baseline".into(),
                avg_response_us: 100.0,
                normalized: 1.0,
                avg_retry_steps: 10.0,
                read_latency: LatencySummary::default(),
                events: 0,
                array: None,
            },
            MatrixCell {
                workload: "w".into(),
                read_dominant: true,
                point: OperatingPoint::new(1000.0, 6.0),
                mechanism: "PnAR2".into(),
                avg_response_us: 70.0,
                normalized: 0.7,
                avg_retry_steps: 10.0,
                read_latency: LatencySummary::default(),
                events: 0,
                array: None,
            },
        ];
        let s = reduction_vs(&cells, "PnAR2", "Baseline", true);
        assert!((s.mean - 0.3).abs() < 1e-12);
        assert!((s.max - 0.3).abs() < 1e-12);
    }

    #[test]
    fn matrix_cells_carry_read_tails() {
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![(tiny_trace("t", 120), true)];
        let points = [OperatingPoint::new(2000.0, 12.0)];
        let cells = run_matrix(&base, &traces, &points, &[Mechanism::Baseline]);
        let c = &cells[0];
        assert_eq!(c.read_latency.count, 120);
        let p50 = c.read_latency.p50.expect("reads happened");
        let p99 = c.read_latency.p99.expect("reads happened");
        let p999 = c.read_latency.p999.expect("reads happened");
        assert!(p50 <= p99 && p99 <= p999, "{p50} / {p99} / {p999}");
    }

    #[test]
    fn qd_sweep_is_bit_identical_across_jobs() {
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![tiny_trace("a", 60), tiny_trace("b", 40)];
        let point = OperatingPoint::new(2000.0, 6.0);
        let qds = [1, 4];
        let serial = run_qd_sweep(&base, &traces, point, &qds, &[Mechanism::Baseline], 1);
        assert_eq!(serial.len(), 4);
        for jobs in [2, 8] {
            let parallel = run_qd_sweep(&base, &traces, point, &qds, &[Mechanism::Baseline], jobs);
            assert_eq!(serial, parallel, "jobs = {jobs} diverged");
        }
        // Cells arrive in (trace × qd) input order.
        assert_eq!(serial[0].workload, "a");
        assert_eq!(serial[0].queue_depth, 1);
        assert_eq!(serial[1].queue_depth, 4);
        assert_eq!(serial[2].workload, "b");
        // Every cell of this read-only workload reports a real read tail.
        assert!(serial.iter().all(|c| c.reads.p99.is_some()));
        assert!(serial.iter().all(|c| c.writes.p99.is_none()));
    }

    #[test]
    fn queued_sweeps_with_single_setup_match_the_plain_runners() {
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![tiny_trace("a", 50)];
        let point = OperatingPoint::new(2000.0, 6.0);
        let plain_qd = run_qd_sweep(&base, &traces, point, &[1, 8], &[Mechanism::Baseline], 1);
        let queued_qd = run_qd_sweep_queued(
            &base,
            &traces,
            point,
            &[1, 8],
            &[Mechanism::Baseline],
            &QueueSetup::single(),
            1,
        );
        assert_eq!(plain_qd, queued_qd);
        // Single-queue cells still carry their (one) per-queue distribution,
        // and it matches the aggregate read class.
        assert_eq!(plain_qd[0].queues, 1);
        assert_eq!(plain_qd[0].per_queue_reads, vec![plain_qd[0].reads]);
        let plain_rate = run_rate_sweep(&base, &traces, point, &[2.0], &[Mechanism::Baseline], 1);
        let queued_rate = run_rate_sweep_queued(
            &base,
            &traces,
            point,
            &[2.0],
            &[Mechanism::Baseline],
            &QueueSetup::single(),
            1,
        );
        assert_eq!(plain_rate, queued_rate);
    }

    #[test]
    fn multi_queue_sweeps_are_bit_identical_across_jobs() {
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![tiny_trace("a", 60), tiny_trace("b", 40)];
        let point = OperatingPoint::new(2000.0, 6.0);
        let setup = QueueSetup::multi(2, ArbPolicy::WeightedRoundRobin);
        assert_eq!(setup.resolved_weights(), vec![2, 1]);
        let serial = run_qd_sweep_queued(
            &base,
            &traces,
            point,
            &[4, 16],
            &[Mechanism::Baseline],
            &setup,
            1,
        );
        for jobs in [2, 8] {
            let parallel = run_qd_sweep_queued(
                &base,
                &traces,
                point,
                &[4, 16],
                &[Mechanism::Baseline],
                &setup,
                jobs,
            );
            assert_eq!(serial, parallel, "jobs = {jobs} diverged");
        }
        // Every cell carries one read distribution per queue, covering the
        // whole trace between them.
        for c in &serial {
            assert_eq!(c.queues, 2);
            assert_eq!(c.per_queue_reads.len(), 2);
            let per_queue: u64 = c.per_queue_reads.iter().map(|q| q.count).sum();
            assert_eq!(per_queue, c.reads.count);
        }
        let rate_serial = run_rate_sweep_queued(
            &base,
            &traces,
            point,
            &[1.0, 4.0],
            &[Mechanism::Baseline],
            &setup,
            1,
        );
        let rate_parallel = run_rate_sweep_queued(
            &base,
            &traces,
            point,
            &[1.0, 4.0],
            &[Mechanism::Baseline],
            &setup,
            4,
        );
        assert_eq!(rate_serial, rate_parallel);
    }

    #[test]
    fn rate_sweep_is_bit_identical_and_rate_one_matches_open_loop() {
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![tiny_trace("a", 60)];
        let point = OperatingPoint::new(2000.0, 6.0);
        let rates = [0.5, 1.0, 4.0];
        let serial = run_rate_sweep(&base, &traces, point, &rates, &[Mechanism::Baseline], 1);
        assert_eq!(serial.len(), 3);
        for jobs in [2, 8] {
            let parallel =
                run_rate_sweep(&base, &traces, point, &rates, &[Mechanism::Baseline], jobs);
            assert_eq!(serial, parallel, "jobs = {jobs} diverged");
        }
        // Rate 1.0 must be exactly the plain open-loop replay.
        let rpt = ReadTimingParamTable::default();
        let open = run_one(&base, Mechanism::Baseline, point, &traces[0], &rpt);
        assert_eq!(serial[1].reads, open.read_latency);
        assert!((serial[1].avg_response_us - open.avg_response_us()).abs() < 1e-12);
        // Offered load can only hurt (or leave) latency: the rate-4 replay's
        // mean response is at least the rate-0.5 replay's.
        assert!(serial[2].avg_response_us >= serial[0].avg_response_us - 1e-9);
    }

    #[test]
    fn sharded_runners_are_invariant_to_shards_and_jobs() {
        // The engine contract behind `--shards N ≡ --shards 1`: the sharded
        // runners' output is a pure function of the workload — never of the
        // shard count or the cell-level job count (which only split host
        // parallelism differently).
        let base = SsdConfig::scaled_for_tests();
        let traces = vec![tiny_trace("a", 60), tiny_trace("b", 40)];
        let pairs: Vec<(Trace, bool)> = traces.iter().map(|t| (t.clone(), true)).collect();
        let points = [OperatingPoint::new(2000.0, 6.0)];
        let point = points[0];
        let setup = QueueSetup::multi(2, ArbPolicy::WeightedRoundRobin);
        let m = [Mechanism::Baseline, Mechanism::PnAr2];
        let matrix_one = run_matrix_sharded(&base, &pairs, &points, &m, 1, 1);
        let qd_one = run_qd_sweep_sharded(&base, &traces, point, &[4], &m, &setup, 1, 1);
        let rate_one = run_rate_sweep_sharded(&base, &traces, point, &[2.0], &m, &setup, 1, 1);
        for (jobs, shards) in [(1, 2), (2, 4), (2, 1)] {
            assert_eq!(
                matrix_one,
                run_matrix_sharded(&base, &pairs, &points, &m, jobs, shards),
                "matrix diverged at jobs={jobs} shards={shards}"
            );
            assert_eq!(
                qd_one,
                run_qd_sweep_sharded(&base, &traces, point, &[4], &m, &setup, jobs, shards),
                "qd sweep diverged at jobs={jobs} shards={shards}"
            );
            assert_eq!(
                rate_one,
                run_rate_sweep_sharded(&base, &traces, point, &[2.0], &m, &setup, jobs, shards),
                "rate sweep diverged at jobs={jobs} shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_serve_unit_matches_the_sharded_sweep_cell() {
        // The serve fix rides the same engine: one warm-started sharded
        // query answers exactly what the sharded sweep reports for the cell.
        let base = SsdConfig::scaled_for_tests();
        let trace = tiny_trace("q", 50);
        let point = OperatingPoint::new(2000.0, 6.0);
        let setup = QueueSetup::single();
        let rpt = ReadTimingParamTable::default();
        let bank = ImageBank::preconditioned(&base, [trace.footprint_pages]).expect("valid config");
        let cells = run_qd_sweep_sharded_from(
            &base,
            std::slice::from_ref(&trace),
            point,
            &[8],
            &[Mechanism::PnAr2],
            &setup,
            1,
            2,
            &bank,
        )
        .expect("bank covers the sweep");
        let mut arena = ShardArena::new();
        let report = run_one_queued_sharded_from(
            &mut arena,
            &base,
            Mechanism::PnAr2,
            point,
            &trace,
            &rpt,
            &setup,
            8,
            bank.get(trace.footprint_pages),
            2,
        );
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].reads, report.read_latency);
        assert_eq!(cells[0].avg_response_us, report.avg_response_us());
        assert_eq!(cells[0].events, report.events_processed);
    }

    #[test]
    fn evaluation_grid_covers_prose_conditions() {
        let grid = OperatingPoint::evaluation_grid();
        assert!(grid
            .iter()
            .any(|p| p.pec == 2000.0 && p.retention_months == 6.0));
        assert!(grid
            .iter()
            .any(|p| p.pec == 2000.0 && p.retention_months == 12.0));
    }
}
