//! PnAR² — Pipelined **and** Adaptive Read-Retry (paper §7.2, Fig. 13).
//!
//! The combination the paper evaluates as its headline configuration: after
//! the initial read fails, install the RPT-reduced tPRE (`SET FEATURE`),
//! then run the retry steps back-to-back with `CACHE READ` pipelining; on
//! success, `RESET` the speculative extra step and roll the timing back:
//!
//! ```text
//! tRETRY = tSET + ρ · N_RR · tR + tDMA + tECC      (Eq. 5)
//! ```
//!
//! Following Fig. 13, the speculation starts *after* the timing switch (the
//! first retry step is not speculatively issued under default timing, so the
//! whole retry burst runs at the reduced tR).

use crate::rpt::ReadTimingParamTable;
use rr_sim::readflow::{Actions, ReadAction, ReadContext, RetryController, TxnTable};
use rr_sim::request::TxnId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Initial,
    AwaitReduce,
    Pipelined,
    AwaitFallbackRestore,
    FallbackPipelined,
}

#[derive(Debug, Clone, Copy)]
struct PnAr2State {
    phase: Phase,
    /// The step currently being (speculatively) sensed.
    sensing: Option<u32>,
}

/// The PnAR² controller (PR² + AR²).
#[derive(Debug)]
pub struct PnAr2Controller {
    rpt: ReadTimingParamTable,
    states: TxnTable<PnAr2State>,
}

impl PnAr2Controller {
    /// Creates the controller around a profiled RPT.
    pub fn new(rpt: ReadTimingParamTable) -> Self {
        Self {
            rpt,
            states: TxnTable::new(),
        }
    }

    fn state(&mut self, txn: TxnId) -> &mut PnAr2State {
        self.states
            .get_mut(txn)
            .expect("event for an unknown PnAR2 read")
    }
}

impl RetryController for PnAr2Controller {
    fn on_start(&mut self, ctx: &ReadContext) -> Actions {
        self.states.insert(
            ctx.txn,
            PnAr2State {
                phase: Phase::Initial,
                sensing: Some(0),
            },
        );
        Actions::one(ReadAction::Sense { step: 0 })
    }

    fn on_sense_done(&mut self, ctx: &ReadContext, step: u32) -> Actions {
        let max_step = ctx.max_step;
        let s = self.state(ctx.txn);
        s.sensing = None;
        match s.phase {
            // Initial read: transfer only; speculation begins after the
            // timing switch (Fig. 13).
            Phase::Initial => Actions::one(ReadAction::Transfer { step }),
            Phase::Pipelined | Phase::FallbackPipelined => {
                let mut actions = Actions::one(ReadAction::Transfer { step });
                if step < max_step {
                    s.sensing = Some(step + 1);
                    actions.push(ReadAction::Sense { step: step + 1 });
                }
                actions
            }
            Phase::AwaitReduce | Phase::AwaitFallbackRestore => {
                unreachable!("no sensing can complete while SET FEATURE is in flight")
            }
        }
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        _margin: u32,
    ) -> Actions {
        let s = *self.state(ctx.txn);
        if success {
            let mut actions = Actions::new();
            if s.sensing.is_some() {
                actions.push(ReadAction::Reset);
            }
            actions.push(ReadAction::CompleteSuccess { step });
            if s.phase == Phase::Pipelined {
                // ④ roll back the reduced timing (queued after the RESET).
                actions.push(ReadAction::SetFeature { phases: None });
            }
            return actions;
        }
        match s.phase {
            Phase::Initial => {
                let reduced = self.rpt.reduced_phases(ctx.condition);
                self.state(ctx.txn).phase = Phase::AwaitReduce;
                Actions::one(ReadAction::SetFeature {
                    phases: Some(reduced),
                })
            }
            Phase::Pipelined => {
                if step == ctx.max_step && s.sensing.is_none() {
                    // Outlier fallback (§6.2): restore and re-walk once.
                    self.state(ctx.txn).phase = Phase::AwaitFallbackRestore;
                    Actions::one(ReadAction::SetFeature { phases: None })
                } else {
                    Actions::new() // pipeline already sensing ahead
                }
            }
            Phase::FallbackPipelined => {
                if step == ctx.max_step && s.sensing.is_none() {
                    Actions::one(ReadAction::CompleteFailure)
                } else {
                    Actions::new()
                }
            }
            Phase::AwaitReduce | Phase::AwaitFallbackRestore => {
                unreachable!("no decode can complete while SET FEATURE is in flight")
            }
        }
    }

    fn on_feature_applied(&mut self, ctx: &ReadContext) -> Actions {
        let s = self.state(ctx.txn);
        match s.phase {
            Phase::AwaitReduce => {
                s.phase = Phase::Pipelined;
                s.sensing = Some(1);
                Actions::one(ReadAction::Sense { step: 1 })
            }
            Phase::AwaitFallbackRestore => {
                s.phase = Phase::FallbackPipelined;
                s.sensing = Some(1);
                Actions::one(ReadAction::Sense { step: 1 })
            }
            _ => unreachable!("unexpected SET FEATURE completion"),
        }
    }

    fn on_reset_done(&mut self, _ctx: &ReadContext) -> Actions {
        Actions::new()
    }

    fn on_end(&mut self, ctx: &ReadContext, _successful_step: Option<u32>) {
        self.states.remove(ctx.txn);
    }

    fn name(&self) -> &str {
        "PnAR2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_flash::calibration::OperatingCondition;

    fn controller() -> PnAr2Controller {
        PnAr2Controller::new(ReadTimingParamTable::default())
    }

    fn ctx(max_step: u32) -> ReadContext {
        ReadContext {
            txn: TxnId(9),
            die: 2,
            condition: OperatingCondition::new(1000.0, 6.0, 30.0),
            cold: true,
            max_step,
        }
    }

    #[test]
    fn fig13_flow_reduce_then_pipeline_then_reset_and_restore() {
        let mut c = controller();
        let x = ctx(40);
        c.on_start(&x);
        // Initial read: no speculation before the timing switch.
        assert_eq!(
            c.on_sense_done(&x, 0).to_vec(),
            vec![ReadAction::Transfer { step: 0 }]
        );
        // ECC fail → ② SET FEATURE (reduced).
        let acts = c.on_decode_done(&x, 0, false, 0).to_vec();
        assert!(matches!(
            acts[0],
            ReadAction::SetFeature { phases: Some(_) }
        ));
        // ③ pipelined retries at reduced tR.
        assert_eq!(
            c.on_feature_applied(&x).to_vec(),
            vec![ReadAction::Sense { step: 1 }]
        );
        assert_eq!(
            c.on_sense_done(&x, 1).to_vec(),
            vec![
                ReadAction::Transfer { step: 1 },
                ReadAction::Sense { step: 2 }
            ]
        );
        assert_eq!(c.on_decode_done(&x, 1, false, 0).to_vec(), vec![]);
        // Success while step 2 is being sensed: RESET + complete + ④ restore.
        assert_eq!(
            c.on_sense_done(&x, 2).to_vec(),
            vec![
                ReadAction::Transfer { step: 2 },
                ReadAction::Sense { step: 3 },
            ]
        );
        assert_eq!(
            c.on_decode_done(&x, 2, true, 25).to_vec(),
            vec![
                ReadAction::Reset,
                ReadAction::CompleteSuccess { step: 2 },
                ReadAction::SetFeature { phases: None },
            ]
        );
    }

    #[test]
    fn initial_success_completes_without_feature_traffic() {
        let mut c = controller();
        let x = ctx(40);
        c.on_start(&x);
        c.on_sense_done(&x, 0);
        assert_eq!(
            c.on_decode_done(&x, 0, true, 64).to_vec(),
            vec![ReadAction::CompleteSuccess { step: 0 }]
        );
    }

    #[test]
    fn outlier_fallback_re_walks_with_default_timing() {
        let mut c = controller();
        let x = ctx(2);
        c.on_start(&x);
        c.on_sense_done(&x, 0);
        c.on_decode_done(&x, 0, false, 0);
        c.on_feature_applied(&x);
        c.on_sense_done(&x, 1);
        assert_eq!(c.on_decode_done(&x, 1, false, 0).to_vec(), vec![]);
        // Last entry sensed, decode fails with nothing in flight: restore.
        assert_eq!(
            c.on_sense_done(&x, 2).to_vec(),
            vec![ReadAction::Transfer { step: 2 }]
        );
        assert_eq!(
            c.on_decode_done(&x, 2, false, 0).to_vec(),
            vec![ReadAction::SetFeature { phases: None }]
        );
        // Fallback pipeline at default timing.
        assert_eq!(
            c.on_feature_applied(&x).to_vec(),
            vec![ReadAction::Sense { step: 1 }]
        );
        c.on_sense_done(&x, 1);
        c.on_sense_done(&x, 2);
        // Second exhaustion is a read failure; no restore needed (already
        // at default timing).
        assert_eq!(c.on_decode_done(&x, 1, false, 0).to_vec(), vec![]);
        assert_eq!(
            c.on_decode_done(&x, 2, false, 0).to_vec(),
            vec![ReadAction::CompleteFailure]
        );
    }
}
