//! The read-retry mechanisms of the paper, as [`RetryController`]
//! implementations over the `rr-sim` engine:
//!
//! * [`Pr2Controller`] — Pipelined Read-Retry (§6.1);
//! * [`Ar2Controller`] — Adaptive Read-Retry (§6.2);
//! * [`PnAr2Controller`] — both combined (the paper's headline config);
//! * the regular baseline lives in `rr_sim::readflow::BaselineController`,
//!   and the ideal `NoRR` upper bound is the baseline on an
//!   `SsdConfig::ideal()` configuration;
//! * the PSO state-of-the-art comparison point wraps any of these — see
//!   [`crate::pso`].
//!
//! [`RetryController`]: rr_sim::readflow::RetryController

mod ar2;
mod pnar2;
mod pr2;

pub use ar2::Ar2Controller;
pub use pnar2::PnAr2Controller;
pub use pr2::Pr2Controller;
