//! PR² — Pipelined Read-Retry (paper §6.1, Fig. 12(b)).
//!
//! PR² starts the next retry step *right after the chip completes page
//! sensing of the current step*, using `CACHE READ`, without waiting for the
//! current step's data transfer and ECC decode. This removes
//! `tDMA + tECC` from the critical path of every retry step:
//!
//! ```text
//! tRETRY = N_RR · tR + tDMA + tECC        (Eq. 4)
//! ```
//!
//! versus the baseline's `N_RR · (tR + tDMA + tECC)` (Eq. 3). Because each
//! next step starts speculatively, one extra step is in flight when ECC
//! finally succeeds; PR² kills it with `RESET` (tRST = 5 µs).

use rr_sim::readflow::{Actions, ReadAction, ReadContext, RetryController, TxnTable};
use rr_sim::request::TxnId;

#[derive(Debug, Clone, Copy)]
struct Pr2State {
    /// The step currently being sensed (speculatively), if any.
    sensing: Option<u32>,
}

/// The PR² controller.
#[derive(Debug, Default)]
pub struct Pr2Controller {
    states: TxnTable<Pr2State>,
}

impl Pr2Controller {
    /// Creates the controller.
    pub fn new() -> Self {
        Self::default()
    }

    fn state(&mut self, txn: TxnId) -> &mut Pr2State {
        self.states
            .get_mut(txn)
            .expect("event for an unknown PR2 read")
    }
}

impl RetryController for Pr2Controller {
    fn on_start(&mut self, ctx: &ReadContext) -> Actions {
        self.states.insert(ctx.txn, Pr2State { sensing: Some(0) });
        Actions::one(ReadAction::Sense { step: 0 })
    }

    fn on_sense_done(&mut self, ctx: &ReadContext, step: u32) -> Actions {
        let max_step = ctx.max_step;
        let s = self.state(ctx.txn);
        s.sensing = None;
        let mut actions = Actions::one(ReadAction::Transfer { step });
        if step < max_step {
            // Speculatively sense the next entry while this one transfers
            // and decodes (the CACHE READ pipelining of Fig. 12(b)).
            s.sensing = Some(step + 1);
            actions.push(ReadAction::Sense { step: step + 1 });
        }
        actions
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        _margin: u32,
    ) -> Actions {
        let speculating = self.state(ctx.txn).sensing.is_some();
        if success {
            if speculating {
                // Kill the unnecessarily-started extra step (§6.1).
                Actions::pair(ReadAction::Reset, ReadAction::CompleteSuccess { step })
            } else {
                Actions::one(ReadAction::CompleteSuccess { step })
            }
        } else if !speculating && step == ctx.max_step {
            Actions::one(ReadAction::CompleteFailure)
        } else {
            // The pipeline is already sensing ahead; nothing to do on failure.
            Actions::new()
        }
    }

    fn on_feature_applied(&mut self, _ctx: &ReadContext) -> Actions {
        unreachable!("PR2 never issues SET FEATURE")
    }

    fn on_reset_done(&mut self, _ctx: &ReadContext) -> Actions {
        Actions::new()
    }

    fn on_end(&mut self, ctx: &ReadContext, _successful_step: Option<u32>) {
        self.states.remove(ctx.txn);
    }

    fn name(&self) -> &str {
        "PR2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_flash::calibration::OperatingCondition;

    fn ctx(max_step: u32) -> ReadContext {
        ReadContext {
            txn: TxnId(7),
            die: 1,
            condition: OperatingCondition::new(1000.0, 6.0, 30.0),
            cold: true,
            max_step,
        }
    }

    #[test]
    fn pipelines_next_sense_at_sense_done() {
        let mut c = Pr2Controller::new();
        let x = ctx(40);
        assert_eq!(c.on_start(&x).to_vec(), vec![ReadAction::Sense { step: 0 }]);
        // Sensing of step 0 completes: transfer it AND start step 1 at once.
        assert_eq!(
            c.on_sense_done(&x, 0).to_vec(),
            vec![
                ReadAction::Transfer { step: 0 },
                ReadAction::Sense { step: 1 }
            ]
        );
        // Decode failure needs no action: step 1 already runs.
        assert_eq!(c.on_decode_done(&x, 0, false, 0).to_vec(), vec![]);
    }

    #[test]
    fn success_resets_speculative_step() {
        let mut c = Pr2Controller::new();
        let x = ctx(40);
        c.on_start(&x);
        c.on_sense_done(&x, 0);
        c.on_sense_done(&x, 1); // step 2 speculation starts
        assert_eq!(c.on_decode_done(&x, 0, false, 0).to_vec(), vec![]);
        // Step 1 decodes successfully while step 2 is sensing: RESET it.
        assert_eq!(
            c.on_decode_done(&x, 1, true, 20).to_vec(),
            vec![ReadAction::Reset, ReadAction::CompleteSuccess { step: 1 }]
        );
        assert_eq!(c.on_reset_done(&x).to_vec(), vec![]);
        c.on_end(&x, Some(1));
    }

    #[test]
    fn no_speculation_past_table_end() {
        let mut c = Pr2Controller::new();
        let x = ctx(2);
        c.on_start(&x);
        c.on_sense_done(&x, 0);
        c.on_sense_done(&x, 1);
        // Last entry: transfer only, no further speculation.
        assert_eq!(
            c.on_sense_done(&x, 2).to_vec(),
            vec![ReadAction::Transfer { step: 2 }]
        );
        // Success with no speculation in flight: no RESET needed.
        assert_eq!(
            c.on_decode_done(&x, 2, true, 5).to_vec(),
            vec![ReadAction::CompleteSuccess { step: 2 }]
        );
    }

    #[test]
    fn exhaustion_fails_without_speculation() {
        let mut c = Pr2Controller::new();
        let x = ctx(1);
        c.on_start(&x);
        c.on_sense_done(&x, 0);
        c.on_sense_done(&x, 1);
        assert_eq!(c.on_decode_done(&x, 0, false, 0).to_vec(), vec![]);
        assert_eq!(
            c.on_decode_done(&x, 1, false, 0).to_vec(),
            vec![ReadAction::CompleteFailure]
        );
    }
}
