//! AR² — Adaptive Read-Retry (paper §6.2, Fig. 13, without pipelining).
//!
//! Once the initial read fails, AR² ① looks up the best tPRE for the block's
//! (P/E cycles, retention age) in the RPT, ② installs it with `SET FEATURE`
//! (tSET = 1 µs), ③ performs every retry step with the ~25 % shorter tR, and
//! ④ rolls the timing back for future operations:
//!
//! ```text
//! tRETRY = tSET + ρ · N_RR · tR + tDMA + tECC      (Eq. 5, with PR²;
//!                                                   sequential here)
//! ```
//!
//! If the retry table is exhausted under reduced timing (an outlier page
//! whose final-step RBER exceeds the reduced-timing budget — never observed
//! across the paper's 10⁷ tested pages, but handled per §6.2), AR² restores
//! the default timing and repeats the read-retry once.

use crate::rpt::ReadTimingParamTable;
use rr_sim::readflow::{Actions, ReadAction, ReadContext, RetryController, TxnTable};
use rr_sim::request::TxnId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Initial read with default timing in flight.
    Initial,
    /// `SET FEATURE` (install reduced timing) in flight.
    AwaitReduce,
    /// Retry steps with reduced timing.
    ReducedRetry,
    /// Outlier fallback: `SET FEATURE` (restore default) in flight.
    AwaitFallbackRestore,
    /// Outlier fallback: retry steps with default timing.
    FallbackRetry,
}

/// The AR² controller.
#[derive(Debug)]
pub struct Ar2Controller {
    rpt: ReadTimingParamTable,
    states: TxnTable<Phase>,
}

impl Ar2Controller {
    /// Creates the controller around a profiled RPT.
    pub fn new(rpt: ReadTimingParamTable) -> Self {
        Self {
            rpt,
            states: TxnTable::new(),
        }
    }

    fn phase(&mut self, txn: TxnId) -> &mut Phase {
        self.states
            .get_mut(txn)
            .expect("event for an unknown AR2 read")
    }
}

impl RetryController for Ar2Controller {
    fn on_start(&mut self, ctx: &ReadContext) -> Actions {
        self.states.insert(ctx.txn, Phase::Initial);
        Actions::one(ReadAction::Sense { step: 0 })
    }

    fn on_sense_done(&mut self, _ctx: &ReadContext, step: u32) -> Actions {
        Actions::one(ReadAction::Transfer { step })
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        _margin: u32,
    ) -> Actions {
        let phase = *self.phase(ctx.txn);
        if success {
            return match phase {
                // ④ roll back the timing; completion does not wait for it.
                Phase::ReducedRetry => Actions::pair(
                    ReadAction::CompleteSuccess { step },
                    ReadAction::SetFeature { phases: None },
                ),
                _ => Actions::one(ReadAction::CompleteSuccess { step }),
            };
        }
        match phase {
            Phase::Initial => {
                // ① query the RPT, ② adjust tPRE via SET FEATURE.
                let reduced = self.rpt.reduced_phases(ctx.condition);
                *self.phase(ctx.txn) = Phase::AwaitReduce;
                Actions::one(ReadAction::SetFeature {
                    phases: Some(reduced),
                })
            }
            Phase::ReducedRetry => {
                if step < ctx.max_step {
                    Actions::one(ReadAction::Sense { step: step + 1 })
                } else {
                    // §6.2 outlier fallback: retry once more at default tPRE.
                    *self.phase(ctx.txn) = Phase::AwaitFallbackRestore;
                    Actions::one(ReadAction::SetFeature { phases: None })
                }
            }
            Phase::FallbackRetry => {
                if step < ctx.max_step {
                    Actions::one(ReadAction::Sense { step: step + 1 })
                } else {
                    Actions::one(ReadAction::CompleteFailure)
                }
            }
            Phase::AwaitReduce | Phase::AwaitFallbackRestore => {
                unreachable!("no decode can complete while SET FEATURE is in flight")
            }
        }
    }

    fn on_feature_applied(&mut self, ctx: &ReadContext) -> Actions {
        match *self.phase(ctx.txn) {
            Phase::AwaitReduce => {
                *self.phase(ctx.txn) = Phase::ReducedRetry;
                Actions::one(ReadAction::Sense { step: 1 })
            }
            Phase::AwaitFallbackRestore => {
                *self.phase(ctx.txn) = Phase::FallbackRetry;
                Actions::one(ReadAction::Sense { step: 1 })
            }
            _ => unreachable!("unexpected SET FEATURE completion"),
        }
    }

    fn on_reset_done(&mut self, _ctx: &ReadContext) -> Actions {
        unreachable!("AR2 never issues RESET")
    }

    fn on_end(&mut self, ctx: &ReadContext, _successful_step: Option<u32>) {
        self.states.remove(ctx.txn);
    }

    fn name(&self) -> &str {
        "AR2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_flash::calibration::OperatingCondition;
    use rr_flash::timing::SensePhases;

    fn controller() -> Ar2Controller {
        Ar2Controller::new(ReadTimingParamTable::default())
    }

    fn ctx(max_step: u32) -> ReadContext {
        ReadContext {
            txn: TxnId(3),
            die: 0,
            condition: OperatingCondition::new(2000.0, 12.0, 30.0),
            cold: true,
            max_step,
        }
    }

    #[test]
    fn reduces_timing_after_initial_failure() {
        let mut c = controller();
        let x = ctx(40);
        assert_eq!(c.on_start(&x).to_vec(), vec![ReadAction::Sense { step: 0 }]);
        assert_eq!(
            c.on_sense_done(&x, 0).to_vec(),
            vec![ReadAction::Transfer { step: 0 }]
        );
        let acts = c.on_decode_done(&x, 0, false, 0).to_vec();
        // SET FEATURE installs reduced tPRE (40 % at the worst-case bucket).
        let ReadAction::SetFeature { phases: Some(p) } = acts[0] else {
            panic!("expected SET FEATURE, got {acts:?}");
        };
        let reduction = SensePhases::table1().pre_reduction_vs(&p);
        assert!((reduction - 0.40).abs() < 0.03, "reduction = {reduction}");
        // Retry steps begin after the feature is applied.
        assert_eq!(
            c.on_feature_applied(&x).to_vec(),
            vec![ReadAction::Sense { step: 1 }]
        );
        // Failed steps walk the table sequentially.
        assert_eq!(
            c.on_decode_done(&x, 1, false, 0).to_vec(),
            vec![ReadAction::Sense { step: 2 }]
        );
        // Success restores the default timing after completing.
        assert_eq!(
            c.on_decode_done(&x, 2, true, 30).to_vec(),
            vec![
                ReadAction::CompleteSuccess { step: 2 },
                ReadAction::SetFeature { phases: None },
            ]
        );
    }

    #[test]
    fn initial_success_needs_no_feature_change() {
        let mut c = controller();
        let x = ctx(40);
        c.on_start(&x);
        assert_eq!(
            c.on_decode_done(&x, 0, true, 60).to_vec(),
            vec![ReadAction::CompleteSuccess { step: 0 }]
        );
    }

    #[test]
    fn outlier_fallback_retries_with_default_timing() {
        let mut c = controller();
        let x = ctx(2);
        c.on_start(&x);
        c.on_decode_done(&x, 0, false, 0);
        c.on_feature_applied(&x);
        c.on_decode_done(&x, 1, false, 0);
        // Table exhausted under reduced timing → restore defaults...
        assert_eq!(
            c.on_decode_done(&x, 2, false, 0).to_vec(),
            vec![ReadAction::SetFeature { phases: None }]
        );
        // ...and walk the table once more at default tPRE (§6.2).
        assert_eq!(
            c.on_feature_applied(&x).to_vec(),
            vec![ReadAction::Sense { step: 1 }]
        );
        assert_eq!(
            c.on_decode_done(&x, 1, true, 10).to_vec(),
            vec![ReadAction::CompleteSuccess { step: 1 }]
        );
    }

    #[test]
    fn fallback_exhaustion_is_a_read_failure() {
        let mut c = controller();
        let x = ctx(1);
        c.on_start(&x);
        c.on_decode_done(&x, 0, false, 0);
        c.on_feature_applied(&x);
        c.on_decode_done(&x, 1, false, 0); // reduced walk exhausted
        c.on_feature_applied(&x); // fallback begins
        assert_eq!(
            c.on_decode_done(&x, 1, false, 0).to_vec(),
            vec![ReadAction::CompleteFailure]
        );
    }
}
