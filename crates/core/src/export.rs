//! CSV export of evaluation results, so Fig. 14/15-style matrices and the
//! load sweeps can be re-plotted outside the CLI (`repro export --csv DIR`).
//!
//! Per-class latency distributions serialize as five columns each
//! (`<class>_count, <class>_p50_us, <class>_p95_us, <class>_p99_us,
//! <class>_p999_us`); an empty class leaves its quantile columns blank
//! rather than fabricating a `0.0` tail, mirroring the CLI's `—` cells.

use crate::experiment::{ArrayCellStats, MatrixCell, QdSweepCell, RateSweepCell};
use rr_sim::metrics::{GcStalls, LatencySummary};
use std::fmt::Write as _;

fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}")).unwrap_or_default()
}

/// The five per-class columns of one [`LatencySummary`].
fn latency_cols(s: &LatencySummary) -> String {
    format!(
        "{},{},{},{},{}",
        s.count,
        opt(s.p50),
        opt(s.p95),
        opt(s.p99),
        opt(s.p999)
    )
}

/// Header fragment matching [`latency_cols`] for a class prefix.
fn latency_header(class: &str) -> String {
    format!("{class}_count,{class}_p50_us,{class}_p95_us,{class}_p99_us,{class}_p999_us")
}

/// Header fragment for the per-host-queue read p99 columns, one per queue up
/// to the widest cell in the sweep (leading comma included).
fn per_queue_header(max_queues: usize) -> String {
    (0..max_queues)
        .map(|i| format!(",q{i}_reads_p99_us"))
        .collect()
}

/// The per-queue read p99 columns of one cell, blank-padded to `max_queues`
/// (leading comma included).
fn per_queue_cols(per_queue_reads: &[LatencySummary], max_queues: usize) -> String {
    (0..max_queues)
        .map(|i| format!(",{}", opt(per_queue_reads.get(i).and_then(|s| s.p99))))
        .collect()
}

/// Header fragment for the per-host-queue GC-stall columns (stall-event
/// count + total attributed stall µs per queue; leading comma included).
fn per_queue_gc_header(max_queues: usize) -> String {
    (0..max_queues)
        .map(|i| format!(",q{i}_gc_stalls,q{i}_gc_stall_us"))
        .collect()
}

/// The per-queue GC-stall columns of one cell, blank-padded to `max_queues`
/// (leading comma included) — a queue the cell does not have stays
/// distinguishable from one that measured zero stalls, mirroring
/// [`per_queue_cols`].
fn per_queue_gc_cols(per_queue_gc: &[GcStalls], max_queues: usize) -> String {
    (0..max_queues)
        .map(|i| match per_queue_gc.get(i) {
            Some(gc) => format!(",{},{:.3}", gc.stalls(), gc.stall_us),
            None => ",,".to_string(),
        })
        .collect()
}

/// How many array columns an export needs: `None` when no cell ran on an
/// array (legacy exports stay byte-identical), otherwise the widest device
/// count, so mixed exports blank-pad narrower cells.
fn array_width<'a>(arrays: impl Iterator<Item = Option<&'a ArrayCellStats>>) -> Option<usize> {
    arrays.flatten().map(|a| a.per_device.len()).max()
}

/// Header fragment for the array columns (leading comma included): the
/// array summary (device count, placement, tail amplification, slowest
/// device) followed by per-device read-tail and GC-stall columns. Empty
/// when `width` is `None` — exports without array cells keep the
/// pre-array byte layout.
fn array_header(width: Option<usize>) -> String {
    let Some(width) = width else {
        return String::new();
    };
    let mut h = String::from(
        ",devices,placement,array_amp_p99,array_amp_p999,\
         array_best_read_p999_us,array_median_read_p999_us,array_slowest_device",
    );
    for d in 0..width {
        write!(
            h,
            ",d{d}_reads_p99_us,d{d}_reads_p999_us,d{d}_gc_stalls,d{d}_gc_stall_us"
        )
        .expect("writing to a String cannot fail");
    }
    h
}

/// The array columns of one cell, blank for single-device cells in a mixed
/// export and blank-padded to `width` devices (leading comma included).
fn array_cols(array: Option<&ArrayCellStats>, width: Option<usize>) -> String {
    let Some(width) = width else {
        return String::new();
    };
    let mut s = match array {
        Some(a) => format!(
            ",{},{},{},{},{},{},{}",
            a.devices,
            a.placement,
            opt(a.amplification_p99),
            opt(a.amplification_p999),
            opt(a.best_read_p999),
            opt(a.median_read_p999),
            a.slowest_device.map(|d| d.to_string()).unwrap_or_default()
        ),
        None => ",,,,,,,".to_string(),
    };
    for d in 0..width {
        match array.and_then(|a| a.per_device.get(d)) {
            Some(t) => write!(
                s,
                ",{},{},{},{:.3}",
                opt(t.reads.p99),
                opt(t.reads.p999),
                t.gc.stalls(),
                t.gc.stall_us
            )
            .expect("writing to a String cannot fail"),
            None => s.push_str(",,,,"),
        }
    }
    s
}

/// Whether an export needs the redundancy columns: only when at least one
/// cell ran under `--redundancy`/`--fail-device`, so plain array (and
/// legacy) exports keep their byte layout.
fn redundancy_on<'a>(arrays: impl Iterator<Item = Option<&'a ArrayCellStats>>) -> bool {
    arrays.flatten().any(|a| a.redundancy.is_some())
}

/// Header fragment for the redundancy columns (leading comma included):
/// scheme, failed device, the wait-for-k completion tail, straggler
/// rescues, and the total rebuild-read fan-in. Empty when `on` is false.
fn redundancy_header(on: bool) -> String {
    if !on {
        return String::new();
    }
    ",redundancy,failed_device,wait_for_k_count,wait_for_k_p50_us,\
     wait_for_k_p99_us,wait_for_k_p999_us,rescued_reads,rescued_saved_us,\
     rebuild_reads"
        .to_string()
}

/// The redundancy columns of one cell, blank for non-redundant cells in a
/// mixed export (leading comma included).
fn redundancy_cols(array: Option<&ArrayCellStats>, on: bool) -> String {
    if !on {
        return String::new();
    }
    match array.and_then(|a| a.redundancy.as_ref()) {
        Some(r) => format!(
            ",{},{},{},{},{},{},{},{:.3},{}",
            r.scheme,
            r.failed_device.map(|d| d.to_string()).unwrap_or_default(),
            r.wait_for_k.count,
            opt(r.wait_for_k.p50),
            opt(r.wait_for_k.p99),
            opt(r.wait_for_k.p999),
            r.rescued_reads,
            r.rescued_saved_us,
            r.rebuild_reads.iter().sum::<u64>()
        ),
        None => ",,,,,,,,,".to_string(),
    }
}

/// Fig. 14/15-style matrix cells as CSV. Array runs (`--devices N`) append
/// the array summary and per-device columns; single-device exports keep the
/// pre-array byte layout.
pub fn matrix_csv(cells: &[MatrixCell]) -> String {
    let width = array_width(cells.iter().map(|c| c.array.as_ref()));
    let redundant = redundancy_on(cells.iter().map(|c| c.array.as_ref()));
    let mut out = format!(
        "workload,read_dominant,pec,retention_months,mechanism,\
         avg_response_us,normalized,avg_retry_steps,events,{}{}{}\n",
        latency_header("read"),
        array_header(width),
        redundancy_header(redundant)
    );
    for c in cells {
        writeln!(
            out,
            "{},{},{},{},{},{:.3},{:.6},{:.3},{},{}{}{}",
            c.workload,
            c.read_dominant,
            c.point.pec,
            c.point.retention_months,
            c.mechanism,
            c.avg_response_us,
            c.normalized,
            c.avg_retry_steps,
            c.events,
            latency_cols(&c.read_latency),
            array_cols(c.array.as_ref(), width),
            redundancy_cols(c.array.as_ref(), redundant)
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Closed-loop queue-depth sweep cells as CSV. Multi-queue sweeps append
/// one `q{i}_reads_p99_us` column per host submission queue (blank-padded
/// when cells differ in queue count), followed by the per-queue
/// `q{i}_gc_stalls` / `q{i}_gc_stall_us` GC-attribution columns.
pub fn qd_sweep_csv(cells: &[QdSweepCell]) -> String {
    let max_queues = cells.iter().map(|c| c.queues as usize).max().unwrap_or(1);
    let width = array_width(cells.iter().map(|c| c.array.as_ref()));
    let redundant = redundancy_on(cells.iter().map(|c| c.array.as_ref()));
    let mut out = format!(
        "workload,mechanism,queue_depth,queues,pec,retention_months,\
         avg_response_us,kiops,events,{},{},{}{}{}{}{}\n",
        latency_header("reads"),
        latency_header("writes"),
        latency_header("retried_reads"),
        per_queue_header(max_queues),
        per_queue_gc_header(max_queues),
        array_header(width),
        redundancy_header(redundant)
    );
    for c in cells {
        writeln!(
            out,
            "{},{},{},{},{},{},{:.3},{:.3},{},{},{},{}{}{}{}{}",
            c.workload,
            c.mechanism,
            c.queue_depth,
            c.queues,
            c.point.pec,
            c.point.retention_months,
            c.avg_response_us,
            c.kiops,
            c.events,
            latency_cols(&c.reads),
            latency_cols(&c.writes),
            latency_cols(&c.retried_reads),
            per_queue_cols(&c.per_queue_reads, max_queues),
            per_queue_gc_cols(&c.per_queue_gc, max_queues),
            array_cols(c.array.as_ref(), width),
            redundancy_cols(c.array.as_ref(), redundant)
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Open-loop rate sweep cells as CSV. Multi-queue sweeps append one
/// `q{i}_reads_p99_us` column per host submission queue (blank-padded when
/// cells differ in queue count), followed by the per-queue
/// `q{i}_gc_stalls` / `q{i}_gc_stall_us` GC-attribution columns.
pub fn rate_sweep_csv(cells: &[RateSweepCell]) -> String {
    let max_queues = cells.iter().map(|c| c.queues as usize).max().unwrap_or(1);
    let width = array_width(cells.iter().map(|c| c.array.as_ref()));
    let redundant = redundancy_on(cells.iter().map(|c| c.array.as_ref()));
    let mut out = format!(
        "workload,mechanism,rate,queues,pec,retention_months,\
         avg_response_us,kiops,events,{},{},{}{}{}{}{}\n",
        latency_header("reads"),
        latency_header("writes"),
        latency_header("retried_reads"),
        per_queue_header(max_queues),
        per_queue_gc_header(max_queues),
        array_header(width),
        redundancy_header(redundant)
    );
    for c in cells {
        writeln!(
            out,
            "{},{},{},{},{},{},{:.3},{:.3},{},{},{},{}{}{}{}{}",
            c.workload,
            c.mechanism,
            c.rate,
            c.queues,
            c.point.pec,
            c.point.retention_months,
            c.avg_response_us,
            c.kiops,
            c.events,
            latency_cols(&c.reads),
            latency_cols(&c.writes),
            latency_cols(&c.retried_reads),
            per_queue_cols(&c.per_queue_reads, max_queues),
            per_queue_gc_cols(&c.per_queue_gc, max_queues),
            array_cols(c.array.as_ref(), width),
            redundancy_cols(c.array.as_ref(), redundant)
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_matrix, run_qd_sweep, run_rate_sweep, Mechanism, OperatingPoint};
    use rr_sim::config::SsdConfig;
    use rr_sim::request::{HostRequest, IoOp};
    use rr_util::time::SimTime;
    use rr_workloads::trace::Trace;

    fn tiny_trace(reads: usize) -> Trace {
        let requests = (0..reads)
            .map(|i| {
                let op = if i % 5 == 0 { IoOp::Write } else { IoOp::Read };
                HostRequest::new(
                    SimTime::from_us(300 * i as u64),
                    op,
                    (i as u64 * 7) % 2000,
                    1,
                )
            })
            .collect();
        Trace::new("t", requests, 4_000)
    }

    #[test]
    fn matrix_csv_has_one_row_per_cell_and_stable_columns() {
        let base = SsdConfig::scaled_for_tests();
        let cells = run_matrix(
            &base,
            &[(tiny_trace(40), true)],
            &[OperatingPoint::new(2000.0, 6.0)],
            &[Mechanism::Baseline, Mechanism::PnAr2],
        );
        let csv = matrix_csv(&cells);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + cells.len());
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(lines[0].starts_with("workload,read_dominant,pec"));
        assert!(lines[1].contains("Baseline"));
    }

    #[test]
    fn sweep_csvs_blank_out_empty_classes() {
        let base = SsdConfig::scaled_for_tests();
        // Read-only trace: the writes class must be blank, not 0.0.
        let requests = (0..30)
            .map(|i| HostRequest::new(SimTime::ZERO, IoOp::Read, i * 3, 1))
            .collect();
        let trace = Trace::new("ro", requests, 1_000);
        let point = OperatingPoint::new(0.0, 0.0);
        let qd = run_qd_sweep(
            &base,
            std::slice::from_ref(&trace),
            point,
            &[2],
            &[Mechanism::Baseline],
            1,
        );
        let csv = qd_sweep_csv(&qd);
        let row = csv.lines().nth(1).expect("one data row");
        // Five consecutive blank columns: writes count is 0 and the four
        // write quantiles are empty.
        assert!(row.contains(",0,,,,"), "writes class not blanked: {row}");
        let rate = run_rate_sweep(&base, &[trace], point, &[2.0], &[Mechanism::Baseline], 1);
        let csv = rate_sweep_csv(&rate);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv
            .lines()
            .nth(1)
            .expect("row")
            .starts_with("ro,Baseline,2,1,"));
    }

    #[test]
    fn array_sweeps_append_columns_and_legacy_stays_byte_identical() {
        use crate::experiment::{run_qd_sweep_array, ArraySetup, QueueSetup};
        use rr_sim::array::PlacementPolicy;

        let base = SsdConfig::scaled_for_tests();
        let trace = tiny_trace(60);
        let point = OperatingPoint::new(1000.0, 6.0);
        let legacy = run_qd_sweep(
            &base,
            std::slice::from_ref(&trace),
            point,
            &[4],
            &[Mechanism::Baseline],
            1,
        );
        // Cells without array stats export the exact pre-array byte layout.
        let legacy_csv = qd_sweep_csv(&legacy);
        assert!(!legacy_csv.contains("devices"), "{legacy_csv}");
        let cells = run_qd_sweep_array(
            &base,
            std::slice::from_ref(&trace),
            point,
            &[4],
            &[Mechanism::Baseline],
            &QueueSetup::single(),
            1,
            0,
            ArraySetup::new(2, PlacementPolicy::RoundRobin),
        );
        let csv = qd_sweep_csv(&cells);
        let header = csv.lines().next().expect("header");
        assert!(
            header.contains(",devices,placement,array_amp_p99"),
            "{header}"
        );
        assert!(header.contains("d1_gc_stall_us"), "{header}");
        let row = csv.lines().nth(1).expect("one data row");
        assert_eq!(
            row.split(',').count(),
            header.split(',').count(),
            "ragged row: {row}"
        );
        assert!(row.contains(",2,rr,"), "array summary missing: {row}");
    }

    #[test]
    fn sweep_csvs_carry_per_queue_p99_columns() {
        use crate::experiment::{run_qd_sweep_queued, QueueSetup};
        use rr_sim::config::ArbPolicy;

        let base = SsdConfig::scaled_for_tests();
        let requests = (0..40)
            .map(|i| HostRequest::new(SimTime::ZERO, IoOp::Read, i * 3, 1))
            .collect();
        let trace = Trace::new("mq", requests, 1_000);
        let cells = run_qd_sweep_queued(
            &base,
            std::slice::from_ref(&trace),
            OperatingPoint::new(0.0, 0.0),
            &[4],
            &[Mechanism::Baseline],
            &QueueSetup::multi(2, ArbPolicy::WeightedRoundRobin),
            1,
        );
        let csv = qd_sweep_csv(&cells);
        let header = csv.lines().next().expect("header");
        assert!(header.contains("queues"), "{header}");
        assert!(
            header.contains("q0_reads_p99_us,q1_reads_p99_us"),
            "{header}"
        );
        assert!(
            header.ends_with("q0_gc_stalls,q0_gc_stall_us,q1_gc_stalls,q1_gc_stall_us"),
            "{header}"
        );
        let row = csv.lines().nth(1).expect("one data row");
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), header.split(',').count(), "ragged row: {row}");
        // Both queues completed reads, so both p99 columns are populated,
        // and the GC-stall columns parse as (count, µs) pairs.
        let tail = &cols[cols.len() - 6..];
        assert!(
            tail[0].parse::<f64>().is_ok() && tail[1].parse::<f64>().is_ok(),
            "per-queue p99 columns populated: {tail:?}"
        );
        assert!(
            tail[2].parse::<u64>().is_ok() && tail[3].parse::<f64>().is_ok(),
            "per-queue GC-stall columns populated: {tail:?}"
        );
    }
}
