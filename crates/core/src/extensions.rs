//! The paper's §8 "Discussion" extensions, implemented as additional
//! mechanisms (the paper sketches them as future work):
//!
//! * [`EagerPnAr2Controller`] — *"speculatively starting read-retry"*: when
//!   the block's operating condition predicts that the default initial read
//!   would fail anyway (its expected retry count is high), skip it — install
//!   the reduced timing immediately and start the pipelined retry burst at
//!   the first retry entry. Saves the wasted default-timing read plus its
//!   transfer/decode on deeply-retried pages.
//! * [`RegularAr2Controller`] — *"latency reduction for regular reads"*: the
//!   ECC-capability margin exists for regular (no-retry) reads too, so
//!   install the RPT-reduced tPRE once per die and leave it on — every read,
//!   including retry-free ones, senses ~25 % faster. The RPT margin
//!   guarantees the final (or only) read step still decodes.
//!
//! Both consult an [`ExpectedStepsTable`] — a controller-plausible profile of
//! the mean retry count per (P/E cycles, retention) bucket, the same shape of
//! offline knowledge the RPT already requires.

use crate::rpt::ReadTimingParamTable;
use rr_flash::calibration::{Calibration, OperatingCondition};
use rr_sim::readflow::{Actions, ReadAction, ReadContext, RetryController, TxnTable};
use rr_sim::request::TxnId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Offline-profiled mean retry steps per (PEC, retention) bucket — the
/// §8 "accurate error model" a controller could ship alongside the RPT.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpectedStepsTable {
    pec_buckets: Vec<f64>,
    ret_buckets: Vec<f64>,
    /// Row-major mean retry steps per bucket corner.
    means: Vec<f64>,
}

impl ExpectedStepsTable {
    /// Builds the table from the chip calibration (Fig. 5's means).
    pub fn from_calibration(cal: &Calibration) -> Self {
        let pec_buckets = vec![250.0, 500.0, 1000.0, 1500.0, 2000.0, f64::MAX];
        let ret_buckets = vec![0.25, 1.0, 3.0, 6.0, 12.0, f64::MAX];
        let mut means = Vec::new();
        for &p in &pec_buckets {
            for &r in &ret_buckets {
                let cond = OperatingCondition::new(p.min(2000.0), r.min(12.0), 30.0);
                means.push(cal.mean_retry_steps(cond));
            }
        }
        Self {
            pec_buckets,
            ret_buckets,
            means,
        }
    }

    /// Expected retry steps at an operating condition (bucket upper corner —
    /// a conservative over-estimate, like the RPT).
    pub fn expected_steps(&self, cond: OperatingCondition) -> f64 {
        let pi = self
            .pec_buckets
            .iter()
            .position(|&b| cond.pec <= b)
            .expect("last bucket is unbounded");
        let ri = self
            .ret_buckets
            .iter()
            .position(|&b| cond.retention_months <= b)
            .expect("last bucket is unbounded");
        self.means[pi * self.ret_buckets.len() + ri]
    }
}

impl Default for ExpectedStepsTable {
    fn default() -> Self {
        Self::from_calibration(&Calibration::asplos21())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EagerPhase {
    /// Default initial read in flight (prediction said "probably no retry").
    Initial,
    /// `SET FEATURE` (install reduced timing) in flight.
    AwaitReduce,
    /// Pipelined reduced-timing retry steps.
    Pipelined,
    /// Fallback: restore in flight after exhausting the table.
    AwaitFallbackRestore,
    /// Fallback: pipelined default-timing steps (covers mispredictions).
    FallbackPipelined,
}

#[derive(Debug, Clone, Copy)]
struct EagerState {
    phase: EagerPhase,
    sensing: Option<u32>,
    /// Whether the initial default read was skipped.
    eager: bool,
}

/// PnAR² plus §8's speculative retry start.
#[derive(Debug)]
pub struct EagerPnAr2Controller {
    rpt: ReadTimingParamTable,
    expected: ExpectedStepsTable,
    /// Minimum predicted steps to skip the default initial read.
    threshold: f64,
    states: TxnTable<EagerState>,
}

impl EagerPnAr2Controller {
    /// Creates the controller; `threshold` is the predicted retry count above
    /// which the initial default-timing read is skipped (the paper suggests
    /// "if a page ... is likely to exhibit high RBER").
    pub fn new(rpt: ReadTimingParamTable, expected: ExpectedStepsTable, threshold: f64) -> Self {
        assert!(
            threshold >= 1.0,
            "a threshold below 1 would skip reads that need no retry"
        );
        Self {
            rpt,
            expected,
            threshold,
            states: TxnTable::new(),
        }
    }

    fn state(&mut self, txn: TxnId) -> &mut EagerState {
        self.states
            .get_mut(txn)
            .expect("event for an unknown eager read")
    }
}

impl RetryController for EagerPnAr2Controller {
    fn on_start(&mut self, ctx: &ReadContext) -> Actions {
        let predicted = self.expected.expected_steps(ctx.condition);
        if predicted >= self.threshold {
            // Skip the doomed default read: reduce timing now, retry from
            // entry 1 directly (entry 0 would fail like the initial read).
            self.states.insert(
                ctx.txn,
                EagerState {
                    phase: EagerPhase::AwaitReduce,
                    sensing: None,
                    eager: true,
                },
            );
            let reduced = self.rpt.reduced_phases(ctx.condition);
            Actions::one(ReadAction::SetFeature {
                phases: Some(reduced),
            })
        } else {
            self.states.insert(
                ctx.txn,
                EagerState {
                    phase: EagerPhase::Initial,
                    sensing: Some(0),
                    eager: false,
                },
            );
            Actions::one(ReadAction::Sense { step: 0 })
        }
    }

    fn on_sense_done(&mut self, ctx: &ReadContext, step: u32) -> Actions {
        let max_step = ctx.max_step;
        let s = self.state(ctx.txn);
        s.sensing = None;
        match s.phase {
            EagerPhase::Initial => Actions::one(ReadAction::Transfer { step }),
            EagerPhase::Pipelined | EagerPhase::FallbackPipelined => {
                let mut actions = Actions::one(ReadAction::Transfer { step });
                if step < max_step {
                    s.sensing = Some(step + 1);
                    actions.push(ReadAction::Sense { step: step + 1 });
                }
                actions
            }
            _ => unreachable!("no sensing can complete while SET FEATURE is in flight"),
        }
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        _margin: u32,
    ) -> Actions {
        let s = *self.state(ctx.txn);
        if success {
            let mut actions = Actions::new();
            if s.sensing.is_some() {
                actions.push(ReadAction::Reset);
            }
            actions.push(ReadAction::CompleteSuccess { step });
            if s.phase == EagerPhase::Pipelined {
                actions.push(ReadAction::SetFeature { phases: None });
            }
            return actions;
        }
        match s.phase {
            EagerPhase::Initial => {
                let reduced = self.rpt.reduced_phases(ctx.condition);
                self.state(ctx.txn).phase = EagerPhase::AwaitReduce;
                Actions::one(ReadAction::SetFeature {
                    phases: Some(reduced),
                })
            }
            EagerPhase::Pipelined => {
                if step == ctx.max_step && s.sensing.is_none() {
                    self.state(ctx.txn).phase = EagerPhase::AwaitFallbackRestore;
                    Actions::one(ReadAction::SetFeature { phases: None })
                } else {
                    Actions::new()
                }
            }
            EagerPhase::FallbackPipelined => {
                if step == ctx.max_step && s.sensing.is_none() {
                    Actions::one(ReadAction::CompleteFailure)
                } else {
                    Actions::new()
                }
            }
            _ => unreachable!("no decode can complete while SET FEATURE is in flight"),
        }
    }

    fn on_feature_applied(&mut self, ctx: &ReadContext) -> Actions {
        let s = self.state(ctx.txn);
        match s.phase {
            EagerPhase::AwaitReduce => {
                s.phase = EagerPhase::Pipelined;
                s.sensing = Some(1);
                Actions::one(ReadAction::Sense { step: 1 })
            }
            EagerPhase::AwaitFallbackRestore => {
                s.phase = EagerPhase::FallbackPipelined;
                // The fallback walk must include entry 0 if it was skipped:
                // a mispredicted fresh page succeeds only at the default
                // V_REF of entry 0.
                let start = if s.eager { 0 } else { 1 };
                s.sensing = Some(start);
                Actions::one(ReadAction::Sense { step: start })
            }
            _ => unreachable!("unexpected SET FEATURE completion"),
        }
    }

    fn on_reset_done(&mut self, _ctx: &ReadContext) -> Actions {
        Actions::new()
    }

    fn on_end(&mut self, ctx: &ReadContext, _successful_step: Option<u32>) {
        self.states.remove(ctx.txn);
    }

    fn name(&self) -> &str {
        "Eager-PnAR2"
    }
}

/// §8's regular-read extension: reduced tPRE for **all** reads.
///
/// Installs the RPT reduction for the die's *worst* relevant bucket once per
/// die and never restores; otherwise behaves as PnAR². Retry-free reads (the
/// common case on fresh/hot data) complete in `ρ·tR + tDMA + tECC`.
#[derive(Debug)]
pub struct RegularAr2Controller {
    rpt: ReadTimingParamTable,
    states: TxnTable<RegState>,
    dies_reduced: HashSet<u32>,
}

#[derive(Debug, Clone, Copy)]
struct RegState {
    sensing: Option<u32>,
    await_feature: bool,
}

impl RegularAr2Controller {
    /// Creates the controller.
    pub fn new(rpt: ReadTimingParamTable) -> Self {
        Self {
            rpt,
            states: TxnTable::new(),
            dies_reduced: HashSet::new(),
        }
    }

    fn state(&mut self, txn: TxnId) -> &mut RegState {
        self.states.get_mut(txn).expect("event for an unknown read")
    }
}

impl RetryController for RegularAr2Controller {
    fn on_start(&mut self, ctx: &ReadContext) -> Actions {
        if self.dies_reduced.insert(ctx.die) {
            // First read on this die: install the reduction permanently.
            // Use the cold-data bucket — the most error-prone data this die
            // serves — so every page's final step keeps its margin.
            self.states.insert(
                ctx.txn,
                RegState {
                    sensing: None,
                    await_feature: true,
                },
            );
            let reduced = self.rpt.reduced_phases(ctx.condition);
            Actions::one(ReadAction::SetFeature {
                phases: Some(reduced),
            })
        } else {
            self.states.insert(
                ctx.txn,
                RegState {
                    sensing: Some(0),
                    await_feature: false,
                },
            );
            Actions::one(ReadAction::Sense { step: 0 })
        }
    }

    fn on_sense_done(&mut self, ctx: &ReadContext, step: u32) -> Actions {
        let max_step = ctx.max_step;
        let s = self.state(ctx.txn);
        s.sensing = None;
        let mut actions = Actions::one(ReadAction::Transfer { step });
        if step < max_step {
            // Pipeline like PR²: timing is already reduced, so speculation
            // costs only the small RESET on success.
            s.sensing = Some(step + 1);
            actions.push(ReadAction::Sense { step: step + 1 });
        }
        actions
    }

    fn on_decode_done(
        &mut self,
        ctx: &ReadContext,
        step: u32,
        success: bool,
        _margin: u32,
    ) -> Actions {
        let s = *self.state(ctx.txn);
        if success {
            if s.sensing.is_some() {
                Actions::pair(ReadAction::Reset, ReadAction::CompleteSuccess { step })
            } else {
                Actions::one(ReadAction::CompleteSuccess { step })
            }
        } else if step == ctx.max_step && s.sensing.is_none() {
            Actions::one(ReadAction::CompleteFailure)
        } else {
            Actions::new()
        }
    }

    fn on_feature_applied(&mut self, ctx: &ReadContext) -> Actions {
        let s = self.state(ctx.txn);
        debug_assert!(s.await_feature, "unexpected SET FEATURE completion");
        s.await_feature = false;
        s.sensing = Some(0);
        Actions::one(ReadAction::Sense { step: 0 })
    }

    fn on_reset_done(&mut self, _ctx: &ReadContext) -> Actions {
        Actions::new()
    }

    fn on_end(&mut self, ctx: &ReadContext, _successful_step: Option<u32>) {
        self.states.remove(ctx.txn);
    }

    fn name(&self) -> &str {
        "AR2-Regular"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(txn: u32, pec: f64, months: f64) -> ReadContext {
        ReadContext {
            txn: TxnId(txn),
            die: 0,
            condition: OperatingCondition::new(pec, months, 30.0),
            cold: true,
            max_step: 40,
        }
    }

    #[test]
    fn expected_steps_table_tracks_fig5() {
        let t = ExpectedStepsTable::default();
        assert!(t.expected_steps(OperatingCondition::new(0.0, 0.1, 30.0)) < 2.0);
        assert!(t.expected_steps(OperatingCondition::new(2000.0, 12.0, 30.0)) > 18.0);
        // Bucketed lookups over-estimate (conservative).
        let exact =
            Calibration::asplos21().mean_retry_steps(OperatingCondition::new(800.0, 5.0, 30.0));
        assert!(t.expected_steps(OperatingCondition::new(800.0, 5.0, 30.0)) >= exact);
    }

    #[test]
    fn eager_skips_initial_read_on_aged_data() {
        let mut c = EagerPnAr2Controller::new(
            ReadTimingParamTable::default(),
            ExpectedStepsTable::default(),
            2.0,
        );
        let x = ctx(1, 2000.0, 12.0);
        let acts = c.on_start(&x).to_vec();
        assert!(
            matches!(acts[0], ReadAction::SetFeature { phases: Some(_) }),
            "aged reads must start with the timing switch, got {acts:?}"
        );
        assert_eq!(
            c.on_feature_applied(&x).to_vec(),
            vec![ReadAction::Sense { step: 1 }]
        );
    }

    #[test]
    fn eager_keeps_default_read_on_fresh_data() {
        let mut c = EagerPnAr2Controller::new(
            ReadTimingParamTable::default(),
            ExpectedStepsTable::default(),
            2.0,
        );
        let x = ctx(1, 0.0, 0.0);
        assert_eq!(c.on_start(&x).to_vec(), vec![ReadAction::Sense { step: 0 }]);
    }

    #[test]
    fn eager_misprediction_fallback_covers_entry_zero() {
        let mut c = EagerPnAr2Controller::new(
            ReadTimingParamTable::default(),
            ExpectedStepsTable::default(),
            2.0,
        );
        let mut x = ctx(1, 2000.0, 12.0);
        x.max_step = 2;
        c.on_start(&x);
        c.on_feature_applied(&x); // pipelined from entry 1
        c.on_sense_done(&x, 1);
        c.on_sense_done(&x, 2);
        assert_eq!(c.on_decode_done(&x, 1, false, 0).to_vec(), vec![]);
        // Exhausted: restore...
        assert_eq!(
            c.on_decode_done(&x, 2, false, 0).to_vec(),
            vec![ReadAction::SetFeature { phases: None }]
        );
        // ...and the fallback walk starts at entry 0 (it was skipped).
        assert_eq!(
            c.on_feature_applied(&x).to_vec(),
            vec![ReadAction::Sense { step: 0 }]
        );
    }

    #[test]
    fn regular_ar2_reduces_once_per_die() {
        let mut c = RegularAr2Controller::new(ReadTimingParamTable::default());
        let x = ctx(1, 1000.0, 6.0);
        let acts = c.on_start(&x).to_vec();
        assert!(matches!(
            acts[0],
            ReadAction::SetFeature { phases: Some(_) }
        ));
        assert_eq!(
            c.on_feature_applied(&x).to_vec(),
            vec![ReadAction::Sense { step: 0 }]
        );
        c.on_decode_done(&x, 0, true, 30);
        c.on_end(&x, Some(0));
        // Second read on the same die goes straight to sensing.
        let y = ctx(2, 1000.0, 6.0);
        assert_eq!(c.on_start(&y).to_vec(), vec![ReadAction::Sense { step: 0 }]);
    }

    #[test]
    #[should_panic(expected = "threshold below 1")]
    fn eager_threshold_validated() {
        EagerPnAr2Controller::new(
            ReadTimingParamTable::default(),
            ExpectedStepsTable::default(),
            0.5,
        );
    }
}
