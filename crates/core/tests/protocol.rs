//! Protocol-conformance harness: drives every retry mechanism through an
//! abstract (timing-free) flash protocol against a synthetic page oracle and
//! checks the contract every [`RetryController`] must honour:
//!
//! * the read always terminates (Complete, never a stuck state);
//! * it completes *successfully* whenever some reachable step succeeds;
//! * `Transfer { step }` only references steps that were sensed;
//! * `SET FEATURE` installations are balanced by rollbacks at completion
//!   (the die must never be left with stale reduced timing);
//! * `Reset` is only issued while the mechanism has speculation in flight.
//!
//! This complements the full event simulator: here the *ordering freedom* of
//! the protocol is explored (decodes delivered with arbitrary lag behind
//! senses), which wall-clock simulation only exercises at specific timings.

use proptest::prelude::*;
use rr_core::extensions::{EagerPnAr2Controller, ExpectedStepsTable, RegularAr2Controller};
use rr_core::mechanisms::{Ar2Controller, PnAr2Controller, Pr2Controller};
use rr_core::pso::PsoController;
use rr_core::rpt::ReadTimingParamTable;
use rr_flash::calibration::OperatingCondition;
use rr_sim::readflow::{BaselineController, ReadAction, ReadContext, RetryController};
use rr_sim::request::TxnId;
use std::collections::VecDeque;

/// The outcome of driving one read through a controller.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Success { step: u32 },
    Failure,
}

/// A timing-free protocol driver with a configurable decode lag: decodes for
/// sensed steps are delivered `lag` sensings behind (lag 0 ≈ sequential
/// baseline timing, larger lags ≈ deep pipelining).
fn drive(
    controller: &mut dyn RetryController,
    ctx: &ReadContext,
    required_step: u32,
    plateau: u32,
    lag: usize,
) -> Outcome {
    // Success window mirrors the error model: [required, required+plateau],
    // with reduced timing irrelevant here (the oracle is timing-blind; the
    // event-simulator tests cover timing interactions).
    let succeeds = |step: u32| step >= required_step && step <= required_step + plateau;

    let mut pending_senses: VecDeque<u32> = VecDeque::new(); // queued, unsensed
    let mut sensed: Vec<u32> = Vec::new();
    let mut pending_decodes: VecDeque<u32> = VecDeque::new(); // transferred, undecoded
    let mut feature_installs = 0i64;
    let mut feature_rollbacks = 0i64;
    let mut awaiting_feature = false;
    let mut outcome = None;

    let mut actions: VecDeque<ReadAction> = controller.on_start(ctx).into_iter().collect();
    let mut guard = 0;
    while outcome.is_none() {
        guard += 1;
        assert!(guard < 10_000, "protocol did not terminate");
        // Execute all queued actions first.
        if let Some(a) = actions.pop_front() {
            match a {
                ReadAction::Sense { step } => pending_senses.push_back(step),
                ReadAction::Transfer { step } => {
                    assert!(
                        sensed.contains(&step),
                        "transfer of step {step} that was never sensed"
                    );
                    pending_decodes.push_back(step);
                }
                ReadAction::SetFeature { phases } => {
                    if phases.is_some() {
                        feature_installs += 1;
                    } else {
                        feature_rollbacks += 1;
                    }
                    awaiting_feature = true;
                }
                ReadAction::Reset => {
                    // Reset kills any in-flight/queued speculation.
                    pending_senses.clear();
                }
                ReadAction::CompleteSuccess { step } => outcome = Some(Outcome::Success { step }),
                ReadAction::CompleteFailure => outcome = Some(Outcome::Failure),
            }
            continue;
        }
        // Deliver one protocol event, feature completions first (they block
        // the die), then sensings, then (lagged) decodes.
        if awaiting_feature {
            awaiting_feature = false;
            actions.extend(controller.on_feature_applied(ctx));
        } else if !pending_senses.is_empty()
            && (pending_decodes.len() <= lag || pending_decodes.is_empty())
        {
            let step = pending_senses.pop_front().expect("non-empty");
            sensed.push(step);
            actions.extend(controller.on_sense_done(ctx, step));
        } else if let Some(step) = pending_decodes.pop_front() {
            let ok = succeeds(step);
            let margin = if ok { 30 } else { 0 };
            actions.extend(controller.on_decode_done(ctx, step, ok, margin));
        } else if !pending_senses.is_empty() {
            let step = pending_senses.pop_front().expect("non-empty");
            sensed.push(step);
            actions.extend(controller.on_sense_done(ctx, step));
        } else {
            panic!("protocol stalled: no actions, no events, no completion");
        }
    }
    // Any installed reduced timing must be rolled back by completion time
    // (counting actions issued up to and including the completing batch).
    // AR2-Regular is exempt: leaving the reduction installed die-wide is its
    // documented design (§8's regular-read extension).
    for a in actions {
        if let ReadAction::SetFeature { phases: None } = a {
            feature_rollbacks += 1;
        }
    }
    assert!(
        controller.name() == "AR2-Regular" || feature_rollbacks >= feature_installs,
        "reduced timing left installed: {feature_installs} installs vs {feature_rollbacks} rollbacks"
    );
    outcome.expect("loop exits only with an outcome")
}

fn controllers() -> Vec<Box<dyn RetryController>> {
    let rpt = ReadTimingParamTable::default();
    vec![
        Box::new(BaselineController::new()),
        Box::new(Pr2Controller::new()),
        Box::new(Ar2Controller::new(rpt.clone())),
        Box::new(PnAr2Controller::new(rpt.clone())),
        Box::new(PsoController::new(BaselineController::new())),
        Box::new(PsoController::new(PnAr2Controller::new(rpt.clone()))),
        Box::new(EagerPnAr2Controller::new(
            rpt.clone(),
            ExpectedStepsTable::default(),
            2.0,
        )),
        Box::new(RegularAr2Controller::new(rpt)),
    ]
}

fn ctx_for(txn: u32, pec: f64, months: f64, max_step: u32) -> ReadContext {
    ReadContext {
        txn: TxnId(txn),
        die: 0,
        condition: OperatingCondition::new(pec, months, 30.0),
        cold: true,
        max_step,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every mechanism completes successfully when a reachable step succeeds,
    /// at any decode lag, and reports a step inside the success window.
    #[test]
    fn all_mechanisms_succeed_on_reachable_pages(
        required in 0u32..38,
        plateau in 0u32..4,
        lag in 0usize..4,
        pec in prop::sample::select(vec![0.0, 1000.0, 2000.0]),
        months in prop::sample::select(vec![0.0, 6.0, 12.0]),
    ) {
        for (i, mut c) in controllers().into_iter().enumerate() {
            let ctx = ctx_for(1000 + i as u32, pec, months, 40);
            let out = drive(c.as_mut(), &ctx, required, plateau, lag);
            match out {
                Outcome::Success { step } => {
                    prop_assert!(
                        step >= required && step <= required + plateau,
                        "{}: succeeded at {step}, window [{required}, {}]",
                        c.name(),
                        required + plateau
                    );
                    c.on_end(&ctx, Some(step));
                }
                Outcome::Failure => {
                    prop_assert!(false, "{} failed a reachable page (N={required})", c.name());
                }
            }
        }
    }

    /// When no step can succeed, every mechanism reports failure (and still
    /// terminates and rolls back timing).
    #[test]
    fn all_mechanisms_fail_cleanly_on_unreadable_pages(
        lag in 0usize..4,
        max_step in 3u32..20,
    ) {
        for (i, mut c) in controllers().into_iter().enumerate() {
            let ctx = ctx_for(2000 + i as u32, 2000.0, 12.0, max_step);
            // required step beyond the table ⇒ nothing succeeds.
            let out = drive(c.as_mut(), &ctx, max_step + 10, 0, lag);
            prop_assert_eq!(out, Outcome::Failure);
            c.on_end(&ctx, None);
        }
    }
}
