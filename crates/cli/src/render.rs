//! Markdown/ASCII rendering of figure data.

/// Renders a markdown table.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (c, w) in cells.iter().zip(widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
    };
    line(header, &widths, &mut out);
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Renders a probability value as a compact shade cell (Fig. 5's gray scale).
pub fn shade(p: f64) -> &'static str {
    match p {
        p if p <= 0.0 => "  ",
        p if p < 0.05 => "░░",
        p if p < 0.2 => "▒▒",
        p if p < 0.5 => "▓▓",
        _ => "██",
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats an optional latency in µs — `—` when the class has no samples
/// (an empty class has no tail; rendering `0.0` would fabricate one).
pub fn us_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "—".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = markdown_table(
            &["a".into(), "bb".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a  "));
        assert!(lines[2].contains("| 1  "));
    }

    #[test]
    fn shades_cover_range() {
        assert_eq!(shade(0.0), "  ");
        assert_eq!(shade(0.1), "▒▒");
        assert_eq!(shade(0.9), "██");
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.315), "31.5%");
    }

    #[test]
    fn us_opt_renders_dash_for_empty_classes() {
        assert_eq!(us_opt(Some(114.04)), "114.0");
        assert_eq!(us_opt(None), "—");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        markdown_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }
}
