//! `repro` — regenerate every table and figure of the ASPLOS'21 read-retry
//! paper from this repository's models and simulator.
//!
//! ```text
//! repro <command> [--quick] [--seed N] [--jobs N]
//!
//! commands:
//!   table1   NAND timing parameters
//!   table2   workload read/cold ratios (synthesized traces vs. paper)
//!   fig4b    RBER collapse over the last retry steps
//!   fig5     retry-step probability map vs. (P/E cycles, retention)
//!   fig7     M_ERR / ECC-capability margin in the final retry step
//!   fig8     ΔM_ERR vs. individual timing-parameter reduction
//!   fig9     M_ERR vs. joint (ΔtPRE, ΔtDISCH) reduction
//!   fig10    temperature effect on tPRE reduction
//!   fig11    minimum safe tPRE (the RPT source data)
//!   rpt      the derived Read-timing Parameter Table
//!   fig14    response time: Baseline / PR2 / AR2 / PnAR2 / NoRR
//!   fig15    response time: PSO vs. PSO+PnAR2
//!   matrix   the full Fig. 14 evaluation matrix (wall-clock on stderr)
//!   sweep-qd closed-loop tail latency vs. queue depth (--queue-depth list;
//!            --queues N --arb rr|wrr adds the NVMe multi-queue front end;
//!            --gc-policy NAME [--gc-budget N] picks the GC policy)
//!   sweep-rate  open-loop tail latency vs. offered load (--rate list;
//!            same --queues/--arb/--weights/--burst/--window and
//!            --gc-policy/--gc-budget/--gc-stress knobs as sweep-qd)
//!   perf     simulator events/sec over matrix + sweeps → BENCH_sim.json,
//!            gated at 0.7× the trailing-10 median of comparable runs
//!            (--plot renders the archived trajectory instead)
//!   snapshot precondition the current flag set's device images once and
//!            write them as a warm-start bank (--out img.rrimg); fig14,
//!            sweep-qd, sweep-rate, export, and serve replay from it via
//!            --from-image img.rrimg with byte-identical stdout
//!   serve    load an image bank once, then answer '<workload> <mechanism>
//!            <qd> [devices]' replay queries from stdin in milliseconds each
//!   extensions  the §8 future-work mechanisms (Eager-PnAR2, AR2-Regular)
//!   ablation    design-choice ablations (fixed vs adaptive tPRE, PSO guard)
//!   all      everything above
//! ```

mod commands;
mod render;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut quick = false;
    let mut seed = 0x5EED_2021u64;
    let mut jobs = 1usize;
    let mut queue_depths = vec![1u32, 4, 16];
    let mut rates = vec![0.5f64, 1.0, 2.0, 4.0];
    let mut queues = 1u32;
    let mut arb = rr_sim::config::ArbPolicy::RoundRobin;
    let mut burst = 1u32;
    let mut weights: Option<Vec<u32>> = None;
    let mut window: Option<u32> = None;
    let mut gc_policy_name: Option<String> = None;
    let mut gc_budget: Option<u32> = None;
    let mut gc_stress = false;
    let mut plot = false;
    let mut timing_wheel = false;
    let mut shards = 0u32;
    let mut devices = 1u32;
    let mut placement = rr_sim::array::PlacementPolicy::RoundRobin;
    let mut placement_given = false;
    let mut redundancy = rr_sim::array::Redundancy::None;
    let mut redundancy_given = false;
    let mut fail_device: Option<u32> = None;
    let mut fail_at_us: Option<u64> = None;
    let mut event_backend = rr_sim::config::EventBackend::Heap;
    let mut csv_dir: Option<String> = None;
    let mut from_image: Option<String> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" | "-q" => quick = true,
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed requires an integer value");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--jobs" | "-j" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&v| v >= 1)
                else {
                    eprintln!("--jobs requires an integer value >= 1");
                    return ExitCode::FAILURE;
                };
                jobs = v;
            }
            "--queue-depth" | "--qd" => {
                i += 1;
                let parsed: Option<Option<Vec<u32>>> = args.get(i).map(|s| {
                    s.split(',')
                        .map(|d| d.trim().parse::<u32>().ok().filter(|&v| v >= 1))
                        .collect::<Option<Vec<u32>>>()
                });
                let Some(Some(v)) = parsed else {
                    eprintln!("--queue-depth requires a comma-separated list of integers >= 1 (e.g. 1,4,16)");
                    return ExitCode::FAILURE;
                };
                if v.is_empty() {
                    eprintln!("--queue-depth requires at least one depth");
                    return ExitCode::FAILURE;
                }
                queue_depths = v;
            }
            "--rate" => {
                i += 1;
                let parsed: Option<Option<Vec<f64>>> = args.get(i).map(|s| {
                    s.split(',')
                        .map(|d| {
                            // Any finite positive rate is accepted;
                            // ReplayMode::try_open_loop_rate clamps sub-ppm
                            // values to its 1 ppm fixed-point floor.
                            d.trim()
                                .parse::<f64>()
                                .ok()
                                .filter(|v| v.is_finite() && *v > 0.0)
                        })
                        .collect::<Option<Vec<f64>>>()
                });
                let Some(Some(v)) = parsed else {
                    eprintln!("--rate requires a comma-separated list of positive multipliers (e.g. 0.5,1,2,4)");
                    return ExitCode::FAILURE;
                };
                if v.is_empty() {
                    eprintln!("--rate requires at least one multiplier");
                    return ExitCode::FAILURE;
                }
                rates = v;
            }
            "--queues" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&v| v >= 1)
                else {
                    eprintln!("--queues requires an integer value >= 1");
                    return ExitCode::FAILURE;
                };
                queues = v;
            }
            "--arb" => {
                i += 1;
                arb = match args.get(i).map(String::as_str) {
                    Some("rr") => rr_sim::config::ArbPolicy::RoundRobin,
                    Some("wrr") => rr_sim::config::ArbPolicy::WeightedRoundRobin,
                    _ => {
                        eprintln!("--arb requires 'rr' or 'wrr'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--burst" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&v| v >= 1)
                else {
                    eprintln!("--burst requires an integer value >= 1");
                    return ExitCode::FAILURE;
                };
                burst = v;
            }
            "--weights" => {
                i += 1;
                let parsed: Option<Option<Vec<u32>>> = args.get(i).map(|s| {
                    s.split(',')
                        .map(|d| d.trim().parse::<u32>().ok().filter(|&v| v >= 1))
                        .collect::<Option<Vec<u32>>>()
                });
                let Some(Some(v)) = parsed else {
                    eprintln!(
                        "--weights requires a comma-separated list of integers >= 1 (e.g. 3,1)"
                    );
                    return ExitCode::FAILURE;
                };
                if v.is_empty() {
                    eprintln!("--weights requires at least one weight");
                    return ExitCode::FAILURE;
                }
                weights = Some(v);
            }
            "--window" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&v| v >= 1)
                else {
                    eprintln!("--window requires an integer value >= 1");
                    return ExitCode::FAILURE;
                };
                window = Some(v);
            }
            "--gc-policy" => {
                i += 1;
                let Some(v) = args.get(i).filter(|s| !s.starts_with('-')) else {
                    eprintln!(
                        "--gc-policy requires a policy name \
                         (greedy, read-preempt, windowed-tokens, or queue-shield)"
                    );
                    return ExitCode::FAILURE;
                };
                gc_policy_name = Some(v.clone());
            }
            "--gc-budget" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u32>().ok()) else {
                    eprintln!("--gc-budget requires a non-negative integer value");
                    return ExitCode::FAILURE;
                };
                gc_budget = Some(v);
            }
            "--plot" => plot = true,
            "--timing-wheel" => timing_wheel = true,
            "--shards" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u32>().ok()) else {
                    eprintln!("--shards requires a non-negative integer value");
                    return ExitCode::FAILURE;
                };
                shards = v;
            }
            "--devices" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&v| v >= 1)
                else {
                    eprintln!("--devices requires an integer value >= 1");
                    return ExitCode::FAILURE;
                };
                devices = v;
            }
            "--placement" => {
                i += 1;
                let parsed = args
                    .get(i)
                    .and_then(|s| rr_sim::array::PlacementPolicy::parse(s));
                let Some(v) = parsed else {
                    eprintln!("--placement requires 'rr', 'hash', or 'tier'");
                    return ExitCode::FAILURE;
                };
                placement = v;
                placement_given = true;
            }
            "--redundancy" => {
                i += 1;
                let parsed = args
                    .get(i)
                    .and_then(|s| rr_sim::array::Redundancy::parse(s));
                let Some(v) = parsed else {
                    eprintln!(
                        "--redundancy requires 'none', 'replicate:R' (R >= 2), or \
                         'ec:K:N' (1 <= K < N)"
                    );
                    return ExitCode::FAILURE;
                };
                redundancy = v;
                redundancy_given = true;
            }
            "--fail-device" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u32>().ok()) else {
                    eprintln!("--fail-device requires a device index");
                    return ExitCode::FAILURE;
                };
                fail_device = Some(v);
            }
            "--fail-at-us" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("--fail-at-us requires a trace time in microseconds");
                    return ExitCode::FAILURE;
                };
                fail_at_us = Some(v);
            }
            "--event-backend" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("--event-backend requires heap, wheel, or auto");
                    return ExitCode::FAILURE;
                };
                event_backend = match rr_sim::config::EventBackend::parse(v) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("--event-backend: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--gc-stress" => gc_stress = true,
            "--csv" => {
                i += 1;
                let Some(v) = args.get(i).filter(|s| !s.starts_with('-')) else {
                    eprintln!("--csv requires an output directory");
                    return ExitCode::FAILURE;
                };
                csv_dir = Some(v.clone());
            }
            "--from-image" => {
                i += 1;
                let Some(v) = args.get(i).filter(|s| !s.starts_with('-')) else {
                    eprintln!("--from-image requires an image-bank file path");
                    return ExitCode::FAILURE;
                };
                from_image = Some(v.clone());
            }
            "--out" => {
                i += 1;
                let Some(v) = args.get(i).filter(|s| !s.starts_with('-')) else {
                    eprintln!("--out requires an output file path");
                    return ExitCode::FAILURE;
                };
                out = Some(v.clone());
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            // Attached short form: -j4 (as in `repro matrix -j1`).
            j if j.len() > 2 && j.starts_with("-j") && !j.starts_with("--") => {
                let Ok(v) = j[2..].parse::<usize>() else {
                    eprintln!("-jN requires an integer value >= 1");
                    return ExitCode::FAILURE;
                };
                if v < 1 {
                    eprintln!("-jN requires an integer value >= 1");
                    return ExitCode::FAILURE;
                }
                jobs = v;
            }
            c if command.is_none() && !c.starts_with('-') => command = Some(c.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                print_help();
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(command) = command else {
        print_help();
        return ExitCode::FAILURE;
    };
    if let Some(w) = &weights {
        if w.len() != queues as usize {
            eprintln!(
                "--weights expects one weight per queue ({} queues, {} weights)",
                queues,
                w.len()
            );
            return ExitCode::FAILURE;
        }
        // Round-robin ignores weights; accepting them would label the
        // per-queue tables with weights that never took effect.
        if arb == rr_sim::config::ArbPolicy::RoundRobin {
            eprintln!("--weights requires --arb wrr (round-robin ignores weights)");
            return ExitCode::FAILURE;
        }
    }
    if gc_budget.is_some() && gc_policy_name.is_none() {
        eprintln!("--gc-budget requires --gc-policy read-preempt|windowed-tokens|queue-shield");
        return ExitCode::FAILURE;
    }
    let gc_policy =
        match rr_sim::gc::GcPolicy::parse(gc_policy_name.as_deref().unwrap_or("greedy"), gc_budget)
        {
            Ok(p) => p,
            Err(e) => {
                eprintln!("--gc-policy: {e}");
                return ExitCode::FAILURE;
            }
        };
    if plot && command != "perf" {
        eprintln!("--plot applies to the perf command only");
        return ExitCode::FAILURE;
    }
    // The sharded engine only backs the evaluation runners; accepting the
    // flag on characterization commands would silently run them serially.
    if shards > 0
        && !matches!(
            command.as_str(),
            "fig14" | "fig15" | "matrix" | "sweep-qd" | "sweep-rate" | "perf" | "serve" | "all"
        )
    {
        eprintln!(
            "--shards applies to fig14, fig15, matrix, sweep-qd, sweep-rate, perf, and serve"
        );
        return ExitCode::FAILURE;
    }
    // The array layer only backs the evaluation runners and the replay
    // server; accepting --devices elsewhere would silently run one device.
    if (devices > 1 || placement_given)
        && !matches!(
            command.as_str(),
            "fig14" | "sweep-qd" | "sweep-rate" | "export" | "perf" | "serve"
        )
    {
        eprintln!(
            "--devices/--placement apply to fig14, sweep-qd, sweep-rate, export, perf, and serve"
        );
        return ExitCode::FAILURE;
    }
    // The redundancy layer sits on the same array runners (not serve, whose
    // query protocol has no redundancy axis yet).
    if (redundancy_given || fail_device.is_some() || fail_at_us.is_some())
        && !matches!(
            command.as_str(),
            "fig14" | "sweep-qd" | "sweep-rate" | "export" | "perf"
        )
    {
        eprintln!(
            "--redundancy/--fail-device/--fail-at-us apply to fig14, sweep-qd, sweep-rate, \
             export, and perf"
        );
        return ExitCode::FAILURE;
    }
    if redundancy.is_redundant() {
        let span = match redundancy {
            rr_sim::array::Redundancy::Replicate { r } => r,
            rr_sim::array::Redundancy::Ec { n, .. } => n,
            rr_sim::array::Redundancy::None => 1,
        };
        if devices < 2 {
            eprintln!("--redundancy {} requires --devices >= 2", redundancy.name());
            return ExitCode::FAILURE;
        }
        if span > devices {
            eprintln!(
                "--redundancy {} spans {span} devices but the array has only {devices}",
                redundancy.name()
            );
            return ExitCode::FAILURE;
        }
    }
    if fail_device.is_some() != fail_at_us.is_some() {
        eprintln!("--fail-device and --fail-at-us must be given together");
        return ExitCode::FAILURE;
    }
    if let Some(d) = fail_device {
        if devices < 2 {
            eprintln!("--fail-device requires --devices >= 2 (survivors must exist)");
            return ExitCode::FAILURE;
        }
        if d >= devices {
            eprintln!("--fail-device {d} is out of range for {devices} devices");
            return ExitCode::FAILURE;
        }
    }
    // The GC knobs only reach the load sweeps, their export, and the
    // device-image verbs that feed/serve those sweeps; accepting them
    // elsewhere would print default-policy results under a flag the user
    // believes took effect.
    let gc_flags_given = gc_policy_name.is_some() || gc_budget.is_some() || gc_stress;
    if gc_flags_given
        && !matches!(
            command.as_str(),
            "sweep-qd" | "sweep-rate" | "export" | "snapshot" | "serve"
        )
    {
        eprintln!(
            "--gc-policy/--gc-budget/--gc-stress apply to sweep-qd, sweep-rate, export, \
             snapshot, and serve only"
        );
        return ExitCode::FAILURE;
    }
    if out.is_some() && command != "snapshot" {
        eprintln!("--out applies to the snapshot command only");
        return ExitCode::FAILURE;
    }
    if command == "snapshot" && out.is_none() {
        eprintln!("snapshot requires --out FILE (the image bank to write)");
        return ExitCode::FAILURE;
    }
    if from_image.is_some()
        && !matches!(
            command.as_str(),
            "fig14" | "sweep-qd" | "sweep-rate" | "export" | "serve"
        )
    {
        eprintln!("--from-image applies to fig14, sweep-qd, sweep-rate, export, and serve");
        return ExitCode::FAILURE;
    }
    let opts = commands::Options {
        quick,
        seed,
        jobs,
        queue_depths,
        rates,
        queues,
        arb,
        burst,
        weights,
        window,
        gc_policy,
        gc_stress,
        plot,
        timing_wheel,
        shards,
        devices,
        placement,
        redundancy,
        fail_device,
        fail_at_us,
        event_backend,
        csv_dir,
        from_image,
        out,
    };
    let mut failed = false;
    let mut run = |name: &str| -> bool {
        match name {
            "table1" => commands::table1(),
            "table2" => commands::table2(&opts),
            "fig4b" => commands::fig4b(&opts),
            "fig5" => commands::fig5(&opts),
            "fig7" => commands::fig7(&opts),
            "fig8" => commands::fig8(&opts),
            "fig9" => commands::fig9(&opts),
            "fig10" => commands::fig10(&opts),
            "fig11" => commands::fig11(&opts),
            "rpt" => commands::rpt(&opts),
            "extensions" => commands::extensions(&opts),
            "ablation" => commands::ablation(&opts),
            "export" => failed |= !commands::export(&opts),
            "fig14" => failed |= !commands::fig14(&opts),
            "fig15" => commands::fig15(&opts),
            "matrix" => commands::matrix(&opts),
            "sweep-qd" => failed |= !commands::sweep_qd(&opts),
            "sweep-rate" => failed |= !commands::sweep_rate(&opts),
            "snapshot" => failed |= !commands::snapshot(&opts),
            "serve" => failed |= !commands::serve(&opts),
            "perf" => {
                failed |= !if opts.plot {
                    commands::perf_plot(&opts)
                } else {
                    commands::perf(&opts)
                }
            }
            _ => return false,
        }
        true
    };
    if command == "all" {
        for name in [
            "table1",
            "table2",
            "fig4b",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "rpt",
            "fig14",
            "fig15",
            "sweep-qd",
            "sweep-rate",
            "extensions",
            "ablation",
        ] {
            run(name);
        }
        ExitCode::SUCCESS
    } else if run(&command) {
        if failed {
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown command: {command}");
        print_help();
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "repro — regenerate the ASPLOS'21 read-retry paper's tables and figures\n\
         \n\
         usage: repro <command> [--quick] [--seed N] [--jobs N] [--queue-depth L]\n\
         \n\
         commands: table1 table2 fig4b fig5 fig7 fig8 fig9 fig10 fig11 rpt fig14 fig15\n           matrix sweep-qd sweep-rate perf extensions ablation export snapshot serve all\n\
         \n\
         --quick   smaller populations / traces (fast smoke run)\n\
         --seed N  deterministic seed (default 0x5EED2021)\n\
         --jobs N  worker threads for the evaluation matrices and sweeps\n           (default 1; any N produces results identical to the serial run)\n\
         --queue-depth L  comma-separated closed-loop queue depths for sweep-qd\n           (default 1,4,16; alias --qd)\n\
         --rate L  comma-separated arrival-rate multipliers for sweep-rate\n           (default 0.5,1,2,4)\n\
         --queues N  host submission queues feeding the device in the sweeps\n           (default 1 = plain front end; trace striped request i -> queue i mod N)\n\
         --arb rr|wrr  queue arbitration policy (default rr; wrr defaults to\n           descending weights N..1 unless --weights is given)\n\
         --weights L  comma-separated per-queue WRR weights (e.g. 3,1)\n\
         --burst N  commands fetched per arbitration credit (default 1)\n\
         --window N  device admission window; default: the swept queue depth\n           for sweep-qd, unbounded for sweep-rate\n\
         --gc-policy NAME  GC policy for sweep-qd/sweep-rate/export: greedy\n           (default, bit-identical to the pre-policy engine), read-preempt,\n           windowed-tokens, or queue-shield\n\
         --gc-budget N  per-policy knob: preemptions per GC job (read-preempt,\n           default 4), tokens per 1 ms window (windowed-tokens, default 8),\n           or the shielded queue index (queue-shield, default 0)\n\
         --gc-stress  run the sweeps on the GC-stress workload (shrunken\n           geometry, write-heavy hot range filling the usable space) so GC\n           contends with host traffic; with --queues 2 every read lands on\n           queue 0 and every write on queue 1\n\
         --plot    for perf: render the BENCH_history.jsonl events/sec\n           trajectory (sparkline + BENCH_trajectory.csv) instead of measuring\n\
         --timing-wheel  drive simulations from the hierarchical timing-wheel\n           event queue instead of the default binary heap (bit-identical\n           results; see README 'Performance')\n\
         --shards N  run each device on the channel-sharded engine with up to\n           N worker threads (fig14/fig15/matrix/sweep-qd/sweep-rate/perf/\n           serve; default 0 = serial engine; any N >= 1 produces output\n           byte-identical to --shards 1, and the perf gate keys sharded\n           runs separately from serial ones)\n\
         --devices N  route each trace across an array of N full-footprint\n           replica devices (fig14/sweep-qd/sweep-rate/export/perf/serve;\n           default 1 = byte-identical to the single-device stack) and report\n           array-merged distributions plus per-device tails\n\
         --placement rr|hash|tier  how requests pick a device with\n           --devices N: rr stripes round-robin (default), hash routes by\n           LPN hash, tier sends the hot low-LPN quarter to the first half\n           of the array and hashes the rest over the other half\n\
         --redundancy none|replicate:R|ec:K:N  fan each request out across\n           the array (fig14/sweep-qd/sweep-rate/export/perf, needs\n           --devices >= 2): replicated reads complete at the 1st of R\n           copies, EC reads at the K-th of their stripe fan-out; 'none'\n           (default) is byte-identical to the flag being absent\n\
         --fail-device D --fail-at-us T  kill device D at trace time T:\n           later requests route around it and deterministic rebuild reads\n           land on the survivors; a T beyond the trace horizon is\n           byte-identical to no failure\n\
         --event-backend heap|wheel|auto  event-queue backend policy\n           (default heap = honor --timing-wheel alone; auto picks the wheel\n           once the per-shard steady-state queue depth crosses the measured\n           crossover; bit-identical results either way)\n\
         --csv DIR for export: write figure + evaluation CSVs into DIR\n\
         --out FILE  for snapshot: write the preconditioned device-image bank\n           (with --gc-stress: the stress image under the GC geometry;\n           otherwise every MSRC/YCSB evaluation footprint)\n\
         --from-image FILE  warm-start fig14/sweep-qd/sweep-rate/export/serve\n           from a snapshot bank instead of preconditioning — stdout is\n           byte-identical; stderr's 'precondition' phase collapses to the\n           file load\n\
         \n\
         perf regression gate: fails below 0.7x the median of the last 10\n\
         comparable archived runs (same --quick/--jobs/--seed/--queue-depth/\n\
         --rate/--timing-wheel/--shards/--devices/--placement/--redundancy/\n\
         --fail-device+--fail-at-us); engages once 3 comparable runs exist —\n\
         see README 'Perf regression gate'"
    );
}
