//! One function per regenerated table/figure.

use crate::render::{markdown_table, pct, shade, us_opt};
use rr_charact::figures::{self, TimingParam};
use rr_charact::platform::TestPlatform;
use rr_core::experiment::{
    reduction_vs, run_matrix_array, run_matrix_array_from, run_matrix_parallel, run_matrix_sharded,
    run_one_queued_array_from, run_one_queued_from, run_one_queued_sharded_from,
    run_qd_sweep_array, run_qd_sweep_array_from, run_rate_sweep_array, run_rate_sweep_array_from,
    ArrayCellStats, ArraySetup, Mechanism, OperatingPoint, QueueSetup,
};
use rr_core::rpt::ReadTimingParamTable;
use rr_flash::calibration::ECC_CAPABILITY_PER_KIB;
use rr_flash::timing::NandTimings;
use rr_sim::array::{DeviceSet, FailurePlan, PlacementPolicy, Redundancy};
use rr_sim::config::{ArbPolicy, EventBackend, SsdConfig};
use rr_sim::gc::GcPolicy;
use rr_sim::metrics::{GcStalls, LatencySummary};
use rr_sim::shard::ShardArena;
use rr_sim::snapshot::ImageBank;
use rr_sim::ssd::SimArena;
use rr_util::time::SimTime;
use rr_workloads::msrc::MsrcWorkload;
use rr_workloads::trace::Trace;
use rr_workloads::ycsb::YcsbWorkload;
use std::time::{Duration, Instant};

/// Shared CLI options.
pub struct Options {
    /// Smaller populations / traces.
    pub quick: bool,
    /// Deterministic seed.
    pub seed: u64,
    /// Worker threads for the evaluation matrices (1 = serial; any value
    /// produces identical results).
    pub jobs: usize,
    /// Closed-loop queue depths for `sweep-qd`.
    pub queue_depths: Vec<u32>,
    /// Open-loop arrival-rate multipliers for `sweep-rate`.
    pub rates: Vec<f64>,
    /// Host submission queues feeding the device in the load sweeps
    /// (1 = the plain single-generator front end).
    pub queues: u32,
    /// RR/WRR arbitration for the multi-queue front end.
    pub arb: ArbPolicy,
    /// Consecutive commands fetched per arbitration credit.
    pub burst: u32,
    /// Per-queue WRR weights (`None` = descending defaults under WRR).
    pub weights: Option<Vec<u32>>,
    /// Device admission window override (`None` = each sweep's default).
    pub window: Option<u32>,
    /// Garbage-collection policy for the load sweeps and their exports
    /// (`GcPolicy::Greedy` = the pre-policy default behavior).
    pub gc_policy: GcPolicy,
    /// Run the load sweeps on the GC-stress workload (shrunken geometry +
    /// write-heavy hot-range trace filling the usable space) instead of the
    /// MSRC/YCSB set, so garbage collection actually contends with host
    /// traffic and the GC policies become distinguishable.
    pub gc_stress: bool,
    /// `repro perf --plot`: render the archived throughput trajectory
    /// instead of measuring a new run.
    pub plot: bool,
    /// Drive simulations from the hierarchical timing-wheel event queue
    /// instead of the default binary heap (`hotpath.timing_wheel`).
    pub timing_wheel: bool,
    /// Run each device on the channel-sharded engine with up to this many
    /// worker threads (0 = the legacy serial engine). Any value ≥ 1
    /// produces output byte-identical to `--shards 1`; the perf gate keys
    /// sharded runs separately from serial ones.
    pub shards: u32,
    /// Devices in the simulated array (1 = the classic single-device stack,
    /// byte-identical to the pre-array CLI). `fig14`, the load sweeps,
    /// `export`, `perf`, and `serve` accept N ≥ 2 and report merged
    /// distributions plus per-device tail attribution.
    pub devices: u32,
    /// How array runs route host requests across devices (`rr` round-robin
    /// stripe, `hash` LPN-hash, `tier` hot/cold tiering). Ignored at
    /// `--devices 1`.
    pub placement: PlacementPolicy,
    /// Redundancy scheme layered over the placement (`none`, `replicate:R`,
    /// `ec:K:N`). Reads complete at the first-of-R replica / k-th stripe
    /// response; `none` keeps the plain array path byte-identical.
    pub redundancy: Redundancy,
    /// Fail-stop device index for the rebuild-traffic experiment
    /// (`--fail-device D --fail-at-us T`, both required together).
    pub fail_device: Option<u32>,
    /// Simulated failure time in microseconds for `--fail-device`.
    pub fail_at_us: Option<u64>,
    /// Event-queue backend policy (`hotpath.event_backend`): `heap` honors
    /// `--timing-wheel` alone, `wheel` pins the wheel, `auto` picks the
    /// wheel once the per-shard steady-state depth crosses the measured
    /// crossover. Bit-identical results either way.
    pub event_backend: EventBackend,
    /// Output directory for `export` CSVs.
    pub csv_dir: Option<String>,
    /// Warm-start the replaying commands from this device-image bank
    /// (`--from-image img.rrimg`) instead of preconditioning in-process.
    pub from_image: Option<String>,
    /// Output path of `repro snapshot` (`--out img.rrimg`).
    pub out: Option<String>,
}

impl Options {
    fn chips(&self) -> usize {
        if self.quick {
            16
        } else {
            160
        }
    }

    fn pages_per_chip(&self) -> usize {
        if self.quick {
            64
        } else {
            256
        }
    }

    fn trace_len(&self) -> usize {
        if self.quick {
            2_000
        } else {
            5_000
        }
    }

    fn platform(&self) -> TestPlatform {
        TestPlatform::new(self.chips(), self.seed)
    }

    /// The simulator configuration every command starts from: the scaled
    /// test geometry, the CLI seed, and the selected event-queue backend.
    fn sim_base(&self) -> SsdConfig {
        SsdConfig::scaled_for_tests()
            .with_seed(self.seed)
            .with_timing_wheel(self.timing_wheel)
            .with_event_backend(self.event_backend)
    }

    /// The `--devices`/`--placement`/`--redundancy`/`--fail-device` knobs as
    /// an [`ArraySetup`]; one device (or `none` with no failure) keeps every
    /// runner on its pre-redundancy code path.
    fn array_setup(&self) -> ArraySetup {
        ArraySetup {
            devices: self.devices,
            placement: self.placement,
            redundancy: self.redundancy,
            failure: match (self.fail_device, self.fail_at_us) {
                (Some(d), Some(t)) => Some(FailurePlan {
                    device: d,
                    at: SimTime::from_us(t),
                }),
                _ => None,
            },
        }
    }

    fn queue_setup(&self) -> QueueSetup {
        QueueSetup {
            queues: self.queues,
            arb: self.arb,
            burst: self.burst,
            weights: self.weights.clone(),
            window: self.window,
        }
    }
}

fn heading(title: &str, paper: &str) {
    println!("\n## {title}");
    println!("_Paper reference: {paper}_\n");
}

/// Table 1: NAND timing parameters.
pub fn table1() {
    heading("Table 1 — NAND flash timing parameters", "§7.1, Table 1");
    let t = NandTimings::table1();
    let rows = vec![
        vec![
            "tR (avg)".into(),
            format!("{}", t.sense.t_r_avg()),
            "90 µs".into(),
        ],
        vec!["tPRE".into(), format!("{}", t.sense.t_pre), "24 µs".into()],
        vec!["tEVAL".into(), format!("{}", t.sense.t_eval), "5 µs".into()],
        vec![
            "tDISCH".into(),
            format!("{}", t.sense.t_disch),
            "10 µs".into(),
        ],
        vec!["tPROG".into(), format!("{}", t.t_prog), "700 µs".into()],
        vec!["tBERS".into(), format!("{}", t.t_bers), "5 ms".into()],
        vec!["tSET".into(), format!("{}", t.t_set), "1 µs".into()],
        vec![
            "tRST (read)".into(),
            format!("{}", t.t_rst_read),
            "5 µs".into(),
        ],
        vec![
            "tDMA (16 KiB)".into(),
            format!("{}", t.t_dma),
            "16 µs".into(),
        ],
        vec!["tECC".into(), format!("{}", t.t_ecc), "20 µs".into()],
    ];
    print!(
        "{}",
        markdown_table(
            &["Parameter".into(), "This repo".into(), "Paper".into()],
            &rows
        )
    );
}

fn all_traces(opts: &Options) -> Vec<(Trace, bool, f64, f64)> {
    let mut out = Vec::new();
    for w in MsrcWorkload::ALL {
        let (rr, cr) = w.table2_ratios();
        out.push((
            w.synthesize(opts.trace_len(), opts.seed),
            w.read_dominant(),
            rr,
            cr,
        ));
    }
    for w in YcsbWorkload::ALL {
        let (rr, cr) = w.table2_ratios();
        out.push((
            w.synthesize(opts.trace_len(), opts.seed),
            w.read_dominant(),
            rr,
            cr,
        ));
    }
    out
}

/// Table 2: workload read/cold ratios, measured on the synthesized traces.
pub fn table2(opts: &Options) {
    heading(
        "Table 2 — I/O characteristics of the evaluated workloads",
        "§7.1, Table 2",
    );
    let mut rows = Vec::new();
    for (trace, _, paper_rr, paper_cr) in all_traces(opts) {
        let s = trace.stats();
        rows.push(vec![
            trace.name.clone(),
            format!("{:.2}", s.read_ratio),
            format!("{paper_rr:.2}"),
            format!("{:.2}", s.cold_ratio),
            format!("{paper_cr:.2}"),
            s.requests.to_string(),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "Workload".into(),
                "read ratio".into(),
                "(paper)".into(),
                "cold ratio".into(),
                "(paper)".into(),
                "requests".into(),
            ],
            &rows
        )
    );
}

/// Fig. 4b: RBER collapse in the last retry steps.
pub fn fig4b(opts: &Options) {
    heading(
        "Fig. 4b — RBER reduction in the last retry steps",
        "§2.4: pages needing N = 16 and N = 21 steps; errors collapse only at the final step",
    );
    let platform = opts.platform();
    let series = figures::fig4b(&platform, 2000.0, 12.0, &[16, 21], 3);
    for s in series {
        println!("page requiring N = {} retry steps:", s.total_steps);
        let rows: Vec<Vec<String>> = s
            .errors_by_distance
            .iter()
            .map(|&(d, e)| {
                vec![
                    if d == 0 {
                        "N (final)".into()
                    } else {
                        format!("N-{d}")
                    },
                    e.to_string(),
                    if e <= ECC_CAPABILITY_PER_KIB {
                        "corrected ✓".into()
                    } else {
                        "fail".into()
                    },
                ]
            })
            .collect();
        print!(
            "{}",
            markdown_table(
                &[
                    "step".into(),
                    "errors/KiB".into(),
                    "vs. 72-bit capability".into()
                ],
                &rows
            )
        );
    }
}

/// Fig. 5: retry-step probability map.
pub fn fig5(opts: &Options) {
    heading(
        "Fig. 5 — read-retry characteristics vs. (P/E cycles, retention age)",
        "§3.1: 54.4 % ≥ 7 steps at (0, 6 mo); ≥ 8 steps at (1K, 3 mo); mean 19.9 at (2K, 12 mo)",
    );
    let platform = opts.platform();
    let cells = figures::fig5(&platform, opts.pages_per_chip());
    let mut rows = Vec::new();
    for c in &cells {
        rows.push(vec![
            format!("{}", c.pec as u64),
            format!("{}", c.months as u64),
            format!("{:.1}", c.mean),
            c.min.to_string(),
            c.max.to_string(),
            pct(c.hist.fraction_at_least(7)),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "P/E cycles".into(),
                "months".into(),
                "mean steps".into(),
                "min".into(),
                "max".into(),
                "P(≥7 steps)".into(),
            ],
            &rows
        )
    );
    // The probability heat map itself, one panel per P/E count.
    for &pec in &figures::PEC_SWEEP {
        println!(
            "\nP(#retry steps) at {} P/E cycles (rows: steps 0-25, cols: months):",
            pec as u64
        );
        print!("      ");
        for &m in &figures::RETENTION_SWEEP {
            print!("{:>4}mo", m as u64);
        }
        println!();
        for steps in (0..=25).rev() {
            print!("  {steps:>3} ");
            for &m in &figures::RETENTION_SWEEP {
                let cell = cells
                    .iter()
                    .find(|c| c.pec == pec && c.months == m)
                    .expect("cell in sweep");
                print!("  {} ", shade(cell.hist.probability(steps)));
            }
            println!();
        }
    }
}

/// Fig. 7: ECC-capability margin in the final retry step.
pub fn fig7(opts: &Options) {
    heading(
        "Fig. 7 — M_ERR (max errors/KiB) in the final retry step",
        "§5.1: M_ERR(0,3)=15, M_ERR(1K,12)=30, M_ERR(2K,12)=35 @85 °C; +3 @55 °C, +5 @30 °C; 44.4 % margin left at worst",
    );
    let mut platform = opts.platform();
    let cells = figures::fig7(&mut platform, opts.pages_per_chip());
    let mut rows = Vec::new();
    for c in &cells {
        if c.months == 0.0 || c.months == 3.0 || c.months == 6.0 || c.months == 12.0 {
            rows.push(vec![
                format!("{} °C", c.temp_c),
                format!("{}", c.pec as u64),
                format!("{}", c.months as u64),
                c.m_err.to_string(),
                c.margin.to_string(),
                pct(c.margin as f64 / ECC_CAPABILITY_PER_KIB as f64),
            ]);
        }
    }
    print!(
        "{}",
        markdown_table(
            &[
                "temp".into(),
                "P/E cycles".into(),
                "months".into(),
                "M_ERR".into(),
                "margin".into(),
                "margin %".into(),
            ],
            &rows
        )
    );
}

/// Fig. 8: ΔM_ERR per individually reduced timing parameter.
pub fn fig8(opts: &Options) {
    heading(
        "Fig. 8 — ΔM_ERR vs. individual timing-parameter reduction (85 °C)",
        "§5.2.1: safe 47 %/10 %/27 % at (2K,12); tEVAL 20 % costs ~30 errors even fresh",
    );
    let mut platform = opts.platform();
    let series = figures::fig8(&mut platform, opts.pages_per_chip());
    for param in [TimingParam::Pre, TimingParam::Eval, TimingParam::Disch] {
        println!("\nΔ{}:", param.name());
        let mut rows = Vec::new();
        for s in series.iter().filter(|s| s.param == param) {
            let mut row = vec![format!("({}, {} mo)", s.pec as u64, s.months as u64)];
            for &(x, d) in &s.points {
                row.push(format!("{}→{d:+}", pct(x)));
            }
            rows.push(row);
        }
        let width = rows.first().map(|r| r.len()).unwrap_or(1);
        let mut header = vec!["condition".into()];
        header.extend((1..width).map(|i| format!("point {i}")));
        print!("{}", markdown_table(&header, &rows));
    }
}

/// Fig. 9: joint (ΔtPRE, ΔtDISCH) reduction.
pub fn fig9(opts: &Options) {
    heading(
        "Fig. 9 — M_ERR under joint tPRE+tDISCH reduction",
        "§5.2.2: joint reduction is super-additive; ⟨54 %, 20 %⟩ at (1K,0) blows past the capability",
    );
    let mut platform = opts.platform();
    let cells = figures::fig9(&mut platform, opts.pages_per_chip() / 2);
    for (pec, months) in [
        (1000.0, 0.0),
        (2000.0, 0.0),
        (0.0, 12.0),
        (1000.0, 12.0),
        (2000.0, 12.0),
    ] {
        println!(
            "\ncondition (PEC = {}, t_RET = {} mo): M_ERR matrix",
            pec as u64, months as u64
        );
        let disch_levels: Vec<f64> = {
            let mut v: Vec<f64> = cells
                .iter()
                .filter(|c| c.pec == pec && c.months == months)
                .map(|c| c.d_disch)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v.dedup();
            v
        };
        let mut header = vec!["ΔtPRE \\ ΔtDISCH".to_string()];
        header.extend(disch_levels.iter().map(|d| pct(*d)));
        let pre_levels = [0.0, 0.14, 0.27, 0.4, 0.47, 0.54];
        let mut rows = Vec::new();
        for &dp in &pre_levels {
            let mut row = vec![pct(dp)];
            for &dd in &disch_levels {
                let m = cells
                    .iter()
                    .find(|c| {
                        c.pec == pec && c.months == months && c.d_pre == dp && c.d_disch == dd
                    })
                    .map(|c| c.m_err)
                    .unwrap_or(0);
                row.push(if m > ECC_CAPABILITY_PER_KIB {
                    format!("{m}!")
                } else {
                    m.to_string()
                });
            }
            rows.push(row);
        }
        print!("{}", markdown_table(&header, &rows));
        println!("('!' marks values beyond the 72-bit ECC capability)");
    }
}

/// Fig. 10: temperature effect on tPRE reduction.
pub fn fig10(opts: &Options) {
    heading(
        "Fig. 10 — temperature-induced extra errors under tPRE reduction",
        "§5.2.3: at most ~7 extra errors at (2K, 12 mo); lower temperature ⇒ more errors",
    );
    let mut platform = opts.platform();
    let cells = figures::fig10(&mut platform, opts.pages_per_chip() / 2);
    let mut rows = Vec::new();
    for c in cells.iter().filter(|c| c.d_pre > 0.0) {
        rows.push(vec![
            format!("{} °C", c.temp_c),
            format!("{}", c.pec as u64),
            format!("{}", c.months as u64),
            pct(c.d_pre),
            format!("{:+}", c.extra_errors),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "temp".into(),
                "P/E cycles".into(),
                "months".into(),
                "ΔtPRE".into(),
                "extra errors vs 85 °C".into(),
            ],
            &rows
        )
    );
}

/// Fig. 11: minimum safe tPRE per condition.
pub fn fig11(opts: &Options) {
    heading(
        "Fig. 11 — minimum tPRE for safe tRETRY reduction (14-bit margin)",
        "§5.2.3: between 40 % (2K, 12 mo) and 54 % (fresh) reduction is safe under any condition",
    );
    let mut platform = opts.platform();
    let cells = figures::fig11(&mut platform, opts.pages_per_chip());
    let mut rows = Vec::new();
    for c in &cells {
        rows.push(vec![
            format!("{}", c.pec as u64),
            format!("{}", c.months as u64),
            pct(c.safe_reduction),
            c.m_err_at_reduction.to_string(),
            format!("{}", ECC_CAPABILITY_PER_KIB - c.m_err_at_reduction),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "P/E cycles".into(),
                "months".into(),
                "max safe ΔtPRE".into(),
                "M_ERR @ reduction".into(),
                "remaining margin".into(),
            ],
            &rows
        )
    );
}

/// The derived Read-timing Parameter Table (Fig. 13's table).
pub fn rpt(_opts: &Options) {
    heading(
        "RPT — Read-timing Parameter Table (AR²'s lookup table)",
        "§6.2: ~36 entries, 144 bytes per chip; reduced tPRE per (PEC, retention) bucket",
    );
    let table = ReadTimingParamTable::default();
    let mut rows = Vec::new();
    for r in table.rows() {
        // The table's open-ended buckets use `f64::MAX` as their sentinel.
        let pec = if r.pec_max < f64::MAX {
            format!("< {}", r.pec_max as u64)
        } else {
            "≥ 2000".into()
        };
        let ret = if r.retention_months_max < f64::MAX {
            format!("< {:.2} mo", r.retention_months_max)
        } else {
            "≥ 12 mo".into()
        };
        let t_pre_us = 24.0 * (1.0 - r.pre_reduction);
        rows.push(vec![
            pec,
            ret,
            pct(r.pre_reduction),
            format!("{t_pre_us:.1} µs"),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &["PEC".into(), "t_RET".into(), "ΔtPRE".into(), "tPRE".into()],
            &rows
        )
    );
    println!(
        "table size: {} bytes (paper estimates 144 B)",
        table.storage_bytes()
    );
}

/// Milliseconds of a measured phase, for the stderr timing split.
fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The stderr wall-clock split the replaying commands report: device aging
/// (`precondition`, which a `--from-image` warm start reduces to a file
/// load) vs the replay itself. Timing stays on stderr so stdout remains
/// byte-comparable across cold and warm starts.
fn eprint_timing(cmd: &str, precondition: Duration, replay: Duration) {
    eprintln!(
        "{cmd}: precondition {:.1} ms, replay {:.1} ms",
        ms(precondition),
        ms(replay)
    );
}

/// The warm-start bank a command forks across its cells: loaded from
/// `--from-image` when given, preconditioned in-process otherwise. `None`
/// (with the error on stderr) when the image file is missing, truncated,
/// corrupt, or of an unsupported format version.
fn obtain_bank(
    cmd: &str,
    from_image: Option<&str>,
    base: &SsdConfig,
    footprints: impl Iterator<Item = u64>,
) -> Option<ImageBank> {
    match from_image {
        Some(path) => match ImageBank::load(path) {
            Ok(bank) => Some(bank),
            Err(e) => {
                eprintln!("{cmd}: cannot load image bank {path}: {e}");
                None
            }
        },
        None => Some(
            ImageBank::preconditioned(base, footprints)
                .expect("experiment configuration must be valid"),
        ),
    }
}

fn eval_inputs(opts: &Options) -> (SsdConfig, Vec<(Trace, bool)>, Vec<OperatingPoint>) {
    let base = opts.sim_base();
    let traces: Vec<(Trace, bool)> = all_traces(opts)
        .into_iter()
        .map(|(t, rd, _, _)| (t, rd))
        .collect();
    let points = if opts.quick {
        vec![OperatingPoint::new(2000.0, 6.0)]
    } else {
        OperatingPoint::evaluation_grid()
    };
    (base, traces, points)
}

fn run_eval(opts: &Options, mechanisms: &[Mechanism]) -> Vec<rr_core::experiment::MatrixCell> {
    let (base, traces, points) = eval_inputs(opts);
    run_matrix_array(
        &base,
        &traces,
        &points,
        mechanisms,
        opts.jobs,
        opts.shards,
        opts.array_setup(),
    )
}

/// [`run_eval`] with the device-image plumbing: the bank comes from
/// `--from-image` when given, the matrix forks it across cells, and the
/// precondition/replay wall-clock split lands on stderr. `None` (error
/// already reported) when the bank cannot be loaded or does not cover this
/// run's workloads.
fn run_eval_timed(
    opts: &Options,
    cmd: &str,
    mechanisms: &[Mechanism],
) -> Option<Vec<rr_core::experiment::MatrixCell>> {
    let (base, traces, points) = eval_inputs(opts);
    let t0 = Instant::now();
    let bank = obtain_bank(
        cmd,
        opts.from_image.as_deref(),
        &base,
        traces.iter().map(|(t, _)| t.footprint_pages),
    )?;
    let precondition = t0.elapsed();
    let t0 = Instant::now();
    match run_matrix_array_from(
        &base,
        &traces,
        &points,
        mechanisms,
        opts.jobs,
        opts.shards,
        opts.array_setup(),
        &bank,
    ) {
        Ok(cells) => {
            eprint_timing(cmd, precondition, t0.elapsed());
            Some(cells)
        }
        Err(e) => {
            eprintln!("{cmd}: {e}");
            None
        }
    }
}

fn print_matrix(cells: &[rr_core::experiment::MatrixCell], mechanisms: &[Mechanism]) {
    let mut keys: Vec<(String, f64, f64)> = cells
        .iter()
        .map(|c| (c.workload.clone(), c.point.pec, c.point.retention_months))
        .collect();
    keys.dedup();
    let mut header = vec!["workload".into(), "PEC".into(), "t_RET".into()];
    header.extend(mechanisms.iter().map(|m| m.name().to_string()));
    let mut rows = Vec::new();
    let mut p99_rows = Vec::new();
    for (w, pec, months) in keys {
        let key = vec![
            w.clone(),
            format!("{}", pec as u64),
            format!("{} mo", months as u64),
        ];
        let mut row = key.clone();
        let mut p99_row = key;
        for m in mechanisms {
            let cell = cells
                .iter()
                .find(|c| {
                    c.workload == w
                        && c.point.pec == pec
                        && c.point.retention_months == months
                        && c.mechanism == m.name()
                })
                .expect("matrix is complete");
            row.push(format!("{:.3}", cell.normalized));
            p99_row.push(us_opt(cell.read_latency.p99));
        }
        rows.push(row);
        p99_rows.push(p99_row);
    }
    print!("{}", markdown_table(&header, &rows));
    println!("\nread p99 (µs; — = no reads in the workload):");
    print!("{}", markdown_table(&header, &p99_rows));
}

/// Fig. 14: normalized response time of the five SSD configurations.
/// Returns `false` when a `--from-image` bank cannot be loaded or does not
/// cover the evaluation workloads.
pub fn fig14(opts: &Options) -> bool {
    heading(
        "Fig. 14 — normalized response time (Baseline / PR2 / AR2 / PnAR2 / NoRR)",
        "§7.2: PR2 ≤38.3 % (avg 17.7 %), AR2 ≤18.1 % (avg 11.9 %), PnAR2 ≤51.8 % (avg 28.9 %; 35.2 % @ (2K, 6 mo))",
    );
    let Some(cells) = run_eval_timed(opts, "fig14", &Mechanism::FIG14) else {
        return false;
    };
    print_matrix(&cells, &Mechanism::FIG14);
    if opts.devices > 1 {
        let labelled = || {
            cells.iter().filter_map(|c| {
                c.array.as_ref().map(|a| {
                    (
                        format!(
                            "{} @ ({}, {} mo) / {}",
                            c.workload,
                            c.point.pec as u64,
                            c.point.retention_months as u64,
                            c.mechanism
                        ),
                        a,
                    )
                })
            })
        };
        print_array_tails(labelled());
        print_redundancy(labelled());
    }
    println!();
    for m in ["PR2", "AR2", "PnAR2"] {
        let s = reduction_vs(&cells, m, "Baseline", false);
        println!(
            "{m} vs Baseline: avg {} / max {} response-time reduction",
            pct(s.mean),
            pct(s.max)
        );
    }
    let norr = reduction_vs(&cells, "NoRR", "Baseline", false);
    println!(
        "ideal NoRR bound: avg {} / max {}",
        pct(norr.mean),
        pct(norr.max)
    );
    true
}

/// Fig. 15: PSO and PSO+PnAR2.
pub fn fig15(opts: &Options) {
    heading(
        "Fig. 15 — our techniques on top of the PSO state of the art",
        "§7.3: PSO+PnAR2 reduces response time vs PSO by up to 31.5 % (avg 17 %) on read-dominant workloads",
    );
    let cells = run_eval(opts, &Mechanism::FIG15);
    print_matrix(&cells, &Mechanism::FIG15);
    println!();
    let s = reduction_vs(&cells, "PSO+PnAR2", "PSO", true);
    println!(
        "PSO+PnAR2 vs PSO (read-dominant): avg {} / max {} response-time reduction",
        pct(s.mean),
        pct(s.max)
    );
    let s_all = reduction_vs(&cells, "PSO+PnAR2", "PSO", false);
    println!(
        "PSO+PnAR2 vs PSO (all workloads): avg {} / max {}",
        pct(s_all.mean),
        pct(s_all.max)
    );
}

/// One MSRC and one YCSB workload (the full evaluation suite's two trace
/// families); `--quick` keeps a single workload for smoke runs.
fn sweep_traces(opts: &Options) -> Vec<Trace> {
    let mut traces = vec![MsrcWorkload::Mds1.synthesize(opts.trace_len(), opts.seed)];
    if !opts.quick {
        traces.push(YcsbWorkload::C.synthesize(opts.trace_len(), opts.seed));
    }
    traces
}

/// The `--gc-stress` SSD: the test-scaled geometry shrunk further (16
/// blocks/plane × 12 pages/block) so the stress trace's footprint fills the
/// usable space and garbage collection runs continuously during the sweep.
/// The synthesized MSRC/YCSB footprints stay proportional to their touched
/// pages, so the stock sweeps never trigger GC — this mode exists to make
/// GC-vs-host contention (and the `--gc-policy` knob) observable.
fn gc_stress_base(opts: &Options) -> SsdConfig {
    let mut cfg = opts.sim_base().with_gc_policy(opts.gc_policy);
    cfg.chip.blocks_per_plane = 16;
    cfg.chip.pages_per_block = 12;
    cfg
}

/// The (config, trace set) a load sweep runs on: the stock MSRC/YCSB set,
/// or the GC-stress pair (shared generator
/// [`rr_workloads::synth::gc_stress_trace`]) under `--gc-stress`.
fn sweep_setup(opts: &Options) -> (SsdConfig, Vec<Trace>) {
    if opts.gc_stress {
        let base = gc_stress_base(opts);
        let trace = rr_workloads::synth::gc_stress_trace(base.max_lpns(), opts.trace_len());
        (base, vec![trace])
    } else {
        let base = opts.sim_base().with_gc_policy(opts.gc_policy);
        (base, sweep_traces(opts))
    }
}

/// Queue-depth sweep: closed-loop replay at each configured queue depth,
/// reporting full per-class latency distributions and throughput. Returns
/// `false` when a `--from-image` bank cannot be loaded or does not cover
/// the sweep workloads.
pub fn sweep_qd(opts: &Options) -> bool {
    heading(
        "QD sweep — closed-loop tail latency vs. queue depth",
        "load as a first-class knob: fio-style --iodepth sweep of the §7.1 SSD at the (2K, 6 mo) highlight point",
    );
    let (base, traces) = sweep_setup(opts);
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let point = OperatingPoint::new(2000.0, 6.0);
    let setup = opts.queue_setup();
    let t0 = Instant::now();
    let Some(bank) = obtain_bank(
        "sweep-qd",
        opts.from_image.as_deref(),
        &base,
        traces.iter().map(|t| t.footprint_pages),
    ) else {
        return false;
    };
    let precondition = t0.elapsed();
    let t0 = Instant::now();
    let cells = match run_qd_sweep_array_from(
        &base,
        &traces,
        point,
        &opts.queue_depths,
        &mechanisms,
        &setup,
        opts.jobs,
        opts.shards,
        opts.array_setup(),
        &bank,
    ) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("sweep-qd: {e}");
            return false;
        }
    };
    eprint_timing("sweep-qd", precondition, t0.elapsed());

    let class_row = |label: &str, s: &LatencySummary| {
        vec![
            label.to_string(),
            s.count.to_string(),
            us_opt(s.p50),
            us_opt(s.p95),
            us_opt(s.p99),
            us_opt(s.p999),
        ]
    };
    println!("latency distributions (µs; — = class empty in this run):");
    let mut rows = Vec::new();
    for c in &cells {
        let prefix = format!("{} / {} / QD={}", c.workload, c.mechanism, c.queue_depth);
        for (label, s) in [
            ("reads", &c.reads),
            ("writes", &c.writes),
            ("retried reads", &c.retried_reads),
        ] {
            let mut row = vec![prefix.clone()];
            row.extend(class_row(label, s));
            rows.push(row);
        }
    }
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "class".into(),
                "n".into(),
                "p50".into(),
                "p95".into(),
                "p99".into(),
                "p99.9".into(),
            ],
            &rows
        )
    );

    println!("\nthroughput and means:");
    let mut rows = Vec::new();
    for c in &cells {
        rows.push(vec![
            c.workload.clone(),
            c.mechanism.clone(),
            c.queue_depth.to_string(),
            format!("{:.1}", c.avg_response_us),
            format!("{:.2}", c.kiops),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "workload".into(),
                "mechanism".into(),
                "QD".into(),
                "avg resp (µs)".into(),
                "kIOPS".into(),
            ],
            &rows
        )
    );
    if setup.queues > 1 && opts.devices == 1 {
        print_per_queue_reads(
            &setup,
            cells.iter().map(|c| {
                (
                    format!("{} / {} / QD={}", c.workload, c.mechanism, c.queue_depth),
                    &c.per_queue_reads,
                )
            }),
        );
    }
    if opts.gc_policy != GcPolicy::Greedy && opts.devices == 1 {
        print_per_queue_gc(
            opts.gc_policy,
            cells.iter().map(|c| {
                (
                    format!("{} / {} / QD={}", c.workload, c.mechanism, c.queue_depth),
                    &c.per_queue_gc,
                )
            }),
        );
    }
    if opts.devices > 1 {
        let labelled = || {
            cells.iter().filter_map(|c| {
                c.array.as_ref().map(|a| {
                    (
                        format!("{} / {} / QD={}", c.workload, c.mechanism, c.queue_depth),
                        a,
                    )
                })
            })
        };
        print_array_tails(labelled());
        print_redundancy(labelled());
    }
    println!(
        "\n(closed-loop: trace timestamps ignored, QD requests kept outstanding;\n\
         QD=1 is the serial-device reference — deeper queues trade latency for\n\
         throughput via multi-die interleaving under channel contention)"
    );
    true
}

/// The per-queue read-latency table of a multi-queue sweep: one row per
/// (cell, submission queue), so WRR weight skew is visible per queue.
fn print_per_queue_reads<'a>(
    setup: &QueueSetup,
    cells: impl Iterator<Item = (String, &'a Vec<LatencySummary>)>,
) {
    let weights = setup.resolved_weights();
    println!(
        "\nper-queue read latency (µs; {} arbitration, weights {:?}, burst {}):",
        match setup.arb {
            ArbPolicy::RoundRobin => "RR",
            ArbPolicy::WeightedRoundRobin => "WRR",
        },
        weights,
        setup.burst,
    );
    let mut rows = Vec::new();
    for (prefix, per_queue) in cells {
        for (q, s) in per_queue.iter().enumerate() {
            rows.push(vec![
                prefix.clone(),
                format!("q{q} (w={})", weights.get(q).copied().unwrap_or(1)),
                s.count.to_string(),
                us_opt(s.p50),
                us_opt(s.p95),
                us_opt(s.p99),
                us_opt(s.p999),
            ]);
        }
    }
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "queue".into(),
                "n".into(),
                "p50".into(),
                "p95".into(),
                "p99".into(),
                "p99.9".into(),
            ],
            &rows
        )
    );
}

/// The per-queue GC-stall attribution table of a sweep run under a
/// non-default GC policy: who absorbed GC interference, and how much.
fn print_per_queue_gc<'a>(
    policy: GcPolicy,
    cells: impl Iterator<Item = (String, &'a Vec<GcStalls>)>,
) {
    println!(
        "\nper-queue GC stalls ({} policy; stall µs = suspension latency per \
         (forced) suspension + residual busy time per wait):",
        policy.name()
    );
    let mut rows = Vec::new();
    for (prefix, per_queue) in cells {
        for (q, gc) in per_queue.iter().enumerate() {
            rows.push(vec![
                prefix.clone(),
                format!("q{q}"),
                gc.suspensions.to_string(),
                gc.preemptions.to_string(),
                gc.waits.to_string(),
                gc.deferrals.to_string(),
                format!("{:.1}", gc.stall_us),
            ]);
        }
    }
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "queue".into(),
                "suspensions".into(),
                "preemptions".into(),
                "waits".into(),
                "deferrals".into(),
                "stall µs".into(),
            ],
            &rows
        )
    );
}

/// The array tail tables of a `--devices N` run: one per-device read-tail
/// and GC-attribution row per (cell, device), then the array-level
/// amplification summary (array tail vs. best/median device, slowest-device
/// attribution) that makes one device's GC storm visible in array p99.9.
fn print_array_tails<'a>(cells: impl Iterator<Item = (String, &'a ArrayCellStats)>) {
    let cells: Vec<(String, &ArrayCellStats)> = cells.collect();
    let Some((_, first)) = cells.first() else {
        return;
    };
    println!(
        "\nper-device read tails ({} device(s), {} placement):",
        first.devices, first.placement
    );
    let mut rows = Vec::new();
    for (prefix, a) in &cells {
        for (d, tail) in a.per_device.iter().enumerate() {
            rows.push(vec![
                prefix.clone(),
                format!("d{d}"),
                tail.reads.count.to_string(),
                us_opt(tail.reads.p99),
                us_opt(tail.reads.p999),
                tail.gc.stalls().to_string(),
                format!("{:.1}", tail.gc.stall_us),
            ]);
        }
    }
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "device".into(),
                "reads".into(),
                "p99".into(),
                "p99.9".into(),
                "gc stalls".into(),
                "gc stall µs".into(),
            ],
            &rows
        )
    );
    println!("\narray tail amplification (array p99/p99.9 ÷ median device):");
    let amp = |v: Option<f64>| v.map_or_else(|| "—".into(), |v| format!("{v:.2}x"));
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(prefix, a)| {
            vec![
                prefix.clone(),
                amp(a.amplification_p99),
                amp(a.amplification_p999),
                us_opt(a.best_read_p999),
                us_opt(a.median_read_p999),
                a.slowest_device
                    .map_or_else(|| "—".into(), |d| format!("d{d}")),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "amp p99".into(),
                "amp p99.9".into(),
                "best p99.9".into(),
                "median p99.9".into(),
                "slowest".into(),
            ],
            &rows
        )
    );
}

/// The redundancy tables of a `--redundancy`/`--fail-device` run: the
/// wait-for-k completion tail, straggler rescues (reads that would have
/// waited on the slowest device's GC window), and the per-device fan-out /
/// rebuild-read counts that show survivors absorbing reconstruction traffic.
/// Prints nothing when no cell carries redundancy stats, so the plain array
/// path's stdout stays byte-identical.
fn print_redundancy<'a>(cells: impl Iterator<Item = (String, &'a ArrayCellStats)>) {
    let cells: Vec<(String, &rr_sim::array::RedundancyStats)> = cells
        .filter_map(|(prefix, a)| a.redundancy.as_ref().map(|r| (prefix, r)))
        .collect();
    if cells.is_empty() {
        return;
    }
    println!("\nredundancy: wait-for-k completion tail and straggler rescues:");
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|(prefix, r)| {
            vec![
                prefix.clone(),
                r.scheme.clone(),
                r.wait_for_k.count.to_string(),
                us_opt(r.wait_for_k.p50),
                us_opt(r.wait_for_k.p99),
                us_opt(r.wait_for_k.p999),
                r.rescued_reads.to_string(),
                format!("{:.1}", r.rescued_saved_us),
                r.failed_device
                    .map_or_else(|| "—".into(), |d| format!("d{d}")),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "scheme".into(),
                "reads".into(),
                "p50".into(),
                "p99".into(),
                "p99.9".into(),
                "rescued".into(),
                "saved µs".into(),
                "failed".into(),
            ],
            &rows
        )
    );
    println!("\nredundancy: per-device fan-out and rebuild reads:");
    let mut rows = Vec::new();
    for (prefix, r) in &cells {
        for d in 0..r.fanout_reads.len() {
            rows.push(vec![
                prefix.clone(),
                format!("d{d}"),
                r.fanout_reads[d].to_string(),
                r.fanout_writes[d].to_string(),
                r.rebuild_reads[d].to_string(),
            ]);
        }
    }
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "device".into(),
                "read copies".into(),
                "write copies".into(),
                "rebuild reads".into(),
            ],
            &rows
        )
    );
}

/// Offered-load sweep: open-loop replay with each configured arrival-rate
/// multiplier — the hockey-stick sibling of `sweep-qd`. Returns `false`
/// when a `--from-image` bank cannot be loaded or does not cover the sweep
/// workloads.
pub fn sweep_rate(opts: &Options) -> bool {
    heading(
        "Rate sweep — open-loop tail latency vs. offered load",
        "arrival-rate multiplier over the trace's native timing; latency turns up sharply past device saturation",
    );
    let (base, traces) = sweep_setup(opts);
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let point = OperatingPoint::new(2000.0, 6.0);
    let setup = opts.queue_setup();
    let t0 = Instant::now();
    let Some(bank) = obtain_bank(
        "sweep-rate",
        opts.from_image.as_deref(),
        &base,
        traces.iter().map(|t| t.footprint_pages),
    ) else {
        return false;
    };
    let precondition = t0.elapsed();
    let t0 = Instant::now();
    let cells = match run_rate_sweep_array_from(
        &base,
        &traces,
        point,
        &opts.rates,
        &mechanisms,
        &setup,
        opts.jobs,
        opts.shards,
        opts.array_setup(),
        &bank,
    ) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("sweep-rate: {e}");
            return false;
        }
    };
    eprint_timing("sweep-rate", precondition, t0.elapsed());

    println!("latency distributions (µs; — = class empty in this run):");
    let mut rows = Vec::new();
    for c in &cells {
        let prefix = format!("{} / {} / rate={}", c.workload, c.mechanism, c.rate);
        for (label, s) in [
            ("reads", &c.reads),
            ("writes", &c.writes),
            ("retried reads", &c.retried_reads),
        ] {
            rows.push(vec![
                prefix.clone(),
                label.to_string(),
                s.count.to_string(),
                us_opt(s.p50),
                us_opt(s.p95),
                us_opt(s.p99),
                us_opt(s.p999),
            ]);
        }
    }
    print!(
        "{}",
        markdown_table(
            &[
                "run".into(),
                "class".into(),
                "n".into(),
                "p50".into(),
                "p95".into(),
                "p99".into(),
                "p99.9".into(),
            ],
            &rows
        )
    );

    println!("\nthroughput and means:");
    let mut rows = Vec::new();
    for c in &cells {
        rows.push(vec![
            c.workload.clone(),
            c.mechanism.clone(),
            format!("{}", c.rate),
            format!("{:.1}", c.avg_response_us),
            format!("{:.2}", c.kiops),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "workload".into(),
                "mechanism".into(),
                "rate ×".into(),
                "avg resp (µs)".into(),
                "kIOPS".into(),
            ],
            &rows
        )
    );
    if setup.queues > 1 && opts.devices == 1 {
        print_per_queue_reads(
            &setup,
            cells.iter().map(|c| {
                (
                    format!("{} / {} / rate={}", c.workload, c.mechanism, c.rate),
                    &c.per_queue_reads,
                )
            }),
        );
    }
    if opts.gc_policy != GcPolicy::Greedy && opts.devices == 1 {
        print_per_queue_gc(
            opts.gc_policy,
            cells.iter().map(|c| {
                (
                    format!("{} / {} / rate={}", c.workload, c.mechanism, c.rate),
                    &c.per_queue_gc,
                )
            }),
        );
    }
    if opts.devices > 1 {
        let labelled = || {
            cells.iter().filter_map(|c| {
                c.array.as_ref().map(|a| {
                    (
                        format!("{} / {} / rate={}", c.workload, c.mechanism, c.rate),
                        a,
                    )
                })
            })
        };
        print_array_tails(labelled());
        print_redundancy(labelled());
    }
    println!(
        "\n(open-loop: trace timestamps divided by the rate multiplier; rates past\n\
         the device's saturation point produce the latency hockey-stick that\n\
         closed-loop QD sweeps cannot show)"
    );
    true
}

/// The full Fig. 14 evaluation matrix as a single command (the wall-clock
/// target of the hot-path work; timing diagnostics go to stderr so stdout
/// stays byte-comparable across runs and `--jobs` values).
pub fn matrix(opts: &Options) {
    heading(
        "Evaluation matrix — Fig. 14 mechanism set over the operating grid",
        "§7.2's full grid in one command; stderr reports wall-clock and events/sec",
    );
    let t0 = Instant::now();
    let Some(cells) = run_eval_timed(opts, "matrix", &Mechanism::FIG14) else {
        return;
    };
    let wall = t0.elapsed().as_secs_f64();
    print_matrix(&cells, &Mechanism::FIG14);
    let events: u64 = cells.iter().map(|c| c.events).sum();
    eprintln!(
        "matrix: {} cells, {events} simulated events in {wall:.2} s ({:.0} events/sec)",
        cells.len(),
        events as f64 / wall.max(1e-9)
    );
}

/// The perf regression gate fails a run below this fraction of the trailing
/// median events/sec.
const PERF_GATE_RATIO: f64 = 0.7;
/// Comparable archived runs required before the gate engages.
const PERF_GATE_MIN_RUNS: usize = 3;
/// The gate's trailing window (most recent comparable runs).
const PERF_GATE_TRAILING: usize = 10;
/// Append-only events/sec archive, one JSON object per line.
const PERF_HISTORY_FILE: &str = "BENCH_history.jsonl";

/// Extracts `"key": <number>` from a single-line JSON object. The workspace's
/// serde is an offline no-op shim, so the history file sticks to one object
/// per line and is parsed by key lookup.
fn json_f64_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": true|false` from a single-line JSON object.
fn json_bool_field(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts `"key": "value"` from a single-line JSON object (values never
/// contain escapes here — they are joined numeric lists).
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// One parsed `BENCH_history.jsonl` record: the comparability key plus the
/// measured throughput.
struct PerfRecord {
    quick: bool,
    jobs: f64,
    seed: f64,
    qd: String,
    rates: String,
    wheel: bool,
    shards: f64,
    devices: f64,
    placement: String,
    redundancy: String,
    fail: String,
    events_per_sec: f64,
}

/// Parses the events/sec archive, skipping malformed or truncated lines
/// (e.g. an interrupted CI append) with a single stderr warning — one bad
/// record must not wedge every subsequent gated run.
fn parse_perf_history(history: &str) -> Vec<PerfRecord> {
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in history.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let record = (|| {
            Some(PerfRecord {
                quick: json_bool_field(line, "quick")?,
                jobs: json_f64_field(line, "jobs")?,
                seed: json_f64_field(line, "seed")?,
                qd: json_str_field(line, "qd")?.to_string(),
                rates: json_str_field(line, "rates")?.to_string(),
                // Absent in pre-wheel archives: those runs measured the heap.
                wheel: json_bool_field(line, "wheel").unwrap_or(false),
                // Absent in pre-sharding archives: those runs used the legacy
                // serial engine (`--shards 0`).
                shards: json_f64_field(line, "shards").unwrap_or(0.0),
                // Absent in pre-array archives: those runs measured the
                // single-device stack (`--devices 1`, placement irrelevant).
                devices: json_f64_field(line, "devices").unwrap_or(1.0),
                placement: json_str_field(line, "placement")
                    .unwrap_or("rr")
                    .to_string(),
                // Absent in pre-redundancy archives: those runs measured the
                // plain array path with no failure injection.
                redundancy: json_str_field(line, "redundancy")
                    .unwrap_or("none")
                    .to_string(),
                fail: json_str_field(line, "fail").unwrap_or("none").to_string(),
                events_per_sec: json_f64_field(line, "events_per_sec").filter(|e| e.is_finite())?,
            })
        })();
        match record {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!(
            "warning: skipped {skipped} malformed line(s) in {PERF_HISTORY_FILE} — \
             a corrupt or truncated archive record is ignored, not fatal"
        );
    }
    records
}

/// The sweep axes that shape a `repro perf` measurement, joined for the
/// archive's comparability key: two runs are only comparable when they
/// measured the same queue-depth and rate lists.
fn perf_axes(opts: &Options) -> (String, String) {
    let qd = opts
        .queue_depths
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let rates = opts
        .rates
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    (qd, rates)
}

/// The `--fail-device`/`--fail-at-us` pair as a comparability-key axis:
/// `"d{D}@{T}"` when failure injection is on, `"none"` otherwise (matching
/// the backfill for pre-redundancy archive records).
fn perf_fail_axis(opts: &Options) -> String {
    match (opts.fail_device, opts.fail_at_us) {
        (Some(d), Some(t)) => format!("d{d}@{t}"),
        _ => "none".to_string(),
    }
}

/// The ROADMAP's perf trajectory gate. The canonical spec lives in the
/// README's "Perf regression gate" subsection; in code terms: this run's
/// overall events/sec is compared against the median of the last
/// [`PERF_GATE_TRAILING`] (10) *comparable* archived runs in
/// [`PERF_HISTORY_FILE`], where comparable means the same `--quick`,
/// `--jobs`, `--seed`, `--queue-depth`, `--rate`, `--timing-wheel`,
/// `--shards`, `--devices`, `--placement`, `--redundancy`, and
/// `--fail-device`/`--fail-at-us` values (wheel and heap runs are archived
/// under separate keys, sharded runs never gate against serial ones,
/// N-device array runs never gate against single-device ones, and redundant
/// or failure-injected runs never gate against plain ones — the engines and
/// routed workloads have different per-event costs). Returns
/// `false` — failing `repro perf` and therefore CI — when throughput drops
/// below [`PERF_GATE_RATIO`] (0.7×) of that median; skips gracefully while
/// fewer than [`PERF_GATE_MIN_RUNS`] (3) comparable runs exist. Only runs
/// that pass (or skip) the gate are archived — appending regressed runs
/// would let repeated re-runs drag the median down until a real regression
/// passes.
fn perf_gate(opts: &Options, events_per_sec: f64) -> bool {
    let (qd_axis, rate_axis) = perf_axes(opts);
    let fail_axis = perf_fail_axis(opts);
    let history = std::fs::read_to_string(PERF_HISTORY_FILE).unwrap_or_default();
    let prior: Vec<f64> = parse_perf_history(&history)
        .into_iter()
        .filter(|r| {
            r.quick == opts.quick
                && r.jobs == opts.jobs as f64
                && r.seed == opts.seed as f64
                && r.qd == qd_axis
                && r.rates == rate_axis
                && r.wheel == opts.timing_wheel
                && r.shards == opts.shards as f64
                && r.devices == opts.devices as f64
                && r.placement == opts.placement.name()
                && r.redundancy == opts.redundancy.name()
                && r.fail == fail_axis
        })
        .map(|r| r.events_per_sec)
        .collect();

    let recent = &prior[prior.len().saturating_sub(PERF_GATE_TRAILING)..];
    let ok = if recent.len() < PERF_GATE_MIN_RUNS {
        println!(
            "perf gate: {} comparable archived run(s) (< {PERF_GATE_MIN_RUNS}) — \
             recorded {events_per_sec:.0} events/sec, gate skipped",
            recent.len()
        );
        true
    } else {
        let mut sorted = recent.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite events/sec"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let floor = PERF_GATE_RATIO * median;
        if events_per_sec < floor {
            eprintln!(
                "perf gate: {events_per_sec:.0} events/sec is below {PERF_GATE_RATIO}× the \
                 trailing median of {} runs ({median:.0} → floor {floor:.0}) — perf \
                 regression (run not archived)",
                recent.len()
            );
            false
        } else {
            println!(
                "perf gate: {events_per_sec:.0} events/sec vs trailing median {median:.0} \
                 over {} run(s) — ok (floor {floor:.0})",
                recent.len()
            );
            true
        }
    };
    if ok {
        let line = format!(
            "{{\"quick\": {}, \"jobs\": {}, \"seed\": {}, \"qd\": \"{qd_axis}\", \
             \"rates\": \"{rate_axis}\", \"wheel\": {}, \"shards\": {}, \
             \"devices\": {}, \"placement\": \"{}\", \"redundancy\": \"{}\", \
             \"fail\": \"{fail_axis}\", \
             \"events_per_sec\": {events_per_sec:.1}}}\n",
            opts.quick,
            opts.jobs,
            opts.seed,
            opts.timing_wheel,
            opts.shards,
            opts.devices,
            opts.placement.name(),
            opts.redundancy.name()
        );
        let append = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(PERF_HISTORY_FILE)
            .and_then(|mut archive| std::io::Write::write_all(&mut archive, line.as_bytes()));
        if let Err(e) = append {
            eprintln!("perf: cannot append to {PERF_HISTORY_FILE}: {e}");
            return false;
        }
    }
    ok
}

/// One measured workload of `repro perf`.
struct PerfRow {
    name: &'static str,
    cells: usize,
    requests: u64,
    events: u64,
    wall_s: f64,
}

impl PerfRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
}

/// Measures simulator throughput (events/sec) over the evaluation matrix and
/// both load sweeps, prints a summary, and writes `BENCH_sim.json` so the
/// numbers accumulate as a tracked artifact. Every run is also appended to
/// the `BENCH_history.jsonl` archive and checked against the trailing median
/// of comparable runs (see [`perf_gate`]). Returns `false` (CLI failure) if
/// any workload processed zero events or the regression gate trips.
pub fn perf(opts: &Options) -> bool {
    heading(
        "Perf — simulator hot-path throughput",
        "events/sec over the Fig. 14 matrix and the QD/rate sweeps; written to BENCH_sim.json",
    );
    let base = opts.sim_base();
    let point = OperatingPoint::new(2000.0, 6.0);
    let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
    let mut rows = Vec::new();

    let t0 = Instant::now();
    let cells = run_eval(opts, &Mechanism::FIG14);
    rows.push(PerfRow {
        name: "matrix",
        cells: cells.len(),
        requests: (opts.trace_len() * cells.len()) as u64,
        events: cells.iter().map(|c| c.events).sum(),
        wall_s: t0.elapsed().as_secs_f64(),
    });

    let traces = sweep_traces(opts);
    let t0 = Instant::now();
    let qd = run_qd_sweep_array(
        &base,
        &traces,
        point,
        &opts.queue_depths,
        &mechanisms,
        &QueueSetup::single(),
        opts.jobs,
        opts.shards,
        opts.array_setup(),
    );
    rows.push(PerfRow {
        name: "sweep-qd",
        cells: qd.len(),
        requests: (opts.trace_len() * qd.len()) as u64,
        events: qd.iter().map(|c| c.events).sum(),
        wall_s: t0.elapsed().as_secs_f64(),
    });

    let t0 = Instant::now();
    let rate = run_rate_sweep_array(
        &base,
        &traces,
        point,
        &opts.rates,
        &mechanisms,
        &QueueSetup::single(),
        opts.jobs,
        opts.shards,
        opts.array_setup(),
    );
    rows.push(PerfRow {
        name: "sweep-rate",
        cells: rate.len(),
        requests: (opts.trace_len() * rate.len()) as u64,
        events: rate.iter().map(|c| c.events).sum(),
        wall_s: t0.elapsed().as_secs_f64(),
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.cells.to_string(),
                r.events.to_string(),
                format!("{:.3}", r.wall_s),
                format!("{:.0}", r.events_per_sec()),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "workload".into(),
                "cells".into(),
                "events".into(),
                "wall (s)".into(),
                "events/sec".into(),
            ],
            &table
        )
    );

    // Intra-run shard scaling: under `--shards N`, re-measure the matrix at
    // shards {1, N} with both event-queue backends so BENCH_sim.json records
    // how the sharded engine scales on this host (worker threads only engage
    // when the host exposes cores; on a single-core runner every shard count
    // executes inline and the ratio honestly reads ~1×).
    let mut scaling: Vec<(u32, &'static str, usize, u64, f64)> = Vec::new();
    if opts.shards > 0 {
        let (_, traces_rd, points) = eval_inputs(opts);
        let mut shard_counts = vec![1u32, opts.shards];
        shard_counts.dedup();
        for (backend, backend_name) in
            [(EventBackend::Heap, "heap"), (EventBackend::Wheel, "wheel")]
        {
            let cfg = opts.sim_base().with_event_backend(backend);
            for &s in &shard_counts {
                let t0 = Instant::now();
                let cells =
                    run_matrix_sharded(&cfg, &traces_rd, &points, &Mechanism::FIG14, opts.jobs, s);
                scaling.push((
                    s,
                    backend_name,
                    cells.len(),
                    cells.iter().map(|c| c.events).sum(),
                    t0.elapsed().as_secs_f64(),
                ));
            }
        }
        let table: Vec<Vec<String>> = scaling
            .iter()
            .map(|&(s, backend, _, events, wall_s)| {
                let base_eps = scaling
                    .iter()
                    .find(|&&(bs, bb, ..)| bs == 1 && bb == backend)
                    .map(|&(.., e, w)| e as f64 / w.max(1e-9))
                    .unwrap_or(f64::NAN);
                let eps = events as f64 / wall_s.max(1e-9);
                vec![
                    s.to_string(),
                    backend.to_string(),
                    format!("{events}"),
                    format!("{wall_s:.3}"),
                    format!("{eps:.0}"),
                    format!("{:.2}x", eps / base_eps),
                ]
            })
            .collect();
        println!("\nshard scaling (Fig. 14 matrix, speedup vs --shards 1 per backend):");
        print!(
            "{}",
            markdown_table(
                &[
                    "shards".into(),
                    "backend".into(),
                    "events".into(),
                    "wall (s)".into(),
                    "events/sec".into(),
                    "speedup".into(),
                ],
                &table
            )
        );
    }

    // Hand-rolled JSON: the workspace's serde is an offline no-op shim.
    let mut json = String::from("{\n  \"bench\": \"sim_throughput\",\n");
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str(&format!("  \"jobs\": {},\n", opts.jobs));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"wheel\": {},\n", opts.timing_wheel));
    json.push_str(&format!("  \"shards\": {},\n", opts.shards));
    json.push_str(&format!("  \"devices\": {},\n", opts.devices));
    json.push_str(&format!(
        "  \"placement\": \"{}\",\n",
        opts.placement.name()
    ));
    json.push_str(&format!(
        "  \"redundancy\": \"{}\",\n",
        opts.redundancy.name()
    ));
    json.push_str(&format!("  \"fail\": \"{}\",\n", perf_fail_axis(opts)));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"requests\": {}, \"events\": {}, \
             \"wall_s\": {:.6}, \"events_per_sec\": {:.1}}}{}\n",
            r.name,
            r.cells,
            r.requests,
            r.events,
            r.wall_s,
            r.events_per_sec(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]");
    if scaling.is_empty() {
        json.push('\n');
    } else {
        json.push_str(",\n  \"shard_scaling\": [\n");
        for (i, &(s, backend, cells, events, wall_s)) in scaling.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"shards\": {s}, \"backend\": \"{backend}\", \"cells\": {cells}, \
                 \"events\": {events}, \"wall_s\": {wall_s:.6}, \"events_per_sec\": {:.1}}}{}\n",
                events as f64 / wall_s.max(1e-9),
                if i + 1 < scaling.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n");
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write("BENCH_sim.json", &json) {
        eprintln!("perf: cannot write BENCH_sim.json: {e}");
        return false;
    }
    println!("\nwrote BENCH_sim.json");

    let ok = rows.iter().all(|r| r.events > 0);
    if !ok {
        eprintln!("perf: a workload processed zero events — the simulator did no work");
    }
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    let total_wall: f64 = rows.iter().map(|r| r.wall_s).sum();
    let overall = total_events as f64 / total_wall.max(1e-9);
    // A zero-events run is broken, not slow: fail before the gate so the
    // archive never absorbs its depressed events/sec as a baseline.
    ok && perf_gate(opts, overall)
}

/// One-line unicode sparkline over `values`, min-to-max scaled (a flat
/// series renders mid-height bars).
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            if max > min {
                BARS[(((v - min) / (max - min)) * 7.0).round() as usize]
            } else {
                BARS[3]
            }
        })
        .collect()
}

/// `repro perf --plot`: renders the `BENCH_history.jsonl` events/sec
/// trajectory (the ROADMAP's standing plot item) without measuring a new
/// run — one ASCII sparkline per comparability group (same
/// `--quick`/`--jobs`/`--seed`/`--queue-depth`/`--rate`/`--timing-wheel`/
/// `--shards`/`--devices`/`--placement`), plus a `BENCH_trajectory.csv`
/// export for external plotting.
/// Returns
/// `false` when the archive exists but holds no parsable runs, or when the
/// CSV cannot be written.
pub fn perf_plot(_opts: &Options) -> bool {
    heading(
        "Perf trajectory — archived events/sec over time",
        "BENCH_history.jsonl rendered as one sparkline per comparability group; CSV → BENCH_trajectory.csv",
    );
    let Ok(history) = std::fs::read_to_string(PERF_HISTORY_FILE) else {
        println!("no {PERF_HISTORY_FILE} yet — run `repro perf` first to record a data point");
        return true;
    };
    // Group runs by comparability key, preserving first-appearance order.
    let mut groups: Vec<(String, Vec<f64>)> = Vec::new();
    for r in parse_perf_history(&history) {
        let key = format!(
            "quick={} jobs={} seed={} qd={} rates={} wheel={} shards={} devices={} placement={}",
            r.quick, r.jobs, r.seed, r.qd, r.rates, r.wheel, r.shards, r.devices, r.placement,
        );
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, runs)) => runs.push(r.events_per_sec),
            None => groups.push((key, vec![r.events_per_sec])),
        }
    }
    if groups.is_empty() {
        eprintln!("{PERF_HISTORY_FILE} holds no parsable runs");
        return false;
    }
    let mut csv = String::from("group,run,events_per_sec\n");
    for (key, runs) in &groups {
        let min = runs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = runs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let latest = *runs.last().expect("group holds at least one run");
        println!("\n{key}  ({} run(s))", runs.len());
        println!(
            "  {}  min {min:.0} / max {max:.0} / latest {latest:.0} events/sec",
            sparkline(runs)
        );
        for (i, eps) in runs.iter().enumerate() {
            csv.push_str(&format!("\"{key}\",{i},{eps:.1}\n"));
        }
    }
    if let Err(e) = std::fs::write("BENCH_trajectory.csv", &csv) {
        eprintln!("perf: cannot write BENCH_trajectory.csv: {e}");
        return false;
    }
    println!("\nwrote BENCH_trajectory.csv");
    true
}

/// §8 extensions: Eager-PnAR2 (speculative retry start) and AR2-Regular
/// (reduced-timing regular reads), against PnAR2 and the NoRR bound.
pub fn extensions(opts: &Options) {
    heading(
        "Extensions — the paper's §8 'Discussion' mechanisms",
        "§8: speculative retry start + regular-read latency reduction",
    );
    let mechanisms = [
        Mechanism::Baseline,
        Mechanism::PnAr2,
        Mechanism::EagerPnAr2,
        Mechanism::RegularAr2,
        Mechanism::NoRR,
    ];
    let base = opts.sim_base();
    let traces: Vec<(Trace, bool)> = vec![
        (
            MsrcWorkload::Mds1.synthesize(opts.trace_len(), opts.seed),
            true,
        ),
        (
            MsrcWorkload::Stg0.synthesize(opts.trace_len(), opts.seed),
            false,
        ),
        (
            YcsbWorkload::C.synthesize(opts.trace_len(), opts.seed),
            true,
        ),
    ];
    let points = [
        OperatingPoint::new(2000.0, 12.0),
        OperatingPoint::new(1000.0, 0.0),
    ];
    let cells = run_matrix_parallel(&base, &traces, &points, &mechanisms, opts.jobs);
    print_matrix(&cells, &mechanisms);
    println!();
    for m in ["Eager-PnAR2", "AR2-Regular"] {
        let s = reduction_vs(&cells, m, "PnAR2", false);
        println!("{m} vs PnAR2: avg {} / max {}", pct(s.mean), pct(s.max));
    }
    println!(
        "\nEager-PnAR2 helps most on aged data (skips the doomed default read);\n\
         AR2-Regular helps most on fresh/hot data (no-retry reads sense ~25 % faster)."
    );
}

/// Ablations of the design choices DESIGN.md calls out.
pub fn ablation(opts: &Options) {
    use rr_core::experiment::run_one;
    use rr_core::mechanisms::PnAr2Controller;
    use rr_core::pso::{PsoController, PsoPredictor};
    use rr_flash::calibration::OperatingCondition;
    use rr_sim::readflow::BaselineController;
    use rr_sim::ssd::Ssd;

    heading(
        "Ablation 1 — adaptive (RPT) vs. fixed tPRE reduction",
        "§6.2: AR2 'carefully decides the tPRE reduction amount depending on the current operating conditions'",
    );
    let base = opts.sim_base();
    let trace = MsrcWorkload::Mds1.synthesize(opts.trace_len() / 2, opts.seed);
    let mut rows = Vec::new();
    for point in [
        OperatingPoint::new(0.0, 1.0),
        OperatingPoint::new(2000.0, 12.0),
    ] {
        let baseline = run_one(
            &base,
            Mechanism::Baseline,
            point,
            &trace,
            &ReadTimingParamTable::default(),
        );
        let mut row_for = |label: &str, rpt: &ReadTimingParamTable| {
            let mut cfg = base.clone().with_condition(OperatingCondition::new(
                point.pec,
                point.retention_months,
                30.0,
            ));
            cfg.ideal_no_retry = false;
            let ssd = Ssd::new(
                cfg,
                Box::new(PnAr2Controller::new(rpt.clone())),
                trace.footprint_pages,
            )
            .expect("valid config");
            let report = ssd.run(&trace.requests);
            rows.push(vec![
                format!(
                    "({}, {} mo)",
                    point.pec as u64, point.retention_months as u64
                ),
                label.to_string(),
                format!("{:.1}", report.avg_response_us()),
                format!(
                    "{:.3}",
                    report.avg_response_us() / baseline.avg_response_us()
                ),
                report.read_failures.to_string(),
            ]);
        };
        row_for("adaptive RPT", &ReadTimingParamTable::default());
        row_for("fixed 40%", &ReadTimingParamTable::fixed(0.40));
        row_for("fixed 54%", &ReadTimingParamTable::fixed(0.54));
    }
    print!(
        "{}",
        markdown_table(
            &[
                "condition".into(),
                "tPRE policy".into(),
                "avg resp (µs)".into(),
                "vs Baseline".into(),
                "read failures".into(),
            ],
            &rows
        )
    );
    println!(
        "(fixed 54 % blows the margin on aged blocks and pays the §6.2 default-timing\n\
         fallback walk; fixed 40 % wastes margin on fresh blocks — adaptivity wins both)"
    );

    heading(
        "Ablation 2 — PSO guard band",
        "§3.1/[84]: the ~3-step guard is why PSO 'cannot completely avoid read-retry'",
    );
    let point = OperatingPoint::new(2000.0, 12.0);
    let mut rows = Vec::new();
    for guard in [1u32, 3, 5, 8] {
        let mut cfg = base.clone().with_condition(OperatingCondition::new(
            point.pec,
            point.retention_months,
            30.0,
        ));
        cfg.ideal_no_retry = false;
        let controller = PsoController::with_predictor(
            BaselineController::new(),
            PsoPredictor::with_guard(guard),
        );
        let ssd = Ssd::new(cfg, Box::new(controller), trace.footprint_pages).expect("valid config");
        let report = ssd.run(&trace.requests);
        rows.push(vec![
            guard.to_string(),
            format!("{:.2}", report.avg_retry_steps()),
            format!("{:.1}", report.avg_response_us()),
            report.read_failures.to_string(),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "guard steps".into(),
                "avg retry steps".into(),
                "avg resp (µs)".into(),
                "read failures".into(),
            ],
            &rows
        )
    );
    println!(
        "(a small guard cuts steps but risks overshooting V_OPT and paying the\n\
         full-walk fallback; the paper's ~3-step guard balances the two)"
    );
}

/// Writes every characterization figure's data as CSV files (default
/// directory `figures-csv/`, override with `--csv DIR`). With `--csv`, the
/// evaluation results — matrix cells and both load sweeps, with full
/// per-class latency distributions — are exported too, so every figure can
/// be regenerated outside the CLI. Returns `false` (CLI failure) when the
/// output directory or a CSV cannot be written — e.g. a read-only CWD.
pub fn export(opts: &Options) -> bool {
    use rr_charact::export as csv;
    let dir_name = opts.csv_dir.as_deref().unwrap_or("figures-csv");
    let dir = std::path::Path::new(dir_name);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("export: cannot create {}: {e}", dir.display());
        return false;
    }
    let mut platform = opts.platform();
    let pages = opts.pages_per_chip();
    let mut ok = true;
    let mut write = |name: &str, content: String| {
        let path = dir.join(name);
        match std::fs::write(&path, content) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("export: cannot write {}: {e}", path.display());
                ok = false;
            }
        }
    };
    if opts.csv_dir.is_some() {
        use rr_core::export as eval_csv;
        let (base, traces) = sweep_setup(opts);
        let point = OperatingPoint::new(2000.0, 6.0);
        let mechanisms = [Mechanism::Baseline, Mechanism::PnAr2];
        let cells = run_eval(opts, &Mechanism::FIG14);
        write("matrix.csv", eval_csv::matrix_csv(&cells));
        let setup = opts.queue_setup();
        // `--from-image` warm-starts the two sweep exports; the matrix
        // export above always preconditions in-process (its trace set and
        // geometry differ from a `--gc-stress` bank's).
        let t0 = Instant::now();
        let Some(bank) = obtain_bank(
            "export",
            opts.from_image.as_deref(),
            &base,
            traces.iter().map(|t| t.footprint_pages),
        ) else {
            return false;
        };
        let precondition = t0.elapsed();
        let t0 = Instant::now();
        let qd = match run_qd_sweep_array_from(
            &base,
            &traces,
            point,
            &opts.queue_depths,
            &mechanisms,
            &setup,
            opts.jobs,
            opts.shards,
            opts.array_setup(),
            &bank,
        ) {
            Ok(cells) => cells,
            Err(e) => {
                eprintln!("export: {e}");
                return false;
            }
        };
        write("sweep_qd.csv", eval_csv::qd_sweep_csv(&qd));
        let rate = match run_rate_sweep_array_from(
            &base,
            &traces,
            point,
            &opts.rates,
            &mechanisms,
            &setup,
            opts.jobs,
            opts.shards,
            opts.array_setup(),
            &bank,
        ) {
            Ok(cells) => cells,
            Err(e) => {
                eprintln!("export: {e}");
                return false;
            }
        };
        write("sweep_rate.csv", eval_csv::rate_sweep_csv(&rate));
        eprint_timing("export", precondition, t0.elapsed());
    } else if opts.from_image.is_some() {
        eprintln!("export: --from-image warm-starts the evaluation exports — pass --csv DIR too");
        return false;
    }
    write(
        "fig4b.csv",
        csv::fig4b_csv(&figures::fig4b(&platform, 2000.0, 12.0, &[16, 21], 3)),
    );
    write("fig5.csv", csv::fig5_csv(&figures::fig5(&platform, pages)));
    write(
        "fig7.csv",
        csv::fig7_csv(&figures::fig7(&mut platform, pages)),
    );
    write(
        "fig8.csv",
        csv::fig8_csv(&figures::fig8(&mut platform, pages / 2)),
    );
    write(
        "fig9.csv",
        csv::fig9_csv(&figures::fig9(&mut platform, pages / 2)),
    );
    write(
        "fig10.csv",
        csv::fig10_csv(&figures::fig10(&mut platform, pages / 2)),
    );
    write(
        "fig11.csv",
        csv::fig11_csv(&figures::fig11(&mut platform, pages)),
    );
    ok
}

/// `repro snapshot --out img.rrimg`: preconditions the current flag set's
/// device images once and writes them as a versioned image bank for later
/// `--from-image` warm starts. With `--gc-stress` the bank holds the stress
/// workload's image under the shrunken GC geometry; otherwise it covers
/// every footprint of the MSRC/YCSB evaluation set, so one file serves
/// fig14, both sweeps, export, and serve. Returns `false` when the
/// configuration is invalid or the file cannot be written.
pub fn snapshot(opts: &Options) -> bool {
    let out = opts
        .out
        .as_deref()
        .expect("main enforces --out for snapshot");
    let (base, traces) = if opts.gc_stress {
        sweep_setup(opts)
    } else {
        let traces = all_traces(opts).into_iter().map(|(t, ..)| t).collect();
        (opts.sim_base(), traces)
    };
    let t0 = Instant::now();
    let bank = match ImageBank::preconditioned(&base, traces.iter().map(|t| t.footprint_pages)) {
        Ok(bank) => bank,
        Err(e) => {
            eprintln!("snapshot: {e}");
            return false;
        }
    };
    let precondition = t0.elapsed();
    if let Err(e) = bank.save(out) {
        eprintln!("snapshot: cannot write {out}: {e}");
        return false;
    }
    let footprints: Vec<u64> = bank.images().iter().map(|i| i.lpn_count()).collect();
    println!(
        "wrote {out}: {} preconditioned image(s), footprints {footprints:?} pages",
        bank.len()
    );
    eprintln!("snapshot: precondition {:.1} ms", ms(precondition));
    true
}

/// Parses a serve-protocol mechanism name (the figure names of
/// [`Mechanism::name`], case-insensitive).
fn parse_mechanism(s: &str) -> Option<Mechanism> {
    SERVE_MECHANISMS
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(s))
}

/// Every mechanism `repro serve` accepts by name.
const SERVE_MECHANISMS: [Mechanism; 9] = [
    Mechanism::Baseline,
    Mechanism::Pr2,
    Mechanism::Ar2,
    Mechanism::PnAr2,
    Mechanism::NoRR,
    Mechanism::Pso,
    Mechanism::PsoPnAr2,
    Mechanism::EagerPnAr2,
    Mechanism::RegularAr2,
];

/// `repro serve`: loads (or preconditions) a device-image bank once, then
/// answers replay queries line-by-line from stdin until EOF or `quit`.
///
/// Protocol, one line per query: `<workload> <mechanism> <qd> [devices]`
/// (e.g. `mds_1 PnAR2 16`) replays that workload closed-loop at the given
/// queue depth under the (2K P/E, 6 mo) highlight point, warm-started from
/// the workload's aged image. Replies on stdout: a single `ready ...` line
/// at startup, then `ok workload=.. mechanism=.. qd=.. reads=..
/// read_p99_us=.. avg_us=.. kiops=.. events=..` (or `err <reason>`) per
/// query — stdout stays deterministic; per-query wall clock goes to stderr.
/// The optional fourth field replays the query on an N-device array (the
/// `--placement` routing; omitted = the CLI's `--devices`); single-device
/// replies stay byte-identical to the pre-array protocol, array replies
/// insert `devices=N` after `qd=`. Because every query restores the image
/// into reused arenas instead of re-reading the file or re-aging the
/// device, answers after startup cost milliseconds.
pub fn serve(opts: &Options) -> bool {
    use std::io::BufRead;
    let (base, traces) = sweep_setup(opts);
    let point = OperatingPoint::new(2000.0, 6.0);
    let setup = opts.queue_setup();
    let rpt = ReadTimingParamTable::default();
    let t0 = Instant::now();
    let Some(bank) = obtain_bank(
        "serve",
        opts.from_image.as_deref(),
        &base,
        traces.iter().map(|t| t.footprint_pages),
    ) else {
        return false;
    };
    for trace in &traces {
        let Some(image) = bank.get(trace.footprint_pages) else {
            eprintln!(
                "serve: image bank holds no image for the {}-page footprint of workload {}",
                trace.footprint_pages, trace.name
            );
            return false;
        };
        if let Err(e) = image.validate_for(&base, trace.footprint_pages) {
            eprintln!("serve: {e}");
            return false;
        }
    }
    let names: Vec<&str> = traces.iter().map(|t| t.name.as_str()).collect();
    let mechanisms: Vec<&str> = SERVE_MECHANISMS.iter().map(Mechanism::name).collect();
    eprintln!(
        "serve: image bank ready in {:.1} ms; protocol: '<workload> <mechanism> <qd> [devices]' \
         per line, 'quit' to exit",
        ms(t0.elapsed())
    );
    println!(
        "ready workloads={} mechanisms={}",
        names.join(","),
        mechanisms.join(",")
    );
    let mut arena = SimArena::new();
    let mut shard_arena = ShardArena::new();
    // One `DeviceSet` per queried array width: its per-device arenas are the
    // N restore targets the image forks land in, reused across queries.
    let mut device_sets: Vec<DeviceSet> = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let (workload, mechanism, qd, devices_field) = match parts[..] {
            [w, m, q] => (w, m, q, None),
            [w, m, q, d] => (w, m, q, Some(d)),
            _ => {
                println!("err expected '<workload> <mechanism> <qd> [devices]'");
                continue;
            }
        };
        let Some(trace) = traces.iter().find(|t| t.name == workload) else {
            println!("err unknown workload {workload} (have {})", names.join(","));
            continue;
        };
        let Some(mechanism) = parse_mechanism(mechanism) else {
            println!(
                "err unknown mechanism {mechanism} (have {})",
                mechanisms.join(",")
            );
            continue;
        };
        let Some(qd) = qd.parse::<u32>().ok().filter(|&v| v >= 1) else {
            println!("err qd must be an integer >= 1");
            continue;
        };
        let devices = match devices_field {
            None => opts.devices,
            Some(d) => match d.parse::<u32>().ok().filter(|&v| v >= 1) {
                Some(d) => d,
                None => {
                    println!("err devices must be an integer >= 1");
                    continue;
                }
            },
        };
        if devices > 1 {
            let set_idx = match device_sets.iter().position(|s| s.devices() == devices) {
                Some(i) => i,
                None => {
                    device_sets
                        .push(DeviceSet::new(devices).expect("devices is validated to be >= 1"));
                    device_sets.len() - 1
                }
            };
            let routed = trace.split_routed(devices, |i, r| {
                opts.placement.route(i, r, devices, trace.footprint_pages)
            });
            let forks = match bank.fork_for_array(trace.footprint_pages, devices) {
                Ok(forks) => forks,
                Err(e) => {
                    println!("err {e}");
                    continue;
                }
            };
            let t0 = Instant::now();
            let report = match run_one_queued_array_from(
                &mut device_sets[set_idx],
                &base,
                mechanism,
                point,
                &routed,
                trace.footprint_pages,
                &rpt,
                &setup,
                qd,
                Some(forks.as_slice()),
                opts.shards,
            ) {
                Ok(report) => report,
                Err(e) => {
                    println!("err {e}");
                    continue;
                }
            };
            eprintln!(
                "serve: {} {} qd={qd} devices={devices} in {:.1} ms",
                trace.name,
                mechanism.name(),
                ms(t0.elapsed())
            );
            println!(
                "ok workload={} mechanism={} qd={qd} devices={devices} reads={} \
                 read_p99_us={} avg_us={:.1} kiops={:.2} events={}",
                trace.name,
                mechanism.name(),
                report.read_latency.count,
                report
                    .read_latency
                    .p99
                    .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
                report.avg_response_us(),
                report.kiops(),
                report.events_processed,
            );
            continue;
        }
        let image = bank.get(trace.footprint_pages);
        let t0 = Instant::now();
        // `--shards N` routes the query through the sharded engine; the
        // protocol lines are byte-identical either way because the reply is
        // formatted from the same report fields and the sharded engine is
        // deterministic. `--shards 0` keeps the legacy serial arena.
        let report = if opts.shards > 0 {
            run_one_queued_sharded_from(
                &mut shard_arena,
                &base,
                mechanism,
                point,
                trace,
                &rpt,
                &setup,
                qd,
                image,
                opts.shards,
            )
        } else {
            run_one_queued_from(
                &mut arena, &base, mechanism, point, trace, &rpt, &setup, qd, image,
            )
        };
        eprintln!(
            "serve: {} {} qd={qd} in {:.1} ms",
            trace.name,
            mechanism.name(),
            ms(t0.elapsed())
        );
        println!(
            "ok workload={} mechanism={} qd={qd} reads={} read_p99_us={} avg_us={:.1} \
             kiops={:.2} events={}",
            trace.name,
            mechanism.name(),
            report.read_latency.count,
            report
                .read_latency
                .p99
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            report.avg_response_us(),
            report.kiops(),
            report.events_processed,
        );
    }
    true
}
