//! The shared synthetic-trace engine behind the MSRC-like and YCSB-like
//! generators.
//!
//! The paper's evaluation (Table 2) characterizes each workload by its
//! **read ratio** (fraction of read requests) and **cold ratio** (fraction of
//! read requests whose pages are never updated during the run — these reads
//! hit long-retention pages and therefore deep read-retry). This generator
//! hits both statistics by construction:
//!
//! * the LPN footprint is split into a small **hot region** receiving all
//!   writes, and a large **cold region** that is never written;
//! * each read draws "cold?" with the target cold ratio and then picks a page
//!   from the cold region, or from the set of already-written hot pages;
//! * arrivals are a bursty Poisson process (exponential gaps with occasional
//!   long pauses), the shape enterprise block traces exhibit.

use crate::trace::Trace;
use rr_sim::request::{HostRequest, IoOp};
use rr_util::dist::{Exponential, Zipf};
use rr_util::rng::Rng;
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// How read targets are chosen within the hot (already-written) set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotReadBias {
    /// Zipf over write popularity (most-written pages most-read) — the MSRC
    /// and YCSB-A/B/F shape.
    Popularity,
    /// Prefer the most recently written pages (YCSB-D's "latest").
    Latest,
}

/// Parameters of one synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Workload name for reports.
    pub name: String,
    /// Number of requests to generate.
    pub n_requests: usize,
    /// Target fraction of read requests (Table 2 "read ratio").
    pub read_ratio: f64,
    /// Target fraction of cold reads (Table 2 "cold ratio").
    pub cold_ratio: f64,
    /// Logical footprint in pages.
    pub footprint_pages: u64,
    /// Mean arrival gap in microseconds (1e6 / IOPS).
    pub mean_interarrival_us: f64,
    /// Probability that an arrival gap is a long pause (burstiness).
    pub pause_probability: f64,
    /// Pause length multiplier over the mean gap.
    pub pause_factor: f64,
    /// Zipf exponent for hot-region write popularity.
    pub zipf_theta: f64,
    /// Maximum request length in pages for ordinary reads/writes.
    pub max_len_pages: u32,
    /// If set, reads may be long scans of up to this many pages (YCSB-E).
    pub scan_max_pages: Option<u32>,
    /// Hot-read target selection.
    pub hot_read_bias: HotReadBias,
    /// Read-modify-write pairing: writes target the last page read (YCSB-F).
    pub rmw: bool,
    /// Generator seed.
    pub seed: u64,
}

impl SynthConfig {
    /// A neutral starting point; presets override the Table-2 ratios.
    pub fn base(name: &str) -> Self {
        Self {
            name: name.to_string(),
            n_requests: 20_000,
            read_ratio: 0.5,
            cold_ratio: 0.5,
            footprint_pages: 200_000,
            // ≈2.5k IOPS over 64 dies: moderate queueing even when deep
            // read-retry inflates service times (the paper replays real trace
            // timestamps; this keeps the baseline out of saturation at the
            // worst operating points, as theirs is).
            mean_interarrival_us: 400.0,
            pause_probability: 0.02,
            pause_factor: 40.0,
            zipf_theta: 0.99,
            max_len_pages: 4,
            scan_max_pages: None,
            hot_read_bias: HotReadBias::Popularity,
            rmw: false,
            seed: 0x7ace,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_requests == 0 {
            return Err("n_requests must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.read_ratio) || !(0.0..=1.0).contains(&self.cold_ratio) {
            return Err("ratios must be within [0, 1]".into());
        }
        if self.footprint_pages < 1024 {
            return Err("footprint must be at least 1024 pages".into());
        }
        if self.mean_interarrival_us <= 0.0 {
            return Err("mean interarrival must be positive".into());
        }
        if self.max_len_pages == 0 {
            return Err("max request length must be positive".into());
        }
        Ok(())
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (call [`Self::validate`] for a
    /// `Result`).
    pub fn generate(&self) -> Trace {
        self.validate()
            .expect("invalid synthetic workload configuration");
        let mut rng = Rng::seed_from_u64(self.seed);

        // Hot region sizing: small enough that the workload's writes cover
        // most of it (so hot reads reliably target updated pages), capped at
        // a quarter of the footprint.
        let writes_expected = (self.n_requests as f64 * (1.0 - self.read_ratio)).ceil() as u64;
        let hot_pages = (writes_expected / 6)
            .max(32)
            .min(self.footprint_pages / 4)
            .max(1);
        let cold_base = hot_pages;
        let cold_pages = self.footprint_pages - cold_base;

        let hot_zipf = Zipf::new(hot_pages, self.zipf_theta).expect("validated parameters");
        let gap = Exponential::new(1.0 / self.mean_interarrival_us).expect("validated rate");

        let mut written: Vec<u64> = Vec::new(); // hot pages in write order
        let mut written_set = vec![false; hot_pages as usize];
        let mut last_hot_read: Option<u64> = None;

        let mut requests = Vec::with_capacity(self.n_requests);
        let mut now_us = 0.0f64;
        for _ in 0..self.n_requests {
            let mut dt = gap.sample(&mut rng);
            if rng.chance(self.pause_probability) {
                dt += self.mean_interarrival_us * self.pause_factor * rng.next_f64();
            }
            now_us += dt;
            let arrival = SimTime::from_us_f64(now_us);

            if rng.chance(self.read_ratio) {
                let (lpn, len) = if rng.chance(self.cold_ratio) || written.is_empty() {
                    // Cold read: the cold region is never written.
                    let len = self.sample_read_len(&mut rng);
                    let lpn = cold_base + rng.below(cold_pages.saturating_sub(len as u64).max(1));
                    (lpn, len)
                } else {
                    // Hot read: target a page that the trace writes.
                    let idx = match self.hot_read_bias {
                        HotReadBias::Popularity => {
                            // Re-sample the write popularity distribution and
                            // map to a written page.
                            let rank = hot_zipf.sample(&mut rng);
                            if written_set[rank as usize] {
                                rank
                            } else {
                                written[rng.below_usize(written.len())]
                            }
                        }
                        HotReadBias::Latest => {
                            // Bias toward the most recent writes.
                            let back = (rng.next_f64().powi(2) * written.len() as f64) as usize;
                            written[written.len() - 1 - back.min(written.len() - 1)]
                        }
                    };
                    last_hot_read = Some(idx);
                    (idx, 1)
                };
                requests.push(HostRequest::new(arrival, IoOp::Read, lpn, len));
            } else {
                let lpn = if self.rmw {
                    // Read-modify-write: update what was just read when possible.
                    last_hot_read
                        .take()
                        .unwrap_or_else(|| hot_zipf.sample(&mut rng))
                } else {
                    hot_zipf.sample(&mut rng)
                };
                let max_len = (self.max_len_pages as u64).min(hot_pages - lpn).max(1);
                let len = 1 + rng.below(max_len) as u32;
                for p in lpn..lpn + len as u64 {
                    if !written_set[p as usize] {
                        written_set[p as usize] = true;
                        written.push(p);
                    }
                }
                requests.push(HostRequest::new(arrival, IoOp::Write, lpn, len));
            }
        }
        Trace::new(self.name.clone(), requests, self.footprint_pages)
    }

    fn sample_read_len(&self, rng: &mut Rng) -> u32 {
        if let Some(scan_max) = self.scan_max_pages {
            // Scans: uniform 1..=scan_max (YCSB-E's uniform scan lengths).
            1 + rng.below(scan_max as u64) as u32
        } else {
            // Short requests, geometric-ish: mostly 1 page.
            let mut len = 1;
            while len < self.max_len_pages && rng.chance(0.25) {
                len += 1;
            }
            len
        }
    }
}

/// The GC-stress workload: alternating single-page reads over the whole
/// `footprint_pages` and writes hammering a hot quarter of it, at a fixed
/// 60 µs spacing. Sized to a footprint that fills the device's usable
/// space (`SsdConfig::max_lpns`), the write stream exhausts the free pool
/// and keeps garbage collection running for the rest of the replay.
///
/// Striped over two host submission queues (request *i* → queue
/// *i mod 2*), every read lands on queue 0 (the latency-critical reader)
/// and every write on queue 1 (the hammer) — the split the
/// `queue-shield` GC policy is designed for. This one definition backs
/// `repro --gc-stress`, `tests/gc_policy.rs`, and the GC cases of
/// `tests/hotpath_equiv.rs`, so what the tests pin is exactly what the
/// CLI ships.
pub fn gc_stress_trace(footprint_pages: u64, n_requests: usize) -> Trace {
    let hot = (footprint_pages / 4).max(1);
    let requests = (0..n_requests)
        .map(|i| {
            let at = SimTime::from_us(60 * i as u64);
            if i % 2 == 0 {
                HostRequest::new(
                    at,
                    IoOp::Read,
                    (i as u64).wrapping_mul(97) % footprint_pages,
                    1,
                )
            } else {
                HostRequest::new(at, IoOp::Write, (i as u64).wrapping_mul(31) % hot, 1)
            }
        })
        .collect();
    Trace::new("gc_stress", requests, footprint_pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_targets() {
        for (rr, cr) in [(0.15, 0.38), (0.89, 0.96), (0.98, 0.72), (0.5, 0.5)] {
            let mut cfg = SynthConfig::base("t");
            cfg.read_ratio = rr;
            cfg.cold_ratio = cr;
            cfg.n_requests = 10_000;
            let stats = cfg.generate().stats();
            assert!(
                (stats.read_ratio - rr).abs() < 0.03,
                "read ratio {} vs target {rr}",
                stats.read_ratio
            );
            assert!(
                (stats.cold_ratio - cr).abs() < 0.05,
                "cold ratio {} vs target {cr}",
                stats.cold_ratio
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::base("t");
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        assert_ne!(a, cfg2.generate());
    }

    #[test]
    fn arrivals_are_monotone_and_bursty() {
        let cfg = SynthConfig::base("t");
        let t = cfg.generate();
        let mut gaps = Vec::new();
        for w in t.requests.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
            gaps.push((w[1].arrival - w[0].arrival).as_us_f64());
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        assert!(max > 5.0 * mean, "bursty traces need long pauses");
    }

    #[test]
    fn scans_produce_long_reads() {
        let mut cfg = SynthConfig::base("scan");
        cfg.scan_max_pages = Some(16);
        cfg.read_ratio = 0.99;
        let t = cfg.generate();
        let max_len = t
            .requests
            .iter()
            .filter(|r| r.op == IoOp::Read)
            .map(|r| r.len_pages)
            .max()
            .unwrap();
        assert!(max_len > 4, "scans should exceed ordinary request sizes");
    }

    #[test]
    fn gc_stress_trace_splits_reads_and_writes_by_stripe_parity() {
        let t = gc_stress_trace(4_000, 200);
        assert_eq!(t.requests.len(), 200);
        assert_eq!(t.footprint_pages, 4_000);
        // Even indices (queue 0 under 2-queue striping) are single-page
        // reads over the whole footprint; odd indices (queue 1) are writes
        // confined to the hot quarter.
        for (i, r) in t.requests.iter().enumerate() {
            assert_eq!(r.len_pages, 1);
            if i % 2 == 0 {
                assert_eq!(r.op, IoOp::Read);
                assert!(r.lpn < 4_000);
            } else {
                assert_eq!(r.op, IoOp::Write);
                assert!(r.lpn < 1_000, "write at {} left the hot quarter", r.lpn);
            }
        }
        // Arrivals are the fixed 60 µs spacing, already time-sorted.
        assert_eq!(t.requests[1].arrival, SimTime::from_us(60));
        // A degenerate footprint still produces a valid trace.
        let tiny = gc_stress_trace(2, 10);
        assert!(tiny.requests.iter().all(|r| r.lpn < 2));
    }

    #[test]
    fn rmw_pairs_write_after_read() {
        let mut cfg = SynthConfig::base("rmw");
        cfg.rmw = true;
        cfg.read_ratio = 0.6;
        cfg.cold_ratio = 0.1;
        let t = cfg.generate();
        // Find at least one write that targets the immediately preceding
        // read's page.
        let paired = t
            .requests
            .windows(2)
            .any(|w| w[0].op == IoOp::Read && w[1].op == IoOp::Write && w[0].lpn == w[1].lpn);
        assert!(paired, "RMW workloads pair updates with reads");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SynthConfig::base("t");
        cfg.read_ratio = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = SynthConfig::base("t");
        cfg.footprint_pages = 10;
        assert!(cfg.validate().is_err());
        let mut cfg = SynthConfig::base("t");
        cfg.n_requests = 0;
        assert!(cfg.validate().is_err());
    }
}
