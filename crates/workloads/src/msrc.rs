//! Microsoft Research Cambridge (MSRC) enterprise traces: the real-trace CSV
//! parser and Table-2-faithful synthetic stand-ins.
//!
//! The paper evaluates six of the 36 MSRC block traces \[76\], chosen for their
//! spread of read and cold ratios (Table 2). The raw traces are not
//! redistributable with this repository, so [`MsrcWorkload::synthesize`]
//! generates traces matching each workload's Table-2 signature; when you have
//! the real `.csv` files, [`parse_msrc_csv`] loads them directly.

use crate::synth::{HotReadBias, SynthConfig};
use crate::trace::Trace;
use rr_sim::request::{HostRequest, IoOp};
use rr_util::time::SimTime;

/// The six MSRC workloads of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsrcWorkload {
    /// Web staging server, volume 0 — write-dominant (read ratio 0.15).
    Stg0,
    /// Hardware monitoring server, volume 0 (read ratio 0.36).
    Hm0,
    /// Print server, volume 1 (read ratio 0.75).
    Prn1,
    /// Project directories, volume 1 (read ratio 0.89, cold ratio 0.96).
    Proj1,
    /// Media server, volume 1 (read ratio 0.92, cold ratio 0.98).
    Mds1,
    /// User home directories, volume 1 (read ratio 0.96).
    Usr1,
}

impl MsrcWorkload {
    /// All six workloads in Table-2 order.
    pub const ALL: [MsrcWorkload; 6] = [
        MsrcWorkload::Stg0,
        MsrcWorkload::Hm0,
        MsrcWorkload::Prn1,
        MsrcWorkload::Proj1,
        MsrcWorkload::Mds1,
        MsrcWorkload::Usr1,
    ];

    /// Trace name as the paper spells it.
    pub fn name(&self) -> &'static str {
        match self {
            MsrcWorkload::Stg0 => "stg_0",
            MsrcWorkload::Hm0 => "hm_0",
            MsrcWorkload::Prn1 => "prn_1",
            MsrcWorkload::Proj1 => "proj_1",
            MsrcWorkload::Mds1 => "mds_1",
            MsrcWorkload::Usr1 => "usr_1",
        }
    }

    /// Table 2's (read ratio, cold ratio) for this workload.
    pub fn table2_ratios(&self) -> (f64, f64) {
        match self {
            MsrcWorkload::Stg0 => (0.15, 0.38),
            MsrcWorkload::Hm0 => (0.36, 0.22),
            MsrcWorkload::Prn1 => (0.75, 0.72),
            MsrcWorkload::Proj1 => (0.89, 0.96),
            MsrcWorkload::Mds1 => (0.92, 0.98),
            MsrcWorkload::Usr1 => (0.96, 0.73),
        }
    }

    /// Whether the paper classes this workload as read-dominant (§7.2/Fig. 14
    /// groups stg_0 and hm_0 as write-dominant, the rest as read-dominant).
    pub fn read_dominant(&self) -> bool {
        self.table2_ratios().0 >= 0.5
    }

    /// The synthesis configuration matching this workload's signature.
    pub fn synth_config(&self, n_requests: usize, seed: u64) -> SynthConfig {
        let (read_ratio, cold_ratio) = self.table2_ratios();
        let mut cfg = SynthConfig::base(self.name());
        cfg.n_requests = n_requests;
        cfg.read_ratio = read_ratio;
        cfg.cold_ratio = cold_ratio;
        cfg.hot_read_bias = HotReadBias::Popularity;
        cfg.seed = seed ^ 0x4d5e_0000 ^ (*self as u64);
        cfg
    }

    /// Generates a synthetic stand-in trace with this workload's Table-2
    /// signature.
    pub fn synthesize(&self, n_requests: usize, seed: u64) -> Trace {
        self.synth_config(n_requests, seed).generate()
    }
}

/// Parses the MSRC trace CSV format:
/// `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`, where
/// `Timestamp` is a Windows filetime (100 ns ticks), `Offset`/`Size` are in
/// bytes, and `Type` is `Read` or `Write`.
///
/// Byte offsets are converted to `page_bytes`-sized LPNs; timestamps are
/// rebased so the first request arrives at time zero.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_msrc_csv(content: &str, name: &str, page_bytes: u64) -> Result<Trace, String> {
    assert!(page_bytes > 0, "page size must be positive");
    let mut raw: Vec<(u64, IoOp, u64, u32)> = Vec::new();
    for (no, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 6 {
            return Err(format!("line {}: expected at least 6 CSV fields", no + 1));
        }
        let ts: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad timestamp {:?}", no + 1, fields[0]))?;
        let op = match fields[3].trim().to_ascii_lowercase().as_str() {
            "read" => IoOp::Read,
            "write" => IoOp::Write,
            other => return Err(format!("line {}: unknown I/O type {other:?}", no + 1)),
        };
        let offset: u64 = fields[4]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad offset {:?}", no + 1, fields[4]))?;
        let size: u64 = fields[5]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad size {:?}", no + 1, fields[5]))?;
        let lpn = offset / page_bytes;
        let last = (offset + size.max(1) - 1) / page_bytes;
        let len = (last - lpn + 1) as u32;
        raw.push((ts, op, lpn, len));
    }
    if raw.is_empty() {
        return Err("trace contains no requests".into());
    }
    raw.sort_by_key(|r| r.0);
    let t0 = raw[0].0;

    // Densify the sparse LPN space so the preconditioned footprint stays
    // proportional to the touched pages rather than the device size.
    let mut pages: Vec<u64> = raw
        .iter()
        .flat_map(|&(_, _, lpn, len)| lpn..lpn + len as u64)
        .collect();
    pages.sort_unstable();
    pages.dedup();
    let remap = |lpn: u64| pages.binary_search(&lpn).expect("collected above") as u64;

    let requests = raw
        .into_iter()
        .map(|(ts, op, lpn, len)| {
            // Windows filetime ticks are 100 ns.
            let arrival = SimTime::from_ns((ts - t0) * 100);
            HostRequest::new(arrival, op, remap(lpn), len)
        })
        .collect();
    Ok(Trace::new(name, requests, pages.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_msrc_row_values() {
        assert_eq!(MsrcWorkload::Stg0.table2_ratios(), (0.15, 0.38));
        assert_eq!(MsrcWorkload::Proj1.table2_ratios(), (0.89, 0.96));
        assert_eq!(MsrcWorkload::Usr1.table2_ratios(), (0.96, 0.73));
        assert!(!MsrcWorkload::Stg0.read_dominant());
        assert!(!MsrcWorkload::Hm0.read_dominant());
        assert!(MsrcWorkload::Mds1.read_dominant());
    }

    #[test]
    fn synthesized_traces_match_table2() {
        for w in MsrcWorkload::ALL {
            let t = w.synthesize(8_000, 1);
            let s = t.stats();
            let (rr, cr) = w.table2_ratios();
            assert!(
                (s.read_ratio - rr).abs() < 0.04,
                "{}: read ratio {} vs {rr}",
                w.name(),
                s.read_ratio
            );
            assert!(
                (s.cold_ratio - cr).abs() < 0.06,
                "{}: cold ratio {} vs {cr}",
                w.name(),
                s.cold_ratio
            );
        }
    }

    #[test]
    fn parser_handles_msrc_format() {
        let csv = "\
128166372003061629,hm,0,Read,65536,16384,100\n\
128166372003061630,hm,0,Write,131072,32768,200\n\
128166372003061700,hm,0,Read,65536,16384,80\n";
        let t = parse_msrc_csv(csv, "hm_0", 16384).unwrap();
        assert_eq!(t.len(), 3);
        // Offsets 65536 (page 4) and 131072–163839 (pages 8–9) densify to
        // pages {4, 8, 9} → LPNs {0, 1, 2}.
        assert_eq!(t.footprint_pages, 3);
        assert_eq!(t.requests[0].arrival, SimTime::ZERO);
        assert_eq!(t.requests[0].op, IoOp::Read);
        assert_eq!(t.requests[1].op, IoOp::Write);
        assert_eq!(t.requests[1].len_pages, 2);
        // 71 × 100 ns-ticks later... the third row is (1700-1629)=71 ticks.
        assert_eq!(t.requests[2].arrival, SimTime::from_ns(7100));
        let s = t.stats();
        assert!((s.read_ratio - 2.0 / 3.0).abs() < 1e-12);
        // The read at page 4 is never written → cold; both reads hit page 4.
        assert_eq!(s.cold_ratio, 1.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_msrc_csv("not,a,trace", "x", 16384).is_err());
        assert!(parse_msrc_csv("1,h,0,Frobnicate,0,1,1", "x", 16384).is_err());
        assert!(parse_msrc_csv("abc,h,0,Read,0,1,1", "x", 16384).is_err());
        assert!(parse_msrc_csv("", "x", 16384).is_err());
    }

    #[test]
    fn parser_skips_comments_and_blank_lines() {
        let csv = "# header\n\n1,h,0,Read,0,16384,1\n";
        let t = parse_msrc_csv(csv, "x", 16384).unwrap();
        assert_eq!(t.len(), 1);
    }
}
