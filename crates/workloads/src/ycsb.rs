//! YCSB-style workloads (A–F) lowered to block I/O.
//!
//! The paper replays block traces collected under the six core YCSB
//! workloads \[23\]; Table 2 reports their *block-level* read and cold ratios
//! (the KV store batches updates into large flush writes, which is why even
//! update-heavy YCSB-A is 98 % reads at the block layer). We generate block
//! traces with each workload's Table-2 signature directly, preserving the
//! workload-specific access shapes: zipfian popularity (A/B/C/F), latest-
//! biased reads (D), scans (E), and read-modify-write pairing (F).

use crate::synth::{HotReadBias, SynthConfig};
use crate::trace::Trace;

/// The six core YCSB workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// A — update heavy (50/50 at the op level), zipfian.
    A,
    /// B — read mostly (95/5), zipfian.
    B,
    /// C — read only, zipfian.
    C,
    /// D — read latest (95/5 inserts), latest distribution.
    D,
    /// E — short scans (95/5 inserts), zipfian scan starts.
    E,
    /// F — read-modify-write (50/50), zipfian.
    F,
}

impl YcsbWorkload {
    /// All six workloads in order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Workload name as the paper spells it.
    pub fn name(&self) -> &'static str {
        match self {
            YcsbWorkload::A => "YCSB-A",
            YcsbWorkload::B => "YCSB-B",
            YcsbWorkload::C => "YCSB-C",
            YcsbWorkload::D => "YCSB-D",
            YcsbWorkload::E => "YCSB-E",
            YcsbWorkload::F => "YCSB-F",
        }
    }

    /// Table 2's block-level (read ratio, cold ratio).
    pub fn table2_ratios(&self) -> (f64, f64) {
        match self {
            YcsbWorkload::A => (0.98, 0.72),
            YcsbWorkload::B => (0.99, 0.59),
            YcsbWorkload::C => (0.99, 0.60),
            YcsbWorkload::D => (0.98, 0.58),
            YcsbWorkload::E => (0.99, 0.98),
            YcsbWorkload::F => (0.98, 0.87),
        }
    }

    /// All YCSB workloads are read-dominant at the block level (Fig. 14/15
    /// group them with prn_1..usr_1).
    pub fn read_dominant(&self) -> bool {
        true
    }

    /// The synthesis configuration with this workload's shape and ratios.
    pub fn synth_config(&self, n_requests: usize, seed: u64) -> SynthConfig {
        let (read_ratio, cold_ratio) = self.table2_ratios();
        let mut cfg = SynthConfig::base(self.name());
        cfg.n_requests = n_requests;
        cfg.read_ratio = read_ratio;
        cfg.cold_ratio = cold_ratio;
        cfg.seed = seed ^ 0x9c5b_0000 ^ (*self as u64);
        match self {
            YcsbWorkload::A | YcsbWorkload::B | YcsbWorkload::C => {}
            YcsbWorkload::D => cfg.hot_read_bias = HotReadBias::Latest,
            YcsbWorkload::E => {
                cfg.scan_max_pages = Some(16);
                // Scans move ~8.5× more pages per request; pace arrivals so
                // the page throughput matches the point-read workloads.
                cfg.mean_interarrival_us *= 8.0;
            }
            YcsbWorkload::F => cfg.rmw = true,
        }
        cfg
    }

    /// Generates a block trace with this workload's signature.
    pub fn synthesize(&self, n_requests: usize, seed: u64) -> Trace {
        self.synth_config(n_requests, seed).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sim::request::IoOp;

    #[test]
    fn table2_ycsb_row_values() {
        assert_eq!(YcsbWorkload::A.table2_ratios(), (0.98, 0.72));
        assert_eq!(YcsbWorkload::E.table2_ratios(), (0.99, 0.98));
        assert!(YcsbWorkload::ALL.iter().all(|w| w.read_dominant()));
    }

    #[test]
    fn synthesized_traces_match_table2() {
        for w in YcsbWorkload::ALL {
            let t = w.synthesize(8_000, 3);
            let s = t.stats();
            let (rr, cr) = w.table2_ratios();
            assert!(
                (s.read_ratio - rr).abs() < 0.02,
                "{}: read ratio {} vs {rr}",
                w.name(),
                s.read_ratio
            );
            assert!(
                (s.cold_ratio - cr).abs() < 0.06,
                "{}: cold ratio {} vs {cr}",
                w.name(),
                s.cold_ratio
            );
        }
    }

    #[test]
    fn ycsb_e_scans_are_long() {
        let t = YcsbWorkload::E.synthesize(4_000, 1);
        let max_read = t
            .requests
            .iter()
            .filter(|r| r.op == IoOp::Read)
            .map(|r| r.len_pages)
            .max()
            .unwrap();
        assert!(max_read >= 8, "YCSB-E reads should include scans");
        // The other workloads stay short.
        let t = YcsbWorkload::B.synthesize(4_000, 1);
        let max_read = t
            .requests
            .iter()
            .filter(|r| r.op == IoOp::Read)
            .map(|r| r.len_pages)
            .max()
            .unwrap();
        assert!(max_read <= 4);
    }

    #[test]
    fn workload_names() {
        let names: Vec<_> = YcsbWorkload::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["YCSB-A", "YCSB-B", "YCSB-C", "YCSB-D", "YCSB-E", "YCSB-F"]
        );
    }
}
