//! # rr-workloads — block-I/O workloads for the read-retry evaluation
//!
//! The paper evaluates on twelve workloads (§7.1, Table 2): six MSRC
//! enterprise block traces and six YCSB workloads, characterized by their
//! **read ratio** and **cold ratio** (cold reads hit long-retention pages and
//! therefore deep read-retry).
//!
//! * [`trace`] — the block-trace type and its Table-2 statistics;
//! * [`synth`] — the shared generator engine that hits target read/cold
//!   ratios by construction;
//! * [`msrc`] — the six MSRC workloads: synthetic stand-ins matching Table 2
//!   plus a parser for the real MSRC CSV format;
//! * [`ycsb`] — YCSB A–F lowered to block I/O (zipfian / latest / scans /
//!   read-modify-write shapes).
//!
//! # Example
//!
//! ```
//! use rr_workloads::msrc::MsrcWorkload;
//!
//! let trace = MsrcWorkload::Mds1.synthesize(2_000, 42);
//! let stats = trace.stats();
//! // mds_1 is the most read-dominant, coldest MSRC workload in Table 2.
//! assert!(stats.read_ratio > 0.85);
//! assert!(stats.cold_ratio > 0.9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod msrc;
pub mod synth;
pub mod trace;
pub mod ycsb;

pub use msrc::MsrcWorkload;
pub use synth::SynthConfig;
pub use trace::{Trace, TraceStats};
pub use ycsb::YcsbWorkload;
