//! Block-I/O traces and their Table-2 statistics.

use rr_sim::request::{HostRequest, IoOp};
use serde::{Deserialize, Serialize};

/// A block-level I/O trace plus the footprint it plays in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable workload name ("stg_0", "YCSB-A", ...).
    pub name: String,
    /// The requests, sorted by arrival time.
    pub requests: Vec<HostRequest>,
    /// Number of logical pages the SSD must precondition for this trace.
    pub footprint_pages: u64,
}

impl Trace {
    /// Creates a trace, sorting requests by arrival.
    ///
    /// # Panics
    ///
    /// Panics if any request exceeds the footprint.
    pub fn new(
        name: impl Into<String>,
        mut requests: Vec<HostRequest>,
        footprint_pages: u64,
    ) -> Self {
        requests.sort_by_key(|r| r.arrival);
        for r in &requests {
            assert!(
                r.lpn + r.len_pages as u64 <= footprint_pages,
                "request at lpn {} exceeds footprint {footprint_pages}",
                r.lpn
            );
        }
        Self {
            name: name.into(),
            requests,
            footprint_pages,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Splits the trace across `devices` array members: request `i` goes to
    /// the sub-trace `route(i, &request)` says (which must be `< devices`),
    /// keeping its original arrival time and the per-device arrival order.
    /// Every sub-trace keeps the full footprint — array devices are
    /// full-footprint replicas — and is named `{name}#d{device}`.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero or `route` returns an out-of-range
    /// device.
    pub fn split_routed(
        &self,
        devices: u32,
        mut route: impl FnMut(usize, &HostRequest) -> u32,
    ) -> Vec<Trace> {
        assert!(devices > 0, "cannot split a trace across zero devices");
        let mut per_device: Vec<Vec<HostRequest>> = (0..devices).map(|_| Vec::new()).collect();
        for (i, r) in self.requests.iter().enumerate() {
            let d = route(i, r);
            assert!(d < devices, "request {i} routed to device {d} of {devices}");
            per_device[d as usize].push(*r);
        }
        per_device
            .into_iter()
            .enumerate()
            .map(|(d, requests)| {
                Trace::new(
                    format!("{}#d{d}", self.name),
                    requests,
                    self.footprint_pages,
                )
            })
            .collect()
    }

    /// Computes the paper's Table-2 statistics for this trace.
    pub fn stats(&self) -> TraceStats {
        let mut written = FootprintSet::new(self.footprint_pages);
        for r in &self.requests {
            if r.op == IoOp::Write {
                for lpn in r.lpns() {
                    written.insert(lpn);
                }
            }
        }
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut cold_reads = 0u64;
        for r in &self.requests {
            match r.op {
                IoOp::Read => {
                    reads += 1;
                    // Table 2 / §7.1: a read is *cold* when its target page is
                    // never updated during the entire execution.
                    if r.lpns().all(|lpn| !written.contains(lpn)) {
                        cold_reads += 1;
                    }
                }
                IoOp::Write => writes += 1,
            }
        }
        TraceStats {
            requests: reads + writes,
            reads,
            writes,
            read_ratio: if reads + writes == 0 {
                0.0
            } else {
                reads as f64 / (reads + writes) as f64
            },
            cold_ratio: if reads == 0 {
                0.0
            } else {
                cold_reads as f64 / reads as f64
            },
        }
    }
}

/// The workload characteristics of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total requests.
    pub requests: u64,
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Fraction of read requests among all requests.
    pub read_ratio: f64,
    /// Fraction of read requests whose target pages are never updated during
    /// the trace.
    pub cold_ratio: f64,
}

/// A dense bitset over the LPN footprint.
#[derive(Debug, Clone)]
struct FootprintSet {
    bits: Vec<u64>,
}

impl FootprintSet {
    fn new(footprint: u64) -> Self {
        Self {
            bits: vec![0; (footprint as usize).div_ceil(64)],
        }
    }

    fn insert(&mut self, lpn: u64) {
        self.bits[(lpn / 64) as usize] |= 1 << (lpn % 64);
    }

    fn contains(&self, lpn: u64) -> bool {
        self.bits[(lpn / 64) as usize] >> (lpn % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_util::time::SimTime;

    fn req(t_us: u64, op: IoOp, lpn: u64, len: u32) -> HostRequest {
        HostRequest::new(SimTime::from_us(t_us), op, lpn, len)
    }

    #[test]
    fn stats_compute_table2_quantities() {
        let trace = Trace::new(
            "t",
            vec![
                req(0, IoOp::Write, 0, 1), // page 0 written
                req(1, IoOp::Read, 0, 1),  // hot read (page updated in trace)
                req(2, IoOp::Read, 10, 1), // cold read
                req(3, IoOp::Read, 20, 2), // cold read (2 pages, untouched)
            ],
            100,
        );
        let s = trace.stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert!((s.read_ratio - 0.75).abs() < 1e-12);
        assert!((s.cold_ratio - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn read_before_write_is_still_hot() {
        // "Never updated during the entire execution" is page-based, not
        // time-based: a read *before* the page's write is still non-cold.
        let trace = Trace::new(
            "t",
            vec![req(0, IoOp::Read, 5, 1), req(1, IoOp::Write, 5, 1)],
            10,
        );
        assert_eq!(trace.stats().cold_ratio, 0.0);
    }

    #[test]
    fn requests_sorted_by_arrival() {
        let trace = Trace::new(
            "t",
            vec![req(10, IoOp::Read, 1, 1), req(5, IoOp::Read, 2, 1)],
            10,
        );
        assert!(trace.requests[0].arrival <= trace.requests[1].arrival);
        assert_eq!(trace.requests[0].lpn, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds footprint")]
    fn footprint_violation_panics() {
        Trace::new("t", vec![req(0, IoOp::Read, 99, 2)], 100);
    }

    #[test]
    fn split_routed_partitions_without_reordering() {
        let trace = Trace::new(
            "t",
            (0..10u64)
                .map(|i| req(5 * i, IoOp::Read, i * 3, 1))
                .collect(),
            100,
        );
        let subs = trace.split_routed(3, |i, _| (i % 3) as u32);
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0].name, "t#d0");
        // Every request lands on exactly one device…
        assert_eq!(subs.iter().map(Trace::len).sum::<usize>(), trace.len());
        // …keeping footprint, arrival times and per-device order.
        for (d, sub) in subs.iter().enumerate() {
            assert_eq!(sub.footprint_pages, 100);
            for (j, r) in sub.requests.iter().enumerate() {
                assert_eq!(*r, trace.requests[d + 3 * j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "routed to device")]
    fn split_routed_rejects_out_of_range_devices() {
        let trace = Trace::new("t", vec![req(0, IoOp::Read, 1, 1)], 10);
        trace.split_routed(2, |_, _| 7);
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::new("t", vec![], 10);
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.read_ratio, 0.0);
        assert_eq!(s.cold_ratio, 0.0);
    }
}
