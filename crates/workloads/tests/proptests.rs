//! Property-based tests: the synthetic-trace generator must hit its target
//! statistics and structural invariants for arbitrary parameterizations.

use proptest::prelude::*;
use rr_sim::request::IoOp;
use rr_workloads::msrc::MsrcWorkload;
use rr_workloads::synth::{HotReadBias, SynthConfig};
use rr_workloads::ycsb::YcsbWorkload;

fn config(
    rr: f64,
    cr: f64,
    n: usize,
    seed: u64,
    latest: bool,
    rmw: bool,
    scans: bool,
) -> SynthConfig {
    let mut cfg = SynthConfig::base("prop");
    cfg.read_ratio = rr;
    cfg.cold_ratio = cr;
    cfg.n_requests = n;
    cfg.seed = seed;
    cfg.hot_read_bias = if latest {
        HotReadBias::Latest
    } else {
        HotReadBias::Popularity
    };
    cfg.rmw = rmw;
    cfg.scan_max_pages = scans.then_some(8);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_traces_hit_targets(
        rr in 0.1f64..0.99,
        cr in 0.05f64..0.98,
        seed in any::<u64>(),
        latest in any::<bool>(),
        rmw in any::<bool>(),
        scans in any::<bool>(),
    ) {
        let cfg = config(rr, cr, 4_000, seed, latest, rmw, scans);
        let trace = cfg.generate();
        let stats = trace.stats();
        prop_assert!((stats.read_ratio - rr).abs() < 0.05,
            "read ratio {} vs target {rr}", stats.read_ratio);
        prop_assert!((stats.cold_ratio - cr).abs() < 0.08,
            "cold ratio {} vs target {cr}", stats.cold_ratio);
        // Structural invariants.
        prop_assert_eq!(stats.requests as usize, 4_000);
        for w in trace.requests.windows(2) {
            prop_assert!(w[1].arrival >= w[0].arrival, "arrivals sorted");
        }
        for r in &trace.requests {
            prop_assert!(r.lpn + r.len_pages as u64 <= trace.footprint_pages);
            prop_assert!(r.len_pages >= 1);
        }
    }

    /// Table 2 contract for the named MSRC workloads: a synthesized trace of
    /// arbitrary length and seed measures the paper's read/cold ratios
    /// within tolerance (looser on short traces, where sampling noise
    /// dominates).
    #[test]
    fn msrc_synthesis_hits_table2_ratios(
        w in prop::sample::select(MsrcWorkload::ALL.to_vec()),
        len in 1_000usize..6_000,
        seed in any::<u64>(),
    ) {
        let (paper_rr, paper_cr) = w.table2_ratios();
        let stats = w.synthesize(len, seed).stats();
        let tol = 0.03 + 40.0 / len as f64;
        prop_assert_eq!(stats.requests as usize, len);
        prop_assert!(
            (stats.read_ratio - paper_rr).abs() < tol,
            "{:?}: read ratio {:.3} vs Table-2 {:.2} (len {}, tol {:.3})",
            w, stats.read_ratio, paper_rr, len, tol
        );
        prop_assert!(
            (stats.cold_ratio - paper_cr).abs() < tol + 0.03,
            "{:?}: cold ratio {:.3} vs Table-2 {:.2} (len {}, tol {:.3})",
            w, stats.cold_ratio, paper_cr, len, tol + 0.03
        );
    }

    /// Table 2 contract for the YCSB workloads, same tolerances.
    #[test]
    fn ycsb_synthesis_hits_table2_ratios(
        w in prop::sample::select(YcsbWorkload::ALL.to_vec()),
        len in 1_000usize..6_000,
        seed in any::<u64>(),
    ) {
        let (paper_rr, paper_cr) = w.table2_ratios();
        let stats = w.synthesize(len, seed).stats();
        let tol = 0.03 + 40.0 / len as f64;
        prop_assert_eq!(stats.requests as usize, len);
        prop_assert!(
            (stats.read_ratio - paper_rr).abs() < tol,
            "{:?}: read ratio {:.3} vs Table-2 {:.2} (len {}, tol {:.3})",
            w, stats.read_ratio, paper_rr, len, tol
        );
        prop_assert!(
            (stats.cold_ratio - paper_cr).abs() < tol + 0.03,
            "{:?}: cold ratio {:.3} vs Table-2 {:.2} (len {}, tol {:.3})",
            w, stats.cold_ratio, paper_cr, len, tol + 0.03
        );
    }

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let cfg = config(0.8, 0.6, 500, seed, false, false, false);
        prop_assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn cold_reads_really_target_unwritten_pages(
        seed in any::<u64>(),
        cr in 0.3f64..0.95,
    ) {
        // Every write in a generated trace must land in the hot region, so
        // the measured cold ratio can never be *under*-delivered by writes
        // leaking into the cold region.
        let cfg = config(0.7, cr, 2_000, seed, false, false, false);
        let trace = cfg.generate();
        let max_write_page = trace
            .requests
            .iter()
            .filter(|r| r.op == IoOp::Write)
            .map(|r| r.lpn + r.len_pages as u64)
            .max()
            .unwrap_or(0);
        let min_cold_read = trace
            .requests
            .iter()
            .filter(|r| r.op == IoOp::Read && r.lpn >= max_write_page)
            .count();
        prop_assert!(min_cold_read > 0, "some reads must land beyond the write region");
    }
}
