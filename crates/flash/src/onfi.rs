//! ONFI-style command encoding (Open NAND Flash Interface 4.2 \[90\]).
//!
//! The paper's techniques ride on four chip commands — `PAGE READ`,
//! `CACHE READ`, `RESET`, and `SET FEATURE` — all standard ONFI operations.
//! This module encodes/decodes the byte-level command cycles a flash
//! controller would actually put on the bus, so the repository is usable as a
//! reference for what PR²/AR² require of real hardware: nothing beyond the
//! standard command set (the paper's "no change to underlying NAND flash
//! chips").
//!
//! Encoding covers the command/address cycles; data cycles are out of scope
//! (the simulator models their latency, not their bytes).

use crate::geometry::PageAddr;
use serde::{Deserialize, Serialize};

/// ONFI command opcodes used by the read-retry mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// READ first cycle (00h).
    Read = 0x00,
    /// READ confirm (30h).
    ReadConfirm = 0x30,
    /// CACHE READ confirm (31h) — §3.2.1's pipelined read.
    CacheReadConfirm = 0x31,
    /// CACHE READ END (3Fh) — flush the last cached page.
    CacheReadEnd = 0x3F,
    /// PAGE PROGRAM first cycle (80h).
    Program = 0x80,
    /// PAGE PROGRAM confirm (10h).
    ProgramConfirm = 0x10,
    /// BLOCK ERASE first cycle (60h).
    Erase = 0x60,
    /// BLOCK ERASE confirm (D0h).
    EraseConfirm = 0xD0,
    /// SET FEATURES (EFh) — AR²'s timing-parameter knob.
    SetFeatures = 0xEF,
    /// GET FEATURES (EEh).
    GetFeatures = 0xEE,
    /// RESET (FFh) — PR²'s speculative-step terminator.
    Reset = 0xFF,
    /// READ STATUS (70h).
    ReadStatus = 0x70,
}

/// The ONFI feature address vendors map read-timing trims to. The base ONFI
/// spec reserves addresses 80h+ for vendor-specific features; timing trims
/// live there on the parts the paper characterizes (§4: "dynamic change of
/// timing parameters for a read by using the SET FEATURE command").
pub const FEATURE_ADDR_READ_TIMING: u8 = 0x91;

/// One bus cycle of an encoded command sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cycle {
    /// Command latch cycle.
    Cmd(u8),
    /// Address latch cycle.
    Addr(u8),
    /// Data-out cycle (controller → chip), e.g. feature parameters.
    DataOut(u8),
}

/// Encodes the 5-cycle row/column address of a page (2 column + 3 row cycles,
/// the common 3D TLC layout: column always 0 for whole-page reads).
///
/// Row address packs `page | block | plane` little-endian; die selection is
/// by chip-enable, not address cycles.
pub fn encode_address(addr: PageAddr, pages_per_block: u32) -> Vec<Cycle> {
    let row: u32 = addr.page + pages_per_block * (addr.block * 2 + addr.plane);
    vec![
        Cycle::Addr(0x00),
        Cycle::Addr(0x00),
        Cycle::Addr((row & 0xFF) as u8),
        Cycle::Addr(((row >> 8) & 0xFF) as u8),
        Cycle::Addr(((row >> 16) & 0xFF) as u8),
    ]
}

/// Encodes a regular `PAGE READ` (00h – addr ×5 – 30h).
pub fn encode_page_read(addr: PageAddr, pages_per_block: u32) -> Vec<Cycle> {
    let mut seq = vec![Cycle::Cmd(Opcode::Read as u8)];
    seq.extend(encode_address(addr, pages_per_block));
    seq.push(Cycle::Cmd(Opcode::ReadConfirm as u8));
    seq
}

/// Encodes a random `CACHE READ` of another page while the previous page's
/// data drains from the cache register (00h – addr ×5 – 31h) — the §3.2.1
/// extension to arbitrary page locations.
pub fn encode_cache_read(addr: PageAddr, pages_per_block: u32) -> Vec<Cycle> {
    let mut seq = vec![Cycle::Cmd(Opcode::Read as u8)];
    seq.extend(encode_address(addr, pages_per_block));
    seq.push(Cycle::Cmd(Opcode::CacheReadConfirm as u8));
    seq
}

/// Encodes `SET FEATURES` of the read-timing trim register: EFh – feature
/// address – 4 parameter bytes. We pack ⟨tPRE, tEVAL, tDISCH⟩ in µs plus a
/// reserved byte, which is how the characterization platform of §4 drives
/// its timing sweeps.
///
/// # Panics
///
/// Panics if any timing value exceeds 255 µs (the one-byte trim encoding).
pub fn encode_set_read_timing(t_pre_us: u32, t_eval_us: u32, t_disch_us: u32) -> Vec<Cycle> {
    for (name, v) in [
        ("tPRE", t_pre_us),
        ("tEVAL", t_eval_us),
        ("tDISCH", t_disch_us),
    ] {
        assert!(
            v <= 0xFF,
            "{name} = {v} µs exceeds the one-byte trim encoding"
        );
    }
    vec![
        Cycle::Cmd(Opcode::SetFeatures as u8),
        Cycle::Addr(FEATURE_ADDR_READ_TIMING),
        Cycle::DataOut(t_pre_us as u8),
        Cycle::DataOut(t_eval_us as u8),
        Cycle::DataOut(t_disch_us as u8),
        Cycle::DataOut(0x00),
    ]
}

/// Encodes `RESET` (FFh).
pub fn encode_reset() -> Vec<Cycle> {
    vec![Cycle::Cmd(Opcode::Reset as u8)]
}

/// A decoded command, for controller-side tracing and sequence verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedCommand {
    /// A full PAGE READ with its packed row address.
    PageRead {
        /// Packed row address.
        row: u32,
    },
    /// A CACHE READ with its packed row address.
    CacheRead {
        /// Packed row address.
        row: u32,
    },
    /// SET FEATURES of the read-timing register.
    SetReadTiming {
        /// tPRE in µs.
        t_pre_us: u8,
        /// tEVAL in µs.
        t_eval_us: u8,
        /// tDISCH in µs.
        t_disch_us: u8,
    },
    /// RESET.
    Reset,
}

/// Decodes one command sequence (the inverse of the encoders above).
///
/// # Errors
///
/// Returns a message describing the first malformed cycle.
pub fn decode(cycles: &[Cycle]) -> Result<DecodedCommand, String> {
    match cycles {
        [Cycle::Cmd(0x00), addrs @ .., Cycle::Cmd(confirm)] if addrs.len() == 5 => {
            let mut row: u32 = 0;
            for (i, c) in addrs[2..].iter().enumerate() {
                let Cycle::Addr(b) = c else {
                    return Err("row cycles must be address cycles".into());
                };
                row |= (*b as u32) << (8 * i);
            }
            match confirm {
                0x30 => Ok(DecodedCommand::PageRead { row }),
                0x31 => Ok(DecodedCommand::CacheRead { row }),
                other => Err(format!("unknown read confirm cycle {other:#04x}")),
            }
        }
        [Cycle::Cmd(0xEF), Cycle::Addr(fa), Cycle::DataOut(p), Cycle::DataOut(e), Cycle::DataOut(d), Cycle::DataOut(_)] =>
        {
            if *fa != FEATURE_ADDR_READ_TIMING {
                return Err(format!("unsupported feature address {fa:#04x}"));
            }
            Ok(DecodedCommand::SetReadTiming {
                t_pre_us: *p,
                t_eval_us: *e,
                t_disch_us: *d,
            })
        }
        [Cycle::Cmd(0xFF)] => Ok(DecodedCommand::Reset),
        _ => Err("unrecognized command sequence".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> PageAddr {
        PageAddr::new(0, 1, 100, 42)
    }

    #[test]
    fn page_read_roundtrip() {
        let seq = encode_page_read(addr(), 576);
        assert_eq!(seq.len(), 7); // cmd + 5 addr + confirm
        let row = 42 + 576 * (100 * 2 + 1);
        assert_eq!(decode(&seq).unwrap(), DecodedCommand::PageRead { row });
    }

    #[test]
    fn cache_read_differs_only_in_confirm() {
        let pr = encode_page_read(addr(), 576);
        let cr = encode_cache_read(addr(), 576);
        assert_eq!(pr[..6], cr[..6]);
        assert_eq!(pr[6], Cycle::Cmd(0x30));
        assert_eq!(cr[6], Cycle::Cmd(0x31));
        assert!(matches!(
            decode(&cr).unwrap(),
            DecodedCommand::CacheRead { .. }
        ));
    }

    #[test]
    fn set_feature_roundtrip_with_table1_and_ar2_values() {
        // Default Table-1 trims.
        let seq = encode_set_read_timing(24, 5, 10);
        assert_eq!(
            decode(&seq).unwrap(),
            DecodedCommand::SetReadTiming {
                t_pre_us: 24,
                t_eval_us: 5,
                t_disch_us: 10
            }
        );
        // AR²'s 40 %-reduced tPRE (24 µs → 14 µs, rounding to the µs trim).
        let seq = encode_set_read_timing(14, 5, 10);
        assert!(matches!(
            decode(&seq).unwrap(),
            DecodedCommand::SetReadTiming { t_pre_us: 14, .. }
        ));
    }

    #[test]
    fn reset_is_single_cycle() {
        assert_eq!(decode(&encode_reset()).unwrap(), DecodedCommand::Reset);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[Cycle::Cmd(0x77)]).is_err());
        assert!(decode(&[]).is_err());
        let mut bad = encode_page_read(addr(), 576);
        bad[6] = Cycle::Cmd(0x99);
        assert!(decode(&bad).is_err());
        let mut bad_feature = encode_set_read_timing(24, 5, 10);
        bad_feature[1] = Cycle::Addr(0x01);
        assert!(decode(&bad_feature).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds the one-byte trim")]
    fn oversized_timing_rejected() {
        encode_set_read_timing(300, 5, 10);
    }

    #[test]
    fn distinct_pages_have_distinct_rows() {
        let a = encode_page_read(PageAddr::new(0, 0, 0, 0), 576);
        let b = encode_page_read(PageAddr::new(0, 0, 0, 1), 576);
        assert_ne!(a, b);
    }
}
