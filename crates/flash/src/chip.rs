//! NAND chip command state machine (§2.2, §3.2.1).
//!
//! Models one chip: per-die busy state, the page-cache register that
//! `CACHE READ` pipelining relies on, `SET FEATURE` timing overrides,
//! `RESET` termination, and program/erase suspension. The state machine is
//! time-explicit but engine-agnostic: callers (the discrete-event simulator,
//! the characterization platform, unit tests) pass in "now" and get back
//! completion times; nothing here owns an event loop.
//!
//! Legality checking is strict on purpose — erase-before-write, sequential
//! page programming within a block, and single-operation-per-die are the
//! invariants an FTL must uphold, and violating them is a bug we want to
//! surface, not absorb.

use crate::geometry::{BlockAddr, ChipGeometry, PageAddr, PageKind};
use crate::timing::{NandTimings, SensePhases};
use rr_util::time::SimTime;

/// What a die is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DieOp {
    /// Sensing a page into the internal page buffer.
    Read {
        /// The page being sensed.
        addr: PageAddr,
    },
    /// Programming a page from the page buffer.
    Program {
        /// The page being programmed.
        addr: PageAddr,
    },
    /// Erasing a block.
    Erase {
        /// The block being erased.
        block: BlockAddr,
    },
    /// Executing `SET FEATURE`.
    SetFeature,
    /// Executing `RESET` (terminating a previous operation).
    Reset,
}

impl DieOp {
    /// Whether this operation may be suspended to let a read through
    /// (program/erase suspension, §7.2).
    pub fn suspendable(&self) -> bool {
        matches!(self, DieOp::Program { .. } | DieOp::Erase { .. })
    }
}

/// A suspended program/erase awaiting resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SuspendedOp {
    op: DieOp,
    /// Work remaining when suspended.
    remaining: SimTime,
}

/// Per-die state.
#[derive(Debug, Clone)]
struct DieState {
    busy_until: SimTime,
    current: Option<DieOp>,
    suspended: Option<SuspendedOp>,
    /// Sensed page sitting in the cache register, available for transfer.
    cache: Option<PageAddr>,
    /// Active sensing-phase override installed by `SET FEATURE` (AR²).
    sense_override: Option<SensePhases>,
}

impl DieState {
    fn new() -> Self {
        Self {
            busy_until: SimTime::ZERO,
            current: None,
            suspended: None,
            cache: None,
            sense_override: None,
        }
    }

    fn is_busy(&self, now: SimTime) -> bool {
        self.current.is_some() && now < self.busy_until
    }

    fn settle(&mut self, now: SimTime) {
        if self.current.is_some() && now >= self.busy_until {
            // A completed read leaves its page in the cache register.
            if let Some(DieOp::Read { addr }) = self.current {
                self.cache = Some(addr);
            }
            self.current = None;
        }
    }
}

/// Per-block bookkeeping the chip itself maintains.
#[derive(Debug, Clone, Default)]
struct BlockState {
    /// Number of pages programmed so far (NAND requires sequential
    /// programming within a block).
    programmed_pages: u32,
    /// Program/erase cycles endured.
    pec: u32,
}

/// One NAND flash chip.
///
/// # Example
///
/// ```
/// use rr_flash::chip::Chip;
/// use rr_flash::geometry::{ChipGeometry, PageAddr};
/// use rr_util::time::SimTime;
///
/// let mut chip = Chip::new(ChipGeometry::tiny());
/// let addr = PageAddr::new(0, 0, 0, 0);
/// let t0 = SimTime::ZERO;
/// let done = chip.begin_program(addr, t0)?;
/// let done_read = chip.begin_read(addr, done)?;
/// assert!(done_read > done);
/// # Ok::<(), rr_flash::chip::ChipError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Chip {
    geometry: ChipGeometry,
    timings: NandTimings,
    dies: Vec<DieState>,
    blocks: Vec<BlockState>,
}

impl Chip {
    /// Creates a chip with Table-1 timings.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(geometry: ChipGeometry) -> Self {
        Self::with_timings(geometry, NandTimings::table1())
    }

    /// Creates a chip with explicit timings.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn with_timings(geometry: ChipGeometry, timings: NandTimings) -> Self {
        geometry.validate().expect("chip geometry must be valid");
        let dies = (0..geometry.dies).map(|_| DieState::new()).collect();
        let blocks = vec![BlockState::default(); geometry.blocks_per_chip() as usize];
        Self {
            geometry,
            timings,
            dies,
            blocks,
        }
    }

    /// The chip geometry.
    pub fn geometry(&self) -> &ChipGeometry {
        &self.geometry
    }

    /// The chip's default timings.
    pub fn timings(&self) -> &NandTimings {
        &self.timings
    }

    fn block_index(&self, b: BlockAddr) -> usize {
        b.block_key(&self.geometry) as usize
    }

    fn die_mut(&mut self, die: u32, now: SimTime) -> Result<&mut DieState, ChipError> {
        let state = self
            .dies
            .get_mut(die as usize)
            .ok_or(ChipError::BadAddress)?;
        state.settle(now);
        Ok(state)
    }

    /// Effective sensing phases for a die (`SET FEATURE` override or default).
    pub fn sense_phases(&self, die: u32) -> SensePhases {
        self.dies
            .get(die as usize)
            .and_then(|d| d.sense_override)
            .unwrap_or(self.timings.sense)
    }

    /// When the die frees up (for schedulers probing availability).
    pub fn die_busy_until(&self, die: u32) -> SimTime {
        self.dies
            .get(die as usize)
            .map(|d| d.busy_until)
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether the die is busy at `now`.
    pub fn die_is_busy(&self, die: u32, now: SimTime) -> bool {
        self.dies
            .get(die as usize)
            .map(|d| d.is_busy(now))
            .unwrap_or(false)
    }

    /// Program/erase cycle count of a block.
    pub fn block_pec(&self, block: BlockAddr) -> u32 {
        self.blocks[self.block_index(block)].pec
    }

    /// Number of sequentially programmed pages in a block.
    pub fn block_programmed_pages(&self, block: BlockAddr) -> u32 {
        self.blocks[self.block_index(block)].programmed_pages
    }

    /// Whether a page currently holds data.
    pub fn page_is_programmed(&self, addr: PageAddr) -> bool {
        addr.page < self.blocks[self.block_index(addr.block_addr())].programmed_pages
    }

    /// Starts a `PAGE READ` (sensing) on the page's die.
    ///
    /// Returns the sensing completion time; afterwards the page sits in the
    /// die's cache register awaiting transfer.
    ///
    /// # Errors
    ///
    /// [`ChipError::DieBusy`] if the die is mid-operation,
    /// [`ChipError::BadAddress`] for an out-of-range address,
    /// [`ChipError::ReadUnwritten`] when the page was never programmed.
    pub fn begin_read(&mut self, addr: PageAddr, now: SimTime) -> Result<SimTime, ChipError> {
        addr.check(&self.geometry)
            .map_err(|_| ChipError::BadAddress)?;
        if !self.page_is_programmed(addr) {
            return Err(ChipError::ReadUnwritten);
        }
        let kind = self.geometry.page_kind(addr.page);
        let phases = self.sense_phases(addr.die);
        let die = self.die_mut(addr.die, now)?;
        if die.is_busy(now) {
            return Err(ChipError::DieBusy);
        }
        let done = now + phases.t_r(kind);
        die.current = Some(DieOp::Read { addr });
        die.busy_until = done;
        Ok(done)
    }

    /// Starts a `CACHE READ`: identical sensing cost, but legal while the
    /// *previous* page still occupies the cache register being transferred —
    /// the pipelining PR² exploits (Fig. 6). The previously cached page is
    /// returned so the caller can account the overlap.
    ///
    /// # Errors
    ///
    /// Same as [`Chip::begin_read`]; additionally requires that a previous
    /// read's data is (or was) in the cache register, which is what makes it
    /// a *cache* read.
    pub fn begin_cache_read(
        &mut self,
        addr: PageAddr,
        now: SimTime,
    ) -> Result<CacheReadStart, ChipError> {
        addr.check(&self.geometry)
            .map_err(|_| ChipError::BadAddress)?;
        if !self.page_is_programmed(addr) {
            return Err(ChipError::ReadUnwritten);
        }
        let kind = self.geometry.page_kind(addr.page);
        let phases = self.sense_phases(addr.die);
        let die = self.die_mut(addr.die, now)?;
        if die.is_busy(now) {
            return Err(ChipError::DieBusy);
        }
        let previous = die.cache.take().ok_or(ChipError::CacheEmpty)?;
        let done = now + phases.t_r(kind);
        die.current = Some(DieOp::Read { addr });
        die.busy_until = done;
        Ok(CacheReadStart {
            sense_done: done,
            transferable: previous,
        })
    }

    /// Starts a page program.
    ///
    /// # Errors
    ///
    /// [`ChipError::DieBusy`], [`ChipError::BadAddress`], or
    /// [`ChipError::ProgramOutOfOrder`] when skipping pages or re-programming
    /// without an erase (erase-before-write, §2.2).
    pub fn begin_program(&mut self, addr: PageAddr, now: SimTime) -> Result<SimTime, ChipError> {
        addr.check(&self.geometry)
            .map_err(|_| ChipError::BadAddress)?;
        let block_idx = self.block_index(addr.block_addr());
        let next = self.blocks[block_idx].programmed_pages;
        if addr.page != next {
            return Err(ChipError::ProgramOutOfOrder {
                expected: next,
                got: addr.page,
            });
        }
        let t_prog = self.timings.t_prog;
        let die = self.die_mut(addr.die, now)?;
        if die.is_busy(now) {
            return Err(ChipError::DieBusy);
        }
        let done = now + t_prog;
        die.current = Some(DieOp::Program { addr });
        die.busy_until = done;
        self.blocks[block_idx].programmed_pages += 1;
        Ok(done)
    }

    /// Starts a block erase.
    ///
    /// # Errors
    ///
    /// [`ChipError::DieBusy`] or [`ChipError::BadAddress`].
    pub fn begin_erase(&mut self, block: BlockAddr, now: SimTime) -> Result<SimTime, ChipError> {
        block
            .page(0)
            .check(&self.geometry)
            .map_err(|_| ChipError::BadAddress)?;
        let t_bers = self.timings.t_bers;
        let die = self.die_mut(block.die, now)?;
        if die.is_busy(now) {
            return Err(ChipError::DieBusy);
        }
        let done = now + t_bers;
        die.current = Some(DieOp::Erase { block });
        die.busy_until = done;
        let b = self.block_index(block);
        self.blocks[b].programmed_pages = 0;
        self.blocks[b].pec += 1;
        Ok(done)
    }

    /// Suspends an in-flight program/erase so a read can be served
    /// (program/erase suspension, §7.2). Returns when the die becomes free.
    ///
    /// # Errors
    ///
    /// [`ChipError::NothingToSuspend`] if the die is idle or running a
    /// non-suspendable operation, [`ChipError::AlreadySuspended`] if a
    /// suspended operation is already pending.
    pub fn suspend(&mut self, die_idx: u32, now: SimTime) -> Result<SimTime, ChipError> {
        let t_suspend = self.timings.t_suspend;
        let die = self.die_mut(die_idx, now)?;
        let Some(op) = die.current else {
            return Err(ChipError::NothingToSuspend);
        };
        if !op.suspendable() {
            return Err(ChipError::NothingToSuspend);
        }
        if die.suspended.is_some() {
            return Err(ChipError::AlreadySuspended);
        }
        let remaining = die.busy_until.saturating_sub(now);
        die.suspended = Some(SuspendedOp { op, remaining });
        die.current = None;
        let free_at = now + t_suspend;
        die.busy_until = free_at;
        Ok(free_at)
    }

    /// Resumes a previously suspended program/erase; returns its completion.
    ///
    /// # Errors
    ///
    /// [`ChipError::DieBusy`] or [`ChipError::NothingToResume`].
    pub fn resume(&mut self, die_idx: u32, now: SimTime) -> Result<SimTime, ChipError> {
        let die = self.die_mut(die_idx, now)?;
        if die.is_busy(now) {
            return Err(ChipError::DieBusy);
        }
        let s = die.suspended.take().ok_or(ChipError::NothingToResume)?;
        let done = now + s.remaining;
        die.current = Some(s.op);
        die.busy_until = done;
        Ok(done)
    }

    /// Whether the die has a suspended program/erase pending resume.
    pub fn has_suspended(&self, die: u32) -> bool {
        self.dies
            .get(die as usize)
            .map(|d| d.suspended.is_some())
            .unwrap_or(false)
    }

    /// Issues `RESET`, terminating whatever the die is doing (PR² uses this to
    /// kill the speculatively started extra retry step, §6.1). Returns when
    /// the die is usable again (`now + tRST`). A terminated read leaves no
    /// data in the cache register.
    pub fn reset(&mut self, die_idx: u32, now: SimTime) -> Result<SimTime, ChipError> {
        let t_rst = self.timings.t_rst_read;
        let die = self.die_mut(die_idx, now)?;
        die.current = Some(DieOp::Reset);
        die.cache = None;
        let done = now + t_rst;
        die.busy_until = done;
        Ok(done)
    }

    /// Issues `SET FEATURE` to install (or with `None`, clear) a sensing-phase
    /// override on a die — AR²'s step ② / ④ (Fig. 13). Takes `tSET`.
    ///
    /// # Errors
    ///
    /// [`ChipError::DieBusy`] if the die is mid-operation.
    pub fn set_feature(
        &mut self,
        die_idx: u32,
        phases: Option<SensePhases>,
        now: SimTime,
    ) -> Result<SimTime, ChipError> {
        let t_set = self.timings.t_set;
        let die = self.die_mut(die_idx, now)?;
        if die.is_busy(now) {
            return Err(ChipError::DieBusy);
        }
        die.sense_override = phases;
        die.current = Some(DieOp::SetFeature);
        let done = now + t_set;
        die.busy_until = done;
        Ok(done)
    }

    /// The sensing latency a read of `addr` would take right now on its die,
    /// honouring any `SET FEATURE` override (Eq. 1).
    pub fn read_latency(&self, addr: PageAddr) -> SimTime {
        let kind = self.geometry.page_kind(addr.page);
        self.sense_phases(addr.die).t_r(kind)
    }

    /// The page kind (LSB/CSB/MSB) of an address.
    pub fn page_kind(&self, addr: PageAddr) -> PageKind {
        self.geometry.page_kind(addr.page)
    }
}

/// Result of starting a `CACHE READ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheReadStart {
    /// When the new page's sensing completes.
    pub sense_done: SimTime,
    /// The previously sensed page, now free to transfer over the channel
    /// while the new sensing proceeds.
    pub transferable: PageAddr,
}

/// Errors from chip command issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipError {
    /// The target die is executing another operation.
    DieBusy,
    /// Address out of range for this chip's geometry.
    BadAddress,
    /// Attempt to read a page that was never programmed.
    ReadUnwritten,
    /// NAND pages must be programmed sequentially within a block, once,
    /// between erases.
    ProgramOutOfOrder {
        /// The next programmable page index in the block.
        expected: u32,
        /// The requested page index.
        got: u32,
    },
    /// `CACHE READ` requires previously sensed data in the cache register.
    CacheEmpty,
    /// Suspend requested with no suspendable operation in flight.
    NothingToSuspend,
    /// A suspended operation is already pending on this die.
    AlreadySuspended,
    /// Resume requested with nothing suspended.
    NothingToResume,
}

impl core::fmt::Display for ChipError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChipError::DieBusy => write!(f, "die is busy"),
            ChipError::BadAddress => write!(f, "address out of range"),
            ChipError::ReadUnwritten => write!(f, "read of an unprogrammed page"),
            ChipError::ProgramOutOfOrder { expected, got } => {
                write!(
                    f,
                    "out-of-order program: expected page {expected}, got {got}"
                )
            }
            ChipError::CacheEmpty => write!(f, "cache read with empty cache register"),
            ChipError::NothingToSuspend => write!(f, "no suspendable operation in flight"),
            ChipError::AlreadySuspended => write!(f, "a suspended operation is already pending"),
            ChipError::NothingToResume => write!(f, "no suspended operation to resume"),
        }
    }
}

impl std::error::Error for ChipError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Chip {
        Chip::new(ChipGeometry::tiny())
    }

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    /// Program pages 0..n of block (0,0,0) back-to-back; returns finish time.
    fn program_block_prefix(c: &mut Chip, n: u32) -> SimTime {
        let mut t = SimTime::ZERO;
        for p in 0..n {
            t = c.begin_program(PageAddr::new(0, 0, 0, p), t).unwrap();
        }
        t
    }

    #[test]
    fn read_takes_eq1_latency() {
        let mut c = chip();
        let t0 = program_block_prefix(&mut c, 3);
        // Page 0 is LSB: 2 × 39 = 78 µs; page 1 CSB: 117 µs.
        let done = c.begin_read(PageAddr::new(0, 0, 0, 0), t0).unwrap();
        assert_eq!(done - t0, us(78));
        let done2 = c.begin_read(PageAddr::new(0, 0, 0, 1), done).unwrap();
        assert_eq!(done2 - done, us(117));
    }

    #[test]
    fn die_busy_rejected_then_free_after_completion() {
        let mut c = chip();
        let t0 = program_block_prefix(&mut c, 2);
        let done = c.begin_read(PageAddr::new(0, 0, 0, 0), t0).unwrap();
        assert_eq!(
            c.begin_read(PageAddr::new(0, 0, 0, 1), t0).unwrap_err(),
            ChipError::DieBusy
        );
        assert!(c.begin_read(PageAddr::new(0, 0, 0, 1), done).is_ok());
    }

    #[test]
    fn dies_operate_independently() {
        let mut c = chip();
        // Program one page on each die (legal: different blocks).
        let d0 = c
            .begin_program(PageAddr::new(0, 0, 0, 0), SimTime::ZERO)
            .unwrap();
        let d1 = c
            .begin_program(PageAddr::new(1, 0, 0, 0), SimTime::ZERO)
            .unwrap();
        assert_eq!(d0, d1, "both dies run concurrently");
    }

    #[test]
    fn read_unwritten_page_is_an_error() {
        let mut c = chip();
        assert_eq!(
            c.begin_read(PageAddr::new(0, 0, 0, 0), SimTime::ZERO)
                .unwrap_err(),
            ChipError::ReadUnwritten
        );
    }

    #[test]
    fn sequential_program_enforced_and_reset_by_erase() {
        let mut c = chip();
        let t = c
            .begin_program(PageAddr::new(0, 0, 0, 0), SimTime::ZERO)
            .unwrap();
        // Skipping page 1 is illegal.
        assert_eq!(
            c.begin_program(PageAddr::new(0, 0, 0, 2), t).unwrap_err(),
            ChipError::ProgramOutOfOrder {
                expected: 1,
                got: 2
            }
        );
        // Rewriting page 0 without erase is illegal.
        assert!(matches!(
            c.begin_program(PageAddr::new(0, 0, 0, 0), t),
            Err(ChipError::ProgramOutOfOrder { .. })
        ));
        // After erase, page 0 is programmable again and PEC is counted.
        let b = BlockAddr::new(0, 0, 0);
        let t = c.begin_erase(b, t).unwrap();
        assert_eq!(c.block_pec(b), 1);
        assert!(c.begin_program(PageAddr::new(0, 0, 0, 0), t).is_ok());
    }

    #[test]
    fn erase_latency_is_tbers() {
        let mut c = chip();
        let done = c
            .begin_erase(BlockAddr::new(0, 0, 0), SimTime::ZERO)
            .unwrap();
        assert_eq!(done, SimTime::from_ms(5));
    }

    #[test]
    fn cache_read_requires_prior_sensing_then_pipelines() {
        let mut c = chip();
        let t0 = program_block_prefix(&mut c, 6);
        let a0 = PageAddr::new(0, 0, 0, 0);
        let a3 = PageAddr::new(0, 0, 0, 3);
        // No sensed data yet → cache read illegal.
        assert_eq!(
            c.begin_cache_read(a3, t0).unwrap_err(),
            ChipError::CacheEmpty
        );
        // Regular read first...
        let s1 = c.begin_read(a0, t0).unwrap();
        // ...then a CACHE READ of *any* page (random cache read, §3.2.1):
        // returns the previous page for concurrent transfer.
        let start = c.begin_cache_read(a3, s1).unwrap();
        assert_eq!(start.transferable, a0);
        assert_eq!(start.sense_done - s1, us(78)); // page 3 is LSB
    }

    #[test]
    fn reset_terminates_read_in_trst() {
        let mut c = chip();
        let t0 = program_block_prefix(&mut c, 1);
        let a = PageAddr::new(0, 0, 0, 0);
        let _sensing_done = c.begin_read(a, t0).unwrap();
        // Mid-sensing, PR² decides the step is unnecessary: RESET.
        let mid = t0 + us(10);
        let free = c.reset(0, mid).unwrap();
        assert_eq!(free - mid, us(5)); // tRST = 5 µs for reads (Table 1)
                                       // The cache register is cleared: a subsequent CACHE READ is illegal.
        assert_eq!(
            c.begin_cache_read(a, free).unwrap_err(),
            ChipError::CacheEmpty
        );
    }

    #[test]
    fn set_feature_overrides_sensing_latency_and_rolls_back() {
        let mut c = chip();
        let t0 = program_block_prefix(&mut c, 1);
        let a = PageAddr::new(0, 0, 0, 0);
        let reduced = SensePhases::table1().with_reduction(0.40, 0.0, 0.0);
        let t1 = c.set_feature(0, Some(reduced), t0).unwrap();
        assert_eq!(t1 - t0, us(1)); // tSET = 1 µs
        let done = c.begin_read(a, t1).unwrap();
        // tR with tPRE −40 %: 2 × (14.4 + 5 + 10) = 58.8 µs.
        assert_eq!(done - t1, SimTime::from_ns(58_800));
        // Roll back to defaults (AR² step ④).
        let t2 = c.set_feature(0, None, done).unwrap();
        let done2 = c.begin_read(a, t2).unwrap();
        assert_eq!(done2 - t2, us(78));
    }

    #[test]
    fn suspension_lets_read_preempt_program() {
        let mut c = chip();
        let t0 = program_block_prefix(&mut c, 1);
        // Start a long program of the next page.
        let _prog_done = c.begin_program(PageAddr::new(0, 0, 0, 1), t0).unwrap();
        // A read arrives 100 µs in; suspend the program.
        let t_read = t0 + us(100);
        let free = c.suspend(0, t_read).unwrap();
        assert_eq!(free - t_read, c.timings().t_suspend);
        // Read proceeds.
        let read_done = c.begin_read(PageAddr::new(0, 0, 0, 0), free).unwrap();
        // Resume finishes the remaining 600 µs of the program.
        assert!(c.has_suspended(0));
        let resumed_done = c.resume(0, read_done).unwrap();
        assert_eq!(resumed_done - read_done, us(600));
        assert!(!c.has_suspended(0));
    }

    #[test]
    fn suspend_requires_suspendable_op() {
        let mut c = chip();
        let t0 = program_block_prefix(&mut c, 1);
        assert_eq!(c.suspend(0, t0).unwrap_err(), ChipError::NothingToSuspend);
        let _ = c.begin_read(PageAddr::new(0, 0, 0, 0), t0).unwrap();
        // Reads are not suspendable.
        assert_eq!(
            c.suspend(0, t0 + us(1)).unwrap_err(),
            ChipError::NothingToSuspend
        );
    }

    #[test]
    fn resume_without_suspend_is_error() {
        let mut c = chip();
        assert_eq!(
            c.resume(0, SimTime::ZERO).unwrap_err(),
            ChipError::NothingToResume
        );
    }

    #[test]
    fn bad_addresses_rejected() {
        let mut c = chip();
        assert_eq!(
            c.begin_read(PageAddr::new(9, 0, 0, 0), SimTime::ZERO)
                .unwrap_err(),
            ChipError::BadAddress
        );
        assert_eq!(
            c.begin_erase(BlockAddr::new(0, 0, 99), SimTime::ZERO)
                .unwrap_err(),
            ChipError::BadAddress
        );
    }
}
