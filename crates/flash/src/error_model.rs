//! Per-page deterministic error behaviour, layered on the [`Calibration`].
//!
//! The paper's MQSim extension (§7.1) maps every simulated block to a real
//! characterized block so that "a simulated block can accurately emulate the
//! same read-retry behavior as the corresponding real block for every read".
//! We reproduce that by deriving, for every (chip, block, page), *stationary*
//! pseudo-random process variation from a hash of its address — the same page
//! under the same operating condition always behaves identically, within and
//! across simulation runs.
//!
//! Three quantities drive everything the mechanisms can observe:
//!
//! 1. [`ErrorModel::required_step_index`] — the retry-table index whose V_REF
//!    values first bring the page below the ECC capability (0 ⇒ the initial
//!    read succeeds; N ⇒ N retry steps after the failed initial read).
//! 2. [`ErrorModel::final_step_errors`] — raw bit errors per worst 1-KiB
//!    codeword in that final, successful step (the quantity whose population
//!    max is Fig. 7's M_ERR).
//! 3. [`ErrorModel::errors_at_step`] — raw bit errors when the page is read
//!    at an arbitrary step with arbitrary sensing timings (Figs. 4b, 8–11).

use crate::calibration::{
    Calibration, OperatingCondition, ECC_CAPABILITY_PER_KIB, MAX_RETRY_STEPS,
};
use crate::retry_table::RetryTable;
use crate::timing::SensePhases;
use rr_util::cache::StationaryCache;
use rr_util::rng::{mix64, unit_hash};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Stationary identity of a page for the error model: which chip, block and
/// page it is. Keys must be unique per physical page across the whole SSD
/// (the sim crate builds them from channel/chip/die/plane/block/page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageId {
    /// Unique key of the containing block across the SSD.
    pub block_key: u64,
    /// Page index within the block.
    pub page_in_block: u32,
}

impl PageId {
    /// Creates a page identity.
    pub const fn new(block_key: u64, page_in_block: u32) -> Self {
        Self {
            block_key,
            page_in_block,
        }
    }

    fn page_key(&self) -> u64 {
        mix64(self.block_key, self.page_in_block as u64 + 1)
    }
}

/// Everything a read-retry mechanism can learn about one page read under one
/// operating condition, computed once per flash read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageReadProfile {
    /// Retry-table index of the first successful read (0 ⇒ no retry needed).
    pub required_step: u32,
    /// Raw bit errors per worst codeword at the final (successful) step with
    /// default timings.
    pub final_errors: u32,
    /// Whether this page is an injected outlier (exceeds the population
    /// M_ERR; see [`ErrorModel::with_outlier_rate`]).
    pub outlier: bool,
}

impl PageReadProfile {
    /// Number of retry steps a regular read-retry performs (Eq. 3's N_RR).
    pub fn n_rr(&self) -> u32 {
        self.required_step
    }

    /// ECC-capability margin in the final step (footnote 5 of the paper).
    pub fn ecc_margin(&self) -> u32 {
        ECC_CAPABILITY_PER_KIB.saturating_sub(self.final_errors)
    }
}

/// The calibrated, deterministic per-page error model.
///
/// # Example
///
/// ```
/// use rr_flash::error_model::{ErrorModel, PageId};
/// use rr_flash::calibration::OperatingCondition;
///
/// let model = ErrorModel::new(42);
/// let cond = OperatingCondition::new(2000.0, 12.0, 30.0);
/// let profile = model.page_profile(PageId::new(7, 3), cond);
/// // An aged page needs many retry steps (Fig. 5: mean 19.9 at this point).
/// assert!(profile.required_step > 10);
/// // ...but once the final step is reached, errors fit within the ECC
/// // capability with a large margin (Fig. 7).
/// assert!(profile.final_errors <= 72);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorModel {
    seed: u64,
    cal: Calibration,
    retry_table: RetryTable,
    outlier_rate: f64,
    /// Memo for per-(page, condition) profiles and per-(condition, phases)
    /// timing penalties; `None` disables memoization entirely (the
    /// equivalence tests compare both paths bit-for-bit).
    cache: Option<RefCell<ModelCache>>,
}

/// The replay-relevant state of an [`ErrorModel`], as carried by a device
/// image: the inputs of the stationary per-page hash. See
/// [`ErrorModel::capture`] for why this is the *whole* state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelState {
    /// Seed of the per-page process-variation hash.
    pub seed: u64,
    /// Probability that a page is an error outlier.
    pub outlier_rate: f64,
}

/// The operating condition reduced to its exact bit pattern — cache keys must
/// distinguish conditions exactly, never by approximate equality.
type CondKey = (u64, u64, u64);

fn cond_key(cond: OperatingCondition) -> CondKey {
    (
        cond.pec.to_bits(),
        cond.retention_months.to_bits(),
        cond.temp_c.to_bits(),
    )
}

/// log2 of the per-condition profile-table slot count. Sized to hold the
/// working set of a trace replay (tens of thousands of hot pages); colliding
/// cold pages overwrite each other, which only costs a recompute.
const PROFILE_CACHE_SLOTS_LOG2: u32 = 15;
/// Linear-probe window of the profile table.
const PROFILE_CACHE_PROBE: usize = 4;
/// Conditions memoized per model. A simulation run sees at most two (cold
/// and freshly-written data); characterization sweeps that exceed the cap
/// simply bypass the cache for the extra conditions.
const MAX_COND_SHARDS: usize = 8;
/// Distinct (condition, sensing-phase) timing penalties memoized per model.
const MAX_PENALTY_MEMOS: usize = 32;

/// Key of one memoized timing penalty: the condition plus the three
/// reduction fractions, all as exact bit patterns.
type PenaltyKey = (CondKey, (u64, u64, u64));

/// Lazily grown memo state behind [`ErrorModel`]. Cache *contents* depend on
/// the query order, but every value handed out is recomputed-exact, so
/// cached and uncached models are observationally identical.
#[derive(Debug, Clone, Default)]
struct ModelCache {
    shards: Vec<CondShard>,
    penalties: Vec<(PenaltyKey, f64)>,
}

#[derive(Debug, Clone)]
struct CondShard {
    cond: CondKey,
    profiles: StationaryCache<(u64, u32), PageReadProfile>,
}

/// Fraction of block-level (vs. page-level) process variation in the retry
/// step count; blocks differ from each other, and pages within a block differ
/// less (the paper randomly samples 120 blocks per chip for this reason).
const BLOCK_NOISE_WEIGHT: f64 = 0.55;
const PAGE_NOISE_WEIGHT: f64 = 0.83;

/// Extra errors an injected outlier page exhibits beyond its nominal final
/// step errors (stays within ECC capability at default timings — outliers in
/// the paper only fail when timing is reduced, §6.2).
const OUTLIER_EXTRA_ERRORS: u32 = 20;

/// How far past the required step the near-optimal V_REF plateau extends:
/// reading with a slightly "too late" retry entry still succeeds, which is
/// what lets PSO start a few steps early/late without restarting from zero.
const OVERSHOOT_TOLERANCE: u32 = 3;

impl ErrorModel {
    /// Creates a model for one chip population with the paper's calibration.
    /// Profile memoization is on by default; see
    /// [`ErrorModel::with_profile_cache`].
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            cal: Calibration::asplos21(),
            retry_table: RetryTable::asplos21(),
            outlier_rate: 0.0,
            cache: Some(RefCell::new(ModelCache::default())),
        }
    }

    /// Enables or disables the per-(page, condition) profile memo (builder).
    ///
    /// The cache is a pure memoization: every observable output is
    /// bit-identical with it on or off (`tests/` and the sim-level
    /// equivalence suite assert this). Disabling exists for those tests and
    /// for memory-constrained embedding.
    pub fn with_profile_cache(mut self, enabled: bool) -> Self {
        self.cache = enabled.then(|| RefCell::new(ModelCache::default()));
        self
    }

    /// Sets the probability that a page is an "outlier" whose final-step RBER
    /// exceeds the population M_ERR. The paper observed none across 10⁷ pages
    /// (§6.2), so the default is 0; failure-injection tests raise it to
    /// exercise AR²'s fallback-to-default-timings path.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn with_outlier_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "outlier rate must be in [0, 1]"
        );
        self.outlier_rate = rate;
        // Profiles embed the outlier decision: drop any memoized under the
        // previous rate.
        if let Some(cache) = &self.cache {
            *cache.borrow_mut() = ModelCache::default();
        }
        self
    }

    /// The underlying calibration.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }

    /// The manufacturer retry table this model assumes.
    pub fn retry_table(&self) -> &RetryTable {
        &self.retry_table
    }

    /// The model seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Snapshots the model's replay-relevant state.
    ///
    /// The model is **stationary**: every observable quantity is a pure hash
    /// of `(seed, page, condition)`, and the profile/penalty memo behind
    /// [`ErrorModel::with_profile_cache`] is observationally neutral (the
    /// equivalence suites pin cached ≡ uncached bit-for-bit). A device image
    /// therefore carries only the inputs of that hash — seed and outlier
    /// rate — not megabytes of memo contents; a restored model re-derives
    /// identical behaviour from the first read onwards.
    pub fn capture(&self) -> ModelState {
        ModelState {
            seed: self.seed,
            outlier_rate: self.outlier_rate,
        }
    }

    /// Restores a captured state, dropping any memoized profiles (they may
    /// embed the previous seed or outlier decisions). The cache *enable*
    /// switch is untouched: it is a hot-path knob of the embedding run, not
    /// device state.
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range outlier rate — a decoded image must never
    /// panic its way into a model.
    pub fn restore(&mut self, state: ModelState) -> Result<(), String> {
        if !(0.0..=1.0).contains(&state.outlier_rate) {
            return Err(format!(
                "image outlier rate {} must be in [0, 1]",
                state.outlier_rate
            ));
        }
        self.seed = state.seed;
        self.outlier_rate = state.outlier_rate;
        if let Some(cache) = &self.cache {
            *cache.borrow_mut() = ModelCache::default();
        }
        Ok(())
    }

    /// A standard-normal-ish variate in `[-2, 2]`, stationary per key.
    fn stationary_z(&self, key: u64, salt: u64) -> f64 {
        // Box–Muller from two stationary uniforms, truncated to ±2 by
        // folding (keeps the value deterministic without rejection loops).
        let u1 = unit_hash(self.seed, key, salt, 0x5eed).max(1e-12);
        let u2 = unit_hash(self.seed, key, salt, 0xfeed);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        // Fold the tails back inside ±2 (|z| ≤ 4 covers essentially all mass).
        let z = z.clamp(-4.0, 4.0);
        if z > 2.0 {
            4.0 - z
        } else if z < -2.0 {
            -4.0 - z
        } else {
            z
        }
    }

    /// A stationary uniform in `[0, 1)` per key.
    fn stationary_u(&self, key: u64, salt: u64) -> f64 {
        unit_hash(self.seed, key, salt, 0xcafe)
    }

    /// Retry-table index of the first read that succeeds for this page
    /// (0 = the initial read; Fig. 5 when aggregated over pages).
    pub fn required_step_index(&self, page: PageId, cond: OperatingCondition) -> u32 {
        let mean = self.cal.mean_retry_steps(cond);
        if mean <= 0.05 {
            return 0;
        }
        let zb = self.stationary_z(page.block_key, 0xb10c);
        let zp = self.stationary_z(page.page_key(), 0x9a9e);
        let z = (BLOCK_NOISE_WEIGHT * zb + PAGE_NOISE_WEIGHT * zp).clamp(-2.0, 2.0);
        let sigma = 0.5 + 0.08 * mean;
        let steps = (mean + z * sigma).round();
        (steps.max(0.0) as u32).min(MAX_RETRY_STEPS)
    }

    /// Whether this page is an injected outlier.
    pub fn is_outlier(&self, page: PageId) -> bool {
        self.outlier_rate > 0.0 && self.stationary_u(page.page_key(), 0x0017) < self.outlier_rate
    }

    /// Raw bit errors per worst 1-KiB codeword at the final (successful) retry
    /// step, with default timings. The population max of this quantity is
    /// Fig. 7's M_ERR; individual pages sit below it.
    pub fn final_step_errors(&self, page: PageId, cond: OperatingCondition) -> u32 {
        let m_err = self.cal.m_err(cond);
        let u = self.stationary_u(page.page_key(), 0xe44);
        // Per-page spread: [0.5·M_ERR, M_ERR], right-skewed so the max is
        // actually attained by some pages (charact sweeps recover M_ERR).
        let e = m_err * (0.5 + 0.5 * u * u.sqrt());
        let mut errors = e.round() as u32;
        if self.is_outlier(page) {
            errors += OUTLIER_EXTRA_ERRORS;
        }
        errors
    }

    /// The full per-read profile. Served from the profile memo when enabled;
    /// a miss (or a disabled cache) derives it from the stationary hashes.
    pub fn page_profile(&self, page: PageId, cond: OperatingCondition) -> PageReadProfile {
        let Some(cache) = &self.cache else {
            return self.compute_profile(page, cond);
        };
        let ckey = cond_key(cond);
        let pkey = (page.block_key, page.page_in_block);
        let hash = mix64(
            self.seed ^ page.block_key,
            0x9_0F11E ^ page.page_in_block as u64,
        );
        let mut known_shard = false;
        {
            let c = cache.borrow();
            if let Some(shard) = c.shards.iter().find(|s| s.cond == ckey) {
                known_shard = true;
                if let Some(profile) = shard.profiles.get(hash, &pkey) {
                    return profile;
                }
            } else if c.shards.len() >= MAX_COND_SHARDS {
                // Too many distinct conditions (characterization sweeps):
                // bypass rather than thrash.
                return self.compute_profile(page, cond);
            }
        }
        let profile = self.compute_profile(page, cond);
        let mut c = cache.borrow_mut();
        let shard = if known_shard {
            c.shards
                .iter_mut()
                .find(|s| s.cond == ckey)
                .expect("shard existed under the immutable borrow")
        } else {
            c.shards.push(CondShard {
                cond: ckey,
                profiles: StationaryCache::new(PROFILE_CACHE_SLOTS_LOG2, PROFILE_CACHE_PROBE),
            });
            c.shards.last_mut().expect("just pushed")
        };
        shard.profiles.insert(hash, pkey, profile);
        profile
    }

    /// The uncached profile derivation (the single source of truth the memo
    /// must agree with).
    fn compute_profile(&self, page: PageId, cond: OperatingCondition) -> PageReadProfile {
        PageReadProfile {
            required_step: self.required_step_index(page, cond),
            final_errors: self.final_step_errors(page, cond),
            outlier: self.is_outlier(page),
        }
    }

    /// The population-max timing penalty for reading under `cond` with the
    /// given reduction fractions, memoized per (condition, reductions).
    fn max_timing_penalty(&self, cond: OperatingCondition, pre: f64, eval: f64, disch: f64) -> f64 {
        let Some(cache) = &self.cache else {
            return self.cal.delta_m_err(cond, pre, eval, disch);
        };
        let key = (
            cond_key(cond),
            (pre.to_bits(), eval.to_bits(), disch.to_bits()),
        );
        if let Some(&(_, v)) = cache.borrow().penalties.iter().find(|(k, _)| *k == key) {
            return v;
        }
        let v = self.cal.delta_m_err(cond, pre, eval, disch);
        let mut c = cache.borrow_mut();
        if c.penalties.len() < MAX_PENALTY_MEMOS {
            c.penalties.push((key, v));
        }
        v
    }

    /// Raw bit errors per worst codeword when reading this page at retry-table
    /// index `step` with sensing phases `phases` (defaults = Table 1).
    ///
    /// * For `step < required_step`, the V_REF values are too far from V_OPT
    ///   and errors grow quadratically with the distance (Fig. 4b): these
    ///   steps fail at default timings *and* at reduced timings — the paper's
    ///   argument for why AR² may shorten them freely.
    /// * For `required_step <= step <= required_step + tolerance`, the page is
    ///   on the near-optimal plateau and errors are [`Self::final_step_errors`]
    ///   plus the timing penalty.
    /// * Past the plateau the V_REF has overshot and errors grow again.
    pub fn errors_at_step(
        &self,
        page: PageId,
        cond: OperatingCondition,
        step: u32,
        phases: &SensePhases,
    ) -> u32 {
        let default = SensePhases::table1();
        let pre = default.pre_reduction_vs(phases);
        let eval = default.eval_reduction_vs(phases);
        let disch = default.disch_reduction_vs(phases);
        let timing_penalty = if pre == 0.0 && eval == 0.0 && disch == 0.0 {
            0.0
        } else {
            // Population-max penalty scaled by a per-page factor in
            // [0.6, 1.0]; the max is attained by the worst pages, which is
            // what the 14-bit RPT margin is sized against.
            let max_penalty = self.max_timing_penalty(cond, pre, eval, disch);
            let u = self.stationary_u(page.page_key(), 0xde17a);
            max_penalty * (0.6 + 0.4 * u)
        };

        let profile = self.page_profile(page, cond);
        let required = profile.required_step;
        let final_errors = profile.final_errors as f64;

        let base = if step >= required && step <= required + OVERSHOOT_TOLERANCE {
            final_errors
        } else {
            // Distance from the near-optimal plateau, in retry-table entries.
            let d = if step < required {
                (required - step) as f64
            } else {
                (step - required - OVERSHOOT_TOLERANCE) as f64
            };
            // Fig. 4b: errors collapse from ~500+/KiB three steps out to below
            // the 72-bit capability at the final step. Quadratic growth with a
            // floor just above the capability so steps short of `required`
            // always fail.
            let above_capability = (ECC_CAPABILITY_PER_KIB as f64 + 1.0).max(final_errors);
            let jitter = 0.9 + 0.2 * self.stationary_u(page.page_key(), 0x57e9 ^ step as u64);
            above_capability + (40.0 * d + 45.0 * d * d) * jitter
        };

        (base + timing_penalty).round() as u32
    }

    /// Convenience: does a read of `page` at `step` with `phases` succeed
    /// (errors within ECC capability)?
    pub fn read_succeeds(
        &self,
        page: PageId,
        cond: OperatingCondition,
        step: u32,
        phases: &SensePhases,
    ) -> bool {
        self.errors_at_step(page, cond, step, phases) <= ECC_CAPABILITY_PER_KIB
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_util::stats::Histogram;

    fn model() -> ErrorModel {
        ErrorModel::new(0xA5)
    }

    fn cond(pec: f64, months: f64) -> OperatingCondition {
        OperatingCondition::new(pec, months, 30.0)
    }

    fn sample_pages(n: u64) -> impl Iterator<Item = PageId> {
        (0..n).map(|i| PageId::new(i / 64, (i % 64) as u32))
    }

    #[test]
    fn deterministic_per_page() {
        let m = model();
        let p = PageId::new(123, 45);
        let c = cond(1000.0, 6.0);
        assert_eq!(m.required_step_index(p, c), m.required_step_index(p, c));
        assert_eq!(m.final_step_errors(p, c), m.final_step_errors(p, c));
    }

    #[test]
    fn fresh_pages_never_retry() {
        let m = model();
        for p in sample_pages(2000) {
            assert_eq!(m.required_step_index(p, cond(0.0, 0.0)), 0);
        }
    }

    #[test]
    fn fig5_every_read_exceeds_3_steps_at_3mo() {
        // §3.1: at (0 PEC, 3 months) every read needs > 3 retry steps.
        let m = model();
        for p in sample_pages(5000) {
            let steps = m.required_step_index(p, cond(0.0, 3.0));
            assert!(steps > 3, "page {p:?} needed only {steps} steps");
        }
    }

    #[test]
    fn fig5_54pct_at_least_7_steps_at_6mo() {
        // §3.1: 54.4 % of reads incur ≥ 7 retry steps at (0 PEC, 6 months).
        let m = model();
        let mut h = Histogram::new(64);
        for p in sample_pages(20_000) {
            h.record(m.required_step_index(p, cond(0.0, 6.0)) as usize);
        }
        let frac = h.fraction_at_least(7);
        assert!(
            (0.48..=0.60).contains(&frac),
            "fraction ≥ 7 steps = {frac}, expected ≈ 0.544"
        );
    }

    #[test]
    fn fig5_min_8_steps_at_1k_3mo() {
        // §3.1: at 1K P/E cycles, ≥ 8 retry steps after a 3-month age.
        let m = model();
        for p in sample_pages(5000) {
            let steps = m.required_step_index(p, cond(1000.0, 3.0));
            assert!(steps >= 8, "page {p:?} needed only {steps} steps");
        }
    }

    #[test]
    fn fig5_mean_19_9_at_2k_12mo() {
        let m = model();
        let mut h = Histogram::new(64);
        for p in sample_pages(20_000) {
            h.record(m.required_step_index(p, cond(2000.0, 12.0)) as usize);
        }
        let mean = h.mean();
        assert!(
            (mean - 19.9).abs() < 0.5,
            "mean steps = {mean}, expected ≈ 19.9"
        );
        // Fig. 4b shows pages needing 16 and 21 steps under aged conditions.
        assert!(h.count(16) > 0 && h.count(21) > 0);
    }

    #[test]
    fn final_errors_bounded_by_m_err_population() {
        let m = model();
        let c = cond(2000.0, 12.0);
        let m_err = m.calibration().m_err(c);
        let mut max_seen = 0;
        for p in sample_pages(20_000) {
            let e = m.final_step_errors(p, c);
            assert!(
                e as f64 <= m_err + 0.5,
                "page errors {e} exceed M_ERR {m_err}"
            );
            max_seen = max_seen.max(e);
        }
        // The spread should actually reach near the population max.
        assert!(
            max_seen as f64 >= m_err - 2.0,
            "max seen {max_seen} vs M_ERR {m_err}"
        );
        // And every page still fits in the ECC capability at default timings.
        assert!(max_seen <= ECC_CAPABILITY_PER_KIB);
    }

    #[test]
    fn fig4b_error_collapse_shape() {
        let m = model();
        let c = cond(2000.0, 12.0);
        let dflt = SensePhases::table1();
        // Find a page needing 16+ steps.
        let page = sample_pages(5000)
            .find(|&p| m.required_step_index(p, c) >= 16)
            .expect("aged condition must produce deep retries");
        let n = m.required_step_index(page, c);
        let at = |s: u32| m.errors_at_step(page, c, s, &dflt);
        // Final step succeeds; previous steps fail with growing error counts.
        assert!(at(n) <= ECC_CAPABILITY_PER_KIB);
        assert!(at(n - 1) > ECC_CAPABILITY_PER_KIB);
        assert!(at(n - 1) < at(n - 2));
        assert!(at(n - 2) < at(n - 3));
        // Fig. 4b: roughly 400–700 errors three steps before the final one.
        let three_out = at(n - 3);
        assert!(
            (250..=800).contains(&three_out),
            "errors at N-3 = {three_out}, expected hundreds"
        );
    }

    #[test]
    fn earlier_steps_fail_even_with_default_timing() {
        let m = model();
        let c = cond(1000.0, 6.0);
        let dflt = SensePhases::table1();
        for p in sample_pages(300) {
            let n = m.required_step_index(p, c);
            for s in 0..n {
                assert!(
                    !m.read_succeeds(p, c, s, &dflt),
                    "step {s} of {n} succeeded"
                );
            }
            assert!(m.read_succeeds(p, c, n, &dflt));
        }
    }

    #[test]
    fn reduced_tpre_40pct_preserves_final_step_success() {
        // §5.2/6.2: with the RPT-chosen reduction the final step still
        // succeeds for all (non-outlier) pages, at any temperature.
        let m = model();
        let reduced = SensePhases::table1().with_reduction(0.40, 0.0, 0.0);
        for temp in [30.0, 55.0, 85.0] {
            let c = OperatingCondition::new(2000.0, 12.0, temp);
            for p in sample_pages(3000) {
                let n = m.required_step_index(p, c);
                assert!(
                    m.read_succeeds(p, c, n, &reduced),
                    "final step failed with reduced tPRE at {temp}°C for {p:?}"
                );
            }
        }
    }

    #[test]
    fn excessive_tpre_reduction_fails_reads() {
        let m = model();
        let broken = SensePhases::table1().with_reduction(0.58, 0.0, 0.0);
        let c = cond(0.0, 0.0);
        let p = PageId::new(1, 1);
        assert!(!m.read_succeeds(p, c, 0, &broken));
    }

    #[test]
    fn outlier_injection_exceeds_population_max() {
        let m = ErrorModel::new(0xA5).with_outlier_rate(1.0);
        let c = cond(2000.0, 12.0);
        let p = PageId::new(9, 9);
        assert!(m.is_outlier(p));
        let base = ErrorModel::new(0xA5).final_step_errors(p, c);
        assert_eq!(m.final_step_errors(p, c), base + OUTLIER_EXTRA_ERRORS);
        // Outliers still succeed at default timings...
        assert!(m.read_succeeds(p, c, m.required_step_index(p, c), &SensePhases::table1()));
    }

    #[test]
    fn overshoot_plateau_then_failure() {
        let m = model();
        let c = cond(1000.0, 6.0);
        let dflt = SensePhases::table1();
        let p = sample_pages(1000)
            .find(|&p| m.required_step_index(p, c) >= 5)
            .unwrap();
        let n = m.required_step_index(p, c);
        // Near-optimal plateau: a few steps past N still succeed.
        for s in n..=n + OVERSHOOT_TOLERANCE {
            assert!(m.read_succeeds(p, c, s, &dflt));
        }
        // Far past the plateau, V_REF has overshot and the read fails again.
        assert!(!m.read_succeeds(p, c, n + OVERSHOOT_TOLERANCE + 2, &dflt));
    }

    #[test]
    fn profile_matches_parts() {
        let m = model();
        let c = cond(1000.0, 3.0);
        let p = PageId::new(4, 2);
        let prof = m.page_profile(p, c);
        assert_eq!(prof.required_step, m.required_step_index(p, c));
        assert_eq!(prof.final_errors, m.final_step_errors(p, c));
        assert_eq!(prof.n_rr(), prof.required_step);
        assert_eq!(prof.ecc_margin(), 72 - prof.final_errors);
    }

    #[test]
    fn cached_and_uncached_profiles_are_bit_identical() {
        let cached = ErrorModel::new(0xA5);
        let plain = ErrorModel::new(0xA5).with_profile_cache(false);
        let conds = [cond(0.0, 0.0), cond(1000.0, 6.0), cond(2000.0, 12.0)];
        let phases = [
            SensePhases::table1(),
            SensePhases::table1().with_reduction(0.4, 0.0, 0.0),
        ];
        // Interleave pages and conditions and revisit everything twice so
        // both cold-miss and warm-hit paths are compared.
        for round in 0..2 {
            for p in sample_pages(500) {
                for &c in &conds {
                    assert_eq!(
                        cached.page_profile(p, c),
                        plain.page_profile(p, c),
                        "round {round}, page {p:?}"
                    );
                    for ph in &phases {
                        for step in [0, 5, 20] {
                            assert_eq!(
                                cached.errors_at_step(p, c, step, ph),
                                plain.errors_at_step(p, c, step, ph),
                                "round {round}, page {p:?}, step {step}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cache_bypasses_beyond_condition_cap_without_changing_results() {
        let cached = ErrorModel::new(3);
        let plain = ErrorModel::new(3).with_profile_cache(false);
        let p = PageId::new(11, 7);
        // More distinct conditions than MAX_COND_SHARDS.
        for pec in 0..(2 * MAX_COND_SHARDS as u64) {
            let c = cond(pec as f64 * 100.0, 6.0);
            assert_eq!(cached.page_profile(p, c), plain.page_profile(p, c));
        }
    }

    #[test]
    fn outlier_rate_change_invalidates_memoized_profiles() {
        let model = ErrorModel::new(0xA5);
        let c = cond(2000.0, 12.0);
        let p = PageId::new(9, 9);
        let before = model.page_profile(p, c);
        // Rebuilding with an outlier rate must not serve the stale profile.
        let outliers = model.with_outlier_rate(1.0);
        let after = outliers.page_profile(p, c);
        assert!(after.outlier);
        assert_eq!(
            after.final_errors,
            before.final_errors + OUTLIER_EXTRA_ERRORS
        );
    }

    #[test]
    fn capture_restore_reproduces_the_population_exactly() {
        let source = ErrorModel::new(0xBEEF).with_outlier_rate(0.25);
        // Warm the source's memo so capture demonstrably does not depend on
        // cache contents.
        let c = cond(2000.0, 12.0);
        for p in sample_pages(50) {
            source.page_profile(p, c);
        }
        let state = source.capture();
        let mut target = ErrorModel::new(1).with_outlier_rate(0.9);
        target.restore(state).unwrap();
        for p in sample_pages(200) {
            assert_eq!(source.page_profile(p, c), target.page_profile(p, c));
        }
    }

    #[test]
    fn restore_rejects_out_of_range_outlier_rate() {
        let mut model = ErrorModel::new(7);
        let err = model
            .restore(ModelState {
                seed: 7,
                outlier_rate: 1.5,
            })
            .unwrap_err();
        assert!(err.contains("outlier rate"), "{err}");
        // The model is untouched by the failed restore.
        assert_eq!(model.capture().outlier_rate, 0.0);
    }

    #[test]
    fn different_seeds_give_different_populations() {
        let a = ErrorModel::new(1);
        let b = ErrorModel::new(2);
        let c = cond(1000.0, 6.0);
        let diff = sample_pages(200)
            .filter(|&p| a.required_step_index(p, c) != b.required_step_index(p, c))
            .count();
        assert!(diff > 20, "only {diff}/200 pages differ between seeds");
    }
}
