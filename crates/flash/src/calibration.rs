//! Calibration of the NAND error model to the paper's measured data.
//!
//! The paper characterizes 160 real 48-layer 3D TLC chips; we have none, so
//! (per DESIGN.md §2) we substitute an analytic model whose outputs are pinned
//! to every quantitative statement in §3.1 and §5 of the paper:
//!
//! * **Retry-step counts** (Fig. 5) — bilinear anchor grid over
//!   (P/E cycles × retention months), `mean_retry_steps`.
//! * **M_ERR, the max raw bit errors per 1 KiB in the final retry step**
//!   (Fig. 7) — anchor grid at 85 °C plus additive temperature offsets,
//!   `m_err`.
//! * **ΔM_ERR from read-timing reduction** (Figs. 8–10) — exponential penalty
//!   curves per parameter with a super-additive tPRE×tDISCH coupling term,
//!   `delta_m_err`.
//! * **The "Fail" boundary** (Fig. 11) — reductions beyond a hard threshold
//!   make sensing collapse outright, [`TPRE_HARD_FAIL_REDUCTION`].
//!
//! Unit tests at the bottom of this file assert each anchor from the paper;
//! DESIGN.md §5 lists them with their source sentences.

use rr_util::interp::Grid2;
use serde::{Deserialize, Serialize};

/// ECC correction capability: 72 raw bit errors per 1-KiB codeword (§2.4,
/// quoting Micron's 3D NAND flyer \[73\]).
pub const ECC_CAPABILITY_PER_KIB: u32 = 72;

/// Codewords per 16-KiB page (1-KiB codewords).
pub const CODEWORDS_PER_PAGE: u32 = 16;

/// The safety margin Fig. 11 reserves when choosing reduced tPRE: 7 bits for
/// temperature-induced errors + 7 bits for outlier pages.
pub const RPT_SAFETY_MARGIN_BITS: u32 = 14;

/// Largest tPRE reduction the paper's Fig. 11 ever selects (54 %).
pub const TPRE_MAX_PROFILED_REDUCTION: f64 = 0.54;

/// tPRE reductions at or beyond this fraction make the precharge phase fail
/// outright (the "Fail" column at ΔtPRE = 60 % in Fig. 11): the bit lines can
/// no longer reach V_PRE at all and the page reads as garbage.
pub const TPRE_HARD_FAIL_REDUCTION: f64 = 0.58;

/// tEVAL reductions at or beyond this fraction fail outright (§5.2.1 shows
/// even 20 % adds 30 errors on a fresh page; the curve explodes shortly after).
pub const TEVAL_HARD_FAIL_REDUCTION: f64 = 0.35;

/// tDISCH reductions at or beyond this fraction fail outright.
pub const TDISCH_HARD_FAIL_REDUCTION: f64 = 0.45;

/// Sentinel error count returned once a timing reduction crosses its hard-fail
/// boundary — far beyond any ECC capability.
pub const HARD_FAIL_ERRORS: f64 = 10_000.0;

/// Largest number of retry steps the manufacturer's retry table supports.
/// Fig. 5 tops out around 25 steps at (2K P/E, 12 months); real vendor tables
/// for this chip generation have a few dozen entries.
pub const MAX_RETRY_STEPS: u32 = 40;

/// An operating condition: the triple the paper varies in every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingCondition {
    /// Program/erase cycle count of the block.
    pub pec: f64,
    /// Effective retention age in months at 30 °C (footnote 7).
    pub retention_months: f64,
    /// Operating temperature in °C when the page is read.
    pub temp_c: f64,
}

impl OperatingCondition {
    /// Creates a condition.
    ///
    /// # Panics
    ///
    /// Panics if any component is negative or non-finite (temperatures below
    /// 0 °C are outside the characterized range).
    pub fn new(pec: f64, retention_months: f64, temp_c: f64) -> Self {
        assert!(
            pec.is_finite() && pec >= 0.0,
            "P/E cycle count must be finite and non-negative"
        );
        assert!(
            retention_months.is_finite() && retention_months >= 0.0,
            "retention age must be finite and non-negative"
        );
        assert!(
            temp_c.is_finite() && temp_c >= 0.0,
            "temperature must be finite and non-negative"
        );
        Self {
            pec,
            retention_months,
            temp_c,
        }
    }

    /// The paper's reference temperature for retention accounting (30 °C).
    pub const ROOM: f64 = 30.0;

    /// The worst-case condition prescribed by manufacturers that the paper
    /// quotes throughout: 1-year retention \[24\] at 1.5K P/E cycles \[73\].
    pub fn manufacturer_worst_case() -> Self {
        Self::new(1500.0, 12.0, 30.0)
    }
}

impl Default for OperatingCondition {
    /// Fresh block, no retention, 30 °C.
    fn default() -> Self {
        Self::new(0.0, 0.0, 30.0)
    }
}

/// The calibrated chip model parameters. One value of this type describes one
/// chip *population* (the paper's 160 chips of a single generation);
/// per-chip/block/page variation is layered on top by the error model.
#[derive(Debug, Clone)]
pub struct Calibration {
    retry_mean: Grid2,
    m_err_85c: Grid2,
}

impl Calibration {
    /// The calibration matching the paper's 48-layer 3D TLC chips.
    pub fn asplos21() -> Self {
        // Mean retry steps, Fig. 5 anchors (see DESIGN.md §5):
        //   (0, 0) = 0        fresh page: no read-retry
        //   (0, 3) = 5.5      "every read requires more than three retry steps"
        //                     (population minimum stays above 3 with the
        //                     error model's ±2σ page spread)
        //   (0, 6) = 6.6      "54.4 % of reads incur at least seven retry
        //                     steps": P(steps ≥ 7) ≈ 0.54 with the ±2σ spread
        //   (0, 12) = 11.0    trend continuation (Fig. 5 left panel)
        //   (1K, 3) = 10.2    "at least eight retry steps ... after a 3-month
        //                     age": population minimum ≥ 8 with the ±2σ spread
        //   (2K, 12) = 19.9   "the average number of retry steps ... increases
        //                     to 19.9"
        let retry_mean = Grid2::new(
            vec![0.0, 1000.0, 2000.0],
            vec![0.0, 3.0, 6.0, 9.0, 12.0],
            vec![
                vec![0.0, 5.5, 6.6, 9.0, 11.0],
                vec![1.5, 10.2, 12.5, 14.5, 16.5],
                vec![3.0, 12.5, 16.0, 18.2, 19.9],
            ],
        )
        .expect("static anchor grid is well-formed");

        // M_ERR at 85 °C, Fig. 7 anchors:
        //   (0, 3) = 15 and (1K, 12) = 30  (§5.1 second observation)
        //   (2K, 12) = 35                  (§5.2.1: "where M_ERR = 35")
        let m_err_85c = Grid2::new(
            vec![0.0, 1000.0, 2000.0],
            vec![0.0, 3.0, 6.0, 9.0, 12.0],
            vec![
                vec![8.0, 15.0, 18.0, 20.0, 22.0],
                vec![12.0, 22.0, 26.0, 28.0, 30.0],
                vec![15.0, 26.0, 31.0, 33.0, 35.0],
            ],
        )
        .expect("static anchor grid is well-formed");

        Self {
            retry_mean,
            m_err_85c,
        }
    }

    /// Mean number of retry steps for a read at `cond` (Fig. 5).
    ///
    /// Temperature has no first-order effect on the retry count in the paper's
    /// characterization (Fig. 5 is measured per (PEC, t_RET) only), so `cond.temp_c`
    /// is ignored here; it matters for [`Calibration::m_err`].
    pub fn mean_retry_steps(&self, cond: OperatingCondition) -> f64 {
        self.retry_mean.at(cond.pec, cond.retention_months)
    }

    /// Maximum raw bit errors per 1-KiB codeword in the *final* retry step
    /// (Fig. 7), including the temperature offset (§5.1 third observation:
    /// +3 errors at 55 °C and +5 at 30 °C relative to 85 °C).
    pub fn m_err(&self, cond: OperatingCondition) -> f64 {
        self.m_err_85c.at(cond.pec, cond.retention_months) + temp_offset_errors(cond.temp_c)
    }

    /// ECC-capability margin in the final retry step (§3.2.2 footnote 5):
    /// capability − M_ERR, floored at zero.
    pub fn ecc_margin(&self, cond: OperatingCondition) -> f64 {
        (ECC_CAPABILITY_PER_KIB as f64 - self.m_err(cond)).max(0.0)
    }

    /// ΔM_ERR: the maximum *additional* raw bit errors per 1 KiB caused by
    /// reducing the read-timing parameters by the given fractions
    /// (Figs. 8, 9, 10).
    ///
    /// `pre`, `eval` and `disch` are reduction fractions in `[0, 1)`. The
    /// model is exponential in each fraction, scaled by (PEC, retention)
    /// severity factors, with a super-additive coupling between tPRE and
    /// tDISCH (§5.2.2: the discharge phase of one read feeds the precharge
    /// phase of the next, so reducing both interacts destructively). Crossing
    /// a hard-fail boundary returns [`HARD_FAIL_ERRORS`].
    pub fn delta_m_err(&self, cond: OperatingCondition, pre: f64, eval: f64, disch: f64) -> f64 {
        for (name, f) in [("pre", pre), ("eval", eval), ("disch", disch)] {
            assert!(
                (0.0..1.0).contains(&f),
                "{name} reduction fraction {f} must be in [0, 1)"
            );
        }
        if pre >= TPRE_HARD_FAIL_REDUCTION
            || eval >= TEVAL_HARD_FAIL_REDUCTION
            || disch >= TDISCH_HARD_FAIL_REDUCTION
        {
            return HARD_FAIL_ERRORS;
        }
        let p = cond.pec / 1000.0;
        let t = cond.retention_months;

        // tPRE penalty: A · (e^{k·x} − 1); §5.2.1 calibration (DESIGN.md §5).
        let a_pre = 0.8 * (1.0 + 0.3 * p) * (1.0 + 0.4 * (1.0 + t / 3.0).ln());
        let d_pre = a_pre * ((K_PRE * pre).exp() - 1.0);
        // Temperature makes the tPRE penalty worse at *lower* temperatures
        // (Fig. 10): +5 % of the 85 °C value at 30 °C. Together with the
        // +5-bit M_ERR offset this keeps the *total* cold-vs-85 °C extra at
        // ≤ 7 bits under (2K, 12 mo, ≤47 %) — §5.2.3's bound, and the 7 bits
        // the RPT margin reserves for temperature.
        let d_pre = d_pre * (1.0 + 0.05 * temp_cold_fraction(cond.temp_c));

        let a_eval = 4.7 * (1.0 + 0.15 * p) * (1.0 + 0.15 * (1.0 + t / 3.0).ln());
        let d_eval = a_eval * ((K_EVAL * eval).exp() - 1.0);

        let a_disch = 1.5 * (1.0 + 0.3 * p) * (1.0 + 0.3 * (1.0 + t / 3.0).ln());
        let d_disch = a_disch * ((K_DISCH * disch).exp() - 1.0);

        d_pre + d_eval + d_disch + COUPLING_PRE_DISCH * d_pre * d_disch
    }

    /// M_ERR in the final retry step when reading with reduced timings:
    /// `m_err(cond) + delta_m_err(cond, …)` (the quantity plotted in Fig. 9
    /// and Fig. 11).
    pub fn m_err_with_timing(
        &self,
        cond: OperatingCondition,
        pre: f64,
        eval: f64,
        disch: f64,
    ) -> f64 {
        self.m_err(cond) + self.delta_m_err(cond, pre, eval, disch)
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::asplos21()
    }
}

/// Exponential steepness of the tPRE penalty curve.
const K_PRE: f64 = 6.0;
/// Exponential steepness of the tEVAL penalty curve (§5.2.1: "reducing tEVAL
/// by 20 % introduces 30 additional bit errors even for a fresh page").
const K_EVAL: f64 = 10.0;
/// Exponential steepness of the tDISCH penalty curve.
const K_DISCH: f64 = 9.0;
/// Super-additive coupling between simultaneous tPRE and tDISCH reduction.
const COUPLING_PRE_DISCH: f64 = 0.2;

/// Additive M_ERR offset versus temperature (§5.1: +5 errors at 30 °C, +3 at
/// 55 °C, 0 at 85 °C; linear between the characterized points, clamped
/// outside).
pub fn temp_offset_errors(temp_c: f64) -> f64 {
    rr_util::interp::lerp_table(&[30.0, 55.0, 85.0], &[5.0, 3.0, 0.0], temp_c)
}

/// 1.0 at 30 °C, 0.0 at 85 °C, linear in between — how "cold" the chip is
/// relative to the characterization sweep (drives the Fig. 10 effect).
fn temp_cold_fraction(temp_c: f64) -> f64 {
    rr_util::interp::lerp_table(&[30.0, 85.0], &[1.0, 0.0], temp_c)
}

/// Arrhenius acceleration factor between a bake temperature and a use
/// temperature (§4: "13 hours at 85 °C ≈ 1 year at 30 °C").
///
/// Uses activation energy `Ea = 1.1 eV`, the JEDEC JESD218/JESD22-A. value for
/// charge-trap retention loss; with it, 13 h @ 85 °C ≈ 0.96 year @ 30 °C,
/// matching the paper's rule of thumb.
pub fn arrhenius_acceleration(bake_temp_c: f64, use_temp_c: f64) -> f64 {
    const EA_EV: f64 = 1.1;
    const BOLTZMANN_EV_PER_K: f64 = 8.617_333e-5;
    let tb = bake_temp_c + 273.15;
    let tu = use_temp_c + 273.15;
    ((EA_EV / BOLTZMANN_EV_PER_K) * (1.0 / tu - 1.0 / tb)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::asplos21()
    }

    fn cond(pec: f64, months: f64, temp: f64) -> OperatingCondition {
        OperatingCondition::new(pec, months, temp)
    }

    // ---- Fig. 5 anchors -------------------------------------------------

    #[test]
    fn fig5_fresh_page_needs_no_retry() {
        assert_eq!(cal().mean_retry_steps(cond(0.0, 0.0, 30.0)), 0.0);
    }

    #[test]
    fn fig5_avg_19_9_steps_at_2k_12mo() {
        // §3.1: "significantly increases to 19.9 under a 1-year retention age
        // at 2K P/E cycles, which in turn increases tREAD by 21× on average."
        let steps = cal().mean_retry_steps(cond(2000.0, 12.0, 30.0));
        assert!((steps - 19.9).abs() < 1e-9);
        // tREAD multiplier sanity: with Table-1 latencies a 19.9-step retry
        // multiplies tREAD by ~1 + 19.9·(tR+tDMA+tECC)/(tR+tDMA+tECC) = 20.9×.
        let one: f64 = 91.0 + 16.0 + 20.0;
        let mult: f64 = (one + 19.9 * one) / one;
        assert!((mult - 20.9).abs() < 0.01, "paper rounds this to 21×");
    }

    #[test]
    fn fig5_3month_fresh_exceeds_3_steps() {
        // §3.1: "under a 3-month retention age at zero P/E cycles ... every
        // read requires more than three retry steps."
        assert!(cal().mean_retry_steps(cond(0.0, 3.0, 30.0)) > 4.0);
    }

    #[test]
    fn fig5_1k_pec_3month_at_least_8() {
        // §3.1: "At 1K P/E cycles, at least eight read-retry steps are needed
        // ... only after a 3-month retention age."
        assert!(cal().mean_retry_steps(cond(1000.0, 3.0, 30.0)) > 8.0);
    }

    #[test]
    fn retry_steps_monotonic_in_pec_and_retention() {
        let c = cal();
        for pec in [0.0, 500.0, 1000.0, 1500.0, 2000.0] {
            for m in [0.0, 1.0, 3.0, 6.0, 12.0] {
                let here = c.mean_retry_steps(cond(pec, m, 30.0));
                let more_pec = c.mean_retry_steps(cond(pec + 250.0, m, 30.0));
                let more_ret = c.mean_retry_steps(cond(pec, m + 1.0, 30.0));
                assert!(more_pec >= here, "PEC monotonicity at ({pec}, {m})");
                assert!(more_ret >= here, "retention monotonicity at ({pec}, {m})");
            }
        }
    }

    // ---- Fig. 7 anchors -------------------------------------------------

    #[test]
    fn fig7_m_err_anchor_points() {
        let c = cal();
        // §5.1: "M_ERR(0, 3) = 15 while M_ERR(1K, 12) = 30 at 85 °C".
        assert_eq!(c.m_err(cond(0.0, 3.0, 85.0)), 15.0);
        assert_eq!(c.m_err(cond(1000.0, 12.0, 85.0)), 30.0);
        // §5.2.1: "under a 1-year retention age at 2K P/E cycles (where
        // M_ERR = 35)".
        assert_eq!(c.m_err(cond(2000.0, 12.0, 85.0)), 35.0);
    }

    #[test]
    fn fig7_temperature_offsets() {
        let c = cal();
        // §5.1: "Compared to 85 °C, M_ERR at 30 °C and 55 °C is higher by 5
        // and 3 errors, respectively, all other conditions being equal."
        for (pec, m) in [(0.0, 3.0), (1000.0, 6.0), (2000.0, 12.0)] {
            let at85 = c.m_err(cond(pec, m, 85.0));
            assert_eq!(c.m_err(cond(pec, m, 55.0)) - at85, 3.0);
            assert_eq!(c.m_err(cond(pec, m, 30.0)) - at85, 5.0);
        }
    }

    #[test]
    fn fig7_worst_case_margin_44_4_pct() {
        // §5.1: "even M_ERR(2K, 12) at 30 °C is quite low, leaving a margin as
        // large as 44.4 % of the ECC capability." 72 × 44.4 % = 32 ⇒ M_ERR 40.
        let c = cal();
        let m = c.m_err(cond(2000.0, 12.0, 30.0));
        assert_eq!(m, 40.0);
        let margin = c.ecc_margin(cond(2000.0, 12.0, 30.0));
        assert!((margin / ECC_CAPABILITY_PER_KIB as f64 - 0.444).abs() < 0.001);
    }

    // ---- Fig. 8 anchors -------------------------------------------------

    #[test]
    fn fig8_individual_safe_reductions_at_worst_condition() {
        // §5.2.1: "Even under a 1-year retention age at 2K P/E cycles (where
        // M_ERR = 35), we can safely reduce tPRE, tEVAL, and tDISCH by 47 %,
        // 10 %, and 27 %, respectively."
        let c = cal();
        let worst = cond(2000.0, 12.0, 85.0);
        let cap = ECC_CAPABILITY_PER_KIB as f64;
        assert!(c.m_err_with_timing(worst, 0.47, 0.0, 0.0) <= cap);
        assert!(c.m_err_with_timing(worst, 0.0, 0.10, 0.0) <= cap);
        assert!(c.m_err_with_timing(worst, 0.0, 0.0, 0.27) <= cap);
    }

    #[test]
    fn fig8_tpre_retention_sensitivity_60pct() {
        // §5.2.1: "When reducing tPRE by 47 % ... ΔM_ERR(2K, 12) is 60 %
        // higher than ΔM_ERR(2K, 0)."
        let c = cal();
        let d12 = c.delta_m_err(cond(2000.0, 12.0, 85.0), 0.47, 0.0, 0.0);
        let d0 = c.delta_m_err(cond(2000.0, 0.0, 85.0), 0.47, 0.0, 0.0);
        let ratio = d12 / d0;
        assert!((ratio - 1.6).abs() < 0.1, "ratio {ratio} should be ≈ 1.6");
    }

    #[test]
    fn fig8_teval_20pct_adds_30_errors_fresh() {
        // §5.2.1: "Reducing tEVAL by 20 % introduces 30 additional bit errors
        // (i.e., 41.7 % of the ECC capability) even for a fresh page."
        let c = cal();
        let d = c.delta_m_err(cond(0.0, 0.0, 85.0), 0.0, 0.20, 0.0);
        assert!((d - 30.0).abs() < 1.5, "ΔM_ERR = {d}, expected ≈ 30");
        assert!((d / ECC_CAPABILITY_PER_KIB as f64 - 0.417).abs() < 0.03);
    }

    #[test]
    fn fig8_tpre_safe_at_40pct_everywhere() {
        // §5.2.1 conclusion: "tPRE can be safely reduced by at least 40 %
        // under every tested condition."
        let c = cal();
        for pec in [0.0, 1000.0, 2000.0] {
            for m in [0.0, 3.0, 6.0, 12.0] {
                for temp in [30.0, 55.0, 85.0] {
                    let v = c.m_err_with_timing(cond(pec, m, temp), 0.40, 0.0, 0.0);
                    assert!(
                        v <= ECC_CAPABILITY_PER_KIB as f64,
                        "40 % tPRE cut unsafe at ({pec}, {m}, {temp}): {v}"
                    );
                }
            }
        }
    }

    // ---- Fig. 9 anchors -------------------------------------------------

    #[test]
    fn fig9_joint_reduction_blows_capability() {
        // §5.2.2: at (1K, 0), tPRE −54 % alone ⇒ ΔM_ERR ≈ 35 and tDISCH −20 %
        // alone ⇒ ΔM_ERR ≈ 8, but reducing both together goes far beyond the
        // ECC capability.
        let c = cal();
        let at = cond(1000.0, 0.0, 85.0);
        let dp = c.delta_m_err(at, 0.54, 0.0, 0.0);
        let dd = c.delta_m_err(at, 0.0, 0.0, 0.20);
        assert!((dp - 35.0).abs() < 10.0, "ΔM_ERR(tPRE 54 %) = {dp} ≈ 35");
        assert!((dd - 8.0).abs() < 3.0, "ΔM_ERR(tDISCH 20 %) = {dd} ≈ 8");
        let joint = c.m_err_with_timing(at, 0.54, 0.0, 0.20);
        assert!(
            joint > ECC_CAPABILITY_PER_KIB as f64 + 10.0,
            "joint = {joint}"
        );
    }

    #[test]
    fn fig9_tdisch_7pct_adds_at_most_4() {
        // §5.2.2: "reducing tDISCH by 7 % hardly increases the number of bit
        // errors (by 4 at most) under every operating condition."
        let c = cal();
        for pec in [0.0, 1000.0, 2000.0] {
            for m in [0.0, 3.0, 6.0, 12.0] {
                let d = c.delta_m_err(cond(pec, m, 85.0), 0.0, 0.0, 0.07);
                assert!(d <= 4.0, "ΔM_ERR(tDISCH 7 %) = {d} at ({pec}, {m})");
            }
        }
    }

    #[test]
    fn fig9_tpre_beats_tdisch_unit_for_unit() {
        // §5.2.2: "M_ERR is smaller when ⟨ΔtPRE, ΔtDISCH⟩ = ⟨x %, y %⟩ compared
        // to ⟨y %, x %⟩" for x > y in most cases (tPRE is the better lever
        // because the discharge penalty curve is steeper).
        let c = cal();
        let at = cond(1000.0, 0.0, 85.0);
        let pre_heavy = c.m_err_with_timing(at, 0.40, 0.0, 0.20);
        let disch_heavy = c.m_err_with_timing(at, 0.20, 0.0, 0.40);
        assert!(pre_heavy < disch_heavy);
    }

    // ---- Fig. 10 anchors ------------------------------------------------

    #[test]
    fn fig10_temperature_adds_at_most_7_errors() {
        // §5.2.3: "it is only up to 7 additional bit errors even under a
        // 1-year retention age at 2K P/E cycles." Fig. 10's ΔM_ERR includes
        // both the M_ERR temperature offset (+5 at 30 °C) and the
        // reduction-dependent part, so the total must stay ≤ 7.
        let c = cal();
        let at = |temp: f64| {
            c.m_err(cond(2000.0, 12.0, temp))
                + c.delta_m_err(cond(2000.0, 12.0, temp), 0.47, 0.0, 0.0)
        };
        let extra = at(30.0) - at(85.0);
        assert!(extra > 5.0 && extra <= 7.0, "temperature extra = {extra}");
        // Colder ⇒ strictly more extra errors, monotone in temperature.
        let mid = at(55.0);
        assert!(at(85.0) < mid && mid < at(30.0));
    }

    // ---- Fig. 11 anchors ------------------------------------------------

    #[test]
    fn fig11_minimum_40pct_reduction_with_margin_at_worst_case() {
        // With the 14-bit safety margin, 40 % tPRE reduction must still be
        // safe at (2K, 12) — that is Fig. 11's "min. reduction = 40 %".
        let c = cal();
        let worst = cond(2000.0, 12.0, 85.0);
        let v = c.m_err_with_timing(worst, 0.40, 0.0, 0.0);
        assert!(v + RPT_SAFETY_MARGIN_BITS as f64 <= ECC_CAPABILITY_PER_KIB as f64);
        // ...but 47 % is NOT safe once the margin is reserved (the margin is
        // what pulls Fig. 11's choice below Fig. 8's raw 47 %).
        let v47 = c.m_err_with_timing(worst, 0.47, 0.0, 0.0);
        assert!(v47 + RPT_SAFETY_MARGIN_BITS as f64 > ECC_CAPABILITY_PER_KIB as f64);
    }

    #[test]
    fn fig11_54pct_safe_at_best_case() {
        // Fig. 11's "max. reduction = 54 %" on a fresh block.
        let c = cal();
        let best = cond(0.0, 0.0, 85.0);
        let v = c.m_err_with_timing(best, TPRE_MAX_PROFILED_REDUCTION, 0.0, 0.0);
        assert!(v + RPT_SAFETY_MARGIN_BITS as f64 <= ECC_CAPABILITY_PER_KIB as f64);
    }

    #[test]
    fn fig11_hard_fail_at_58pct() {
        let c = cal();
        let v = c.delta_m_err(cond(0.0, 0.0, 85.0), TPRE_HARD_FAIL_REDUCTION, 0.0, 0.0);
        assert_eq!(v, HARD_FAIL_ERRORS);
    }

    // ---- misc -----------------------------------------------------------

    #[test]
    fn arrhenius_matches_paper_rule_of_thumb() {
        // §4: "13 hours at 85 °C ≈ 1 year at 30 °C".
        let af = arrhenius_acceleration(85.0, 30.0);
        let effective_hours = 13.0 * af;
        let year_hours = 365.25 * 24.0;
        assert!(
            (effective_hours / year_hours - 1.0).abs() < 0.15,
            "13 h × AF = {effective_hours:.0} h vs 1 year = {year_hours:.0} h"
        );
    }

    #[test]
    fn delta_m_err_zero_reduction_is_zero() {
        let c = cal();
        assert_eq!(c.delta_m_err(cond(2000.0, 12.0, 30.0), 0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn delta_m_err_monotonic_in_each_fraction() {
        let c = cal();
        let at = cond(1000.0, 6.0, 55.0);
        let mut last = -1.0;
        for i in 0..=10 {
            let x = i as f64 * 0.05;
            let v = c.delta_m_err(at, x, 0.0, 0.0);
            assert!(v >= last, "tPRE penalty must be non-decreasing");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn delta_m_err_rejects_out_of_range() {
        cal().delta_m_err(OperatingCondition::default(), 1.5, 0.0, 0.0);
    }

    #[test]
    fn condition_constructors() {
        let w = OperatingCondition::manufacturer_worst_case();
        assert_eq!(w.pec, 1500.0);
        assert_eq!(w.retention_months, 12.0);
        let d = OperatingCondition::default();
        assert_eq!(d.pec, 0.0);
    }

    #[test]
    #[should_panic(expected = "retention age")]
    fn condition_rejects_negative_retention() {
        OperatingCondition::new(0.0, -1.0, 30.0);
    }
}
