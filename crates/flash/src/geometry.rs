//! NAND flash organization and physical addressing (paper §2.1, Fig. 1).
//!
//! A chip contains dies (independent), each die contains planes (concurrent
//! under row-decoder constraints), each plane contains blocks (erase unit),
//! each block contains wordlines, and in TLC NAND each wordline stores three
//! 16-KiB pages (LSB / CSB / MSB).

use serde::{Deserialize, Serialize};

/// Bits stored per cell; determines pages per wordline and sensing counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellTech {
    /// 1 bit/cell: one page per wordline, single sensing.
    Slc,
    /// 2 bits/cell.
    Mlc,
    /// 3 bits/cell — the paper's 48-layer 3D TLC chips.
    Tlc,
    /// 4 bits/cell.
    Qlc,
}

impl CellTech {
    /// Bits stored per cell.
    pub const fn bits_per_cell(self) -> u32 {
        match self {
            CellTech::Slc => 1,
            CellTech::Mlc => 2,
            CellTech::Tlc => 3,
            CellTech::Qlc => 4,
        }
    }

    /// Number of threshold-voltage states (2^bits).
    pub const fn vth_states(self) -> u32 {
        1 << self.bits_per_cell()
    }

    /// Pages stored per wordline (= bits per cell).
    pub const fn pages_per_wordline(self) -> u32 {
        self.bits_per_cell()
    }
}

/// Which page of a TLC wordline a physical page is (paper footnote 14).
///
/// The number of sensing operations `N_SENSE` in Eq. (1) depends on this:
/// `⟨2, 3, 2⟩` for `⟨LSB, CSB, MSB⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// Least-significant-bit page (2 sensing levels).
    Lsb,
    /// Central-significant-bit page (3 sensing levels).
    Csb,
    /// Most-significant-bit page (2 sensing levels).
    Msb,
}

impl PageKind {
    /// `N_SENSE`: how many read-reference sensings this page needs (TLC).
    pub const fn n_sense(self) -> u32 {
        match self {
            PageKind::Lsb => 2,
            PageKind::Csb => 3,
            PageKind::Msb => 2,
        }
    }

    /// All kinds in wordline order.
    pub const ALL: [PageKind; 3] = [PageKind::Lsb, PageKind::Csb, PageKind::Msb];
}

/// Geometry of one NAND flash chip.
///
/// The paper's simulated SSD (§7.1) uses 4 dies/chip-channel, 2 planes/die,
/// 1,888 blocks/plane, 576 16-KiB pages/block. [`ChipGeometry::asplos21`]
/// returns exactly that; tests use [`ChipGeometry::tiny`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChipGeometry {
    /// Independent dies in the chip.
    pub dies: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block (must be divisible by pages-per-wordline).
    pub pages_per_block: u32,
    /// Page payload size in bytes.
    pub page_bytes: u32,
    /// Cell technology (pages per wordline, V_TH states).
    pub cell_tech: CellTech,
}

impl ChipGeometry {
    /// The paper's evaluation geometry (§7.1): 4 dies × 2 planes ×
    /// 1,888 blocks × 576 pages × 16 KiB, TLC.
    pub const fn asplos21() -> Self {
        Self {
            dies: 4,
            planes_per_die: 2,
            blocks_per_plane: 1888,
            pages_per_block: 576,
            page_bytes: 16 * 1024,
            cell_tech: CellTech::Tlc,
        }
    }

    /// A small geometry for unit tests and fast integration runs.
    pub const fn tiny() -> Self {
        Self {
            dies: 2,
            planes_per_die: 2,
            blocks_per_plane: 8,
            pages_per_block: 24,
            page_bytes: 16 * 1024,
            cell_tech: CellTech::Tlc,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if any dimension is zero or `pages_per_block` is not
    /// a multiple of the pages-per-wordline implied by the cell technology.
    pub fn validate(&self) -> Result<(), String> {
        if self.dies == 0
            || self.planes_per_die == 0
            || self.blocks_per_plane == 0
            || self.pages_per_block == 0
            || self.page_bytes == 0
        {
            return Err("all geometry dimensions must be non-zero".into());
        }
        let ppw = self.cell_tech.pages_per_wordline();
        if !self.pages_per_block.is_multiple_of(ppw) {
            return Err(format!(
                "pages_per_block ({}) must be a multiple of pages per wordline ({ppw})",
                self.pages_per_block
            ));
        }
        Ok(())
    }

    /// Wordlines per block.
    pub const fn wordlines_per_block(&self) -> u32 {
        self.pages_per_block / self.cell_tech.pages_per_wordline()
    }

    /// Total blocks in the chip.
    pub const fn blocks_per_chip(&self) -> u64 {
        self.dies as u64 * self.planes_per_die as u64 * self.blocks_per_plane as u64
    }

    /// Total pages in the chip.
    pub const fn pages_per_chip(&self) -> u64 {
        self.blocks_per_chip() * self.pages_per_block as u64
    }

    /// Chip capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        self.pages_per_chip() * self.page_bytes as u64
    }

    /// The [`PageKind`] of a page index within its block.
    ///
    /// Pages are striped across wordlines in LSB/CSB/MSB order, the common
    /// shared-page programming order in 3D TLC NAND.
    pub const fn page_kind(&self, page_in_block: u32) -> PageKind {
        match self.cell_tech {
            CellTech::Slc | CellTech::Mlc | CellTech::Qlc => PageKind::Lsb,
            CellTech::Tlc => match page_in_block % 3 {
                0 => PageKind::Lsb,
                1 => PageKind::Csb,
                _ => PageKind::Msb,
            },
        }
    }

    /// The wordline index of a page within its block.
    pub const fn wordline_of(&self, page_in_block: u32) -> u32 {
        page_in_block / self.cell_tech.pages_per_wordline()
    }
}

/// Physical address of a page within one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr {
    /// Die index within the chip.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl PageAddr {
    /// Creates an address; validity against a geometry is checked separately
    /// with [`PageAddr::check`].
    pub const fn new(die: u32, plane: u32, block: u32, page: u32) -> Self {
        Self {
            die,
            plane,
            block,
            page,
        }
    }

    /// Validates this address against `geometry`.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError`] naming the first out-of-range component.
    pub fn check(&self, g: &ChipGeometry) -> Result<(), AddrError> {
        if self.die >= g.dies {
            return Err(AddrError::Die(self.die));
        }
        if self.plane >= g.planes_per_die {
            return Err(AddrError::Plane(self.plane));
        }
        if self.block >= g.blocks_per_plane {
            return Err(AddrError::Block(self.block));
        }
        if self.page >= g.pages_per_block {
            return Err(AddrError::Page(self.page));
        }
        Ok(())
    }

    /// The address of the block containing this page.
    pub const fn block_addr(&self) -> BlockAddr {
        BlockAddr {
            die: self.die,
            plane: self.plane,
            block: self.block,
        }
    }

    /// A stable 64-bit key identifying this page within its chip, used for
    /// deterministic per-page noise in the error model.
    pub fn page_key(&self, g: &ChipGeometry) -> u64 {
        self.block_addr().block_key(g) * g.pages_per_block as u64 + self.page as u64
    }
}

/// Physical address of a block within one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Die index within the chip.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
}

impl BlockAddr {
    /// Creates a block address.
    pub const fn new(die: u32, plane: u32, block: u32) -> Self {
        Self { die, plane, block }
    }

    /// A stable 64-bit key identifying this block within its chip.
    pub fn block_key(&self, g: &ChipGeometry) -> u64 {
        (self.die as u64 * g.planes_per_die as u64 + self.plane as u64) * g.blocks_per_plane as u64
            + self.block as u64
    }

    /// The address of `page` within this block.
    pub const fn page(&self, page: u32) -> PageAddr {
        PageAddr {
            die: self.die,
            plane: self.plane,
            block: self.block,
            page,
        }
    }
}

/// An out-of-range physical address component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrError {
    /// Die index out of range.
    Die(u32),
    /// Plane index out of range.
    Plane(u32),
    /// Block index out of range.
    Block(u32),
    /// Page index out of range.
    Page(u32),
}

impl core::fmt::Display for AddrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AddrError::Die(v) => write!(f, "die index {v} out of range"),
            AddrError::Plane(v) => write!(f, "plane index {v} out of range"),
            AddrError::Block(v) => write!(f, "block index {v} out of range"),
            AddrError::Page(v) => write!(f, "page index {v} out of range"),
        }
    }
}

impl std::error::Error for AddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asplos_geometry_matches_paper() {
        let g = ChipGeometry::asplos21();
        g.validate().unwrap();
        assert_eq!(g.pages_per_block, 576); // §7.1
        assert_eq!(g.page_bytes, 16 * 1024);
        assert_eq!(g.wordlines_per_block(), 192);
        // One chip = 4 dies × 2 planes × 1888 blocks × 576 pages × 16 KiB
        // ≈ 132.7 GiB raw; 4 channels of these ≈ 531 GiB raw, exposing the
        // paper's 512 GiB usable capacity after over-provisioning (§7.1).
        assert_eq!(g.capacity_bytes(), 142_539_227_136);
        let raw_4ch = 4 * g.capacity_bytes();
        let usable = 512u64 * 1024 * 1024 * 1024;
        assert!(raw_4ch > usable, "raw capacity must cover 512 GiB usable");
        let op = raw_4ch as f64 / usable as f64 - 1.0;
        assert!((0.0..0.1).contains(&op), "over-provisioning ratio {op}");
    }

    #[test]
    fn tlc_page_kinds_stripe_lsb_csb_msb() {
        let g = ChipGeometry::asplos21();
        assert_eq!(g.page_kind(0), PageKind::Lsb);
        assert_eq!(g.page_kind(1), PageKind::Csb);
        assert_eq!(g.page_kind(2), PageKind::Msb);
        assert_eq!(g.page_kind(3), PageKind::Lsb);
        assert_eq!(g.wordline_of(0), 0);
        assert_eq!(g.wordline_of(2), 0);
        assert_eq!(g.wordline_of(3), 1);
    }

    #[test]
    fn n_sense_matches_footnote_14() {
        assert_eq!(PageKind::Lsb.n_sense(), 2);
        assert_eq!(PageKind::Csb.n_sense(), 3);
        assert_eq!(PageKind::Msb.n_sense(), 2);
    }

    #[test]
    fn addr_validation() {
        let g = ChipGeometry::tiny();
        assert!(PageAddr::new(0, 0, 0, 0).check(&g).is_ok());
        assert_eq!(PageAddr::new(2, 0, 0, 0).check(&g), Err(AddrError::Die(2)));
        assert_eq!(
            PageAddr::new(0, 2, 0, 0).check(&g),
            Err(AddrError::Plane(2))
        );
        assert_eq!(
            PageAddr::new(0, 0, 8, 0).check(&g),
            Err(AddrError::Block(8))
        );
        assert_eq!(
            PageAddr::new(0, 0, 0, 24).check(&g),
            Err(AddrError::Page(24))
        );
    }

    #[test]
    fn keys_are_unique_and_stable() {
        let g = ChipGeometry::tiny();
        let mut seen = std::collections::HashSet::new();
        for die in 0..g.dies {
            for plane in 0..g.planes_per_die {
                for block in 0..g.blocks_per_plane {
                    for page in 0..g.pages_per_block {
                        let a = PageAddr::new(die, plane, block, page);
                        assert!(seen.insert(a.page_key(&g)), "duplicate key for {a:?}");
                    }
                }
            }
        }
        assert_eq!(seen.len() as u64, g.pages_per_chip());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut g = ChipGeometry::tiny();
        g.pages_per_block = 25; // not a multiple of 3 for TLC
        assert!(g.validate().is_err());
        g.pages_per_block = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn cell_tech_properties() {
        assert_eq!(CellTech::Tlc.vth_states(), 8);
        assert_eq!(CellTech::Qlc.vth_states(), 16);
        assert_eq!(CellTech::Slc.pages_per_wordline(), 1);
        assert_eq!(CellTech::Tlc.pages_per_wordline(), 3);
    }
}
