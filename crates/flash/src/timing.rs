//! NAND timing parameters and the Eq. (1) sensing-latency model.
//!
//! Table 1 of the paper (all values from the characterized real chips):
//!
//! | Parameter | Value | Parameter | Value |
//! |---|---|---|---|
//! | tR (avg) | 90 µs | tPROG | 700 µs |
//! | tPRE | 24 µs | tBERS | 5 ms |
//! | tEVAL | 5 µs | tSET | 1 µs |
//! | tDISCH | 10 µs | tRST | 5 µs (read) |
//!
//! `tR = N_SENSE × (tPRE + tEVAL + tDISCH)` (Eq. 1) with `N_SENSE = ⟨2,3,2⟩`
//! for ⟨LSB, CSB, MSB⟩ pages — giving 78/117/78 µs, i.e. the quoted ~90 µs
//! average.

use crate::geometry::PageKind;
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// The three page-sensing phase latencies of Fig. 2 / Eq. (1).
///
/// AR² adjusts `t_pre` at run time through `SET FEATURE`; the other two are
/// shown by §5.2 to be cost-ineffective to reduce (tEVAL) or to conflict with
/// tPRE reduction (tDISCH).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SensePhases {
    /// Bit-line precharge latency (default 24 µs).
    pub t_pre: SimTime,
    /// Sense-amplifier evaluation latency (default 5 µs).
    pub t_eval: SimTime,
    /// Bit-line discharge latency (default 10 µs).
    pub t_disch: SimTime,
}

impl SensePhases {
    /// Table-1 defaults: ⟨24, 5, 10⟩ µs (≈ 5:1:2 ratio, §4).
    pub const fn table1() -> Self {
        Self {
            t_pre: SimTime::from_us(24),
            t_eval: SimTime::from_us(5),
            t_disch: SimTime::from_us(10),
        }
    }

    /// One sensing iteration: `tPRE + tEVAL + tDISCH`.
    pub fn sense_time(&self) -> SimTime {
        self.t_pre + self.t_eval + self.t_disch
    }

    /// Chip-level read latency `tR` for a page kind (Eq. 1).
    pub fn t_r(&self, kind: PageKind) -> SimTime {
        self.sense_time().mul(kind.n_sense() as u64)
    }

    /// Average `tR` over the three TLC page kinds (Table 1's "tR (avg)").
    pub fn t_r_avg(&self) -> SimTime {
        let total = self.t_r(PageKind::Lsb) + self.t_r(PageKind::Csb) + self.t_r(PageKind::Msb);
        SimTime::from_ns(total.as_ns() / 3)
    }

    /// Returns phases with each parameter reduced by the given fractions
    /// (`0.0` = unchanged, `0.47` = 47 % shorter). This is what `SET FEATURE`
    /// applies in AR².
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1)`.
    pub fn with_reduction(&self, pre: f64, eval: f64, disch: f64) -> Self {
        for (name, f) in [("tPRE", pre), ("tEVAL", eval), ("tDISCH", disch)] {
            assert!(
                (0.0..1.0).contains(&f),
                "{name} reduction fraction {f} must be in [0, 1)"
            );
        }
        Self {
            t_pre: self.t_pre.scale(1.0 - pre),
            t_eval: self.t_eval.scale(1.0 - eval),
            t_disch: self.t_disch.scale(1.0 - disch),
        }
    }

    /// The fraction by which `other`'s tPRE is reduced relative to `self`.
    pub fn pre_reduction_vs(&self, other: &SensePhases) -> f64 {
        reduction_fraction(self.t_pre, other.t_pre)
    }

    /// The fraction by which `other`'s tEVAL is reduced relative to `self`.
    pub fn eval_reduction_vs(&self, other: &SensePhases) -> f64 {
        reduction_fraction(self.t_eval, other.t_eval)
    }

    /// The fraction by which `other`'s tDISCH is reduced relative to `self`.
    pub fn disch_reduction_vs(&self, other: &SensePhases) -> f64 {
        reduction_fraction(self.t_disch, other.t_disch)
    }

    /// `tR(reduced) / tR(default)` — the ρ of Eq. (5).
    pub fn rho_vs(&self, reduced: &SensePhases) -> f64 {
        reduced.sense_time().as_ns() as f64 / self.sense_time().as_ns() as f64
    }
}

impl Default for SensePhases {
    fn default() -> Self {
        Self::table1()
    }
}

fn reduction_fraction(default: SimTime, reduced: SimTime) -> f64 {
    if default == SimTime::ZERO {
        return 0.0;
    }
    let d = default.as_ns() as f64;
    ((d - reduced.as_ns() as f64) / d).max(0.0)
}

/// Full NAND operation timing set (Table 1 plus channel constants of §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NandTimings {
    /// Page-sensing phase latencies (tPRE/tEVAL/tDISCH).
    pub sense: SensePhases,
    /// Page program latency `tPROG` (default 700 µs).
    pub t_prog: SimTime,
    /// Block erase latency `tBERS` (default 5 ms).
    pub t_bers: SimTime,
    /// `SET FEATURE` latency `tSET` (default 1 µs).
    pub t_set: SimTime,
    /// `RESET` latency for an in-flight read `tRST` (default 5 µs).
    pub t_rst_read: SimTime,
    /// Per-page channel transfer latency `tDMA` (16 µs for 16 KiB @ 1 Gb/s).
    pub t_dma: SimTime,
    /// Per-page ECC decode latency `tECC` (20 µs, §7.1).
    pub t_ecc: SimTime,
    /// Latency to suspend an in-flight program/erase so a read can proceed
    /// (program/erase suspension, §7.2 baseline; not in Table 1 — taken from
    /// the erase-suspension literature the paper cites [50, 91]).
    pub t_suspend: SimTime,
}

impl NandTimings {
    /// Table-1 values with the §7.1 channel constants.
    pub const fn table1() -> Self {
        Self {
            sense: SensePhases::table1(),
            t_prog: SimTime::from_us(700),
            t_bers: SimTime::from_ms(5),
            t_set: SimTime::from_us(1),
            t_rst_read: SimTime::from_us(5),
            t_dma: SimTime::from_us(16),
            t_ecc: SimTime::from_us(20),
            t_suspend: SimTime::from_us(20),
        }
    }

    /// Chip-level read latency for a page kind with the default phases.
    pub fn t_r(&self, kind: PageKind) -> SimTime {
        self.sense.t_r(kind)
    }
}

impl Default for NandTimings {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = NandTimings::table1();
        assert_eq!(t.sense.t_pre, SimTime::from_us(24));
        assert_eq!(t.sense.t_eval, SimTime::from_us(5));
        assert_eq!(t.sense.t_disch, SimTime::from_us(10));
        assert_eq!(t.t_prog, SimTime::from_us(700));
        assert_eq!(t.t_bers, SimTime::from_ms(5));
        assert_eq!(t.t_set, SimTime::from_us(1));
        assert_eq!(t.t_rst_read, SimTime::from_us(5));
        assert_eq!(t.t_dma, SimTime::from_us(16));
        assert_eq!(t.t_ecc, SimTime::from_us(20));
    }

    #[test]
    fn eq1_sensing_latency() {
        let s = SensePhases::table1();
        assert_eq!(s.sense_time(), SimTime::from_us(39));
        assert_eq!(s.t_r(PageKind::Lsb), SimTime::from_us(78));
        assert_eq!(s.t_r(PageKind::Csb), SimTime::from_us(117));
        assert_eq!(s.t_r(PageKind::Msb), SimTime::from_us(78));
        // Table 1: tR (avg) = 90 µs — exactly (78 + 117 + 78) / 3 = 91 µs;
        // the paper rounds to 90. We assert the exact value of our model.
        assert_eq!(s.t_r_avg(), SimTime::from_us(91));
    }

    #[test]
    fn reduction_produces_expected_rho() {
        let dflt = SensePhases::table1();
        // §5.2.1 conclusion: ≥ 40 % tPRE reduction ⇒ ~25 % shorter tR.
        let reduced = dflt.with_reduction(0.40, 0.0, 0.0);
        let rho = dflt.rho_vs(&reduced);
        assert!((rho - (14.4 + 5.0 + 10.0) / 39.0).abs() < 1e-9);
        assert!((1.0 - rho - 0.246).abs() < 0.002, "tR reduction ≈ 24.6 %");
    }

    #[test]
    fn reduction_fraction_roundtrip() {
        let dflt = SensePhases::table1();
        let r = dflt.with_reduction(0.47, 0.10, 0.27);
        assert!((dflt.pre_reduction_vs(&r) - 0.47).abs() < 1e-3);
        assert!((dflt.eval_reduction_vs(&r) - 0.10).abs() < 1e-3);
        assert!((dflt.disch_reduction_vs(&r) - 0.27).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "reduction fraction")]
    fn full_reduction_is_rejected() {
        SensePhases::table1().with_reduction(1.0, 0.0, 0.0);
    }

    #[test]
    fn paper_example_25pct_tr_cut() {
        // §6.2: "a 25 % tR reduction (= 22.5 µs)" — on the 90 µs average tR.
        let dflt = SensePhases::table1();
        let avg = dflt.t_r_avg().as_us_f64();
        assert!((avg * 0.25 - 22.75).abs() < 0.5, "25 % of avg tR ≈ 22.5 µs");
    }
}
