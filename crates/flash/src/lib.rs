//! # rr-flash — 3D TLC NAND flash device model
//!
//! This crate models the NAND flash chips of Park et al., *"Reducing
//! Solid-State Drive Read Latency by Optimizing Read-Retry"* (ASPLOS 2021):
//!
//! * [`geometry`] — chip organization (dies / planes / blocks / wordlines /
//!   TLC pages) and physical addressing (paper §2.1, Fig. 1);
//! * [`timing`] — Table-1 timing parameters and the Eq. (1) sensing-latency
//!   model `tR = N_SENSE × (tPRE + tEVAL + tDISCH)`;
//! * [`calibration`] — the error-model calibration pinned to every
//!   quantitative anchor in the paper's characterization (§3.1, §5);
//! * [`error_model`] — stationary per-page retry/RBER behaviour, substituting
//!   for the paper's 160 characterized real chips (DESIGN.md §2);
//! * [`retry_table`] — the manufacturer read-retry V_REF table (§2.4);
//! * [`chip`] — the command state machine (`PAGE READ`, `CACHE READ`,
//!   `PROGRAM`, `ERASE`, `RESET`, `SET FEATURE`, suspension) that the SSD
//!   simulator drives.
//!
//! # Example
//!
//! ```
//! use rr_flash::prelude::*;
//!
//! // How bad is read-retry at end-of-life (2K P/E cycles, 1 year retention)?
//! let model = ErrorModel::new(7);
//! let cond = OperatingCondition::new(2000.0, 12.0, 30.0);
//! let profile = model.page_profile(PageId::new(0, 0), cond);
//! assert!(profile.required_step > 10); // Fig. 5: ~19.9 steps on average
//! assert!(profile.ecc_margin() >= 14); // Fig. 7: large final-step margin
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod chip;
pub mod error_model;
pub mod geometry;
pub mod onfi;
pub mod retry_table;
pub mod timing;
pub mod vth;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::calibration::{
        Calibration, OperatingCondition, ECC_CAPABILITY_PER_KIB, MAX_RETRY_STEPS,
    };
    pub use crate::chip::{Chip, ChipError};
    pub use crate::error_model::{ErrorModel, PageId, PageReadProfile};
    pub use crate::geometry::{BlockAddr, ChipGeometry, PageAddr, PageKind};
    pub use crate::retry_table::RetryTable;
    pub use crate::timing::{NandTimings, SensePhases};
}
