//! The manufacturer-provided read-retry V_REF table (§2.4).
//!
//! Vendors profile their chips and ship an ordered list of V_REF adjustment
//! sets; a read-retry operation walks the list until ECC succeeds or the list
//! is exhausted (a *read failure*, §7 footnote 13). The table is constructed
//! so the final entries sit substantially close to V_OPT (Fig. 4).
//!
//! The error model abstracts each entry as an index; this module carries the
//! index semantics plus representative per-step voltage offsets so examples
//! and documentation can show physically meaningful numbers.

use serde::{Deserialize, Serialize};

/// An ordered read-retry table.
///
/// Index 0 is the initial read with default V_REF; indices `1..=max_steps`
/// are the retry entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryTable {
    max_steps: u32,
    /// V_REF shift per retry entry, in millivolts (negative: retention loss
    /// moves V_TH down, so retry voltages step downward).
    step_mv: f64,
}

impl RetryTable {
    /// The table assumed for the paper's 48-layer TLC generation: up to 40
    /// retry entries in ~−25 mV steps (Fig. 5 tops out around 25 used steps).
    pub const fn asplos21() -> Self {
        Self {
            max_steps: 40,
            step_mv: -25.0,
        }
    }

    /// Creates a custom table.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps` is zero or `step_mv` is not finite/non-zero.
    pub fn new(max_steps: u32, step_mv: f64) -> Self {
        assert!(max_steps > 0, "a retry table needs at least one entry");
        assert!(
            step_mv.is_finite() && step_mv != 0.0,
            "per-step voltage shift must be finite and non-zero"
        );
        Self { max_steps, step_mv }
    }

    /// Number of retry entries after the initial read.
    pub const fn max_steps(&self) -> u32 {
        self.max_steps
    }

    /// V_REF offset (mV, relative to the default V_REF) applied at `step`.
    ///
    /// Step 0 is the initial read (offset 0).
    pub fn vref_offset_mv(&self, step: u32) -> f64 {
        self.step_mv * step.min(self.max_steps) as f64
    }

    /// Whether `step` is within the table (`0..=max_steps`).
    pub const fn contains(&self, step: u32) -> bool {
        step <= self.max_steps
    }

    /// Iterates all step indices including the initial read.
    pub fn steps(&self) -> impl Iterator<Item = u32> {
        0..=self.max_steps
    }
}

impl Default for RetryTable {
    fn default() -> Self {
        Self::asplos21()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_covers_fig5_range() {
        let t = RetryTable::asplos21();
        // Fig. 5 shows up to ~25 steps at (2K, 12 mo); the table must cover it.
        assert!(t.max_steps() >= 25);
        assert!(t.contains(0));
        assert!(t.contains(25));
        assert!(!t.contains(41));
    }

    #[test]
    fn offsets_step_downward() {
        let t = RetryTable::asplos21();
        assert_eq!(t.vref_offset_mv(0), 0.0);
        assert!(t.vref_offset_mv(1) < 0.0);
        assert!(t.vref_offset_mv(10) < t.vref_offset_mv(5));
    }

    #[test]
    fn steps_iterator_is_inclusive() {
        let t = RetryTable::new(3, -10.0);
        assert_eq!(t.steps().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        RetryTable::new(0, -10.0);
    }
}
