//! A physical threshold-voltage (V_TH) distribution model of TLC NAND
//! (paper §2.1/§2.3, Fig. 3 and Fig. 4a).
//!
//! The calibrated error model in [`crate::error_model`] is *phenomenological*
//! (anchored directly to the paper's measured numbers). This module provides
//! the *mechanistic* layer underneath it: eight Gaussian V_TH states whose
//! means shift down and widths grow with retention loss and P/E cycling
//! (retention loss dominating, as §2.3 reports for 3D NAND), read-reference
//! voltages between adjacent states, and raw bit errors computed as Gaussian
//! tail mass crossing each V_REF.
//!
//! It exists for three reasons:
//!
//! 1. it demonstrates *why* the paper's observations hold (retry tables
//!    converge on V_OPT; RBER collapses near it; retention shifts V_OPT
//!    down), rather than just reproducing *that* they hold;
//! 2. cross-validation — tests check the mechanistic model reproduces the
//!    same qualitative structure the calibration pins (see
//!    `vth_matches_calibration_shape`);
//! 3. it is the "accurate error model" §8 says future mechanisms could use
//!    to predict near-optimal V_REF without reading first.
//!
//! Voltages are in millivolts. The absolute scale is representative of
//! published 3D TLC characterization (V_TH window ≈ 0–6000 mV), not of any
//! specific vendor's part.

use serde::{Deserialize, Serialize};

/// Number of V_TH states in TLC (2³).
pub const TLC_STATES: usize = 8;

/// Gray coding of TLC states to (LSB, CSB, MSB) bits — Fig. 3(b)'s
/// `111, 110, 100, 000, 010, 011, 001, 101` ladder.
pub const TLC_GRAY: [(u8, u8, u8); TLC_STATES] = [
    (1, 1, 1), // Erased
    (0, 1, 1), // P1
    (0, 0, 1), // P2
    (0, 0, 0), // P3
    (0, 1, 0), // P4
    (1, 1, 0), // P5
    (1, 0, 0), // P6
    (1, 0, 1), // P7
];

/// One Gaussian V_TH state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VthState {
    /// Mean threshold voltage (mV).
    pub mean_mv: f64,
    /// Standard deviation (mV).
    pub sigma_mv: f64,
}

/// The V_TH distribution of one wordline under an operating condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VthModel {
    states: [VthState; TLC_STATES],
}

impl VthModel {
    /// The distribution right after programming a fresh wordline.
    ///
    /// State means are evenly spaced across a ~5.6 V window with the erased
    /// state wide and low, programmed states narrow — the standard 3D TLC
    /// picture (Fig. 3b).
    pub fn programmed_fresh() -> Self {
        let mut states = [VthState {
            mean_mv: 0.0,
            sigma_mv: 0.0,
        }; TLC_STATES];
        for (i, s) in states.iter_mut().enumerate() {
            if i == 0 {
                *s = VthState {
                    mean_mv: -800.0,
                    sigma_mv: 220.0,
                };
            } else {
                *s = VthState {
                    mean_mv: 400.0 + 700.0 * i as f64,
                    sigma_mv: 105.0,
                };
            }
        }
        Self { states }
    }

    /// The distribution after wear and retention loss.
    ///
    /// * **Retention loss** (dominant, §2.3): charge leaks, shifting
    ///   programmed states *down* proportionally to their charge level and to
    ///   `ln(1 + t)`, and widening them. Higher P/E cycling damages the
    ///   tunnel oxide, accelerating leakage.
    /// * **P/E cycling** also widens every state (charge-trap damage).
    /// * The erased state drifts slightly *up* (program/read disturb).
    pub fn aged(pec: f64, retention_months: f64) -> Self {
        let mut m = Self::programmed_fresh();
        let wear = 1.0 + 0.65 * (pec / 1000.0);
        let ret = (1.0 + retention_months / 0.75).ln();
        for (i, s) in m.states.iter_mut().enumerate() {
            if i == 0 {
                // Disturb pushes the erased state up a little.
                s.mean_mv += 18.0 * ret * wear;
                s.sigma_mv += 12.0 * ret * wear;
            } else {
                // Leakage scales with stored charge (state level). The
                // 110 mV/unit coefficient puts the worst-case V_OPT shift at
                // ~18 retry-table steps (−25 mV each), the Fig. 5 range.
                let charge = i as f64 / 7.0;
                s.mean_mv -= 110.0 * charge * ret * wear;
                s.sigma_mv += (6.0 + 9.0 * charge) * ret * wear.sqrt();
            }
        }
        m
    }

    /// The states.
    pub fn states(&self) -> &[VthState; TLC_STATES] {
        &self.states
    }

    /// Default read-reference voltages: the fresh-distribution midpoints
    /// between adjacent states (what the chip uses before any retry).
    pub fn default_vrefs() -> [f64; TLC_STATES - 1] {
        let fresh = Self::programmed_fresh();
        let mut v = [0.0; TLC_STATES - 1];
        for (i, vref) in v.iter_mut().enumerate() {
            *vref = 0.5 * (fresh.states[i].mean_mv + fresh.states[i + 1].mean_mv);
        }
        v
    }

    /// The optimal read-reference voltage between states `i` and `i+1` for
    /// *this* (aged) distribution: the equal-probability crossing point of
    /// the two Gaussians, approximated by the sigma-weighted mean midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `boundary >= 7`.
    pub fn optimal_vref(&self, boundary: usize) -> f64 {
        assert!(boundary < TLC_STATES - 1, "TLC has 7 state boundaries");
        let a = self.states[boundary];
        let b = self.states[boundary + 1];
        (a.mean_mv * b.sigma_mv + b.mean_mv * a.sigma_mv) / (a.sigma_mv + b.sigma_mv)
    }

    /// Probability that a cell programmed to `state` is mis-read across the
    /// boundary at `vref_mv`: upper tail for the lower state, lower tail for
    /// the upper state.
    fn misread_probability(&self, state: usize, boundary: usize, vref_mv: f64) -> f64 {
        let s = self.states[state];
        if state <= boundary {
            // Cell should stay below vref; error mass is the upper tail.
            gaussian_upper_tail(s.mean_mv, s.sigma_mv, vref_mv)
        } else {
            1.0 - gaussian_upper_tail(s.mean_mv, s.sigma_mv, vref_mv)
        }
    }

    /// Expected raw bit errors per 1-KiB codeword (8192 data bits ≈ 8192
    /// cells' worth of one page bit) when sensing boundary `boundary` with
    /// `vref_mv`, assuming uniformly distributed state usage (the data
    /// randomizer of §4 footnote 6 guarantees this).
    pub fn errors_per_kib_at(&self, boundary: usize, vref_mv: f64) -> f64 {
        // Only the two states adjacent to the boundary contribute
        // non-negligible error mass; each holds 1/8 of the cells.
        let cells = 8192.0 / TLC_STATES as f64;
        let low = self.misread_probability(boundary, boundary, vref_mv);
        let high = self.misread_probability(boundary + 1, boundary, vref_mv);
        cells * (low + high)
    }

    /// Expected raw bit errors per KiB for an LSB page read (boundaries 0
    /// and 4 in the Gray ladder, 2 sensings) with given V_REF offsets
    /// (mV, added to the default V_REFs — retry-table entries are negative
    /// offsets).
    pub fn lsb_errors_per_kib(&self, vref_offset_mv: f64) -> f64 {
        let defaults = Self::default_vrefs();
        [0usize, 4]
            .iter()
            .map(|&b| self.errors_per_kib_at(b, defaults[b] + vref_offset_mv))
            .sum()
    }
}

/// Upper-tail probability Q((x − µ)/σ) of a Gaussian.
fn gaussian_upper_tail(mean: f64, sigma: f64, x: f64) -> f64 {
    0.5 * erfc((x - mean) / (sigma * std::f64::consts::SQRT_2))
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| < 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let result = poly * (-x_abs * x_abs).exp();
    if sign_neg {
        2.0 - result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::ECC_CAPABILITY_PER_KIB;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
        assert!((erfc(-5.0) - 2.0).abs() < 2e-12);
    }

    #[test]
    fn gray_code_adjacent_states_differ_in_one_bit() {
        for w in TLC_GRAY.windows(2) {
            let (a, b) = (w[0], w[1]);
            let diff = (a.0 ^ b.0) + (a.1 ^ b.1) + (a.2 ^ b.2);
            assert_eq!(diff, 1, "Gray ladder must flip exactly one bit per step");
        }
    }

    #[test]
    fn fresh_wordline_reads_almost_clean() {
        let m = VthModel::programmed_fresh();
        let errors = m.lsb_errors_per_kib(0.0);
        assert!(errors < 2.0, "fresh page RBER should be tiny, got {errors}");
    }

    #[test]
    fn retention_shifts_states_down_and_widens() {
        let fresh = VthModel::programmed_fresh();
        let aged = VthModel::aged(1000.0, 6.0);
        for i in 1..TLC_STATES {
            assert!(aged.states()[i].mean_mv < fresh.states()[i].mean_mv);
            assert!(aged.states()[i].sigma_mv > fresh.states()[i].sigma_mv);
        }
        // Higher-charge states leak more (Fig. 3a's picture).
        let drop_p1 = fresh.states()[1].mean_mv - aged.states()[1].mean_mv;
        let drop_p7 = fresh.states()[7].mean_mv - aged.states()[7].mean_mv;
        assert!(drop_p7 > drop_p1);
    }

    #[test]
    fn default_vref_fails_after_retention_but_optimal_recovers() {
        // The mechanistic version of Fig. 4: aged distribution under the
        // default V_REF exceeds the ECC capability, but the per-distribution
        // optimal V_REF brings it back under — this is exactly what the
        // retry table's final entries achieve.
        let aged = VthModel::aged(2000.0, 12.0);
        let default_errors = aged.lsb_errors_per_kib(0.0);
        assert!(
            default_errors > ECC_CAPABILITY_PER_KIB as f64,
            "aged default-V_REF read must fail: {default_errors}"
        );
        let defaults = VthModel::default_vrefs();
        let optimal_errors: f64 = [0usize, 4]
            .iter()
            .map(|&b| aged.errors_per_kib_at(b, aged.optimal_vref(b)))
            .sum();
        assert!(
            optimal_errors <= ECC_CAPABILITY_PER_KIB as f64,
            "optimal-V_REF read must succeed: {optimal_errors}"
        );
        // And the optimal V_REF sits *below* the default (retention loss
        // moves V_TH down) — why retry tables step downward.
        assert!(aged.optimal_vref(4) < defaults[4]);
    }

    #[test]
    fn error_curve_is_convex_around_optimum() {
        // Fig. 4b's collapse: stepping the V_REF toward the optimum
        // monotonically reduces errors; overshooting raises them again.
        let aged = VthModel::aged(2000.0, 12.0);
        let defaults = VthModel::default_vrefs();
        let opt_offset = aged.optimal_vref(4) - defaults[4];
        let at = |frac: f64| aged.errors_per_kib_at(4, defaults[4] + opt_offset * frac);
        assert!(at(0.0) > at(0.5), "halfway to V_OPT must improve");
        assert!(at(0.5) > at(1.0), "V_OPT is the best");
        assert!(at(2.0) > at(1.0), "overshooting V_OPT hurts again");
    }

    #[test]
    fn vth_matches_calibration_shape() {
        // Cross-validation: the mechanistic model must agree with the
        // calibrated anchors *qualitatively* — more wear/retention ⇒ more
        // errors at default V_REF and deeper required retry (larger distance
        // to V_OPT).
        let mild = VthModel::aged(0.0, 3.0);
        let worse = VthModel::aged(1000.0, 6.0);
        let worst = VthModel::aged(2000.0, 12.0);
        let defaults = VthModel::default_vrefs();
        let err = |m: &VthModel| m.lsb_errors_per_kib(0.0);
        assert!(err(&mild) < err(&worse));
        assert!(err(&worse) < err(&worst));
        let dist = |m: &VthModel| (m.optimal_vref(4) - defaults[4]).abs();
        assert!(dist(&mild) < dist(&worse));
        assert!(dist(&worse) < dist(&worst));
        // With a −25 mV/step retry table (retry_table.rs), the worst-case
        // V_OPT distance lands in the 15–25-step range Fig. 5 reports.
        let steps_needed = dist(&worst) / 25.0;
        assert!(
            (10.0..=30.0).contains(&steps_needed),
            "V_OPT distance ≈ {steps_needed} retry steps"
        );
    }

    #[test]
    fn erased_state_drifts_up_with_disturb() {
        let fresh = VthModel::programmed_fresh();
        let aged = VthModel::aged(1000.0, 6.0);
        assert!(aged.states()[0].mean_mv > fresh.states()[0].mean_mv);
    }

    #[test]
    #[should_panic(expected = "7 state boundaries")]
    fn boundary_bounds_checked() {
        VthModel::programmed_fresh().optimal_vref(7);
    }
}
