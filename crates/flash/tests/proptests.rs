//! Property-based tests for the flash model: calibration monotonicity, the
//! error model's plateau structure, ONFI round-trips, and the V_TH model.

use proptest::prelude::*;
use rr_flash::calibration::{Calibration, OperatingCondition, ECC_CAPABILITY_PER_KIB};
use rr_flash::error_model::{ErrorModel, PageId};
use rr_flash::geometry::{ChipGeometry, PageAddr};
use rr_flash::onfi;
use rr_flash::timing::SensePhases;
use rr_flash::vth::VthModel;

proptest! {
    #[test]
    fn m_err_monotone_in_all_three_axes(
        pec in 0f64..1900.0,
        months in 0f64..11.0,
        temp in 31.0f64..85.0,
    ) {
        let cal = Calibration::asplos21();
        let here = cal.m_err(OperatingCondition::new(pec, months, temp));
        let more_pec = cal.m_err(OperatingCondition::new(pec + 100.0, months, temp));
        let more_ret = cal.m_err(OperatingCondition::new(pec, months + 1.0, temp));
        let colder = cal.m_err(OperatingCondition::new(pec, months, temp - 1.0));
        prop_assert!(more_pec >= here);
        prop_assert!(more_ret >= here);
        prop_assert!(colder >= here);
    }

    #[test]
    fn delta_m_err_superadditive_in_pre_disch(
        pec in 0f64..2000.0,
        months in 0f64..12.0,
        pre in 0.01f64..0.5,
        disch in 0.01f64..0.35,
    ) {
        let cal = Calibration::asplos21();
        let cond = OperatingCondition::new(pec, months, 85.0);
        let joint = cal.delta_m_err(cond, pre, 0.0, disch);
        let separate =
            cal.delta_m_err(cond, pre, 0.0, 0.0) + cal.delta_m_err(cond, 0.0, 0.0, disch);
        prop_assert!(joint >= separate - 1e-9, "joint {joint} < sum {separate}");
    }

    #[test]
    fn required_steps_within_table_and_plateau_holds(
        block in any::<u64>(),
        page in 0u32..1152,
        pec in prop::sample::select(vec![0.0, 500.0, 1000.0, 1500.0, 2000.0]),
        months in prop::sample::select(vec![0.0, 1.0, 3.0, 6.0, 9.0, 12.0]),
    ) {
        let model = ErrorModel::new(77);
        let cond = OperatingCondition::new(pec, months, 30.0);
        let id = PageId::new(block, page);
        let n = model.required_step_index(id, cond);
        prop_assert!(n <= 40, "steps within the retry table");
        let default = SensePhases::table1();
        // All steps strictly before N fail; N succeeds.
        if n > 0 {
            prop_assert!(!model.read_succeeds(id, cond, n - 1, &default));
        }
        prop_assert!(model.read_succeeds(id, cond, n, &default));
    }

    #[test]
    fn profile_cache_never_changes_required_step_index(
        blocks in prop::collection::vec(0u64..4096, 1..40),
        page in 0u32..1152,
        pec in prop::sample::select(vec![0.0, 500.0, 1000.0, 2000.0]),
        months in prop::sample::select(vec![0.0, 3.0, 6.0, 12.0]),
        seed in any::<u64>(),
    ) {
        // The memoized model must agree with the ground-truth derivation on
        // every query, including repeats (warm hits) and the colliding keys
        // a short block list revisits.
        let cached = ErrorModel::new(seed);
        let plain = ErrorModel::new(seed).with_profile_cache(false);
        let cond = OperatingCondition::new(pec, months, 30.0);
        for _ in 0..2 {
            for &block in &blocks {
                let id = PageId::new(block, page);
                let profile = cached.page_profile(id, cond);
                prop_assert_eq!(profile.required_step, plain.required_step_index(id, cond));
                prop_assert_eq!(profile.final_errors, plain.final_step_errors(id, cond));
                prop_assert_eq!(
                    cached.errors_at_step(id, cond, profile.required_step, &SensePhases::table1()),
                    plain.errors_at_step(id, cond, profile.required_step, &SensePhases::table1())
                );
            }
        }
    }

    #[test]
    fn rpt_style_reduction_never_breaks_final_step(
        block in any::<u64>(),
        page in 0u32..1152,
        pec in prop::sample::select(vec![0.0, 1000.0, 2000.0]),
        months in prop::sample::select(vec![0.0, 3.0, 6.0, 12.0]),
        temp in prop::sample::select(vec![30.0, 55.0, 85.0]),
    ) {
        // 40 % is the Fig. 11 worst-case-safe reduction; it must hold for
        // every page at every condition (that is the whole AR² contract).
        let model = ErrorModel::new(99);
        let cond = OperatingCondition::new(pec, months, temp);
        let id = PageId::new(block, page);
        let n = model.required_step_index(id, cond);
        let reduced = SensePhases::table1().with_reduction(0.40, 0.0, 0.0);
        prop_assert!(model.read_succeeds(id, cond, n, &reduced));
    }

    #[test]
    fn onfi_read_encoding_roundtrips(
        die in 0u32..4,
        plane in 0u32..2,
        block in 0u32..1888,
        page in 0u32..576,
        cache in any::<bool>(),
    ) {
        let addr = PageAddr::new(die, plane, block, page);
        let seq = if cache {
            onfi::encode_cache_read(addr, 576)
        } else {
            onfi::encode_page_read(addr, 576)
        };
        let row_expect = page + 576 * (block * 2 + plane);
        match onfi::decode(&seq).expect("well-formed sequence") {
            onfi::DecodedCommand::PageRead { row } => {
                prop_assert!(!cache);
                prop_assert_eq!(row, row_expect);
            }
            onfi::DecodedCommand::CacheRead { row } => {
                prop_assert!(cache);
                prop_assert_eq!(row, row_expect);
            }
            other => prop_assert!(false, "unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn page_keys_injective_within_chip(
        a in (0u32..2, 0u32..2, 0u32..8, 0u32..24),
        b in (0u32..2, 0u32..2, 0u32..8, 0u32..24),
    ) {
        let g = ChipGeometry::tiny();
        let pa = PageAddr::new(a.0, a.1, a.2, a.3);
        let pb = PageAddr::new(b.0, b.1, b.2, b.3);
        if pa != pb {
            prop_assert_ne!(pa.page_key(&g), pb.page_key(&g));
        } else {
            prop_assert_eq!(pa.page_key(&g), pb.page_key(&g));
        }
    }

    #[test]
    fn vth_errors_decrease_toward_optimum(
        pec in 0f64..2000.0,
        months in 0.5f64..12.0,
        frac in 0.05f64..0.95,
    ) {
        let m = VthModel::aged(pec, months);
        let defaults = VthModel::default_vrefs();
        let opt_offset = m.optimal_vref(4) - defaults[4];
        let part_way = m.errors_per_kib_at(4, defaults[4] + opt_offset * frac);
        let at_default = m.errors_per_kib_at(4, defaults[4]);
        let at_optimum = m.errors_per_kib_at(4, defaults[4] + opt_offset);
        prop_assert!(part_way <= at_default + 1e-9);
        prop_assert!(at_optimum <= part_way + 1e-9);
    }

    #[test]
    fn final_errors_never_exceed_capability_at_default_timing(
        block in any::<u64>(),
        page in 0u32..1152,
        pec in 0f64..2000.0,
        months in 0f64..12.0,
        temp in prop::sample::select(vec![30.0, 55.0, 85.0]),
    ) {
        // The invariant behind "read-retry eventually succeeds": every page's
        // final-step error count fits the ECC capability with default timing.
        let model = ErrorModel::new(123);
        let cond = OperatingCondition::new(pec, months, temp);
        let e = model.final_step_errors(PageId::new(block, page), cond);
        prop_assert!(e <= ECC_CAPABILITY_PER_KIB);
    }
}
