//! A compact bit vector used for codewords and GF(2) polynomials.

/// A growable, indexable vector of bits packed into `u64` words.
///
/// Bit `i` of the vector corresponds to the coefficient of x^i when the
/// vector represents a polynomial over GF(2).
///
/// # Example
///
/// ```
/// use rr_ecc::bits::BitVec;
/// let mut b = BitVec::zeros(100);
/// b.set(63, true);
/// b.set(64, true);
/// assert!(b.get(63) && b.get(64) && !b.get(65));
/// assert_eq!(b.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a vector from a byte slice, LSB-first within each byte
    /// (bit `i` = bit `i % 8` of byte `i / 8`).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut v = Self::zeros(bytes.len() * 8);
        for (i, &byte) in bytes.iter().enumerate() {
            for bit in 0..8 {
                if byte & (1 << bit) != 0 {
                    v.set(i * 8 + bit, true);
                }
            }
        }
        v
    }

    /// Serializes back to bytes (length rounded up; LSB-first).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs `other << shift` into `self` (polynomial addition of a shifted
    /// polynomial). Bits shifted beyond `self.len` are an error.
    ///
    /// # Panics
    ///
    /// Panics if `other`'s highest set bit shifted by `shift` would exceed
    /// `self.len`.
    pub fn xor_shifted(&mut self, other: &BitVec, shift: usize) {
        if let Some(high) = other.highest_set_bit() {
            assert!(
                high + shift < self.len,
                "xor_shifted overflow: bit {high} + shift {shift} >= len {}",
                self.len
            );
        }
        let word_shift = shift / 64;
        let bit_shift = shift % 64;
        for (i, &w) in other.words.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let lo = i + word_shift;
            if bit_shift == 0 {
                self.words[lo] ^= w;
            } else {
                self.words[lo] ^= w << bit_shift;
                if lo + 1 < self.words.len() {
                    self.words[lo + 1] ^= w >> (64 - bit_shift);
                }
            }
        }
    }

    /// Index of the highest set bit, or `None` if all zero.
    pub fn highest_set_bit(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let bit = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// XOR of two equal-length vectors (bitwise difference — used to compare
    /// a corrupted word against the original).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "xor requires equal lengths");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a ^ b)
            .collect();
        BitVec {
            len: self.len,
            words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut b = BitVec::zeros(130);
        assert!(!b.get(129));
        b.set(129, true);
        assert!(b.get(129));
        b.flip(129);
        assert!(!b.get(129));
        b.flip(0);
        assert!(b.get(0));
    }

    #[test]
    fn byte_roundtrip() {
        let bytes = [0xDE, 0xAD, 0xBE, 0xEF, 0x01];
        let b = BitVec::from_bytes(&bytes);
        assert_eq!(b.len(), 40);
        assert_eq!(b.to_bytes(), bytes.to_vec());
    }

    #[test]
    fn highest_set_bit_and_count() {
        let mut b = BitVec::zeros(200);
        assert_eq!(b.highest_set_bit(), None);
        b.set(3, true);
        b.set(77, true);
        b.set(199, true);
        assert_eq!(b.highest_set_bit(), Some(199));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 77, 199]);
    }

    #[test]
    fn xor_shifted_across_word_boundary() {
        let mut a = BitVec::zeros(192);
        let mut g = BitVec::zeros(10);
        g.set(0, true);
        g.set(9, true); // g = x^9 + 1
        a.xor_shifted(&g, 60); // sets bits 60 and 69
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![60, 69]);
        a.xor_shifted(&g, 60); // cancels
        assert_eq!(a.count_ones(), 0);
    }

    #[test]
    fn xor_same_length() {
        let a = BitVec::from_bytes(&[0b1010]);
        let b = BitVec::from_bytes(&[0b0110]);
        assert_eq!(a.xor(&b).to_bytes(), vec![0b1100]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    #[should_panic(expected = "xor_shifted overflow")]
    fn xor_shift_overflow_panics() {
        let mut a = BitVec::zeros(8);
        let mut g = BitVec::zeros(4);
        g.set(3, true);
        a.xor_shifted(&g, 6);
    }
}
