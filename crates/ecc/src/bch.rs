//! A binary BCH encoder/decoder.
//!
//! Modern SSDs protect each 1-KiB codeword with ECC able to correct several
//! tens of raw bit errors — the paper assumes 72 bits per 1-KiB codeword
//! (§2.4, \[73\]). This module implements the real thing: a shortened binary
//! BCH code over GF(2^14) with syndrome decoding (Berlekamp–Massey + Chien
//! search), so the "ECC-capability margin" the paper's AR² exploits is a
//! measurable property of an actual codec here, not just a threshold.
//!
//! The discrete-event simulator uses the threshold model in
//! [`crate::engine`] for speed; this codec backs the examples, tests, and
//! any bit-accurate experiments.

use crate::bits::BitVec;
use crate::gf::{GaloisField, GfError};

/// A shortened binary BCH code.
///
/// # Example
///
/// Correct 72 random bit errors in a 1-KiB codeword — the paper's ECC
/// configuration:
///
/// ```
/// use rr_ecc::bch::BchCode;
///
/// let code = BchCode::nand_72_per_kib().expect("valid parameters");
/// let data = vec![0xA5u8; 1024];
/// let mut cw = code.encode_bytes(&data).expect("1 KiB payload");
/// // Flip t = 72 bits.
/// for i in 0..72 { let pos = (i * 127 + 13) % code.codeword_bits(); cw.flip(pos); }
/// let report = code.decode(&mut cw).expect("within capability");
/// assert_eq!(report.corrected, 72);
/// assert_eq!(code.extract_data_bytes(&cw), data);
/// ```
#[derive(Debug, Clone)]
pub struct BchCode {
    gf: GaloisField,
    t: u32,
    /// Full (primitive) code length 2^m − 1.
    n_full: usize,
    /// Shortened data length in bits.
    data_bits: usize,
    /// Parity length in bits (= deg g).
    parity_bits: usize,
    /// Generator polynomial over GF(2).
    generator: BitVec,
}

/// Result of a successful decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeReport {
    /// Number of bit errors corrected.
    pub corrected: u32,
}

impl BchCode {
    /// The paper's NAND ECC: t = 72 over 1-KiB (8192-bit) payloads, built on
    /// GF(2^14) (n = 16383). Parity comes to ~1008 bits (~126 B per KiB,
    /// ~12 % overhead — typical of 3D TLC controller ECC).
    pub fn nand_72_per_kib() -> Result<Self, BchError> {
        Self::new(14, 72, 8192)
    }

    /// A small, fast code for unit tests: t = 8 over 128-bit payloads in
    /// GF(2^8).
    pub fn small_test_code() -> Result<Self, BchError> {
        Self::new(8, 8, 128)
    }

    /// Constructs a shortened BCH code over GF(2^m) correcting `t` errors
    /// with `data_bits` payload bits.
    ///
    /// # Errors
    ///
    /// * [`BchError::Field`] for unsupported `m`;
    /// * [`BchError::InvalidParams`] if `t` is 0, or the payload does not fit
    ///   (`data_bits + deg(g) > 2^m − 1`).
    pub fn new(m: u32, t: u32, data_bits: usize) -> Result<Self, BchError> {
        if t == 0 || data_bits == 0 {
            return Err(BchError::InvalidParams("t and data_bits must be positive"));
        }
        let gf = GaloisField::new(m).map_err(BchError::Field)?;
        let n_full = gf.n() as usize;
        let generator = Self::build_generator(&gf, t);
        let parity_bits = generator
            .highest_set_bit()
            .expect("generator polynomial is non-zero");
        if data_bits + parity_bits > n_full {
            return Err(BchError::InvalidParams(
                "payload + parity exceeds the code length 2^m - 1",
            ));
        }
        Ok(Self {
            gf,
            t,
            n_full,
            data_bits,
            parity_bits,
            generator,
        })
    }

    /// g(x) = lcm over i ∈ 1..=2t of the minimal polynomial of α^i.
    fn build_generator(gf: &GaloisField, t: u32) -> BitVec {
        let n = gf.n() as u64;
        let mut covered = vec![false; gf.n() as usize + 1];
        // Generator accumulates as a GF(2) polynomial; degree grows to ~m·t.
        let cap = (gf.m() as usize) * (t as usize) * 2 + 2;
        let mut g = BitVec::zeros(cap);
        g.set(0, true); // g = 1
        let mut g_deg = 0usize;
        for i in 1..=(2 * t as u64) {
            let rep = (i % n) as usize;
            if rep == 0 || covered[rep] {
                continue;
            }
            // Cyclotomic coset of i: {i, 2i, 4i, ...} mod n.
            let mut coset = Vec::new();
            let mut j = i % n;
            loop {
                if covered[j as usize] {
                    break;
                }
                covered[j as usize] = true;
                coset.push(j);
                j = (j * 2) % n;
                if j == i % n {
                    break;
                }
            }
            if coset.is_empty() {
                continue;
            }
            // Minimal polynomial: Π (x + α^j), computed with GF coefficients.
            let mut min_poly: Vec<u16> = vec![1];
            for &e in &coset {
                let root = gf.alpha_pow(e);
                let mut next = vec![0u16; min_poly.len() + 1];
                for (idx, &c) in min_poly.iter().enumerate() {
                    next[idx + 1] ^= c; // x · c·x^idx
                    next[idx] ^= gf.mul(c, root); // root · c·x^idx
                }
                min_poly = next;
            }
            debug_assert!(
                min_poly.iter().all(|&c| c <= 1),
                "minimal polynomial must have binary coefficients"
            );
            // Multiply g by the minimal polynomial (both over GF(2)).
            let mut product = BitVec::zeros(cap);
            for (shift, &c) in min_poly.iter().enumerate() {
                if c == 1 {
                    let mut shifted = BitVec::zeros(cap);
                    shifted.xor_shifted(&g, shift);
                    product = product.xor(&shifted);
                }
            }
            g = product;
            g_deg += min_poly.len() - 1;
        }
        debug_assert_eq!(g.highest_set_bit(), Some(g_deg));
        g
    }

    /// Designed error-correction capability `t`.
    pub fn t(&self) -> u32 {
        self.t
    }

    /// Payload length in bits.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Parity length in bits.
    pub fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    /// Shortened codeword length in bits (payload + parity).
    pub fn codeword_bits(&self) -> usize {
        self.data_bits + self.parity_bits
    }

    /// Full (unshortened) code length `2^m − 1`.
    pub fn n_full(&self) -> usize {
        self.n_full
    }

    /// Encodes `data` (exactly [`Self::data_bits`] bits) into a systematic
    /// codeword: bits `0..parity_bits` are parity, the payload follows.
    ///
    /// # Errors
    ///
    /// [`BchError::WrongLength`] if `data.len() != data_bits`.
    pub fn encode(&self, data: &BitVec) -> Result<BitVec, BchError> {
        if data.len() != self.data_bits {
            return Err(BchError::WrongLength {
                expected: self.data_bits,
                got: data.len(),
            });
        }
        let mut cw = BitVec::zeros(self.codeword_bits());
        // Message placed at x^parity … ; remainder of message·x^parity mod g
        // becomes the parity.
        let mut work = BitVec::zeros(self.codeword_bits());
        work.xor_shifted(data, self.parity_bits);
        // Long division by g, top bit down.
        let g_deg = self.parity_bits;
        for bit in (g_deg..self.codeword_bits()).rev() {
            if work.get(bit) {
                work.xor_shifted(&self.generator, bit - g_deg);
            }
        }
        // work now holds the remainder in bits 0..g_deg.
        cw.xor_shifted(data, self.parity_bits);
        for i in 0..g_deg {
            if work.get(i) {
                cw.set(i, true);
            }
        }
        Ok(cw)
    }

    /// Byte-level encode; `data` must be exactly `data_bits / 8` bytes.
    ///
    /// # Errors
    ///
    /// [`BchError::WrongLength`] on size mismatch.
    pub fn encode_bytes(&self, data: &[u8]) -> Result<BitVec, BchError> {
        if data.len() * 8 != self.data_bits {
            return Err(BchError::WrongLength {
                expected: self.data_bits,
                got: data.len() * 8,
            });
        }
        self.encode(&BitVec::from_bytes(data))
    }

    /// Extracts the payload bits of a (corrected) codeword as bytes.
    pub fn extract_data_bytes(&self, cw: &BitVec) -> Vec<u8> {
        let mut data = BitVec::zeros(self.data_bits);
        for i in 0..self.data_bits {
            if cw.get(self.parity_bits + i) {
                data.set(i, true);
            }
        }
        data.to_bytes()
    }

    /// Computes the 2t syndromes of `received`; `None` if all zero.
    fn syndromes(&self, received: &BitVec) -> Option<Vec<u16>> {
        let mut s = vec![0u16; 2 * self.t as usize];
        let mut any = false;
        let positions: Vec<usize> = received.iter_ones().collect();
        for (idx, syn) in s.iter_mut().enumerate() {
            let i = (idx + 1) as u64;
            let mut acc = 0u16;
            for &j in &positions {
                acc ^= self.gf.alpha_pow(i * j as u64);
            }
            *syn = acc;
            any |= acc != 0;
        }
        if any {
            Some(s)
        } else {
            None
        }
    }

    /// Berlekamp–Massey: error-locator polynomial σ (σ[0] = 1).
    fn berlekamp_massey(&self, s: &[u16]) -> Vec<u16> {
        let gf = &self.gf;
        let mut sigma: Vec<u16> = vec![1];
        let mut prev: Vec<u16> = vec![1];
        let mut l: usize = 0;
        let mut shift: usize = 1;
        let mut b: u16 = 1;
        for n in 0..s.len() {
            let mut d = s[n];
            for i in 1..=l.min(sigma.len() - 1) {
                d ^= gf.mul(sigma[i], s[n - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= n {
                let t_poly = sigma.clone();
                let coef = gf.div(d, b);
                sigma = Self::poly_sub_scaled(gf, &sigma, &prev, coef, shift);
                l = n + 1 - l;
                prev = t_poly;
                b = d;
                shift = 1;
            } else {
                let coef = gf.div(d, b);
                sigma = Self::poly_sub_scaled(gf, &sigma, &prev, coef, shift);
                shift += 1;
            }
        }
        sigma
    }

    /// `sigma + coef · x^shift · prev` (subtraction = addition in GF(2^m)).
    fn poly_sub_scaled(
        gf: &GaloisField,
        sigma: &[u16],
        prev: &[u16],
        coef: u16,
        shift: usize,
    ) -> Vec<u16> {
        let mut out = sigma.to_vec();
        if out.len() < prev.len() + shift {
            out.resize(prev.len() + shift, 0);
        }
        for (i, &p) in prev.iter().enumerate() {
            out[i + shift] ^= gf.mul(coef, p);
        }
        while out.len() > 1 && *out.last().expect("non-empty") == 0 {
            out.pop();
        }
        out
    }

    /// Decodes in place.
    ///
    /// # Errors
    ///
    /// [`BchError::TooManyErrors`] when the error pattern exceeds the code's
    /// capability (detected via a locator degree above `t`, roots outside the
    /// shortened region, or a root count that does not match the degree).
    pub fn decode(&self, received: &mut BitVec) -> Result<DecodeReport, BchError> {
        if received.len() != self.codeword_bits() {
            return Err(BchError::WrongLength {
                expected: self.codeword_bits(),
                got: received.len(),
            });
        }
        let Some(s) = self.syndromes(received) else {
            return Ok(DecodeReport { corrected: 0 });
        };
        let sigma = self.berlekamp_massey(&s);
        let nu = sigma.len() - 1;
        if nu > self.t as usize {
            return Err(BchError::TooManyErrors);
        }
        // Chien search over the full cycle; roots at α^{-j} mark position j.
        let mut error_positions = Vec::with_capacity(nu);
        let n = self.n_full as u64;
        for j in 0..self.n_full {
            let x = self.gf.alpha_pow(n - (j as u64 % n));
            if self.gf.poly_eval(&sigma, x) == 0 {
                if j >= self.codeword_bits() {
                    // Error "located" in the shortened (always-zero) region:
                    // the true error pattern exceeded the capability.
                    return Err(BchError::TooManyErrors);
                }
                error_positions.push(j);
                if error_positions.len() == nu {
                    break;
                }
            }
        }
        if error_positions.len() != nu {
            return Err(BchError::TooManyErrors);
        }
        for &p in &error_positions {
            received.flip(p);
        }
        // Safety net: verify the corrected word is a codeword.
        if self.syndromes(received).is_some() {
            return Err(BchError::TooManyErrors);
        }
        Ok(DecodeReport {
            corrected: nu as u32,
        })
    }
}

/// Errors from BCH construction, encoding, and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BchError {
    /// Underlying field construction failed.
    Field(GfError),
    /// Invalid code parameters.
    InvalidParams(&'static str),
    /// Input length does not match the code.
    WrongLength {
        /// Expected number of bits.
        expected: usize,
        /// Provided number of bits.
        got: usize,
    },
    /// The error pattern exceeds the correction capability (decode failure —
    /// what triggers a read-retry in the SSD).
    TooManyErrors,
}

impl core::fmt::Display for BchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BchError::Field(e) => write!(f, "field error: {e}"),
            BchError::InvalidParams(msg) => write!(f, "invalid BCH parameters: {msg}"),
            BchError::WrongLength { expected, got } => {
                write!(f, "wrong input length: expected {expected} bits, got {got}")
            }
            BchError::TooManyErrors => write!(f, "error pattern exceeds correction capability"),
        }
    }
}

impl std::error::Error for BchError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_util::rng::Rng;

    fn flip_random_distinct(cw: &mut BitVec, count: usize, rng: &mut Rng) -> Vec<usize> {
        let mut positions = std::collections::BTreeSet::new();
        while positions.len() < count {
            positions.insert(rng.below_usize(cw.len()));
        }
        for &p in &positions {
            cw.flip(p);
        }
        positions.into_iter().collect()
    }

    #[test]
    fn small_code_parameters() {
        let code = BchCode::small_test_code().unwrap();
        assert_eq!(code.t(), 8);
        assert_eq!(code.data_bits(), 128);
        // t=8 over GF(2^8): parity ≤ 8·8 = 64 bits.
        assert!(code.parity_bits() <= 64, "parity = {}", code.parity_bits());
        assert!(code.codeword_bits() <= code.n_full());
    }

    #[test]
    fn clean_roundtrip() {
        let code = BchCode::small_test_code().unwrap();
        let data = vec![0x5A; 16];
        let mut cw = code.encode_bytes(&data).unwrap();
        let report = code.decode(&mut cw).unwrap();
        assert_eq!(report.corrected, 0);
        assert_eq!(code.extract_data_bytes(&cw), data);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let code = BchCode::small_test_code().unwrap();
        let mut rng = Rng::seed_from_u64(42);
        for trial in 0..50 {
            let data: Vec<u8> = (0..16).map(|_| rng.next_u64() as u8).collect();
            let clean = code.encode_bytes(&data).unwrap();
            for e in 1..=code.t() as usize {
                let mut cw = clean.clone();
                flip_random_distinct(&mut cw, e, &mut rng);
                let report = code
                    .decode(&mut cw)
                    .unwrap_or_else(|err| panic!("trial {trial}, {e} errors: {err}"));
                assert_eq!(report.corrected as usize, e);
                assert_eq!(cw, clean, "trial {trial}: corrected word differs");
            }
        }
    }

    #[test]
    fn detects_more_than_t_errors() {
        let code = BchCode::small_test_code().unwrap();
        let mut rng = Rng::seed_from_u64(7);
        let data = vec![0xC3; 16];
        let clean = code.encode_bytes(&data).unwrap();
        let mut detected = 0;
        let trials = 40;
        for _ in 0..trials {
            let mut cw = clean.clone();
            flip_random_distinct(&mut cw, code.t() as usize + 3, &mut rng);
            match code.decode(&mut cw) {
                Err(BchError::TooManyErrors) => detected += 1,
                Ok(_) => {
                    // Bounded-distance decoding can mis-correct past t; the
                    // result must then differ from the original codeword
                    // (i.e. it decoded *to some other* codeword).
                    assert_ne!(cw, clean, "silent mis-decode to the original word");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            detected as f64 >= 0.9 * trials as f64,
            "only {detected}/{trials} overweight patterns detected"
        );
    }

    #[test]
    fn nand_code_corrects_72_errors_in_1kib() {
        // The paper's full-size configuration (§2.4, §7.1).
        let code = BchCode::nand_72_per_kib().unwrap();
        assert_eq!(code.t(), 72);
        assert_eq!(code.data_bits(), 8192);
        // ~1008 parity bits for 72 errors over GF(2^14).
        assert!(code.parity_bits() <= 72 * 14);
        let mut rng = Rng::seed_from_u64(99);
        let data: Vec<u8> = (0..1024).map(|_| rng.next_u64() as u8).collect();
        let clean = code.encode_bytes(&data).unwrap();
        let mut cw = clean.clone();
        flip_random_distinct(&mut cw, 72, &mut rng);
        let report = code.decode(&mut cw).unwrap();
        assert_eq!(report.corrected, 72);
        assert_eq!(code.extract_data_bytes(&cw), data);
        // 73 errors must not be silently accepted as the original data.
        let mut cw = clean.clone();
        flip_random_distinct(&mut cw, 73, &mut rng);
        match code.decode(&mut cw) {
            Err(BchError::TooManyErrors) => {}
            Ok(_) => assert_ne!(cw, clean),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let code = BchCode::small_test_code().unwrap();
        assert!(matches!(
            code.encode_bytes(&[0u8; 15]),
            Err(BchError::WrongLength { .. })
        ));
        let mut short = BitVec::zeros(10);
        assert!(matches!(
            code.decode(&mut short),
            Err(BchError::WrongLength { .. })
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(
            BchCode::new(8, 0, 64),
            Err(BchError::InvalidParams(_))
        ));
        assert!(matches!(BchCode::new(2, 4, 64), Err(BchError::Field(_))));
        // Payload too large for the field.
        assert!(matches!(
            BchCode::new(8, 8, 250),
            Err(BchError::InvalidParams(_))
        ));
    }

    #[test]
    fn burst_errors_within_t_are_corrected() {
        let code = BchCode::small_test_code().unwrap();
        let data = vec![0xF0; 16];
        let clean = code.encode_bytes(&data).unwrap();
        let mut cw = clean.clone();
        // Contiguous burst of t bits.
        for i in 40..40 + code.t() as usize {
            cw.flip(i);
        }
        let report = code.decode(&mut cw).unwrap();
        assert_eq!(report.corrected, code.t());
        assert_eq!(cw, clean);
    }
}
