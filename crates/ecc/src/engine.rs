//! The SSD controller's ECC engine, at two fidelities.
//!
//! * [`EccEngineModel`] — the threshold model the discrete-event simulator
//!   uses: a codeword with `errors ≤ capability` decodes successfully in
//!   `tECC`; otherwise decoding fails and the controller must start a
//!   read-retry (§2.4). This is exactly the abstraction the paper's MQSim
//!   extension uses.
//! * [`BchEccEngine`] — the same interface backed by the real
//!   [`BchCode`] codec, for bit-accurate demos.

use crate::bch::{BchCode, BchError};
use crate::bits::BitVec;
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// Outcome of decoding one codeword (or a whole page, judged by its worst
/// codeword).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccOutcome {
    /// All errors corrected; `margin` = capability − errors (footnote 5's
    /// "ECC-capability margin").
    Corrected {
        /// Remaining correction headroom in bits per codeword.
        margin: u32,
    },
    /// More errors than the capability: decode failure → read-retry.
    Uncorrectable,
}

impl EccOutcome {
    /// Whether decoding succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, EccOutcome::Corrected { .. })
    }
}

/// Threshold ECC engine model (the paper's §7.1 configuration by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccEngineModel {
    /// Correctable raw bit errors per codeword (72 per 1 KiB).
    pub capability: u32,
    /// Codewords per page (16 KiB page / 1 KiB codeword = 16).
    pub codewords_per_page: u32,
    /// Decode latency per page.
    pub t_ecc: SimTime,
}

impl EccEngineModel {
    /// The paper's configuration: 72 b / 1 KiB codeword, 16 codewords per
    /// 16-KiB page, tECC = 20 µs.
    pub const fn asplos21() -> Self {
        Self {
            capability: 72,
            codewords_per_page: 16,
            t_ecc: SimTime::from_us(20),
        }
    }

    /// Judges a page read by its worst codeword's raw bit error count.
    pub fn decode_page(&self, worst_codeword_errors: u32) -> EccOutcome {
        if worst_codeword_errors <= self.capability {
            EccOutcome::Corrected {
                margin: self.capability - worst_codeword_errors,
            }
        } else {
            EccOutcome::Uncorrectable
        }
    }

    /// The ECC-capability margin for an error count, or `None` if
    /// uncorrectable.
    pub fn margin(&self, errors: u32) -> Option<u32> {
        self.capability.checked_sub(errors)
    }
}

impl Default for EccEngineModel {
    fn default() -> Self {
        Self::asplos21()
    }
}

/// An ECC engine backed by the real BCH codec.
///
/// # Example
///
/// ```
/// use rr_ecc::engine::BchEccEngine;
///
/// let engine = BchEccEngine::small_for_tests().expect("valid parameters");
/// let data = vec![7u8; engine.data_bytes()];
/// let encoded = engine.encode(&data).expect("payload sized correctly");
/// let (decoded, corrected) = engine.decode_with_errors(&encoded, 5).expect("within t");
/// assert_eq!(decoded, data);
/// assert_eq!(corrected, 5);
/// ```
#[derive(Debug, Clone)]
pub struct BchEccEngine {
    code: BchCode,
}

impl BchEccEngine {
    /// Full-size engine matching the paper (t = 72 per 1-KiB codeword).
    pub fn asplos21() -> Result<Self, BchError> {
        Ok(Self {
            code: BchCode::nand_72_per_kib()?,
        })
    }

    /// A small engine for fast unit tests (t = 8 over 16-byte payloads).
    pub fn small_for_tests() -> Result<Self, BchError> {
        Ok(Self {
            code: BchCode::small_test_code()?,
        })
    }

    /// Payload size in bytes.
    pub fn data_bytes(&self) -> usize {
        self.code.data_bits() / 8
    }

    /// The wrapped code.
    pub fn code(&self) -> &BchCode {
        &self.code
    }

    /// Encodes a payload.
    ///
    /// # Errors
    ///
    /// Propagates [`BchError::WrongLength`] for mis-sized payloads.
    pub fn encode(&self, data: &[u8]) -> Result<BitVec, BchError> {
        self.code.encode_bytes(data)
    }

    /// Injects `n_errors` deterministic bit flips and decodes, returning the
    /// recovered payload and the number of corrected bits.
    ///
    /// # Errors
    ///
    /// [`BchError::TooManyErrors`] when `n_errors` exceeds the capability.
    pub fn decode_with_errors(
        &self,
        codeword: &BitVec,
        n_errors: usize,
    ) -> Result<(Vec<u8>, u32), BchError> {
        let mut corrupted = codeword.clone();
        let len = corrupted.len();
        // Spread deterministic flips with a stride co-prime to the length.
        let stride = (len / n_errors.max(1)).max(1) | 1;
        let mut seen = std::collections::BTreeSet::new();
        let mut pos = 3usize;
        while seen.len() < n_errors {
            if seen.insert(pos % len) {
                corrupted.flip(pos % len);
            }
            pos += stride;
        }
        let report = self.code.decode(&mut corrupted)?;
        Ok((self.code.extract_data_bytes(&corrupted), report.corrected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_model_matches_paper_constants() {
        let e = EccEngineModel::asplos21();
        assert_eq!(e.capability, 72);
        assert_eq!(e.codewords_per_page, 16);
        assert_eq!(e.t_ecc, SimTime::from_us(20));
    }

    #[test]
    fn decode_page_threshold() {
        let e = EccEngineModel::asplos21();
        assert_eq!(e.decode_page(0), EccOutcome::Corrected { margin: 72 });
        assert_eq!(e.decode_page(72), EccOutcome::Corrected { margin: 0 });
        assert_eq!(e.decode_page(73), EccOutcome::Uncorrectable);
        assert!(e.decode_page(40).is_success());
        assert_eq!(e.margin(40), Some(32));
        assert_eq!(e.margin(73), None);
    }

    #[test]
    fn fig7_margin_example() {
        // §5.1: M_ERR(2K, 12) at 30 °C = 40 ⇒ margin = 32 = 44.4 % of 72.
        let e = EccEngineModel::asplos21();
        let EccOutcome::Corrected { margin } = e.decode_page(40) else {
            panic!("40 errors must be correctable");
        };
        assert!((margin as f64 / e.capability as f64 - 0.444).abs() < 0.001);
    }

    #[test]
    fn bch_engine_roundtrip_with_errors() {
        let engine = BchEccEngine::small_for_tests().unwrap();
        let data: Vec<u8> = (0..engine.data_bytes() as u8).collect();
        let cw = engine.encode(&data).unwrap();
        for n in [0usize, 1, 4, 8] {
            let (decoded, corrected) = engine.decode_with_errors(&cw, n).unwrap();
            assert_eq!(decoded, data, "n = {n}");
            assert_eq!(corrected as usize, n);
        }
        assert!(matches!(
            engine.decode_with_errors(&cw, 9),
            Err(BchError::TooManyErrors) | Ok(_)
        ));
    }
}
