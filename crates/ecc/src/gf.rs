//! Arithmetic in the finite field GF(2^m), 3 ≤ m ≤ 14.
//!
//! Implemented with log/antilog tables over a primitive element α, the
//! standard construction for BCH codecs. Elements are represented as `u16`
//! bit-vectors of polynomial coefficients over GF(2).

/// Primitive polynomials (bit `i` = coefficient of x^i) for each supported m.
/// These are the conventional choices from Lin & Costello, "Error Control
/// Coding", Appendix B.
const PRIMITIVE_POLYS: [(u32, u32); 12] = [
    (3, 0b1011),
    (4, 0b1_0011),
    (5, 0b10_0101),
    (6, 0b100_0011),
    (7, 0b1000_1001),
    (8, 0b1_0001_1101),
    (9, 0b10_0001_0001),
    (10, 0b100_0000_1001),
    (11, 0b1000_0000_0101),
    (12, 0b1_0000_0101_0011),
    (13, 0b10_0000_0001_1011),
    (14, 0b100_0100_0100_0011),
];

/// The field GF(2^m) with precomputed log/antilog tables.
///
/// # Example
///
/// ```
/// use rr_ecc::gf::GaloisField;
/// let gf = GaloisField::new(8).expect("supported field size");
/// let a = 0x53;
/// let b = 0xCA;
/// // Multiplication distributes over addition (= XOR in GF(2^m)).
/// let lhs = gf.mul(a, b ^ 0x11);
/// let rhs = gf.mul(a, b) ^ gf.mul(a, 0x11);
/// assert_eq!(lhs, rhs);
/// ```
#[derive(Debug, Clone)]
pub struct GaloisField {
    m: u32,
    /// Field size minus one: the order of the multiplicative group.
    n: u32,
    /// `exp[i] = α^i`, doubled length so `mul` can skip one modulo.
    exp: Vec<u16>,
    /// `log[x]` for x ≠ 0.
    log: Vec<u32>,
}

impl GaloisField {
    /// Constructs GF(2^m).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedM`] unless `3 <= m <= 14`.
    pub fn new(m: u32) -> Result<Self, GfError> {
        let poly = PRIMITIVE_POLYS
            .iter()
            .find(|&&(mm, _)| mm == m)
            .map(|&(_, p)| p)
            .ok_or(GfError::UnsupportedM(m))?;
        let n = (1u32 << m) - 1;
        let mut exp = vec![0u16; 2 * n as usize];
        let mut log = vec![0u32; (n + 1) as usize];
        let mut x: u32 = 1;
        for i in 0..n {
            exp[i as usize] = x as u16;
            log[x as usize] = i;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        for i in n..2 * n {
            exp[i as usize] = exp[(i - n) as usize];
        }
        Ok(Self { m, n, exp, log })
    }

    /// Field extension degree m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Multiplicative group order `2^m - 1` (= code length of a primitive
    /// BCH code over this field).
    pub fn n(&self) -> u32 {
        self.n
    }

    /// α^i (exponent taken modulo `n`).
    #[inline]
    pub fn alpha_pow(&self, i: u64) -> u16 {
        self.exp[(i % self.n as u64) as usize]
    }

    /// The discrete log of `x` base α.
    ///
    /// # Panics
    ///
    /// Panics if `x` is zero (zero has no logarithm).
    #[inline]
    pub fn log(&self, x: u16) -> u32 {
        assert!(x != 0, "log of zero is undefined");
        self.log[x as usize]
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
        }
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero in GF(2^m)");
        if a == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.n - self.log[b as usize]) as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `x` is zero.
    #[inline]
    pub fn inv(&self, x: u16) -> u16 {
        assert!(x != 0, "zero has no inverse");
        self.exp[(self.n - self.log[x as usize]) as usize]
    }

    /// `x` raised to the integer power `e` (e may exceed the group order).
    pub fn pow(&self, x: u16, e: u64) -> u16 {
        if x == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let l = self.log[x as usize] as u64;
        self.exp[((l * e) % self.n as u64) as usize]
    }

    /// Evaluates a polynomial with GF coefficients (`coeffs[i]` = coefficient
    /// of x^i) at the point `x`, by Horner's rule.
    pub fn poly_eval(&self, coeffs: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in coeffs.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }
}

/// Errors from field construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GfError {
    /// Only 3 ≤ m ≤ 14 are supported.
    UnsupportedM(u32),
}

impl core::fmt::Display for GfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GfError::UnsupportedM(m) => write!(f, "unsupported field degree m = {m} (need 3..=14)"),
        }
    }
}

impl std::error::Error for GfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_supported_fields_construct() {
        for m in 3..=14 {
            let gf = GaloisField::new(m).unwrap();
            assert_eq!(gf.n(), (1 << m) - 1);
        }
    }

    #[test]
    fn unsupported_m_rejected() {
        assert_eq!(GaloisField::new(2).unwrap_err(), GfError::UnsupportedM(2));
        assert_eq!(GaloisField::new(15).unwrap_err(), GfError::UnsupportedM(15));
    }

    #[test]
    fn alpha_generates_whole_group() {
        let gf = GaloisField::new(8).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..gf.n() {
            assert!(
                seen.insert(gf.alpha_pow(i as u64)),
                "α powers must be distinct"
            );
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0), "zero is not a power of α");
    }

    #[test]
    fn mul_matches_schoolbook_gf16() {
        // GF(16) with x^4 + x + 1: schoolbook carry-less multiply + reduce.
        let gf = GaloisField::new(4).unwrap();
        let reduce = |mut v: u32| {
            for bit in (4..8).rev() {
                if v & (1 << bit) != 0 {
                    v ^= 0b1_0011 << (bit - 4);
                }
            }
            v as u16
        };
        for a in 0u32..16 {
            for b in 0u32..16 {
                let mut prod = 0u32;
                for i in 0..4 {
                    if b & (1 << i) != 0 {
                        prod ^= a << i;
                    }
                }
                assert_eq!(gf.mul(a as u16, b as u16), reduce(prod), "{a} × {b}");
            }
        }
    }

    #[test]
    fn inverse_and_division() {
        let gf = GaloisField::new(10).unwrap();
        for x in 1..=gf.n() as u16 {
            let inv = gf.inv(x);
            assert_eq!(gf.mul(x, inv), 1, "x · x⁻¹ = 1 for x = {x}");
            assert_eq!(gf.div(x, x), 1);
        }
    }

    #[test]
    fn pow_laws() {
        let gf = GaloisField::new(7).unwrap();
        let x = 0x45;
        assert_eq!(gf.pow(x, 0), 1);
        assert_eq!(gf.pow(x, 1), x);
        assert_eq!(gf.pow(x, 2), gf.mul(x, x));
        // x^(n) = x^0 = 1 by Lagrange.
        assert_eq!(gf.pow(x, gf.n() as u64), 1);
        assert_eq!(gf.pow(0, 5), 0);
        assert_eq!(gf.pow(0, 0), 1);
    }

    #[test]
    fn poly_eval_horner() {
        let gf = GaloisField::new(8).unwrap();
        // p(x) = 1 + x ⇒ p(α) = 1 ^ α.
        let a = gf.alpha_pow(1);
        assert_eq!(gf.poly_eval(&[1, 1], a), 1 ^ a);
        // Constant polynomial.
        assert_eq!(gf.poly_eval(&[0x37], 0x99), 0x37);
        // Empty polynomial is zero.
        assert_eq!(gf.poly_eval(&[], 0x12), 0);
    }

    #[test]
    #[should_panic(expected = "log of zero")]
    fn log_zero_panics() {
        GaloisField::new(4).unwrap().log(0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        GaloisField::new(4).unwrap().div(3, 0);
    }
}
