//! # rr-ecc — BCH error correction for the read-retry reproduction
//!
//! Modern SSDs pair each flash page with strong ECC; the paper assumes a
//! 72-bit-per-1-KiB-codeword engine with a 20 µs decode latency (§2.4, §7.1).
//! This crate provides:
//!
//! * [`gf`] — GF(2^m) arithmetic (log/antilog tables);
//! * [`bits`] — the packed bit vectors codewords live in;
//! * [`bch`] — a real shortened binary BCH encoder/decoder
//!   (Berlekamp–Massey + Chien search) able to correct 72 errors per 1-KiB
//!   codeword, demonstrating that the "ECC-capability margin" AR² exploits is
//!   a concrete, measurable quantity;
//! * [`engine`] — the controller-facing ECC engine in two fidelities: the
//!   fast threshold model used inside the event-driven SSD simulator, and a
//!   BCH-backed engine for bit-accurate demos.
//!
//! # Example
//!
//! ```
//! use rr_ecc::engine::{EccEngineModel, EccOutcome};
//!
//! let ecc = EccEngineModel::asplos21();
//! // A final retry step with M_ERR = 35 (Fig. 7, worst case at 85 °C)
//! // leaves a 37-bit margin — the headroom AR² spends on faster sensing.
//! assert_eq!(ecc.decode_page(35), EccOutcome::Corrected { margin: 37 });
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bch;
pub mod bits;
pub mod engine;
pub mod gf;

pub use bch::{BchCode, BchError};
pub use engine::{BchEccEngine, EccEngineModel, EccOutcome};
