//! Property-based tests: GF(2^m) field axioms and bit-vector algebra.

use proptest::prelude::*;
use rr_ecc::bits::BitVec;
use rr_ecc::gf::GaloisField;

proptest! {
    #[test]
    fn gf_field_axioms(m in 3u32..=10, a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
        let gf = GaloisField::new(m).expect("supported m");
        let mask = gf.n() as u16; // n = 2^m − 1 is an all-ones mask
        let (a, b, c) = (a & mask, b & mask, c & mask);
        // Commutativity and associativity of multiplication.
        prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        prop_assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
        // Distributivity over addition (XOR).
        prop_assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
        // Multiplicative identity and zero.
        prop_assert_eq!(gf.mul(a, 1), a);
        prop_assert_eq!(gf.mul(a, 0), 0);
        // Inverses.
        if a != 0 {
            prop_assert_eq!(gf.mul(a, gf.inv(a)), 1);
            prop_assert_eq!(gf.div(b, a), gf.mul(b, gf.inv(a)));
        }
    }

    #[test]
    fn gf_pow_is_repeated_mul(m in 3u32..=10, x in any::<u16>(), e in 0u64..32) {
        let gf = GaloisField::new(m).expect("supported m");
        let x = x & gf.n() as u16;
        let mut expect = 1u16;
        for _ in 0..e {
            expect = gf.mul(expect, x);
        }
        prop_assert_eq!(gf.pow(x, e), expect);
    }

    #[test]
    fn bitvec_byte_roundtrip(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let b = BitVec::from_bytes(&bytes);
        prop_assert_eq!(b.to_bytes(), bytes);
    }

    #[test]
    fn bitvec_xor_shift_cancels(len in 64usize..512, shift in 0usize..256, gbits in 1usize..32) {
        prop_assume!(shift + gbits < len);
        let mut target = BitVec::zeros(len);
        let mut g = BitVec::zeros(gbits);
        for i in 0..gbits {
            if i % 3 == 0 {
                g.set(i, true);
            }
        }
        let before = target.clone();
        target.xor_shifted(&g, shift);
        target.xor_shifted(&g, shift);
        prop_assert_eq!(target, before, "double XOR must cancel");
    }

    #[test]
    fn bitvec_count_matches_iter(positions in prop::collection::btree_set(0usize..500, 0..64)) {
        let mut b = BitVec::zeros(500);
        for &p in &positions {
            b.set(p, true);
        }
        prop_assert_eq!(b.count_ones() as usize, positions.len());
        let listed: Vec<usize> = b.iter_ones().collect();
        prop_assert_eq!(listed, positions.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn poly_eval_is_linear_in_coefficients(
        m in 3u32..=8,
        coeffs_a in prop::collection::vec(any::<u16>(), 1..8),
        coeffs_b in prop::collection::vec(any::<u16>(), 1..8),
        x in any::<u16>(),
    ) {
        let gf = GaloisField::new(m).expect("supported m");
        let mask = gf.n() as u16;
        let a: Vec<u16> = coeffs_a.iter().map(|c| c & mask).collect();
        let b: Vec<u16> = coeffs_b.iter().map(|c| c & mask).collect();
        let x = x & mask;
        // (a + b)(x) = a(x) + b(x) with zero-padded addition.
        let len = a.len().max(b.len());
        let sum: Vec<u16> = (0..len)
            .map(|i| a.get(i).copied().unwrap_or(0) ^ b.get(i).copied().unwrap_or(0))
            .collect();
        prop_assert_eq!(
            gf.poly_eval(&sum, x),
            gf.poly_eval(&a, x) ^ gf.poly_eval(&b, x)
        );
    }
}
