//! # rr-bench — shared helpers for the Criterion benchmark harness
//!
//! The benches (in `benches/`) regenerate each paper table/figure at reduced
//! population/trace sizes and measure the wall-clock cost of doing so; the
//! full-size regeneration lives in the `repro` CLI. One bench group exists
//! per table/figure (`table1`, `table2`, `fig4b` … `fig15`) plus micro-benches
//! for the hot substrate paths.

use rr_core::experiment::{run_one, OperatingPoint};
use rr_core::rpt::ReadTimingParamTable;
use rr_sim::config::SsdConfig;
use rr_sim::metrics::SimReport;
use rr_workloads::trace::Trace;

pub use rr_core::experiment::Mechanism;

/// The benchmark SSD configuration (scaled geometry, Table-1 latencies).
pub fn bench_config() -> SsdConfig {
    SsdConfig::scaled_for_tests().with_seed(0xBE_5EED)
}

/// The benchmark operating point: the (2K P/E, 6-month) condition §7.2
/// highlights.
pub fn bench_point() -> OperatingPoint {
    OperatingPoint::new(2000.0, 6.0)
}

/// Runs one mechanism over a trace at the benchmark point.
pub fn run_mechanism(mechanism: Mechanism, trace: &Trace) -> SimReport {
    let cfg = bench_config();
    let rpt = ReadTimingParamTable::default();
    run_one(&cfg, mechanism, bench_point(), trace, &rpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_workloads::ycsb::YcsbWorkload;

    #[test]
    fn helpers_produce_valid_runs() {
        let trace = YcsbWorkload::C.synthesize(200, 1);
        let report = run_mechanism(Mechanism::PnAr2, &trace);
        assert_eq!(report.requests_completed, 200);
    }
}
