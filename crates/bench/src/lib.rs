//! # rr-bench — shared helpers for the Criterion benchmark harness
//!
//! The benches (in `benches/`) regenerate each paper table/figure at reduced
//! population/trace sizes and measure the wall-clock cost of doing so; the
//! full-size regeneration lives in the `repro` CLI. One bench group exists
//! per table/figure (`table1`, `table2`, `fig4b` … `fig15`) plus micro-benches
//! for the hot substrate paths.

use rr_core::experiment::{
    run_matrix_parallel, run_one, run_one_with_mode, MatrixCell, OperatingPoint,
};
use rr_core::rpt::ReadTimingParamTable;
use rr_sim::config::SsdConfig;
use rr_sim::metrics::SimReport;
use rr_sim::replay::ReplayMode;
use rr_workloads::msrc::MsrcWorkload;
use rr_workloads::trace::Trace;
use rr_workloads::ycsb::YcsbWorkload;

pub use rr_core::experiment::Mechanism;

/// The benchmark SSD configuration (scaled geometry, Table-1 latencies).
pub fn bench_config() -> SsdConfig {
    SsdConfig::scaled_for_tests().with_seed(0xBE_5EED)
}

/// The benchmark operating point: the (2K P/E, 6-month) condition §7.2
/// highlights.
pub fn bench_point() -> OperatingPoint {
    OperatingPoint::new(2000.0, 6.0)
}

/// Runs one mechanism over a trace under an explicit configuration and
/// replay mode — the heap-vs-wheel axis of the `sim_throughput` group flips
/// `hotpath.timing_wheel` through this.
pub fn run_mechanism_with(
    cfg: &SsdConfig,
    mechanism: Mechanism,
    trace: &Trace,
    mode: ReplayMode,
) -> SimReport {
    let rpt = ReadTimingParamTable::default();
    run_one_with_mode(cfg, mechanism, bench_point(), trace, &rpt, mode)
}

/// Runs one mechanism over a trace at the benchmark point.
pub fn run_mechanism(mechanism: Mechanism, trace: &Trace) -> SimReport {
    let cfg = bench_config();
    let rpt = ReadTimingParamTable::default();
    run_one(&cfg, mechanism, bench_point(), trace, &rpt)
}

/// Runs one mechanism over a trace closed-loop at `queue_depth` outstanding
/// requests (the `sweep_qd` bench group's unit of work).
pub fn run_mechanism_closed_loop(
    mechanism: Mechanism,
    trace: &Trace,
    queue_depth: u32,
) -> SimReport {
    let cfg = bench_config();
    let rpt = ReadTimingParamTable::default();
    run_one_with_mode(
        &cfg,
        mechanism,
        bench_point(),
        trace,
        &rpt,
        ReplayMode::closed_loop(queue_depth),
    )
}

/// Runs one mechanism over a trace open-loop with arrivals compressed by
/// `rate` (the `sim_throughput` bench group's offered-load unit of work).
pub fn run_mechanism_rate(mechanism: Mechanism, trace: &Trace, rate: f64) -> SimReport {
    let cfg = bench_config();
    let rpt = ReadTimingParamTable::default();
    run_one_with_mode(
        &cfg,
        mechanism,
        bench_point(),
        trace,
        &rpt,
        ReplayMode::open_loop_rate(rate),
    )
}

/// A reduced Fig. 14-style workload set for the matrix-runner benches: four
/// traces (two MSRC, two YCSB) with their read-dominance tags.
pub fn matrix_traces(requests_per_trace: usize) -> Vec<(Trace, bool)> {
    vec![
        (MsrcWorkload::Mds1.synthesize(requests_per_trace, 11), true),
        (MsrcWorkload::Stg0.synthesize(requests_per_trace, 12), false),
        (YcsbWorkload::C.synthesize(requests_per_trace, 13), true),
        (YcsbWorkload::A.synthesize(requests_per_trace, 14), false),
    ]
}

/// Runs the Fig. 14 mechanism set over [`matrix_traces`] at two aged points
/// on `jobs` threads (`1` falls back to the serial path inside
/// [`run_matrix_parallel`]). Any `jobs` value returns bit-identical cells;
/// the benches compare their wall-clock.
pub fn run_bench_matrix(traces: &[(Trace, bool)], jobs: usize) -> Vec<MatrixCell> {
    let cfg = bench_config();
    let points = [
        OperatingPoint::new(2000.0, 6.0),
        OperatingPoint::new(2000.0, 12.0),
    ];
    run_matrix_parallel(&cfg, traces, &points, &Mechanism::FIG14, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_workloads::ycsb::YcsbWorkload;

    #[test]
    fn helpers_produce_valid_runs() {
        let trace = YcsbWorkload::C.synthesize(200, 1);
        let report = run_mechanism(Mechanism::PnAr2, &trace);
        assert_eq!(report.requests_completed, 200);
    }

    #[test]
    fn closed_loop_helper_reports_tails() {
        let trace = YcsbWorkload::C.synthesize(150, 1);
        let report = run_mechanism_closed_loop(Mechanism::Baseline, &trace, 8);
        assert_eq!(report.requests_completed, 150);
        assert!(report.read_latency.p999.is_some());
    }

    #[test]
    fn bench_matrix_parallel_matches_serial() {
        let traces = matrix_traces(120);
        assert_eq!(run_bench_matrix(&traces, 1), run_bench_matrix(&traces, 4));
    }

    #[test]
    fn explicit_config_helper_matches_the_defaults() {
        let trace = YcsbWorkload::C.synthesize(150, 1);
        let via_helper = run_mechanism_closed_loop(Mechanism::Baseline, &trace, 8);
        let explicit = run_mechanism_with(
            &bench_config(),
            Mechanism::Baseline,
            &trace,
            ReplayMode::closed_loop(8),
        );
        let wheel = run_mechanism_with(
            &bench_config().with_timing_wheel(true),
            Mechanism::Baseline,
            &trace,
            ReplayMode::closed_loop(8),
        );
        assert_eq!(via_helper, explicit);
        assert_eq!(
            explicit, wheel,
            "wheel diverged from heap in the bench path"
        );
    }
}
