//! The tracked hot-path baseline: simulator throughput in **events per
//! second of wall-clock**, measured over the same workload shapes `repro
//! perf` reports into `BENCH_sim.json`.
//!
//! Unlike the per-figure groups in `evaluation.rs` (which time whole
//! regenerations), each bench here runs one simulator configuration and
//! reports the wall-clock of a fixed amount of simulated work, so
//! regressions in the event loop, the scheduler queues, the transaction
//! pool, or the error-model cache show up directly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rr_bench::{
    bench_config, matrix_traces, run_bench_matrix, run_mechanism, run_mechanism_closed_loop,
    run_mechanism_rate, run_mechanism_with, Mechanism,
};
use rr_sim::replay::ReplayMode;
use rr_workloads::msrc::MsrcWorkload;
use rr_workloads::ycsb::YcsbWorkload;
use std::hint::black_box;

fn sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);

    // The `repro matrix -j1` proxy: the Fig. 14 grid on one worker, with the
    // arena reusing buffers across cells.
    let traces = matrix_traces(400);
    g.bench_function("matrix_grid/j1", |b| {
        b.iter(|| black_box(run_bench_matrix(&traces, 1).len()))
    });

    // Open-loop replay of an aged read-heavy trace: the deep-retry hot path
    // (profile cache + pooled transactions + linked queues).
    let mds = MsrcWorkload::Mds1.synthesize(1_500, 9);
    g.bench_function("open_loop/mds_1/Baseline", |b| {
        b.iter_batched(
            || mds.clone(),
            |t| {
                let r = run_mechanism(Mechanism::Baseline, &t);
                black_box(r.events_processed)
            },
            BatchSize::LargeInput,
        )
    });

    // Closed-loop at depth 16: event-heap pressure from overlapping
    // transactions across dies.
    let ycsb = YcsbWorkload::C.synthesize(1_000, 9);
    g.bench_function("closed_loop/YCSB-C/qd16", |b| {
        b.iter_batched(
            || ycsb.clone(),
            |t| {
                let r = run_mechanism_closed_loop(Mechanism::Baseline, &t, 16);
                black_box(r.events_processed)
            },
            BatchSize::LargeInput,
        )
    });

    // Open-loop at 4× offered load: saturation behaviour (long device
    // queues, GC under pressure).
    g.bench_function("rate_scaled/mds_1/x4", |b| {
        b.iter_batched(
            || mds.clone(),
            |t| {
                let r = run_mechanism_rate(Mechanism::PnAr2, &t, 4.0);
                black_box(r.events_processed)
            },
            BatchSize::LargeInput,
        )
    });

    // The event-core axis: the same workloads with `hotpath.timing_wheel`
    // flipped, against the default-heap benches above (results are
    // bit-identical; only this wall-clock differs).
    let wheel_cfg = bench_config().with_timing_wheel(true);
    g.bench_function("open_loop/mds_1/Baseline/wheel", |b| {
        b.iter_batched(
            || mds.clone(),
            |t| {
                let r =
                    run_mechanism_with(&wheel_cfg, Mechanism::Baseline, &t, ReplayMode::OpenLoop);
                black_box(r.events_processed)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("closed_loop/YCSB-C/qd16/wheel", |b| {
        b.iter_batched(
            || ycsb.clone(),
            |t| {
                let r = run_mechanism_with(
                    &wheel_cfg,
                    Mechanism::Baseline,
                    &t,
                    ReplayMode::closed_loop(16),
                );
                black_box(r.events_processed)
            },
            BatchSize::LargeInput,
        )
    });

    g.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
