//! Micro-benchmarks of the hot substrate paths: the discrete-event queue,
//! the per-page error model, BCH decoding, and workload sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_ecc::bch::BchCode;
use rr_flash::calibration::OperatingCondition;
use rr_flash::error_model::{ErrorModel, PageId};
use rr_flash::timing::SensePhases;
use rr_sim::event::EventQueue;
use rr_util::dist::Zipf;
use rr_util::rng::Rng;
use rr_util::time::SimTime;
use std::hint::black_box;

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_event_queue");
    // The same insertion pattern through both backends — the heap/wheel
    // throughput comparison behind the `hotpath.timing_wheel` knob.
    let drive = |mut q: EventQueue<u64>| {
        for i in 0..1_000u64 {
            q.push(SimTime::from_ns((i * 7919) % 100_000 + 100_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    };
    g.bench_function("push_pop_1k_heap", |b| {
        b.iter(|| black_box(drive(EventQueue::new())))
    });
    g.bench_function("push_pop_1k_wheel", |b| {
        b.iter(|| black_box(drive(EventQueue::new_wheel())))
    });
    // Steady-state shape: a bounded working set sliding forward in time,
    // closer to the simulator's lazy-admission event population.
    let steady = |mut q: EventQueue<u64>| {
        for i in 0..64u64 {
            q.push(SimTime::from_ns(i * 997), i);
        }
        let mut acc = 0u64;
        for i in 0..1_000u64 {
            let (now, v) = q.pop().expect("queue stays primed");
            acc = acc.wrapping_add(v);
            q.push(now + SimTime::from_ns((i * 7919) % 60_000 + 1), i);
        }
        acc
    };
    g.bench_function("steady_state_64_heap", |b| {
        b.iter(|| black_box(steady(EventQueue::new())))
    });
    g.bench_function("steady_state_64_wheel", |b| {
        b.iter(|| black_box(steady(EventQueue::new_wheel())))
    });
    g.finish();
}

fn error_model(c: &mut Criterion) {
    let model = ErrorModel::new(42);
    let cond = OperatingCondition::new(2000.0, 12.0, 30.0);
    let reduced = SensePhases::table1().with_reduction(0.4, 0.0, 0.0);
    let mut g = c.benchmark_group("micro_error_model");
    g.bench_function("required_step_index", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(model.required_step_index(PageId::new(i % 4096, (i % 576) as u32), cond))
        })
    });
    g.bench_function("errors_at_step_reduced_timing", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(model.errors_at_step(
                PageId::new(i % 4096, (i % 576) as u32),
                cond,
                (i % 20) as u32,
                &reduced,
            ))
        })
    });
    g.finish();
}

fn bch(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_bch");
    g.sample_size(20);
    let small = BchCode::small_test_code().expect("valid parameters");
    let data = vec![0xA7u8; 16];
    let clean = small.encode_bytes(&data).expect("sized payload");
    g.bench_function("encode_t8", |b| {
        b.iter(|| black_box(small.encode_bytes(&data).unwrap()))
    });
    g.bench_function("decode_t8_8errors", |b| {
        b.iter(|| {
            let mut cw = clean.clone();
            for i in 0..8 {
                cw.flip(i * 19 + 3);
            }
            black_box(small.decode(&mut cw).unwrap().corrected)
        })
    });
    let nand = BchCode::nand_72_per_kib().expect("valid parameters");
    let payload = vec![0x3Cu8; 1024];
    let clean_1k = nand.encode_bytes(&payload).expect("1-KiB payload");
    g.bench_function("encode_1kib_t72", |b| {
        b.iter(|| black_box(nand.encode_bytes(&payload).unwrap()))
    });
    g.bench_function("decode_1kib_t72_72errors", |b| {
        b.iter(|| {
            let mut cw = clean_1k.clone();
            for i in 0..72 {
                cw.flip(i * 127 + 13);
            }
            black_box(nand.decode(&mut cw).unwrap().corrected)
        })
    });
    g.finish();
}

fn sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_sampling");
    let zipf = Zipf::new(100_000, 0.99).expect("valid parameters");
    g.bench_function("zipf_sample", |b| {
        let mut rng = Rng::seed_from_u64(5);
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    g.bench_function("xoshiro_next", |b| {
        let mut rng = Rng::seed_from_u64(5);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.finish();
}

criterion_group!(benches, event_queue, error_model, bch, sampling);
criterion_main!(benches);
