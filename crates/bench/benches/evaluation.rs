//! Benches for the system-level evaluation figures: `fig14` (one group per
//! mechanism) and `fig15` (PSO composition), plus `table2` (workload
//! generation + statistics), `matrix` (the serial vs. parallel
//! experiment-matrix runner), and `sweep_qd` (closed-loop replay cost vs.
//! queue depth). Each iteration performs one full simulator run of a
//! representative workload cell.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rr_bench::{
    matrix_traces, run_bench_matrix, run_mechanism, run_mechanism_closed_loop, Mechanism,
};
use rr_workloads::msrc::MsrcWorkload;
use rr_workloads::ycsb::YcsbWorkload;
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("synthesize_and_stat_all_workloads", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in MsrcWorkload::ALL {
                acc += w.synthesize(1_000, 7).stats().read_ratio;
            }
            for w in YcsbWorkload::ALL {
                acc += w.synthesize(1_000, 7).stats().cold_ratio;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    let trace = MsrcWorkload::Usr1.synthesize(1_000, 3);
    for m in Mechanism::FIG14 {
        g.bench_function(format!("usr_1/{}", m.name()), |b| {
            b.iter_batched(
                || trace.clone(),
                |t| black_box(run_mechanism(m, &t).avg_response_us()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    let trace = YcsbWorkload::C.synthesize(1_000, 3);
    for m in [Mechanism::Pso, Mechanism::PsoPnAr2] {
        g.bench_function(format!("YCSB-C/{}", m.name()), |b| {
            b.iter_batched(
                || trace.clone(),
                |t| black_box(run_mechanism(m, &t).avg_response_us()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// The Fig. 14 matrix on one thread vs. `--jobs`-style worker pools. The
/// parallel runner is bit-identical to the serial one (asserted in rr-bench's
/// tests); this group measures the wall-clock ratio, which approaches the
/// machine's core count for the 8-group workload (≥ 1.5× at 4 threads on a
/// 4-core host; on a single-core host all variants degenerate to serial
/// speed).
fn matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("matrix");
    g.sample_size(10);
    let traces = matrix_traces(400);
    for jobs in [1usize, 2, 4] {
        g.bench_function(format!("fig14_grid/jobs={jobs}"), |b| {
            b.iter(|| black_box(run_bench_matrix(&traces, jobs).len()))
        });
    }
    g.finish();
}

/// Closed-loop replay at increasing queue depth. The simulated work is the
/// same trace; what grows with QD is event-queue pressure (more overlapping
/// transactions), so this group tracks the scheduler's wall-clock scaling
/// with device load. The reported per-class tails (p50…p99.9) come along
/// for free in the returned report.
fn sweep_qd(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_qd");
    g.sample_size(10);
    let trace = YcsbWorkload::C.synthesize(600, 3);
    for qd in [1u32, 8, 32] {
        g.bench_function(format!("YCSB-C/Baseline/qd={qd}"), |b| {
            b.iter_batched(
                || trace.clone(),
                |t| {
                    let report = run_mechanism_closed_loop(Mechanism::Baseline, &t, qd);
                    black_box(report.read_latency.p999)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, table2, fig14, fig15, matrix, sweep_qd);
criterion_main!(benches);
