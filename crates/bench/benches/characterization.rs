//! Benches for the characterization figures (`fig4b`, `fig5`, `fig7`,
//! `fig8`, `fig9`, `fig10`, `fig11`) and `table1`: each iteration regenerates
//! the figure's data series on a reduced chip population.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_charact::figures;
use rr_charact::platform::TestPlatform;
use rr_core::rpt::ReadTimingParamTable;
use rr_flash::calibration::Calibration;
use rr_flash::geometry::PageKind;
use rr_flash::timing::NandTimings;
use std::hint::black_box;

const CHIPS: usize = 8;
const PAGES: usize = 64;

fn table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.bench_function("timing_model", |b| {
        b.iter(|| {
            let t = NandTimings::table1();
            let mut acc = 0u64;
            for kind in [PageKind::Lsb, PageKind::Csb, PageKind::Msb] {
                acc += t.t_r(black_box(kind)).as_ns();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn fig4b(c: &mut Criterion) {
    let platform = TestPlatform::new(CHIPS, 1);
    let mut g = c.benchmark_group("fig4b");
    g.bench_function("rber_trajectories", |b| {
        b.iter(|| black_box(figures::fig4b(&platform, 2000.0, 12.0, &[16, 21], 3)))
    });
    g.finish();
}

fn fig5(c: &mut Criterion) {
    let platform = TestPlatform::new(CHIPS, 1);
    let mut g = c.benchmark_group("fig5");
    g.sample_size(20);
    g.bench_function("retry_step_map", |b| {
        b.iter(|| black_box(figures::fig5(&platform, PAGES)))
    });
    g.finish();
}

fn fig7(c: &mut Criterion) {
    let mut platform = TestPlatform::new(CHIPS, 1);
    let mut g = c.benchmark_group("fig7");
    g.sample_size(20);
    g.bench_function("m_err_map", |b| {
        b.iter(|| black_box(figures::fig7(&mut platform, PAGES)))
    });
    g.finish();
}

fn fig8(c: &mut Criterion) {
    let mut platform = TestPlatform::new(CHIPS, 1);
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("individual_timing_sweeps", |b| {
        b.iter(|| black_box(figures::fig8(&mut platform, PAGES / 2)))
    });
    g.finish();
}

fn fig9(c: &mut Criterion) {
    let mut platform = TestPlatform::new(CHIPS, 1);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("joint_timing_sweep", |b| {
        b.iter(|| black_box(figures::fig9(&mut platform, PAGES / 2)))
    });
    g.finish();
}

fn fig10(c: &mut Criterion) {
    let mut platform = TestPlatform::new(CHIPS, 1);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("temperature_sweep", |b| {
        b.iter(|| black_box(figures::fig10(&mut platform, PAGES / 2)))
    });
    g.finish();
}

fn fig11(c: &mut Criterion) {
    let mut platform = TestPlatform::new(CHIPS, 1);
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("safe_tpre_search", |b| {
        b.iter(|| black_box(figures::fig11(&mut platform, PAGES / 2)))
    });
    g.bench_function("rpt_from_calibration", |b| {
        b.iter(|| {
            black_box(ReadTimingParamTable::from_calibration(
                &Calibration::asplos21(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, table1, fig4b, fig5, fig7, fig8, fig9, fig10, fig11);
criterion_main!(benches);
