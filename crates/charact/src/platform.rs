//! The virtual chip-testing platform (paper §4).
//!
//! The paper characterizes 160 real 48-layer 3D TLC chips on an FPGA platform
//! with a custom flash controller (full command set + `SET FEATURE` timing
//! control) and a ±1 °C temperature controller used to accelerate retention
//! loss via Arrhenius's law. We have no chips, so this module recreates the
//! *methodology* against the calibrated `rr-flash` error model: a population
//! of per-seed chip instances, pseudo-random block/page sampling (the paper
//! samples 120 blocks per chip and tests every page), temperature control,
//! and retention baking.

use rr_flash::calibration::{arrhenius_acceleration, OperatingCondition};
use rr_flash::error_model::{ErrorModel, PageId};
use rr_flash::geometry::ChipGeometry;
use rr_flash::timing::SensePhases;
use rr_util::rng::Rng;

/// One page selected for testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestPage {
    /// Index of the chip in the platform's population.
    pub chip: usize,
    /// The page identity within that chip.
    pub page: PageId,
}

/// The virtual test platform: a chip population plus a temperature chamber.
///
/// # Example
///
/// ```
/// use rr_charact::platform::TestPlatform;
///
/// let mut platform = TestPlatform::new(4, 42);
/// platform.set_temperature(85.0);
/// let pages = platform.sample_pages(10);
/// assert_eq!(pages.len(), 4 * 10);
/// ```
#[derive(Debug)]
pub struct TestPlatform {
    chips: Vec<ErrorModel>,
    geometry: ChipGeometry,
    temp_c: f64,
    seed: u64,
}

impl TestPlatform {
    /// Creates a platform with `n_chips` independent chip instances.
    ///
    /// # Panics
    ///
    /// Panics if `n_chips` is zero.
    pub fn new(n_chips: usize, seed: u64) -> Self {
        assert!(n_chips > 0, "a platform needs at least one chip");
        let chips = (0..n_chips)
            .map(|i| ErrorModel::new(seed ^ (0xC41F_0000 + i as u64)))
            .collect();
        Self {
            chips,
            geometry: ChipGeometry::asplos21(),
            temp_c: 85.0,
            seed,
        }
    }

    /// The paper's population: 160 chips (§4).
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(160, seed)
    }

    /// Number of chips under test.
    pub fn n_chips(&self) -> usize {
        self.chips.len()
    }

    /// Sets the chamber temperature (the temperature at which pages are
    /// *read*; retention accounting stays at the 30 °C reference).
    pub fn set_temperature(&mut self, temp_c: f64) {
        assert!(
            (0.0..=125.0).contains(&temp_c),
            "chamber range is 0–125 °C, got {temp_c}"
        );
        self.temp_c = temp_c;
    }

    /// Current chamber temperature.
    pub fn temperature(&self) -> f64 {
        self.temp_c
    }

    /// Effective retention age (months at 30 °C) reached by baking for
    /// `hours` at `bake_temp_c` — Arrhenius acceleration, §4's
    /// "13 hours at 85 °C ≈ 1 year at 30 °C".
    pub fn bake_months(hours: f64, bake_temp_c: f64) -> f64 {
        let af = arrhenius_acceleration(bake_temp_c, 30.0);
        hours * af / (365.25 * 24.0) * 12.0
    }

    /// Deterministically samples `per_chip` pages from random blocks of every
    /// chip (the paper's random 120-blocks-per-chip methodology).
    pub fn sample_pages(&self, per_chip: usize) -> Vec<TestPage> {
        let mut rng = Rng::seed_from_u64(self.seed ^ 0x5a_3b1e);
        let blocks = self.geometry.blocks_per_chip();
        let pages = self.geometry.pages_per_block as u64;
        let mut out = Vec::with_capacity(self.chips.len() * per_chip);
        for chip in 0..self.chips.len() {
            for _ in 0..per_chip {
                let block = rng.below(blocks);
                let page = rng.below(pages) as u32;
                out.push(TestPage {
                    chip,
                    page: PageId::new(block, page),
                });
            }
        }
        out
    }

    fn condition(&self, pec: f64, months: f64) -> OperatingCondition {
        OperatingCondition::new(pec, months, self.temp_c)
    }

    /// The retry-table entry at which this page first reads successfully.
    pub fn required_steps(&self, p: TestPage, pec: f64, months: f64) -> u32 {
        self.chips[p.chip].required_step_index(p.page, self.condition(pec, months))
    }

    /// Raw bit errors per worst codeword at the final retry step with
    /// default timing (the per-page quantity under Fig. 7's max).
    pub fn final_errors(&self, p: TestPage, pec: f64, months: f64) -> u32 {
        self.chips[p.chip].final_step_errors(p.page, self.condition(pec, months))
    }

    /// Raw bit errors when reading at `step` with explicit sensing phases
    /// (the platform's `SET FEATURE` + read test of §4).
    pub fn errors_at(
        &self,
        p: TestPage,
        pec: f64,
        months: f64,
        step: u32,
        phases: &SensePhases,
    ) -> u32 {
        self.chips[p.chip].errors_at_step(p.page, self.condition(pec, months), step, phases)
    }

    /// Max final-step errors across a page sample — the measured M_ERR.
    pub fn measure_m_err(&self, pages: &[TestPage], pec: f64, months: f64) -> u32 {
        pages
            .iter()
            .map(|&p| self.final_errors(p, pec, months))
            .max()
            .unwrap_or(0)
    }

    /// Max final-step errors across a sample when reading with reduced
    /// timing parameters — Fig. 9/11's `M_ERR` under (ΔtPRE, ΔtDISCH).
    pub fn measure_m_err_with_phases(
        &self,
        pages: &[TestPage],
        pec: f64,
        months: f64,
        phases: &SensePhases,
    ) -> u32 {
        pages
            .iter()
            .map(|&p| {
                let n = self.required_steps(p, pec, months);
                self.errors_at(p, pec, months, n, phases)
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chips_are_distinct_instances() {
        let p = TestPlatform::new(3, 7);
        let pages = p.sample_pages(20);
        let per_chip: Vec<u32> = (0..3)
            .map(|c| {
                pages
                    .iter()
                    .filter(|t| t.chip == c)
                    .map(|&t| p.required_steps(t, 2000.0, 12.0))
                    .sum()
            })
            .collect();
        assert!(
            per_chip[0] != per_chip[1] || per_chip[1] != per_chip[2],
            "chip instances must differ"
        );
    }

    #[test]
    fn bake_rule_of_thumb() {
        // §4: 13 h at 85 °C ≈ 1 year (12 months) at 30 °C.
        let months = TestPlatform::bake_months(13.0, 85.0);
        assert!((months - 12.0).abs() < 2.0, "13 h bake = {months} months");
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = TestPlatform::new(2, 9).sample_pages(5);
        let b = TestPlatform::new(2, 9).sample_pages(5);
        assert_eq!(a, b);
    }

    #[test]
    fn m_err_measurement_tracks_calibration() {
        let p = TestPlatform::new(8, 11);
        let pages = p.sample_pages(400);
        let mut hot = TestPlatform::new(8, 11);
        hot.set_temperature(85.0);
        let measured = hot.measure_m_err(&pages, 2000.0, 12.0);
        // Fig. 7 anchor: M_ERR(2K, 12) = 35 at 85 °C.
        assert!(
            (33..=35).contains(&measured),
            "measured M_ERR = {measured}, expected ≈ 35"
        );
    }

    #[test]
    fn temperature_changes_measured_m_err() {
        let mut p = TestPlatform::new(4, 13);
        let pages = p.sample_pages(300);
        p.set_temperature(85.0);
        let at85 = p.measure_m_err(&pages, 1000.0, 12.0);
        p.set_temperature(30.0);
        let at30 = p.measure_m_err(&pages, 1000.0, 12.0);
        // §5.1: +5 errors at 30 °C.
        assert_eq!(at30 - at85, 5);
    }

    #[test]
    #[should_panic(expected = "chamber range")]
    fn chamber_range_enforced() {
        TestPlatform::new(1, 0).set_temperature(200.0);
    }
}
