//! # rr-charact — the virtual chip-characterization infrastructure
//!
//! The paper's findings rest on characterizing 160 real 3D TLC NAND chips on
//! an FPGA test platform with temperature control (§4). This crate recreates
//! that infrastructure against the calibrated `rr-flash` error model:
//!
//! * [`platform`] — the chip population, block/page sampling, temperature
//!   chamber, and Arrhenius retention baking;
//! * [`figures`] — one function per characterization figure (4b, 5, 7, 8, 9,
//!   10, 11), each reproducing the paper's measurement procedure and
//!   returning serializable data series;
//! * [`figures::max_safe_reduction`] — the measured-profile safety search
//!   that AR²'s Read-timing Parameter Table is built from (Fig. 11 → RPT).
//!
//! # Example
//!
//! ```
//! use rr_charact::platform::TestPlatform;
//! use rr_charact::figures::fig5;
//!
//! let platform = TestPlatform::new(8, 42);
//! let cells = fig5(&platform, 100);
//! let worst = cells
//!     .iter()
//!     .find(|c| c.pec == 2000.0 && c.months == 12.0)
//!     .expect("sweep covers the worst case");
//! // Fig. 5: ~19.9 retry steps on average at end of life.
//! assert!(worst.mean > 18.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod figures;
pub mod platform;

pub use figures::{fig10, fig11, fig4b, fig5, fig7, fig8, fig9};
pub use platform::{TestPage, TestPlatform};
