//! CSV export of the characterization figure data, for plotting the
//! regenerated figures with external tools (gnuplot/matplotlib/R).
//!
//! Each exporter emits one header row and one data row per measurement; all
//! fields are plain numbers so any CSV reader works without quoting rules.

use crate::figures::{Fig10Cell, Fig11Cell, Fig4bSeries, Fig5Cell, Fig7Cell, Fig8Series, Fig9Cell};
use std::fmt::Write;

/// Fig. 4b → `total_steps,steps_before_final,errors_per_kib`.
pub fn fig4b_csv(series: &[Fig4bSeries]) -> String {
    let mut out = String::from("total_steps,steps_before_final,errors_per_kib\n");
    for s in series {
        for &(d, e) in &s.errors_by_distance {
            writeln!(out, "{},{},{}", s.total_steps, d, e).expect("write to String");
        }
    }
    out
}

/// Fig. 5 → `pec,months,steps,probability` (one row per non-empty bin).
pub fn fig5_csv(cells: &[Fig5Cell]) -> String {
    let mut out = String::from("pec,months,steps,probability\n");
    for c in cells {
        for (steps, _count) in c.hist.iter() {
            writeln!(
                out,
                "{},{},{},{:.6}",
                c.pec,
                c.months,
                steps,
                c.hist.probability(steps)
            )
            .expect("write to String");
        }
    }
    out
}

/// Fig. 7 → `temp_c,pec,months,m_err,margin`.
pub fn fig7_csv(cells: &[Fig7Cell]) -> String {
    let mut out = String::from("temp_c,pec,months,m_err,margin\n");
    for c in cells {
        writeln!(
            out,
            "{},{},{},{},{}",
            c.temp_c, c.pec, c.months, c.m_err, c.margin
        )
        .expect("write to String");
    }
    out
}

/// Fig. 8 → `param,pec,months,reduction,delta_m_err`.
pub fn fig8_csv(series: &[Fig8Series]) -> String {
    let mut out = String::from("param,pec,months,reduction,delta_m_err\n");
    for s in series {
        for &(x, d) in &s.points {
            writeln!(
                out,
                "{},{},{},{:.2},{}",
                s.param.name(),
                s.pec,
                s.months,
                x,
                d
            )
            .expect("write to String");
        }
    }
    out
}

/// Fig. 9 → `pec,months,d_pre,d_disch,m_err`.
pub fn fig9_csv(cells: &[Fig9Cell]) -> String {
    let mut out = String::from("pec,months,d_pre,d_disch,m_err\n");
    for c in cells {
        writeln!(
            out,
            "{},{},{:.2},{:.2},{}",
            c.pec, c.months, c.d_pre, c.d_disch, c.m_err
        )
        .expect("write to String");
    }
    out
}

/// Fig. 10 → `temp_c,pec,months,d_pre,extra_errors`.
pub fn fig10_csv(cells: &[Fig10Cell]) -> String {
    let mut out = String::from("temp_c,pec,months,d_pre,extra_errors\n");
    for c in cells {
        writeln!(
            out,
            "{},{},{},{:.2},{}",
            c.temp_c, c.pec, c.months, c.d_pre, c.extra_errors
        )
        .expect("write to String");
    }
    out
}

/// Fig. 11 → `pec,months,safe_reduction,m_err_at_reduction`.
pub fn fig11_csv(cells: &[Fig11Cell]) -> String {
    let mut out = String::from("pec,months,safe_reduction,m_err_at_reduction\n");
    for c in cells {
        writeln!(
            out,
            "{},{},{:.2},{}",
            c.pec, c.months, c.safe_reduction, c.m_err_at_reduction
        )
        .expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::platform::TestPlatform;

    #[test]
    fn fig5_export_shape() {
        let p = TestPlatform::new(2, 1);
        let cells = figures::fig5(&p, 32);
        let csv = fig5_csv(&cells);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("pec,months,steps,probability"));
        let first = lines.next().expect("at least one data row");
        assert_eq!(first.split(',').count(), 4);
        // Probabilities parse and are within [0, 1].
        for line in csv.lines().skip(1) {
            let p: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn fig7_export_roundtrips_numbers() {
        let mut p = TestPlatform::new(2, 1);
        let cells = figures::fig7(&mut p, 32);
        let csv = fig7_csv(&cells);
        assert_eq!(csv.lines().count(), cells.len() + 1);
        let row1 = csv.lines().nth(1).unwrap();
        let fields: Vec<&str> = row1.split(',').collect();
        assert_eq!(fields.len(), 5);
        let m_err: u32 = fields[3].parse().unwrap();
        assert_eq!(m_err, cells[0].m_err);
    }

    #[test]
    fn fig4b_and_sweeps_have_headers() {
        let p = TestPlatform::new(8, 1);
        let s = figures::fig4b(&p, 2000.0, 12.0, &[16], 3);
        assert!(fig4b_csv(&s).starts_with("total_steps,"));
        let mut p2 = TestPlatform::new(2, 1);
        assert!(fig8_csv(&figures::fig8(&mut p2, 16)).starts_with("param,"));
        assert!(fig9_csv(&figures::fig9(&mut p2, 8)).starts_with("pec,"));
        assert!(fig10_csv(&figures::fig10(&mut p2, 8)).starts_with("temp_c,"));
        assert!(fig11_csv(&figures::fig11(&mut p2, 16)).starts_with("pec,"));
    }
}
