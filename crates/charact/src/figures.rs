//! Regeneration of the paper's characterization figures (Figs. 4b, 5, 7–11).
//!
//! Each function runs the corresponding §4/§5 experiment on a
//! [`TestPlatform`] and returns plain serializable data; the `repro` CLI
//! renders them as tables/heatmaps, and EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use crate::platform::{TestPage, TestPlatform};
use rr_flash::calibration::{ECC_CAPABILITY_PER_KIB, RPT_SAFETY_MARGIN_BITS};
use rr_flash::timing::SensePhases;
use rr_util::stats::Histogram;
use serde::{Deserialize, Serialize};

/// The P/E-cycle counts of the characterization sweeps.
pub const PEC_SWEEP: [f64; 3] = [0.0, 1000.0, 2000.0];
/// The retention ages (months) of the characterization sweeps.
pub const RETENTION_SWEEP: [f64; 5] = [0.0, 3.0, 6.0, 9.0, 12.0];
/// The operating temperatures of Fig. 7.
pub const TEMPERATURE_SWEEP: [f64; 3] = [85.0, 55.0, 30.0];

// ---- Fig. 4b ---------------------------------------------------------------

/// One page's RBER trajectory over its last retry steps (Fig. 4b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4bSeries {
    /// Total retry steps this page needs (the paper plots N = 16 and N = 21).
    pub total_steps: u32,
    /// `(steps before the final step, raw errors per KiB)`, e.g. entry 0 is
    /// the final step itself.
    pub errors_by_distance: Vec<(u32, u32)>,
}

/// Measures the Fig. 4b RBER-collapse trajectories: finds pages requiring
/// exactly the `wanted` retry-step counts and records their last `tail` steps.
pub fn fig4b(
    platform: &TestPlatform,
    pec: f64,
    months: f64,
    wanted: &[u32],
    tail: u32,
) -> Vec<Fig4bSeries> {
    let pages = platform.sample_pages(256);
    let default = SensePhases::table1();
    let mut out = Vec::new();
    for &n in wanted {
        let Some(page) = pages
            .iter()
            .find(|&&p| platform.required_steps(p, pec, months) == n)
        else {
            continue;
        };
        let errors_by_distance = (0..=tail.min(n))
            .map(|d| (d, platform.errors_at(*page, pec, months, n - d, &default)))
            .collect();
        out.push(Fig4bSeries {
            total_steps: n,
            errors_by_distance,
        });
    }
    out
}

// ---- Fig. 5 ----------------------------------------------------------------

/// One (P/E count, retention) cell of Fig. 5's probability map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// P/E-cycle count.
    pub pec: f64,
    /// Retention age in months.
    pub months: f64,
    /// Distribution of required retry steps over the page sample.
    pub hist: Histogram,
    /// Mean retry steps.
    pub mean: f64,
    /// Minimum observed.
    pub min: u32,
    /// Maximum observed.
    pub max: u32,
}

/// Measures Fig. 5: the retry-step distribution per operating condition.
pub fn fig5(platform: &TestPlatform, per_chip: usize) -> Vec<Fig5Cell> {
    let pages = platform.sample_pages(per_chip);
    let mut out = Vec::new();
    for &pec in &PEC_SWEEP {
        for &months in &RETENTION_SWEEP {
            let mut hist = Histogram::new(41);
            for &p in &pages {
                hist.record(platform.required_steps(p, pec, months) as usize);
            }
            out.push(Fig5Cell {
                pec,
                months,
                mean: hist.mean(),
                min: hist.min_value().unwrap_or(0) as u32,
                max: hist.max_value().unwrap_or(0) as u32,
                hist,
            });
        }
    }
    out
}

// ---- Fig. 7 ----------------------------------------------------------------

/// One cell of Fig. 7: M_ERR at a (temperature, PEC, retention) point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig7Cell {
    /// Operating temperature (°C).
    pub temp_c: f64,
    /// P/E-cycle count.
    pub pec: f64,
    /// Retention age (months).
    pub months: f64,
    /// Measured M_ERR (max raw errors per KiB in the final retry step).
    pub m_err: u32,
    /// ECC-capability margin (72 − M_ERR).
    pub margin: u32,
}

/// Measures Fig. 7: the ECC-capability margin in the final retry step.
pub fn fig7(platform: &mut TestPlatform, per_chip: usize) -> Vec<Fig7Cell> {
    let pages = platform.sample_pages(per_chip);
    let mut out = Vec::new();
    for &temp in &TEMPERATURE_SWEEP {
        platform.set_temperature(temp);
        for &pec in &PEC_SWEEP {
            for &months in &RETENTION_SWEEP {
                let m_err = platform.measure_m_err(&pages, pec, months);
                out.push(Fig7Cell {
                    temp_c: temp,
                    pec,
                    months,
                    m_err,
                    margin: ECC_CAPABILITY_PER_KIB.saturating_sub(m_err),
                });
            }
        }
    }
    out
}

// ---- Fig. 8 ----------------------------------------------------------------

/// Which sensing phase a Fig. 8 sweep reduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingParam {
    /// Bit-line precharge (tPRE).
    Pre,
    /// Sense-amplifier evaluation (tEVAL).
    Eval,
    /// Bit-line discharge (tDISCH).
    Disch,
}

impl TimingParam {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TimingParam::Pre => "tPRE",
            TimingParam::Eval => "tEVAL",
            TimingParam::Disch => "tDISCH",
        }
    }

    fn phases(&self, reduction: f64) -> SensePhases {
        let d = SensePhases::table1();
        match self {
            TimingParam::Pre => d.with_reduction(reduction, 0.0, 0.0),
            TimingParam::Eval => d.with_reduction(0.0, reduction, 0.0),
            TimingParam::Disch => d.with_reduction(0.0, 0.0, reduction),
        }
    }
}

/// One Fig. 8 sweep: ΔM_ERR vs. reduction of a single timing parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Series {
    /// The reduced parameter.
    pub param: TimingParam,
    /// P/E-cycle count.
    pub pec: f64,
    /// Retention age (months).
    pub months: f64,
    /// `(reduction fraction, ΔM_ERR)` points.
    pub points: Vec<(f64, i64)>,
}

/// Measures Fig. 8 at 85 °C: the error cost of each timing parameter alone.
pub fn fig8(platform: &mut TestPlatform, per_chip: usize) -> Vec<Fig8Series> {
    platform.set_temperature(85.0);
    let pages = platform.sample_pages(per_chip);
    let sweeps: [(TimingParam, &[f64]); 3] = [
        (TimingParam::Pre, &[0.0, 0.1, 0.2, 0.3, 0.4, 0.47, 0.54]),
        (TimingParam::Eval, &[0.0, 0.05, 0.1, 0.15, 0.2]),
        (TimingParam::Disch, &[0.0, 0.07, 0.14, 0.2, 0.27, 0.34, 0.4]),
    ];
    let mut out = Vec::new();
    for (param, reductions) in sweeps {
        for &pec in &PEC_SWEEP {
            for &months in &[0.0, 6.0, 12.0] {
                let base = platform.measure_m_err(&pages, pec, months) as i64;
                let points = reductions
                    .iter()
                    .map(|&x| {
                        let phases = param.phases(x);
                        let m = platform.measure_m_err_with_phases(&pages, pec, months, &phases);
                        (x, m as i64 - base)
                    })
                    .collect();
                out.push(Fig8Series {
                    param,
                    pec,
                    months,
                    points,
                });
            }
        }
    }
    out
}

// ---- Fig. 9 ----------------------------------------------------------------

/// One Fig. 9 point: M_ERR under joint (ΔtPRE, ΔtDISCH) reduction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig9Cell {
    /// P/E-cycle count.
    pub pec: f64,
    /// Retention age (months).
    pub months: f64,
    /// tPRE reduction fraction.
    pub d_pre: f64,
    /// tDISCH reduction fraction.
    pub d_disch: f64,
    /// Measured M_ERR in the final retry step.
    pub m_err: u32,
}

/// Measures Fig. 9's joint-reduction sweep at the paper's five conditions.
pub fn fig9(platform: &mut TestPlatform, per_chip: usize) -> Vec<Fig9Cell> {
    platform.set_temperature(85.0);
    let pages = platform.sample_pages(per_chip);
    let conditions = [
        (1000.0, 0.0),
        (2000.0, 0.0),
        (0.0, 12.0),
        (1000.0, 12.0),
        (2000.0, 12.0),
    ];
    let pre_sweep = [0.0, 0.14, 0.27, 0.4, 0.47, 0.54];
    let disch_sweep = [0.0, 0.07, 0.14, 0.2, 0.27, 0.34, 0.4];
    let mut out = Vec::new();
    for (pec, months) in conditions {
        for &d_pre in &pre_sweep {
            for &d_disch in &disch_sweep {
                let phases = SensePhases::table1().with_reduction(d_pre, 0.0, d_disch);
                let m_err = platform.measure_m_err_with_phases(&pages, pec, months, &phases);
                out.push(Fig9Cell {
                    pec,
                    months,
                    d_pre,
                    d_disch,
                    m_err,
                });
            }
        }
    }
    out
}

// ---- Fig. 10 ---------------------------------------------------------------

/// One Fig. 10 point: temperature-induced extra ΔM_ERR under tPRE reduction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig10Cell {
    /// The colder temperature compared against 85 °C.
    pub temp_c: f64,
    /// P/E-cycle count.
    pub pec: f64,
    /// Retention age (months).
    pub months: f64,
    /// tPRE reduction fraction.
    pub d_pre: f64,
    /// Extra errors at `temp_c` relative to 85 °C, same reduction.
    pub extra_errors: i64,
}

/// Measures Fig. 10: the temperature sensitivity of tPRE reduction.
pub fn fig10(platform: &mut TestPlatform, per_chip: usize) -> Vec<Fig10Cell> {
    let pages = platform.sample_pages(per_chip);
    let pre_sweep = [0.0, 0.2, 0.4, 0.47, 0.54];
    let mut out = Vec::new();
    for &months in &[0.0, 12.0] {
        for &pec in &PEC_SWEEP {
            for &d_pre in &pre_sweep {
                let phases = SensePhases::table1().with_reduction(d_pre, 0.0, 0.0);
                platform.set_temperature(85.0);
                let hot = platform.measure_m_err_with_phases(&pages, pec, months, &phases);
                for &temp in &[55.0, 30.0] {
                    platform.set_temperature(temp);
                    let cold = platform.measure_m_err_with_phases(&pages, pec, months, &phases);
                    out.push(Fig10Cell {
                        temp_c: temp,
                        pec,
                        months,
                        d_pre,
                        extra_errors: cold as i64 - hot as i64,
                    });
                }
            }
        }
    }
    platform.set_temperature(85.0);
    out
}

// ---- Fig. 11 ---------------------------------------------------------------

/// One Fig. 11 cell: the minimum safe tPRE per operating condition.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig11Cell {
    /// P/E-cycle count.
    pub pec: f64,
    /// Retention age (months).
    pub months: f64,
    /// Largest tPRE reduction that keeps M_ERR + 14-bit margin within the
    /// ECC capability (profiled at 85 °C like the paper).
    pub safe_reduction: f64,
    /// Measured M_ERR at that reduction.
    pub m_err_at_reduction: u32,
}

/// Measures Fig. 11: the per-condition minimum tPRE with the 14-bit safety
/// margin (7 temperature + 7 outlier bits), capped at the 54 % profiling
/// maximum.
pub fn fig11(platform: &mut TestPlatform, per_chip: usize) -> Vec<Fig11Cell> {
    platform.set_temperature(85.0);
    let pages = platform.sample_pages(per_chip);
    let mut out = Vec::new();
    for &pec in &PEC_SWEEP {
        for &months in &RETENTION_SWEEP {
            let (safe_reduction, m_err_at_reduction) =
                max_safe_reduction(platform, &pages, pec, months);
            out.push(Fig11Cell {
                pec,
                months,
                safe_reduction,
                m_err_at_reduction,
            });
        }
    }
    out
}

/// The measured-profile safety search shared by Fig. 11 and the RPT builder.
pub fn max_safe_reduction(
    platform: &TestPlatform,
    pages: &[TestPage],
    pec: f64,
    months: f64,
) -> (f64, u32) {
    let mut best = (0.0, platform.measure_m_err(pages, pec, months));
    let mut x = 0.02f64;
    while x <= 0.54 + 1e-9 {
        let phases = SensePhases::table1().with_reduction(x, 0.0, 0.0);
        let m = platform.measure_m_err_with_phases(pages, pec, months, &phases);
        if m + RPT_SAFETY_MARGIN_BITS <= ECC_CAPABILITY_PER_KIB {
            best = (x, m);
        }
        x += 0.02;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> TestPlatform {
        TestPlatform::new(8, 21)
    }

    #[test]
    fn fig5_reproduces_paper_observations() {
        let p = platform();
        let cells = fig5(&p, 300);
        let cell = |pec: f64, months: f64| {
            cells
                .iter()
                .find(|c| c.pec == pec && c.months == months)
                .expect("cell in sweep")
        };
        // Fresh pages never retry.
        assert_eq!(cell(0.0, 0.0).max, 0);
        // (0, 3 mo): every read needs more than three steps.
        assert!(cell(0.0, 3.0).min > 3);
        // (0, 6 mo): ~54 % of reads need ≥ 7 steps.
        let frac7 = cell(0.0, 6.0).hist.fraction_at_least(7);
        assert!((0.46..=0.62).contains(&frac7), "P(≥7) = {frac7}");
        // (1K, 3 mo): at least 8 steps.
        assert!(cell(1000.0, 3.0).min >= 8);
        // (2K, 12 mo): mean ≈ 19.9.
        assert!((cell(2000.0, 12.0).mean - 19.9).abs() < 0.6);
    }

    #[test]
    fn fig7_margin_preserved_at_worst_case() {
        let mut p = platform();
        let cells = fig7(&mut p, 300);
        let worst = cells
            .iter()
            .find(|c| c.temp_c == 30.0 && c.pec == 2000.0 && c.months == 12.0)
            .unwrap();
        // Fig. 7: 44.4 % margin at the worst corner (M_ERR = 40).
        assert!(
            (38..=40).contains(&worst.m_err),
            "M_ERR = {} at the worst corner",
            worst.m_err
        );
        assert!(worst.margin >= 32);
        // Monotone in temperature.
        let at85 = cells
            .iter()
            .find(|c| c.temp_c == 85.0 && c.pec == 2000.0 && c.months == 12.0)
            .unwrap();
        assert!(at85.m_err < worst.m_err);
    }

    #[test]
    fn fig8_teval_is_cost_ineffective() {
        let mut p = platform();
        let series = fig8(&mut p, 200);
        // tEVAL at 20 % on a fresh page: ≈ +30 errors (§5.2.1).
        let eval_fresh = series
            .iter()
            .find(|s| s.param == TimingParam::Eval && s.pec == 0.0 && s.months == 0.0)
            .unwrap();
        let at20 = eval_fresh.points.iter().find(|(x, _)| *x == 0.2).unwrap().1;
        assert!((25..=35).contains(&at20), "ΔM_ERR(tEVAL 20 %) = {at20}");
        // tPRE at 40 % stays safe even at (2K, 12 mo).
        let pre_worst = series
            .iter()
            .find(|s| s.param == TimingParam::Pre && s.pec == 2000.0 && s.months == 12.0)
            .unwrap();
        let base = 35i64;
        let at40 = pre_worst.points.iter().find(|(x, _)| *x == 0.4).unwrap().1;
        assert!(base + at40 <= 72, "tPRE 40 % must stay within capability");
    }

    #[test]
    fn fig9_joint_reduction_blows_capability() {
        let mut p = platform();
        let cells = fig9(&mut p, 150);
        // (1K, 0): ⟨54 %, 20 %⟩ goes far beyond the 72-bit capability.
        let joint = cells
            .iter()
            .find(|c| c.pec == 1000.0 && c.months == 0.0 && c.d_pre == 0.54 && c.d_disch == 0.2)
            .unwrap();
        assert!(joint.m_err > 80, "joint M_ERR = {}", joint.m_err);
        // Individually, ⟨54 %, 0⟩ stays below it at that condition.
        let solo = cells
            .iter()
            .find(|c| c.pec == 1000.0 && c.months == 0.0 && c.d_pre == 0.54 && c.d_disch == 0.0)
            .unwrap();
        assert!(solo.m_err <= 72, "solo M_ERR = {}", solo.m_err);
    }

    #[test]
    fn fig10_temperature_extra_is_small() {
        let mut p = platform();
        let cells = fig10(&mut p, 150);
        for c in &cells {
            // §5.2.3: ≤ 7 extra errors in the profiled reduction range; the
            // out-of-envelope 54 % point may exceed it slightly.
            let bound = if c.d_pre <= 0.47 { 7 } else { 9 };
            assert!(
                c.extra_errors <= bound,
                "temperature extra {} too large at ({}, {}, {}%)",
                c.extra_errors,
                c.pec,
                c.months,
                c.d_pre * 100.0
            );
        }
        // The worst case (30 °C, 2K, 12 mo, 47 %) is ≤ 7 extra errors + the
        // ±5 M_ERR offset; the ΔM_ERR-specific part stays ≤ 7 (§5.2.3).
        let worst = cells
            .iter()
            .filter(|c| c.temp_c == 30.0 && c.pec == 2000.0 && c.months == 12.0)
            .map(|c| c.extra_errors)
            .max()
            .unwrap();
        assert!(worst >= 5, "cold runs must show extra errors, got {worst}");
    }

    #[test]
    fn fig11_range_40_to_54_pct() {
        let mut p = platform();
        let cells = fig11(&mut p, 200);
        for c in &cells {
            assert!(
                c.safe_reduction >= 0.38,
                "safe reduction {} at ({}, {})",
                c.safe_reduction,
                c.pec,
                c.months
            );
            assert!(c.safe_reduction <= 0.54 + 1e-9);
            assert!(c.m_err_at_reduction + RPT_SAFETY_MARGIN_BITS <= ECC_CAPABILITY_PER_KIB);
        }
        let best = cells
            .iter()
            .find(|c| c.pec == 0.0 && c.months == 0.0)
            .unwrap();
        assert!(best.safe_reduction >= 0.52, "fresh blocks allow ≈ 54 %");
    }

    #[test]
    fn fig4b_shows_error_collapse() {
        let p = TestPlatform::new(32, 5);
        let series = fig4b(&p, 2000.0, 12.0, &[16, 21], 3);
        assert!(!series.is_empty(), "16/21-step pages exist at (2K, 12 mo)");
        for s in &series {
            // Fig. 4b: errors collapse below the capability only at the
            // final step, from hundreds a few steps earlier.
            let final_errors = s.errors_by_distance[0].1;
            assert!(final_errors <= 72);
            let three_out = s.errors_by_distance[3].1;
            assert!(three_out > 250, "N−3 errors = {three_out}");
        }
    }
}
