//! Simulated time.
//!
//! The paper's timing parameters (Table 1) are in microseconds and milliseconds;
//! the simulator needs to add and compare them exactly, so [`SimTime`] is a
//! fixed-point nanosecond counter rather than a float.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in (or duration of) simulated time with nanosecond resolution.
///
/// `SimTime` is deliberately a single type used both for instants and
/// durations — the simulator's arithmetic is simple enough that a separate
/// `SimDuration` type would add noise without catching real bugs, and the
/// paper's equations (Eq. 2–5) freely mix the two.
///
/// # Example
///
/// ```
/// use rr_util::time::SimTime;
/// let t = SimTime::from_us(24) + SimTime::from_us(5) + SimTime::from_us(10);
/// assert_eq!(t.as_us_f64(), 39.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as an "infinite" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional microseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us} µs");
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This time expressed in (truncated) microseconds.
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// This time expressed in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction; `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Scales a duration by a dimensionless factor, rounding to nanoseconds.
    ///
    /// Used for the AR² sensing-latency reduction ratio ρ (Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// Multiplies a duration by an integer count.
    #[inline]
    pub const fn mul(self, count: u64) -> SimTime {
        SimTime(self.0 * count)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", self.as_us_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl core::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn table1_sense_latency_arithmetic() {
        // tPRE + tEVAL + tDISCH = 24 + 5 + 10 = 39 µs (paper §4).
        let sense = SimTime::from_us(24) + SimTime::from_us(5) + SimTime::from_us(10);
        assert_eq!(sense.as_us(), 39);
        // A CSB page needs 3 sensings: 117 µs.
        assert_eq!(sense.mul(3).as_us(), 117);
    }

    #[test]
    fn scale_rounds_to_ns() {
        let t = SimTime::from_us(24);
        // 47 % tPRE reduction leaves 53 %: 12.72 µs.
        assert_eq!(t.scale(0.53), SimTime::from_ns(12_720));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimTime::from_us(5);
        let b = SimTime::from_us(9);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_us(4));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(90).to_string(), "90.000µs");
        assert_eq!(SimTime::from_ms(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }
}
