//! Online statistics and histograms for simulator metrics and figure data.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / extrema via Welford's algorithm.
///
/// # Example
///
/// ```
/// use rr_util::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.max(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Exact percentile tracking over a stored sample vector.
///
/// The simulator produces at most a few hundred thousand request latencies per
/// run, so storing them exactly is cheaper than maintaining a sketch and keeps
/// the reported percentiles reproducible to the bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest-rank, or `None` when empty.
    ///
    /// Nearest-rank: the smallest sample whose cumulative relative frequency
    /// is at least `q`, i.e. the sample of 1-based rank `⌈q·n⌉` (`q = 0` maps
    /// to the first sample). The median of `[1, 2, 3, 4]` is therefore `2`,
    /// not `3`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            self.sorted = true;
        }
        let n = self.samples.len();
        // The epsilon absorbs f64 representation error in q·n: e.g.
        // 0.07 · 100 evaluates to 7.0000000000000009, whose ceil would
        // overshoot the true rank ⌈7⌉ = 7 by one.
        let rank = (q * n as f64 - 1e-9).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Some(self.samples[idx])
    }

    /// The raw samples, in their current order (insertion order until a
    /// quantile query sorts them in place). Array-level merges concatenate
    /// these across devices and re-sort, so the exposed order is
    /// deliberately unspecified beyond being deterministic for a
    /// deterministic run.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Summarizes the collection into the fixed tail quantiles reports carry.
    pub fn summary(&mut self) -> LatencySummary {
        LatencySummary {
            count: self.samples.len() as u64,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// Fixed tail quantiles (p50/p95/p99/p99.9) of one latency class, as carried
/// by simulation reports.
///
/// Every quantile is `None` when the class recorded no observations — an
/// empty class has *no* tail, and rendering it as `0.0` would fabricate an
/// impossibly good one.
///
/// # Example
///
/// ```
/// use rr_util::stats::Percentiles;
/// let mut p = Percentiles::new();
/// for x in 1..=1000 { p.push(x as f64); }
/// let s = p.summary();
/// assert_eq!(s.count, 1000);
/// assert_eq!(s.p50, Some(500.0));
/// assert_eq!(s.p999, Some(999.0));
/// assert_eq!(Percentiles::new().summary().p99, None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Number of observations in this class.
    pub count: u64,
    /// Median (µs for latency classes).
    pub p50: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
    /// 99.9th percentile.
    pub p999: Option<f64>,
}

/// A fixed-bin integer histogram, used e.g. for "number of retry steps" counts
/// (Fig. 5) where the domain is small and dense.
///
/// The `Default` histogram has zero bins (every record lands in overflow);
/// use [`Histogram::new`] with a real bin count for anything meaningful.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with bins `0..len`; larger values land in overflow.
    pub fn new(len: usize) -> Self {
        Self {
            bins: vec![0; len],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation of `value`.
    ///
    /// Debug builds assert that the histogram has at least one bin: recording
    /// into a zero-bin (`Default`) histogram silently lands *every* value in
    /// overflow, which reads as "all observations out of range".
    pub fn record(&mut self, value: usize) {
        debug_assert!(
            !self.bins.is_empty(),
            "recording into a zero-bin histogram (every value would land in \
             overflow) — construct it with Histogram::new(len)"
        );
        if value < self.bins.len() {
            self.bins[value] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Count in bin `value` (0 if out of range).
    pub fn count(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Count of observations that exceeded the binned range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Probability mass of bin `value`.
    pub fn probability(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of observations `>= value`.
    pub fn fraction_at_least(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let tail: u64 = self.bins[value.min(self.bins.len())..].iter().sum::<u64>() + self.overflow;
        tail as f64 / self.total as f64
    }

    /// Mean of the recorded values (overflow excluded).
    pub fn mean(&self) -> f64 {
        let counted: u64 = self.bins.iter().sum();
        if counted == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        sum / counted as f64
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min_value(&self) -> Option<usize> {
        self.bins.iter().position(|&c| c > 0)
    }

    /// Largest recorded (binned) value, or `None` if only overflow/empty.
    pub fn max_value(&self) -> Option<usize> {
        self.bins.iter().rposition(|&c| c > 0)
    }

    /// Iterates over `(value, count)` for non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            whole.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        let median = p.quantile(0.5).unwrap();
        assert!((50.0..=51.0).contains(&median), "median {median}");
        let p99 = p.quantile(0.99).unwrap();
        assert!((99.0..=100.0).contains(&p99));
    }

    #[test]
    fn percentiles_empty_is_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        assert_eq!(p.summary(), LatencySummary::default());
    }

    #[test]
    fn nearest_rank_is_unbiased_at_small_n() {
        // The old round(q·(n−1)) formula returned 3 for the median of
        // [1, 2, 3, 4]; nearest-rank (rank ⌈0.5·4⌉ = 2) says 2.
        let mut p = Percentiles::new();
        for x in [4.0, 2.0, 1.0, 3.0] {
            p.push(x);
        }
        assert_eq!(p.quantile(0.5), Some(2.0));
        assert_eq!(p.quantile(0.25), Some(1.0));
        assert_eq!(p.quantile(0.75), Some(3.0));
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(4.0));
        // A single sample is every quantile.
        let mut one = Percentiles::new();
        one.push(7.0);
        assert_eq!(one.quantile(0.0), Some(7.0));
        assert_eq!(one.quantile(0.999), Some(7.0));
    }

    #[test]
    fn quantile_rank_survives_f64_representation_error() {
        // 0.07 · 100 = 7.0000000000000009 in f64; a naive ceil would return
        // the 8th-smallest sample instead of the true nearest-rank 7th.
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.quantile(0.07), Some(7.0));
        assert_eq!(p.quantile(0.29), Some(29.0));
    }

    #[test]
    fn summary_reports_fixed_quantiles() {
        let mut p = Percentiles::new();
        for x in 1..=1000 {
            p.push(x as f64);
        }
        let s = p.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, Some(500.0));
        assert_eq!(s.p95, Some(950.0));
        assert_eq!(s.p99, Some(990.0));
        assert_eq!(s.p999, Some(999.0));
    }

    #[test]
    fn histogram_counts_and_tail() {
        let mut h = Histogram::new(10);
        for v in [0, 1, 1, 7, 7, 7, 12] {
            h.record(v);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.overflow(), 1);
        // >= 7: three 7s + one overflow = 4/7.
        assert!((h.fraction_at_least(7) - 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.min_value(), Some(0));
        assert_eq!(h.max_value(), Some(7));
        // Mean excludes overflow: (0 + 1 + 1 + 7*3)/6.
        assert!((h.mean() - 23.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_iter_skips_empty_bins() {
        let mut h = Histogram::new(5);
        h.record(2);
        h.record(2);
        h.record(4);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(2, 2), (4, 1)]);
    }
}
