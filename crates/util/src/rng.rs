//! Deterministic, splittable pseudo-random number generation.
//!
//! The reproduction pipeline (error model → characterization → simulator →
//! figures) must be exactly reproducible from a single seed, including when
//! components draw random numbers in different orders. We therefore use:
//!
//! * **SplitMix64** for seeding and for *stream derivation*: hashing a
//!   `(seed, stream-id)` pair gives independent generators for, e.g., every
//!   (chip, block, page) triple without any shared mutable state.
//! * **xoshiro256++** as the bulk generator (fast, passes BigCrush, tiny state).
//!
//! Neither algorithm is security-relevant; this is a simulation crate.

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
///
/// This is the reference algorithm from Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014); it is used both to expand
/// seeds and as a one-shot hash of stream identifiers.
#[inline]
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Returns the SplitMix64 output for the (already advanced) `state`.
#[inline]
pub fn splitmix64_output(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One-shot 64-bit mix of two words; used to derive independent streams.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15;
    splitmix64(&mut s);
    let x = splitmix64_output(s);
    splitmix64(&mut s);
    x ^ splitmix64_output(s).rotate_left(17)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use rr_util::rng::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full 256-bit state is expanded from `seed`
    /// with SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            splitmix64(&mut sm);
            *slot = splitmix64_output(sm);
        }
        // xoshiro must not be seeded with the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// `fork(id)` called on equal generators with equal `id`s yields equal
    /// children, and children for different `id`s are statistically
    /// independent. This is how per-(chip, block, page) noise is derived
    /// without storing per-page RNG state.
    pub fn fork(&self, id: u64) -> Self {
        let a = mix64(self.s[0] ^ self.s[2], id);
        let b = mix64(
            self.s[1] ^ self.s[3],
            id.rotate_left(32) ^ 0xA5A5_A5A5_A5A5_A5A5,
        );
        Self::seed_from_u64(a ^ b.rotate_left(13))
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 pseudo-random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in the inclusive-exclusive range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below_usize(slice.len())])
        }
    }
}

/// Deterministic hash of an address tuple into `[0, 1)`.
///
/// Used by the flash error model to attach stationary per-page noise: the
/// value depends only on `(seed, a, b, c)`, not on draw order.
#[inline]
pub fn unit_hash(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let h = mix64(mix64(seed, a), mix64(b.wrapping_add(0x1234_5678), c));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let root = Rng::seed_from_u64(9);
        let mut c1 = root.fork(5);
        let mut c2 = root.fork(5);
        let mut c3 = root.fork(6);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers_values() {
        let mut rng = Rng::seed_from_u64(77);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should be reachable");
    }

    #[test]
    fn next_f64_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn unit_hash_stationary() {
        assert_eq!(unit_hash(1, 2, 3, 4), unit_hash(1, 2, 3, 4));
        assert_ne!(unit_hash(1, 2, 3, 4), unit_hash(1, 2, 3, 5));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn range_u64_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..100 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }
}
