//! A tiny versioned, checksummed binary codec for on-disk artifacts.
//!
//! The workspace builds fully offline — `serde` is vendored as a no-op derive
//! shim — so anything that must survive a round-trip through a file is written
//! with this explicit little-endian writer/reader instead. The format is
//! deliberately boring:
//!
//! ```text
//! [8-byte magic][u32 version][payload ...][u64 FNV-1a of everything before]
//! ```
//!
//! * The **magic** names the artifact kind (e.g. `RRIMG\0\0\0` for device
//!   images) so a wrong file is rejected before any field is parsed.
//! * The **version** is read but not judged here — each artifact decides which
//!   versions it can still decode, which is what lets a v1 file keep loading
//!   after the payload grows in v2.
//! * The trailing **checksum** covers magic, version and payload, so a
//!   truncated or bit-flipped file fails loudly instead of deserializing into
//!   a silently wrong object.
//!
//! Every read is bounds-checked and returns [`CodecError`] — decoding
//! arbitrary bytes must never panic or over-allocate (length prefixes are
//! validated against the bytes actually present before any allocation).
//!
//! # Example
//!
//! ```
//! use rr_util::codec::{Decoder, Encoder, MAGIC_LEN};
//!
//! const MAGIC: [u8; MAGIC_LEN] = *b"EXAMPLE\0";
//! let mut enc = Encoder::new(MAGIC, 1);
//! enc.put_u64(42);
//! enc.put_u32_slice(&[7, 8, 9]);
//! let bytes = enc.finish();
//!
//! let mut dec = Decoder::new(&bytes, MAGIC).expect("intact file");
//! assert_eq!(dec.version(), 1);
//! assert_eq!(dec.take_u64().unwrap(), 42);
//! assert_eq!(dec.take_u32_vec().unwrap(), vec![7, 8, 9]);
//! dec.finish().expect("no trailing bytes");
//! ```

use std::error::Error;
use std::fmt;

/// Length of the artifact-kind magic prefix, in bytes.
pub const MAGIC_LEN: usize = 8;

const CHECKSUM_LEN: usize = 8;
const HEADER_LEN: usize = MAGIC_LEN + 4;

/// Why a byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the field (or the framing itself) was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// The leading magic does not name the expected artifact kind.
    BadMagic {
        /// The magic the caller expected.
        expected: [u8; MAGIC_LEN],
        /// The magic actually present.
        found: [u8; MAGIC_LEN],
    },
    /// The trailing checksum does not match the bytes (corruption).
    BadChecksum {
        /// Checksum recomputed from the bytes present.
        computed: u64,
        /// Checksum stored in the file.
        stored: u64,
    },
    /// The format version is one this build cannot decode.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// A decoded value is structurally impossible (bad discriminant, a length
    /// that contradicts another field, ...).
    Invalid {
        /// Human-readable description of the contradiction.
        what: String,
    },
    /// Payload bytes remained after the artifact said it was done.
    TrailingBytes {
        /// Number of unconsumed payload bytes.
        count: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what } => write!(f, "truncated while reading {what}"),
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::BadChecksum { computed, stored } => write!(
                f,
                "checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            CodecError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            CodecError::Invalid { what } => write!(f, "invalid field: {what}"),
            CodecError::TrailingBytes { count } => {
                write!(f, "{count} unconsumed payload bytes after decode")
            }
        }
    }
}

impl Error for CodecError {}

impl CodecError {
    /// Builds an [`CodecError::Invalid`] from anything displayable.
    pub fn invalid(what: impl fmt::Display) -> Self {
        CodecError::Invalid {
            what: what.to_string(),
        }
    }
}

/// FNV-1a over a byte slice: tiny, dependency-free, and plenty for detecting
/// truncation and bit flips (this is an integrity check, not authentication).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Builds a framed artifact: header, little-endian fields, trailing checksum.
#[derive(Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Starts an artifact of the given kind and format version.
    pub fn new(magic: [u8; MAGIC_LEN], version: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&magic);
        buf.extend_from_slice(&version.to_le_bytes());
        Self { buf }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Seals the artifact: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Reads a framed artifact produced by [`Encoder`].
///
/// Construction verifies framing (magic + checksum) up front; field reads are
/// then individually bounds-checked against the payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    payload: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> Decoder<'a> {
    /// Verifies magic and checksum, returning a reader over the payload.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the bytes cannot even hold the framing,
    /// [`CodecError::BadMagic`] on an artifact-kind mismatch, and
    /// [`CodecError::BadChecksum`] on corruption.
    pub fn new(bytes: &'a [u8], magic: [u8; MAGIC_LEN]) -> Result<Self, CodecError> {
        if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
            return Err(CodecError::Truncated { what: "framing" });
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("split_at gave 8 bytes"));
        let computed = fnv1a64(body);
        if computed != stored {
            return Err(CodecError::BadChecksum { computed, stored });
        }
        let mut found = [0u8; MAGIC_LEN];
        found.copy_from_slice(&body[..MAGIC_LEN]);
        if found != magic {
            return Err(CodecError::BadMagic {
                expected: magic,
                found,
            });
        }
        let version = u32::from_le_bytes(
            body[MAGIC_LEN..HEADER_LEN]
                .try_into()
                .expect("header slice is 4 bytes"),
        );
        Ok(Self {
            payload: &body[HEADER_LEN..],
            pos: 0,
            version,
        })
    }

    /// Format version from the header.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Payload bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { what });
        }
        let s = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the payload is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the payload is exhausted.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the payload is exhausted.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the payload is exhausted.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length prefix and validates it against the bytes actually
    /// present, so a corrupt length can never drive a huge allocation.
    fn take_len(&mut self, elem_size: usize, what: &'static str) -> Result<usize, CodecError> {
        let n = self.take_u64()?;
        let need = (n as usize).checked_mul(elem_size);
        match need {
            Some(bytes) if bytes <= self.remaining() => Ok(n as usize),
            _ => Err(CodecError::Truncated { what }),
        }
    }

    /// Reads a length-prefixed `u32` slice.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the declared length exceeds the bytes
    /// present.
    pub fn take_u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.take_len(4, "u32 slice")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u64` slice.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] if the declared length exceeds the bytes
    /// present.
    pub fn take_u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.take_len(8, "u64 slice")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] on a bad length,
    /// [`CodecError::Invalid`] on non-UTF-8 bytes.
    pub fn take_str(&mut self) -> Result<String, CodecError> {
        let n = self.take_len(1, "string")?;
        let s = self.take(n, "string")?;
        String::from_utf8(s.to_vec()).map_err(|_| CodecError::invalid("non-UTF-8 string"))
    }

    /// Asserts the whole payload was consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if payload bytes remain — except when
    /// the artifact's version is *newer* than the fields the caller knows,
    /// which the caller signals by using [`Decoder::finish_lenient`] instead.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                count: self.remaining(),
            });
        }
        Ok(())
    }

    /// Like [`Decoder::finish`], but tolerates unread payload — used when an
    /// older reader decodes a newer (but still compatible) version whose
    /// appended fields it does not know about.
    pub fn finish_lenient(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; MAGIC_LEN] = *b"RRTEST\0\0";

    fn sample() -> Vec<u8> {
        let mut enc = Encoder::new(MAGIC, 3);
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX - 1);
        enc.put_f64(-1.5);
        enc.put_u32_slice(&[1, 2, 3]);
        enc.put_u64_slice(&[]);
        enc.put_str("aged image");
        enc.finish()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let bytes = sample();
        let mut dec = Decoder::new(&bytes, MAGIC).unwrap();
        assert_eq!(dec.version(), 3);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert_eq!(dec.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.take_f64().unwrap(), -1.5);
        assert_eq!(dec.take_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.take_u64_vec().unwrap(), Vec::<u64>::new());
        assert_eq!(dec.take_str().unwrap(), "aged image");
        dec.finish().unwrap();
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = match Decoder::new(&bytes[..cut], MAGIC) {
                Err(e) => e,
                Ok(mut dec) => loop {
                    // Framing may survive a cut only if fields then fail.
                    match dec.take_u8() {
                        Ok(_) => continue,
                        Err(e) => break e,
                    }
                },
            };
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::BadChecksum { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = sample();
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            let r = Decoder::new(&bad, MAGIC);
            assert!(r.is_err(), "flip in byte {byte} went unnoticed");
        }
    }

    #[test]
    fn wrong_magic_is_its_own_error() {
        let mut enc = Encoder::new(*b"OTHERFMT", 1);
        enc.put_u8(0);
        let bytes = enc.finish();
        assert!(matches!(
            Decoder::new(&bytes, MAGIC),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_does_not_allocate() {
        let mut enc = Encoder::new(MAGIC, 1);
        enc.put_u64(u64::MAX); // a slice length promising 2^64 elements
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, MAGIC).unwrap();
        assert!(matches!(
            dec.take_u32_vec(),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected_strictly_but_allowed_leniently() {
        let mut enc = Encoder::new(MAGIC, 1);
        enc.put_u32(5);
        enc.put_u32(6);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, MAGIC).unwrap();
        assert_eq!(dec.take_u32().unwrap(), 5);
        assert!(matches!(
            dec.finish(),
            Err(CodecError::TrailingBytes { count: 4 })
        ));
        let mut dec = Decoder::new(&bytes, MAGIC).unwrap();
        assert_eq!(dec.take_u32().unwrap(), 5);
        dec.finish_lenient();
    }

    #[test]
    fn errors_display_cleanly() {
        let e = CodecError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = CodecError::invalid("free list names block 99 of 16");
        assert!(e.to_string().contains("block 99"));
    }
}
