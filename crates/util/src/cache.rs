//! A small, deterministic open-addressed cache for memoizing pure functions.
//!
//! The simulator's hot path repeatedly re-derives values that are *pure
//! functions* of a key (e.g. the per-page read profile of the flash error
//! model). [`StationaryCache`] memoizes such derivations in a fixed-capacity
//! open-addressed table with bounded linear probing and
//! overwrite-on-collision eviction:
//!
//! * **lookups and inserts are O(1)** — at most [`StationaryCache::probe`]
//!   slots are inspected, never the whole table;
//! * **no allocation after construction** — the slot array is sized once;
//! * **results are exact** — a hit is returned only on full key equality, so
//!   a cached value is always bit-identical to recomputing it. Cache
//!   *contents* depend on the access order (eviction is overwrite-based),
//!   but the values observed by callers never do, which is what keeps
//!   memoized simulation runs bit-identical to unmemoized ones.
//!
//! The caller supplies the hash for each key (typically via
//! [`crate::rng::mix64`]), keeping this type free of any hashing policy.
//!
//! # Example
//!
//! ```
//! use rr_util::cache::StationaryCache;
//! use rr_util::rng::mix64;
//!
//! let mut cache: StationaryCache<u64, u32> = StationaryCache::new(8, 2);
//! let h = |k: u64| mix64(k, 0xCAFE);
//! assert_eq!(cache.get(h(7), &7), None);
//! cache.insert(h(7), 7, 49);
//! assert_eq!(cache.get(h(7), &7), Some(49));
//! ```

/// A fixed-capacity open-addressed memo table with bounded linear probing.
///
/// `K` is compared by full equality on every probe, so false hits are
/// impossible; a colliding insert past the probe window simply overwrites
/// the window's first slot (direct-mapped eviction).
#[derive(Debug, Clone)]
pub struct StationaryCache<K, V> {
    slots: Vec<Option<(K, V)>>,
    mask: usize,
    probe: usize,
}

impl<K: PartialEq, V: Copy> StationaryCache<K, V> {
    /// Creates a cache with `1 << capacity_log2` slots and a linear-probe
    /// window of `probe` slots (clamped to the table size, minimum 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_log2` would overflow `usize` indexing.
    pub fn new(capacity_log2: u32, probe: usize) -> Self {
        let capacity = 1usize
            .checked_shl(capacity_log2)
            .expect("cache capacity must fit in usize");
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            mask: capacity - 1,
            probe: probe.clamp(1, capacity),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The linear-probe window length.
    pub fn probe(&self) -> usize {
        self.probe
    }

    /// Looks `key` up under its (caller-computed) `hash`.
    pub fn get(&self, hash: u64, key: &K) -> Option<V> {
        let base = hash as usize;
        for i in 0..self.probe {
            if let Some((k, v)) = &self.slots[(base + i) & self.mask] {
                if k == key {
                    return Some(*v);
                }
            }
        }
        None
    }

    /// Inserts `key → value`. Reuses the key's existing slot or the first
    /// empty slot in the probe window; if the window is full of other keys,
    /// overwrites its first slot.
    pub fn insert(&mut self, hash: u64, key: K, value: V) {
        let base = hash as usize;
        for i in 0..self.probe {
            let idx = (base + i) & self.mask;
            match &self.slots[idx] {
                Some((k, _)) if *k == key => {
                    self.slots[idx] = Some((key, value));
                    return;
                }
                None => {
                    self.slots[idx] = Some((key, value));
                    return;
                }
                Some(_) => {}
            }
        }
        self.slots[base & self.mask] = Some((key, value));
    }

    /// Empties the cache, keeping its allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::mix64;

    fn h(k: u64) -> u64 {
        mix64(k, 0x5eed)
    }

    #[test]
    fn hit_requires_exact_key_match() {
        let mut c: StationaryCache<u64, u64> = StationaryCache::new(4, 2);
        c.insert(h(1), 1, 100);
        assert_eq!(c.get(h(1), &1), Some(100));
        // Same hash, different key must miss (no false hits).
        assert_eq!(c.get(h(1), &2), None);
    }

    #[test]
    fn collision_overwrites_deterministically() {
        // A 1-slot table with probe 1: every insert lands in slot 0.
        let mut c: StationaryCache<u64, u64> = StationaryCache::new(0, 1);
        assert_eq!(c.capacity(), 1);
        c.insert(h(1), 1, 10);
        c.insert(h(2), 2, 20);
        // Key 1 was evicted; key 2 is served; neither is ever wrong.
        assert_eq!(c.get(h(1), &1), None);
        assert_eq!(c.get(h(2), &2), Some(20));
    }

    #[test]
    fn probe_window_holds_colliding_keys() {
        let mut c: StationaryCache<u64, u64> = StationaryCache::new(4, 4);
        // Force all keys into the same base slot.
        for k in 0..4u64 {
            c.insert(0, k, k * 10);
        }
        for k in 0..4u64 {
            assert_eq!(c.get(0, &k), Some(k * 10), "key {k}");
        }
        // A fifth colliding key overwrites the window's first slot only.
        c.insert(0, 99, 990);
        assert_eq!(c.get(0, &99), Some(990));
        assert_eq!(c.get(0, &0), None, "window head was evicted");
        assert_eq!(c.get(0, &1), Some(10));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c: StationaryCache<u64, u64> = StationaryCache::new(3, 2);
        c.insert(h(5), 5, 1);
        c.insert(h(5), 5, 2);
        assert_eq!(c.get(h(5), &5), Some(2));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut c: StationaryCache<u64, u64> = StationaryCache::new(3, 2);
        c.insert(h(5), 5, 1);
        c.clear();
        assert_eq!(c.get(h(5), &5), None);
        assert_eq!(c.capacity(), 8);
    }
}
