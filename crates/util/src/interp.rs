//! Clamped bilinear interpolation over anchor grids.
//!
//! The flash error-model calibration (DESIGN.md §5) pins the paper's measured
//! values at a handful of (P/E-cycle, retention-month) anchor points and
//! interpolates between them; outside the anchored range the grid clamps to the
//! boundary, which mirrors how the paper's own lookup-table MQSim extension
//! behaves for unprofiled conditions.

use serde::{Deserialize, Serialize};

/// A 2-D anchor grid with strictly increasing axes and bilinear interpolation.
///
/// # Example
///
/// ```
/// use rr_util::interp::Grid2;
/// let g = Grid2::new(
///     vec![0.0, 1.0],           // x axis
///     vec![0.0, 10.0],          // y axis
///     vec![vec![0.0, 10.0],     // values[x][y]
///          vec![1.0, 11.0]],
/// ).expect("valid grid");
/// assert_eq!(g.at(0.5, 5.0), 5.5);
/// assert_eq!(g.at(-1.0, -1.0), 0.0); // clamped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2 {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// `values[i][j]` is the value at `(xs[i], ys[j])`.
    values: Vec<Vec<f64>>,
}

impl Grid2 {
    /// Builds a grid from axes and a row-major value matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GridError`] if an axis has fewer than 2 points, is not
    /// strictly increasing, contains non-finite values, or the value matrix
    /// shape does not match the axes.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, values: Vec<Vec<f64>>) -> Result<Self, GridError> {
        Self::check_axis(&xs)?;
        Self::check_axis(&ys)?;
        if values.len() != xs.len() {
            return Err(GridError::ShapeMismatch);
        }
        for row in &values {
            if row.len() != ys.len() {
                return Err(GridError::ShapeMismatch);
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GridError::NonFiniteValue);
            }
        }
        Ok(Self { xs, ys, values })
    }

    fn check_axis(axis: &[f64]) -> Result<(), GridError> {
        if axis.len() < 2 {
            return Err(GridError::AxisTooShort);
        }
        if axis.iter().any(|v| !v.is_finite()) {
            return Err(GridError::NonFiniteValue);
        }
        if axis.windows(2).any(|w| w[0] >= w[1]) {
            return Err(GridError::AxisNotIncreasing);
        }
        Ok(())
    }

    /// Bilinearly interpolated value at `(x, y)`, clamped to the grid hull.
    pub fn at(&self, x: f64, y: f64) -> f64 {
        let (i, tx) = Self::locate(&self.xs, x);
        let (j, ty) = Self::locate(&self.ys, y);
        let v00 = self.values[i][j];
        let v01 = self.values[i][j + 1];
        let v10 = self.values[i + 1][j];
        let v11 = self.values[i + 1][j + 1];
        let a = v00 + (v01 - v00) * ty;
        let b = v10 + (v11 - v10) * ty;
        a + (b - a) * tx
    }

    /// Locates `x` on `axis`: returns the lower cell index and the in-cell
    /// fraction, clamping out-of-range queries to the boundary.
    fn locate(axis: &[f64], x: f64) -> (usize, f64) {
        if x <= axis[0] {
            return (0, 0.0);
        }
        let last = axis.len() - 1;
        if x >= axis[last] {
            return (last - 1, 1.0);
        }
        // partition_point: first index with axis[idx] > x; x is in cell idx-1.
        let hi = axis.partition_point(|&a| a <= x);
        let i = hi - 1;
        let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
        (i, t)
    }

    /// The x-axis anchors.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-axis anchors.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Errors from [`Grid2::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// An axis needs at least two anchor points.
    AxisTooShort,
    /// Axis values must be strictly increasing.
    AxisNotIncreasing,
    /// Axis or grid values must be finite.
    NonFiniteValue,
    /// The value matrix shape must match the axes.
    ShapeMismatch,
}

impl core::fmt::Display for GridError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            GridError::AxisTooShort => "axis needs at least two anchor points",
            GridError::AxisNotIncreasing => "axis values must be strictly increasing",
            GridError::NonFiniteValue => "grid values must be finite",
            GridError::ShapeMismatch => "value matrix shape must match axes",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for GridError {}

/// Linear interpolation over a 1-D anchor table, clamped at the ends.
///
/// # Example
///
/// ```
/// use rr_util::interp::lerp_table;
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 10.0, 40.0];
/// assert_eq!(lerp_table(&xs, &ys, 1.5), 25.0);
/// assert_eq!(lerp_table(&xs, &ys, 9.0), 40.0);
/// ```
///
/// # Panics
///
/// Panics if the tables are empty or of different lengths.
pub fn lerp_table(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert!(
        !xs.is_empty() && xs.len() == ys.len(),
        "tables must be equal-length and non-empty"
    );
    if x <= xs[0] {
        return ys[0];
    }
    let last = xs.len() - 1;
    if x >= xs[last] {
        return ys[last];
    }
    let hi = xs.partition_point(|&a| a <= x);
    let i = hi - 1;
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    ys[i] + (ys[i + 1] - ys[i]) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_grid() -> Grid2 {
        Grid2::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 3.0, 6.0, 12.0],
            vec![
                vec![0.0, 4.5, 7.0, 11.0],
                vec![1.5, 9.0, 12.0, 16.5],
                vec![3.0, 12.5, 16.0, 19.9],
            ],
        )
        .unwrap()
    }

    #[test]
    fn hits_anchors_exactly() {
        let g = demo_grid();
        assert_eq!(g.at(0.0, 0.0), 0.0);
        assert_eq!(g.at(2.0, 12.0), 19.9);
        assert_eq!(g.at(1.0, 6.0), 12.0);
    }

    #[test]
    fn interpolates_between_anchors() {
        let g = demo_grid();
        // Midpoint in y between (0,3)=4.5 and (0,6)=7.0.
        assert!((g.at(0.0, 4.5) - 5.75).abs() < 1e-12);
        // Midpoint in x between (1,12)=16.5 and (2,12)=19.9.
        assert!((g.at(1.5, 12.0) - 18.2).abs() < 1e-12);
    }

    #[test]
    fn clamps_outside_hull() {
        let g = demo_grid();
        assert_eq!(g.at(-5.0, -5.0), 0.0);
        assert_eq!(g.at(99.0, 99.0), 19.9);
        assert_eq!(g.at(0.5, 99.0), g.at(0.5, 12.0));
    }

    #[test]
    fn rejects_malformed_grids() {
        assert_eq!(
            Grid2::new(vec![0.0], vec![0.0, 1.0], vec![vec![0.0, 0.0]]).unwrap_err(),
            GridError::AxisTooShort
        );
        assert_eq!(
            Grid2::new(vec![1.0, 0.0], vec![0.0, 1.0], vec![vec![0.0; 2]; 2]).unwrap_err(),
            GridError::AxisNotIncreasing
        );
        assert_eq!(
            Grid2::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![vec![0.0; 2]]).unwrap_err(),
            GridError::ShapeMismatch
        );
        assert_eq!(
            Grid2::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![vec![f64::NAN; 2]; 2]).unwrap_err(),
            GridError::NonFiniteValue
        );
    }

    #[test]
    fn lerp_table_basics() {
        let xs = [0.0, 10.0];
        let ys = [100.0, 200.0];
        assert_eq!(lerp_table(&xs, &ys, 5.0), 150.0);
        assert_eq!(lerp_table(&xs, &ys, -1.0), 100.0);
        assert_eq!(lerp_table(&xs, &ys, 11.0), 200.0);
    }
}
