//! # rr-util — deterministic foundations for the read-retry reproduction
//!
//! This crate provides the small, dependency-free building blocks shared by every
//! other crate in the workspace:
//!
//! * [`rng`] — a deterministic, splittable pseudo-random number generator
//!   (SplitMix64 seeding a xoshiro256++ core). Every figure in the paper
//!   reproduction must be bit-for-bit reproducible from a seed, which is why we do
//!   not use OS entropy anywhere.
//! * [`dist`] — samplers needed by the flash error model and the workload
//!   generators: normal / truncated normal, Zipf, Poisson-process arrivals.
//! * [`stats`] — online statistics (Welford), percentile tracking, and fixed-width
//!   histograms used by the simulator's metrics and the characterization figures.
//! * [`time`] — [`time::SimTime`], a nanosecond-resolution fixed-point simulated
//!   clock, and duration helpers matching the paper's µs-scale timing parameters.
//! * [`interp`] — clamped bilinear interpolation over anchor grids; the flash
//!   error-model calibration (DESIGN.md §5) is expressed as anchor grids over
//!   (P/E cycles × retention months).
//! * [`cache`] — a deterministic open-addressed memo table for pure-function
//!   results (the flash error model's per-page profile cache sits on it).
//! * [`codec`] — a versioned, checksummed binary writer/reader for on-disk
//!   artifacts (device images); the workspace has no real serde, so framing
//!   and corruption rejection are explicit here.
//!
//! # Example
//!
//! ```
//! use rr_util::rng::Rng;
//! use rr_util::dist::Zipf;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let zipf = Zipf::new(1000, 0.99).expect("valid parameters");
//! let key = zipf.sample(&mut rng);
//! assert!(key < 1000);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod dist;
pub mod interp;
pub mod rng;
pub mod stats;
pub mod time;

pub use rng::Rng;
pub use time::SimTime;
