//! Probability distributions used by the error model and workload generators.
//!
//! Everything here samples from an explicit [`Rng`] so that the
//! whole reproduction stays deterministic under a single seed.

use crate::rng::Rng;

/// A normal (Gaussian) distribution sampled with the Marsaglia polar method.
///
/// # Example
///
/// ```
/// use rr_util::{rng::Rng, dist::Normal};
/// let mut rng = Rng::seed_from_u64(1);
/// let n = Normal::new(10.0, 2.0).expect("sigma must be non-negative");
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParam`] if `sigma` is negative or either
    /// parameter is not finite.
    pub fn new(mean: f64, sigma: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(DistError::InvalidParam(
                "normal requires finite mean and sigma >= 0",
            ));
        }
        Ok(Self { mean, sigma })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.sigma * standard_normal(rng)
    }

    /// Draws one sample truncated (by rejection) to `mean ± k·sigma`.
    ///
    /// The flash error model uses this to keep per-page noise within a bounded
    /// envelope (the paper's "outlier pages" are handled by an explicit safety
    /// margin, not by unbounded tails).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    pub fn sample_truncated(&self, rng: &mut Rng, k: f64) -> f64 {
        assert!(k > 0.0, "truncation width must be positive");
        if self.sigma == 0.0 {
            return self.mean;
        }
        loop {
            let z = standard_normal(rng);
            if z.abs() <= k {
                return self.mean + self.sigma * z;
            }
        }
    }
}

/// One standard-normal variate via the Marsaglia polar method.
pub fn standard_normal(rng: &mut Rng) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A Zipf distribution over `0..n` with exponent `theta` (YCSB's default is
/// `theta = 0.99`), sampled with the Gray/Jain rejection-inversion-free method
/// used by the original YCSB `ZipfianGenerator`.
///
/// Item `0` is the most popular.
///
/// # Example
///
/// ```
/// use rr_util::{rng::Rng, dist::Zipf};
/// let mut rng = Rng::seed_from_u64(5);
/// let z = Zipf::new(100, 0.99).expect("valid parameters");
/// // Rank 0 should be sampled far more often than rank 99.
/// let mut hits0 = 0;
/// for _ in 0..1000 { if z.sample(&mut rng) == 0 { hits0 += 1; } }
/// assert!(hits0 > 50);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParam`] if `n == 0`, or `theta` is not in
    /// `(0, 1)` ∪ `(1, ∞)` (YCSB's algorithm excludes exactly 1.0).
    pub fn new(n: u64, theta: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::InvalidParam("zipf requires n > 0"));
        }
        if !theta.is_finite() || theta <= 0.0 || (theta - 1.0).abs() < 1e-9 {
            return Err(DistError::InvalidParam(
                "zipf requires finite theta > 0, theta != 1",
            ));
        }
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Ok(Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        })
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For the sizes used here (≤ a few million) the direct sum is fine and
        // exact; it is computed once per generator.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The population size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent theta.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        let rank = (self.n as f64 * spread) as u64;
        rank.min(self.n - 1)
    }

    // `zeta2` participates in `eta` above; exposing it keeps the struct fields
    // honest for debugging without a dead-code carve-out.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Exponentially distributed inter-arrival times: a Poisson arrival process.
///
/// # Example
///
/// ```
/// use rr_util::{rng::Rng, dist::Exponential};
/// let mut rng = Rng::seed_from_u64(2);
/// let e = Exponential::new(1000.0).expect("rate must be positive"); // 1000 events/s
/// let dt = e.sample(&mut rng);
/// assert!(dt > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with `rate` events per unit time.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParam`] if `rate` is not strictly positive.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(DistError::InvalidParam("exponential requires rate > 0"));
        }
        Ok(Self { rate })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one inter-arrival time (same unit as `1/rate`).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; `1 - u` avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.rate
    }
}

/// A discrete distribution sampled by inverse CDF over explicit weights.
///
/// Used for workload op mixes (e.g. YCSB-A: 50 % read / 50 % update).
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Builds a discrete distribution from non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParam`] if `weights` is empty, contains a
    /// negative or non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, DistError> {
        if weights.is_empty() {
            return Err(DistError::InvalidParam(
                "discrete requires at least one weight",
            ));
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(DistError::InvalidParam(
                    "discrete weights must be finite and >= 0",
                ));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(DistError::InvalidParam(
                "discrete weights must not sum to zero",
            ));
        }
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|&w| {
                acc += w / total;
                acc
            })
            .collect();
        Ok(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has zero categories (never true post-`new`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Error type for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistError {
    /// A constructor argument was out of the distribution's domain.
    InvalidParam(&'static str),
}

impl core::fmt::Display for DistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DistError::InvalidParam(msg) => write!(f, "invalid distribution parameter: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(8);
        let n = Normal::new(5.0, 2.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        let n = Normal::new(0.0, 1.0).unwrap();
        for _ in 0..5_000 {
            let x = n.sample_truncated(&mut rng, 2.0);
            assert!(x.abs() <= 2.0, "sample {x} outside ±2σ");
        }
    }

    #[test]
    fn zero_sigma_is_degenerate() {
        let mut rng = Rng::seed_from_u64(10);
        let n = Normal::new(3.0, 0.0).unwrap();
        assert_eq!(n.sample(&mut rng), 3.0);
        assert_eq!(n.sample_truncated(&mut rng, 1.0), 3.0);
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = Rng::seed_from_u64(11);
        let z = Zipf::new(1000, 0.99).unwrap();
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            let r = z.sample(&mut rng) as usize;
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Head dominates: rank 0 should beat rank 500 by a wide margin.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Top-10 should get a large share under theta=0.99.
        let top10: u32 = counts[..10].iter().sum();
        assert!(top10 as f64 > 0.15 * 100_000.0, "top10 = {top10}");
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 0.99).is_err());
        assert!(Zipf::new(10, 1.0).is_err());
        assert!(Zipf::new(10, -0.5).is_err());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::seed_from_u64(12);
        let e = Exponential::new(4.0).unwrap();
        let mean = (0..50_000).map(|_| e.sample(&mut rng)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn discrete_frequencies_match_weights() {
        let mut rng = Rng::seed_from_u64(13);
        let d = Discrete::new(&[1.0, 3.0]).unwrap();
        let mut c = [0u32; 2];
        for _ in 0..40_000 {
            c[d.sample(&mut rng)] += 1;
        }
        let frac = c[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn discrete_rejects_bad_weights() {
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[0.0, 0.0]).is_err());
        assert!(Discrete::new(&[-1.0, 2.0]).is_err());
    }
}
