//! Property-based tests for the util crate's invariants.

use proptest::prelude::*;
use rr_util::dist::{Discrete, Exponential, Normal, Zipf};
use rr_util::interp::{lerp_table, Grid2};
use rr_util::rng::{unit_hash, Rng as SimRng};
use rr_util::stats::{Histogram, OnlineStats, Percentiles};
use rr_util::time::SimTime;

/// Definition-based nearest-rank reference: the smallest sample whose
/// cumulative relative frequency is at least `q`.
fn naive_nearest_rank(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len() as f64;
    for &x in &sorted {
        let cumulative = sorted.iter().filter(|&&y| y <= x).count() as f64;
        // Same f64-representation-error epsilon as the implementation: the
        // exact product q·n can land an ULP above its true value.
        if cumulative >= q * n - 1e-9 {
            return x;
        }
    }
    *sorted.last().expect("non-empty input")
}

proptest! {
    #[test]
    fn quantile_matches_naive_nearest_rank(
        xs in prop::collection::vec(-1e6f64..1e6, 1..120),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let mut p = Percentiles::new();
        for &x in &xs {
            p.push(x);
        }
        for &q in &qs {
            let expected = naive_nearest_rank(&xs, q);
            prop_assert_eq!(p.quantile(q), Some(expected), "q = {}", q);
        }
        // The fixed summary quantiles obey the same reference.
        let s = p.summary();
        prop_assert_eq!(s.p50, Some(naive_nearest_rank(&xs, 0.50)));
        prop_assert_eq!(s.p999, Some(naive_nearest_rank(&xs, 0.999)));
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn forked_streams_match_for_equal_ids(seed in any::<u64>(), id in any::<u64>()) {
        let root = SimRng::seed_from_u64(seed);
        let mut a = root.fork(id);
        let mut b = root.fork(id);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_hash_is_in_unit_interval(s in any::<u64>(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let v = unit_hash(s, a, b, c);
        prop_assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn zipf_samples_in_range(n in 1u64..10_000, seed in any::<u64>()) {
        let z = Zipf::new(n, 0.99).expect("valid parameters");
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn normal_truncation_honoured(mean in -100.0f64..100.0, sigma in 0.0f64..50.0, k in 0.5f64..4.0, seed in any::<u64>()) {
        let n = Normal::new(mean, sigma).expect("valid parameters");
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..16 {
            let x = n.sample_truncated(&mut rng, k);
            prop_assert!((x - mean).abs() <= k * sigma + 1e-9);
        }
    }

    #[test]
    fn exponential_samples_positive(rate in 0.001f64..1e6, seed in any::<u64>()) {
        let e = Exponential::new(rate).expect("valid rate");
        let mut rng = SimRng::seed_from_u64(seed);
        prop_assert!(e.sample(&mut rng) >= 0.0);
    }

    #[test]
    fn discrete_sampling_stays_in_bounds(weights in prop::collection::vec(0.01f64..10.0, 1..16), seed in any::<u64>()) {
        let d = Discrete::new(&weights).expect("positive weights");
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(d.sample(&mut rng) < weights.len());
        }
    }

    #[test]
    fn online_stats_mean_within_minmax(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        prop_assert!(s.mean() >= s.min() - 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn stats_merge_matches_sequential(xs in prop::collection::vec(-1e3f64..1e3, 2..100), split in 1usize..50) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i < split { left.push(x); } else { right.push(x); }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-4);
    }

    #[test]
    fn histogram_total_is_conserved(values in prop::collection::vec(0usize..64, 0..200)) {
        let mut h = Histogram::new(32);
        for &v in &values {
            h.record(v);
        }
        let binned: u64 = (0..32).map(|v| h.count(v)).sum();
        prop_assert_eq!(binned + h.overflow(), values.len() as u64);
        prop_assert!((0.0..=1.0).contains(&h.fraction_at_least(10)));
    }

    #[test]
    fn grid_interpolation_bounded_by_values(
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
        v in prop::collection::vec(0.0f64..100.0, 4),
    ) {
        let g = Grid2::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![vec![v[0], v[1]], vec![v[2], v[3]]])
            .expect("valid grid");
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let z = g.at(x, y);
        prop_assert!(z >= lo - 1e-9 && z <= hi + 1e-9, "{z} outside [{lo}, {hi}]");
    }

    #[test]
    fn lerp_table_clamps(x in -1e3f64..1e3) {
        let v = lerp_table(&[0.0, 10.0], &[5.0, 25.0], x);
        prop_assert!((5.0..=25.0).contains(&v));
    }

    #[test]
    fn simtime_scale_bounded(us in 0u64..1_000_000, f in 0.0f64..1.0) {
        let t = SimTime::from_us(us);
        let s = t.scale(f);
        prop_assert!(s <= t);
    }
}
