//! Channel-sharded execution of a single simulated device.
//!
//! The legacy [`crate::ssd::Ssd`] advances one global event queue; every
//! die, DMA bus and ECC decoder of the device shares it. This module
//! partitions a run along its natural seam — the **channel** — into
//! independent `ChannelCore`s (the channel's dies, its DMA bus, its ECC
//! decoder, its own [`EventQueue`]) coordinated by a single-threaded
//! `Coordinator` that owns everything the channels couple through: the
//! host front end (submission queues, RR/WRR arbiter, admission window,
//! closed-loop credits), the FTL (mapping, striping cursor, free lists,
//! GC victim selection) and the metrics collector.
//!
//! Execution proceeds in conservative time windows. Each barrier the
//! coordinator:
//!
//! 1. drains its own `Arrive` events up to the barrier time `b`,
//!    translating admitted requests into per-channel *inbox items*;
//! 2. computes the next interesting time `t_next` (the minimum over its
//!    own queue, every core's queue, and `b` itself when undelivered
//!    inbox items exist) and sets the next barrier `b' = t_next + W`
//!    with `W =` [`SHARD_WINDOW_US`];
//! 3. snapshots the cross-shard state cores consult mid-window (plane
//!    criticality, the QueueShield busy flag);
//! 4. runs every core's window `(b, b']` — sequentially or on worker
//!    threads, the results are identical either way;
//! 5. merges the cores' emitted *records* (read/write/GC completions,
//!    GC stall attributions) into the canonical `(time, channel)` order
//!    and applies them, interleaved with its own `Arrive` events in
//!    time order.
//!
//! Because the core/coordinator split is **fixed per channel** — the
//! worker count only decides which thread executes a core's window, and
//! windows of one barrier never touch shared state — a run's result is
//! invariant to `--shards N`: `N = 4` is bit-identical to `N = 1`
//! (`tests/hotpath_equiv.rs` pins this). The sharded engine's results
//! are *not* bit-wise comparable to the legacy serial engine: admission
//! and GC spawns quantize to barriers (at most `W` of added latency per
//! cross-shard hop), and criticality/shield state is sampled at barrier
//! granularity. The two engines therefore report under separate
//! perf-gate comparability keys.

use crate::config::SsdConfig;
use crate::event::EventQueue;
use crate::ftl::{Ftl, Ppn, PpnLocation};
use crate::gc::{GcPolicy, GcThrottle};
use crate::hostq::{FrontEnd, HostQueueConfig};
use crate::metrics::{LatencySamples, MetricsCollector, SimReport};
use crate::readflow::{Actions, ReadAction, ReadContext, RetryController};
use crate::request::{HostRequest, IoOp, ReqId, TxnId, TxnKind};
use crate::scheduler::{ChannelState, DieJob, DieState, QueuedOp, Transfer};
use crate::snapshot::DeviceImage;
use rr_flash::calibration::OperatingCondition;
use rr_flash::error_model::{ErrorModel, PageId};
use rr_util::time::SimTime;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

/// Width of the conservative synchronization window, in microseconds.
///
/// Derived from the minimum cross-shard interaction latency: the fastest
/// path from a coordinator decision to a device-visible consequence goes
/// through one channel DMA transfer (tDMA = 16 µs in Table 1), so
/// events inside one window cannot affect another shard within it.
pub const SHARD_WINDOW_US: u64 = 16;

/// How many worker threads a sharded run should use when an experiment
/// runs `jobs` matrix cells concurrently: the machine's available
/// parallelism split across the cell workers, clamped to `[1, shards]`.
pub fn worker_budget(shards: u32, jobs: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (avail / jobs.max(1)).clamp(1, shards.max(1) as usize)
}

/// Events inside one channel core. The channel index is implicit (one
/// DMA bus and one decoder per core), so only die completions carry an
/// index — the die's position within the chip.
// Named after the `scheduler::Event` variants they mirror.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy)]
enum CoreEvent {
    DieDone { die: u32, gen: u64 },
    TransferDone,
    EccDone,
}

/// Work the coordinator hands a core at a barrier. GC items carry the
/// global job index; the core tracks the job's preemption budget locally
/// (a GC job's moves, writes and erase all live on the victim plane's
/// die, hence on one channel).
#[derive(Debug)]
enum InboxItem {
    HostRead {
        req: ReqId,
        queue: u16,
        lpn: u64,
        loc: PpnLocation,
        condition: OperatingCondition,
        cold: bool,
    },
    HostWrite {
        req: ReqId,
        lpn: u64,
        loc: PpnLocation,
    },
    GcRead {
        job: u32,
        lpn: u64,
        src: Ppn,
        loc: PpnLocation,
        condition: OperatingCondition,
        cold: bool,
    },
    GcWrite {
        job: u32,
        lpn: u64,
        loc: PpnLocation,
    },
    GcErase {
        job: u32,
        loc: PpnLocation,
    },
}

/// What a core reports back to the coordinator, stamped with the core's
/// simulation time at emission. Per-core record streams are time-sorted
/// by construction; the coordinator merges them in `(time, channel)`
/// order, which is the canonical total order for any worker count.
#[derive(Debug, Clone, Copy)]
struct Record {
    time: SimTime,
    kind: RecordKind,
}

#[derive(Debug, Clone, Copy)]
enum RecordKind {
    ReadDone {
        req: ReqId,
        senses: u32,
        failed: bool,
    },
    WriteDone {
        req: ReqId,
    },
    GcReadDone {
        job: u32,
        lpn: u64,
        src: Ppn,
    },
    GcWriteDone {
        job: u32,
    },
    GcEraseDone {
        job: u32,
    },
    GcSuspension {
        queue: u16,
        forced: bool,
    },
    GcWait {
        queue: u16,
        stall_us: f64,
    },
}

/// Cross-shard state a core consults mid-window, sampled once per
/// barrier by the coordinator: per-plane criticality (local plane index
/// `die_in_chip * planes_per_die + plane`) and whether the QueueShield
/// policy's shielded queue currently has reads outstanding.
#[derive(Debug, Clone, Default)]
struct BarrierSnapshot {
    plane_critical: Vec<bool>,
    shield_busy: bool,
}

/// A core's answer for one window: the records it emitted and the time
/// of its next pending event (for the coordinator's barrier placement).
#[derive(Debug)]
struct WindowOut {
    records: Vec<Record>,
    peek: Option<SimTime>,
}

/// Per-core flash transaction — the sharded mirror of the legacy
/// engine's transaction record, plus the host queue (for suspension
/// attribution) and globally-indexed GC bookkeeping.
#[derive(Debug)]
struct CoreTxn {
    kind: TxnKind,
    req: Option<ReqId>,
    queue: u16,
    lpn: u64,
    loc: PpnLocation,
    ctx: Option<ReadContext>,
    sensed: Vec<(u32, u32)>,
    senses: u32,
    finished: bool,
    pending_io: u32,
    gc_src: Option<Ppn>,
    gc_job: Option<u32>,
}

/// Recycled per-channel buffers of a [`ShardArena`].
#[derive(Debug, Default)]
struct CoreArena {
    dies: Vec<DieState>,
    chan: Option<ChannelState>,
    events: EventQueue<CoreEvent>,
    txns: Vec<CoreTxn>,
    free_txns: Vec<u32>,
}

/// Reusable buffers for sharded runs — the sharded counterpart of
/// [`crate::ssd::SimArena`]: the FTL's mapping tables, the coordinator's
/// arrival queue and request table, and each channel core's die/channel
/// slabs, event queue and transaction pool survive across runs.
///
/// Runs through an arena are bit-identical to fresh-arena runs; every
/// buffer is reset to its pristine observable state before reuse.
#[derive(Debug, Default)]
pub struct ShardArena {
    ftl: Option<Ftl>,
    events: EventQueue<ReqId>,
    reqs: Vec<CoordReq>,
    cores: Vec<CoreArena>,
}

impl ShardArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Coordinator-side request state (mirror of the legacy engine's).
#[derive(Debug)]
struct CoordReq {
    op: IoOp,
    lpn: u64,
    arrival: SimTime,
    queue: u16,
    remaining: u32,
    retried: bool,
    /// Trace index, reconstructed as in the legacy engine (`queue + queues
    /// * seq`): the redundancy merge keys on it.
    index: u32,
}

/// Coordinator-side GC job accounting. The per-job preemption budget is
/// spent core-side (suspension decisions happen mid-window).
#[derive(Debug)]
struct CoordGcJob {
    victim_block: u32,
    plane: u32,
    remaining_moves: u32,
    erase_issued: bool,
}

// ---- the per-channel core --------------------------------------------------

struct ChannelCore {
    cfg: Arc<SsdConfig>,
    model: ErrorModel,
    controller: Box<dyn RetryController + Send>,
    events: EventQueue<CoreEvent>,
    now: SimTime,
    /// This channel's dies, indexed by `die_in_chip`.
    dies: Vec<DieState>,
    chan: ChannelState,
    txns: Vec<CoreTxn>,
    free_txns: Vec<u32>,
    /// Global GC job index → read preemptions the job may still absorb.
    gc_budgets: HashMap<u32, u32>,
    records: Vec<Record>,
    snapshot: BarrierSnapshot,
    max_step: u32,
    slab_reuse: bool,
    events_processed: u64,
    senses: u64,
    resets: u64,
    set_features: u64,
    suspensions: u64,
}

impl ChannelCore {
    fn emit(&mut self, kind: RecordKind) {
        self.records.push(Record {
            time: self.now,
            kind,
        });
    }

    /// Runs one conservative window `(lo, hi]`: adopt the barrier
    /// snapshot, absorb the inbox at `lo`, then pop local events up to
    /// `hi`. Returns the emitted records and the next pending time.
    fn run_window(
        &mut self,
        lo: SimTime,
        hi: SimTime,
        inbox: Vec<InboxItem>,
        snapshot: BarrierSnapshot,
    ) -> WindowOut {
        self.snapshot = snapshot;
        if self.now < lo {
            self.now = lo;
        }
        for item in inbox {
            self.handle_inbox(item);
        }
        while self.events.peek_time().is_some_and(|t| t <= hi) {
            let (t, ev) = self.events.pop().expect("peeked event");
            self.now = t;
            self.events_processed += 1;
            match ev {
                CoreEvent::DieDone { die, gen } => self.handle_die_done(die, gen),
                CoreEvent::TransferDone => self.handle_transfer_done(),
                CoreEvent::EccDone => self.handle_ecc_done(),
            }
        }
        WindowOut {
            records: std::mem::take(&mut self.records),
            peek: self.events.peek_time(),
        }
    }

    fn handle_inbox(&mut self, item: InboxItem) {
        match item {
            InboxItem::HostRead {
                req,
                queue,
                lpn,
                loc,
                condition,
                cold,
            } => {
                let txn = self.new_txn(TxnKind::HostRead, Some(req), queue, lpn, loc, None, None);
                let ctx = ReadContext {
                    txn,
                    die: loc.die_global,
                    condition,
                    cold,
                    max_step: self.max_step,
                };
                self.txns[txn.0 as usize].ctx = Some(ctx);
                self.enqueue_read(txn, loc.die_in_chip);
            }
            InboxItem::HostWrite { req, lpn, loc } => {
                let txn = self.new_txn(TxnKind::HostWrite, Some(req), 0, lpn, loc, None, None);
                self.dies[loc.die_in_chip as usize].p2.push_back(txn);
                self.pump_die(loc.die_in_chip);
            }
            InboxItem::GcRead {
                job,
                lpn,
                src,
                loc,
                condition,
                cold,
            } => {
                let budget = self.cfg.gc_policy.job_preempt_budget();
                self.gc_budgets.entry(job).or_insert(budget);
                let txn = self.new_txn(TxnKind::GcRead, None, 0, lpn, loc, Some(src), Some(job));
                let ctx = ReadContext {
                    txn,
                    die: loc.die_global,
                    condition,
                    cold,
                    max_step: self.max_step,
                };
                self.txns[txn.0 as usize].ctx = Some(ctx);
                self.enqueue_read(txn, loc.die_in_chip);
            }
            InboxItem::GcWrite { job, lpn, loc } => {
                let budget = self.cfg.gc_policy.job_preempt_budget();
                self.gc_budgets.entry(job).or_insert(budget);
                let txn = self.new_txn(TxnKind::GcWrite, None, 0, lpn, loc, None, Some(job));
                self.dies[loc.die_in_chip as usize].p2.push_back(txn);
                self.pump_die(loc.die_in_chip);
            }
            InboxItem::GcErase { job, loc } => {
                let budget = self.cfg.gc_policy.job_preempt_budget();
                self.gc_budgets.entry(job).or_insert(budget);
                let txn = self.new_txn(TxnKind::GcErase, None, 0, 0, loc, None, Some(job));
                self.dies[loc.die_in_chip as usize].p2.push_back(txn);
                self.pump_die(loc.die_in_chip);
            }
        }
    }

    /// Allocates a transaction record, preferring a recycled slot (whose
    /// sense buffer is kept, cleared) over growing the slab.
    #[allow(clippy::too_many_arguments)]
    fn new_txn(
        &mut self,
        kind: TxnKind,
        req: Option<ReqId>,
        queue: u16,
        lpn: u64,
        loc: PpnLocation,
        gc_src: Option<Ppn>,
        gc_job: Option<u32>,
    ) -> TxnId {
        let mut state = CoreTxn {
            kind,
            req,
            queue,
            lpn,
            loc,
            ctx: None,
            sensed: Vec::new(),
            senses: 0,
            finished: false,
            pending_io: 0,
            gc_src,
            gc_job,
        };
        if let Some(i) = self.free_txns.pop() {
            let slot = &mut self.txns[i as usize];
            let mut sensed = std::mem::take(&mut slot.sensed);
            sensed.clear();
            state.sensed = sensed;
            *slot = state;
            TxnId(i)
        } else {
            let id = TxnId(self.txns.len() as u32);
            self.txns.push(state);
            id
        }
    }

    fn maybe_recycle(&mut self, txn: TxnId) {
        if !self.slab_reuse {
            return;
        }
        let t = &self.txns[txn.0 as usize];
        if !t.finished || t.pending_io != 0 {
            return;
        }
        if self.dies[t.loc.die_in_chip as usize].owner == Some(txn) {
            return;
        }
        self.free_txns.push(txn.0);
    }

    fn enqueue_read(&mut self, txn: TxnId, die: u32) {
        self.dies[die as usize].p1.push_back(txn);
        self.maybe_suspend(die, txn);
        self.record_gc_wait_if_blocked(die, txn);
        self.pump_die(die);
    }

    /// Suspend an in-flight program/erase because `reader` is waiting.
    /// Mirrors the legacy rule set; the GC job's preemption budget lives
    /// in `gc_budgets` (shipped with the job's first inbox item).
    fn maybe_suspend(&mut self, die_idx: u32, reader: TxnId) {
        let min_benefit = SimTime::from_us(self.cfg.min_suspend_benefit_us);
        let t_suspend = self.cfg.timings.t_suspend;
        let gc_job = match self.dies[die_idx as usize].job {
            Some(DieJob::Program {
                txn,
                data_loaded: true,
            })
            | Some(DieJob::Erase { txn }) => self.txns[txn.0 as usize].gc_job,
            _ => None,
        };
        let reader_queue = self.txns[reader.0 as usize]
            .req
            .map(|_| self.txns[reader.0 as usize].queue);
        let mut benefit_floor = min_benefit;
        let mut forced = false;
        if let Some(job) = gc_job {
            match self.cfg.gc_policy {
                GcPolicy::Greedy | GcPolicy::WindowedTokens { .. } => {}
                GcPolicy::ReadPreempt { .. } => {
                    if reader_queue.is_some() {
                        if self.gc_budgets.get(&job).copied().unwrap_or(0) > 0 {
                            benefit_floor = SimTime::ZERO;
                            forced = true;
                        } else {
                            return;
                        }
                    }
                }
                GcPolicy::QueueShield { queue } => {
                    if reader_queue == Some(queue) {
                        benefit_floor = SimTime::ZERO;
                        forced = true;
                    }
                }
            }
        }
        let now = self.now;
        let die = &mut self.dies[die_idx as usize];
        if let Some(gen) = die.try_suspend(now, benefit_floor, t_suspend) {
            let at = die.busy_until;
            self.events
                .push(at, CoreEvent::DieDone { die: die_idx, gen });
            self.suspensions += 1;
            if let Some(job) = gc_job {
                if forced {
                    if let Some(left) = self.gc_budgets.get_mut(&job) {
                        *left = left.saturating_sub(1);
                    }
                }
                if let Some(queue) = reader_queue {
                    self.emit(RecordKind::GcSuspension { queue, forced });
                }
            }
        }
    }

    fn record_gc_wait_if_blocked(&mut self, die_idx: u32, reader: TxnId) {
        if self.txns[reader.0 as usize].req.is_none() {
            return;
        }
        let die = &self.dies[die_idx as usize];
        let blocking_gc = match die.job {
            Some(
                DieJob::Sense { txn, .. }
                | DieJob::SetFeature { txn }
                | DieJob::Reset { txn }
                | DieJob::Program { txn, .. }
                | DieJob::Erase { txn },
            ) => !self.txns[txn.0 as usize].kind.is_host(),
            Some(DieJob::Suspending) | None => false,
        };
        if !blocking_gc {
            return;
        }
        let residual = if die.busy_until == SimTime::MAX {
            0.0
        } else {
            die.busy_until.saturating_sub(self.now).as_us_f64()
        };
        let queue = self.txns[reader.0 as usize].queue;
        self.emit(RecordKind::GcWait {
            queue,
            stall_us: residual,
        });
    }

    fn die_has_critical_plane(&self, die_idx: u32) -> bool {
        let ppd = self.cfg.chip.planes_per_die;
        (0..ppd).any(|p| self.snapshot.plane_critical[(die_idx * ppd + p) as usize])
    }

    fn pump_die(&mut self, die_idx: u32) {
        loop {
            let die = &self.dies[die_idx as usize];
            if !die.idle() {
                return;
            }
            if let Some(&(txn, op)) = self.dies[die_idx as usize].p0.front() {
                debug_assert_eq!(
                    self.dies[die_idx as usize].owner,
                    Some(txn),
                    "P0 ops always belong to the die owner"
                );
                self.dies[die_idx as usize].p0.pop_front();
                self.start_queued_op(die_idx, txn, op);
                return;
            }
            if self.dies[die_idx as usize].owner.is_some() {
                return;
            }
            if let Some(txn) = self.dies[die_idx as usize].p1.pop_front() {
                self.dies[die_idx as usize].owner = Some(txn);
                let ctx = self.txns[txn.0 as usize]
                    .ctx
                    .expect("reads carry a context");
                let actions = self.controller.on_start(&ctx);
                self.execute_actions(txn, actions);
                continue;
            }
            if let Some(gen) = self.dies[die_idx as usize].resume(self.now) {
                let at = self.dies[die_idx as usize].busy_until;
                self.events
                    .push(at, CoreEvent::DieDone { die: die_idx, gen });
                return;
            }
            if self.dies[die_idx as usize].p2.is_empty() {
                return;
            }
            let urgent = self.die_has_critical_plane(die_idx);
            // QueueShield yield decisions consult the barrier snapshot:
            // `shield_busy` was sampled by the coordinator at window start.
            let shield_yields = !urgent && self.snapshot.shield_busy;
            let txn = {
                let Self { dies, txns, .. } = self;
                let p2 = &mut dies[die_idx as usize].p2;
                let promoted = if urgent {
                    p2.pop_first_where(|&t| !txns[t.0 as usize].kind.is_host())
                } else if shield_yields {
                    p2.pop_first_where(|&t| txns[t.0 as usize].kind.is_host())
                } else {
                    None
                };
                promoted
                    .or_else(|| p2.pop_front())
                    .expect("P2 checked non-empty")
            };
            self.start_p2_txn(die_idx, txn);
            return;
        }
    }

    fn start_queued_op(&mut self, die_idx: u32, txn: TxnId, op: QueuedOp) {
        match op {
            QueuedOp::Sense { step } => {
                let loc = self.txns[txn.0 as usize].loc;
                let phases = self.dies[die_idx as usize].phases;
                let kind = self.cfg.chip.page_kind(loc.page_in_block);
                let errors = if self.cfg.ideal_no_retry {
                    0
                } else {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("sense on a read");
                    self.model.errors_at_step(
                        PageId::new(loc.block_global, loc.page_in_block),
                        ctx.condition,
                        step,
                        &phases,
                    )
                };
                let t = &mut self.txns[txn.0 as usize];
                t.sensed.push((step, errors));
                t.senses += 1;
                self.senses += 1;
                let until = self.now + phases.t_r(kind);
                let die = &mut self.dies[die_idx as usize];
                let gen = die.begin(DieJob::Sense { txn, step }, until);
                self.events
                    .push(until, CoreEvent::DieDone { die: die_idx, gen });
            }
            QueuedOp::SetFeature { phases } => {
                self.set_features += 1;
                let default = self.cfg.timings.sense;
                let until = self.now + self.cfg.timings.t_set;
                let die = &mut self.dies[die_idx as usize];
                die.phases = phases.unwrap_or(default);
                let gen = die.begin(DieJob::SetFeature { txn }, until);
                self.events
                    .push(until, CoreEvent::DieDone { die: die_idx, gen });
            }
        }
    }

    fn start_p2_txn(&mut self, die_idx: u32, txn: TxnId) {
        let kind = self.txns[txn.0 as usize].kind;
        match kind {
            TxnKind::HostWrite | TxnKind::GcWrite => {
                let die = &mut self.dies[die_idx as usize];
                die.begin(
                    DieJob::Program {
                        txn,
                        data_loaded: false,
                    },
                    SimTime::MAX,
                );
                let t = &mut self.txns[txn.0 as usize];
                t.pending_io += 1;
                self.chan.enqueue_transfer(Transfer {
                    txn,
                    step: None,
                    errors: 0,
                });
                self.pump_channel();
            }
            TxnKind::GcErase => {
                let until = self.now + self.cfg.timings.t_bers;
                let die = &mut self.dies[die_idx as usize];
                let gen = die.begin(DieJob::Erase { txn }, until);
                self.events
                    .push(until, CoreEvent::DieDone { die: die_idx, gen });
            }
            TxnKind::HostRead | TxnKind::GcRead => {
                unreachable!("reads are dispatched from P1, not P2")
            }
        }
    }

    fn handle_die_done(&mut self, die_idx: u32, gen: u64) {
        if self.dies[die_idx as usize].gen != gen {
            return; // cancelled by RESET or suspension
        }
        let job = self.dies[die_idx as usize]
            .job
            .take()
            .expect("DieDone with empty job");
        match job {
            DieJob::Sense { txn, step } => {
                if !self.txns[txn.0 as usize].finished {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("sense on a read");
                    let actions = self.controller.on_sense_done(&ctx, step);
                    self.execute_actions(txn, actions);
                }
            }
            DieJob::SetFeature { txn } => {
                if !self.txns[txn.0 as usize].finished {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("feature on a read");
                    let actions = self.controller.on_feature_applied(&ctx);
                    self.execute_actions(txn, actions);
                }
            }
            DieJob::Reset { txn } => {
                if !self.txns[txn.0 as usize].finished {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("reset on a read");
                    let actions = self.controller.on_reset_done(&ctx);
                    self.execute_actions(txn, actions);
                }
            }
            DieJob::Program { txn, .. } => {
                self.finish_write(txn);
            }
            DieJob::Erase { txn } => {
                let job = self.txns[txn.0 as usize].gc_job.expect("erases are GC ops");
                self.emit(RecordKind::GcEraseDone { job });
                self.gc_budgets.remove(&job);
                self.txns[txn.0 as usize].finished = true;
                self.maybe_recycle(txn);
            }
            DieJob::Suspending => {}
        }
        self.try_release_owner(die_idx);
        self.pump_die(die_idx);
    }

    fn try_release_owner(&mut self, die_idx: u32) {
        let die = &self.dies[die_idx as usize];
        let Some(owner) = die.owner else {
            return;
        };
        if !self.txns[owner.0 as usize].finished {
            return;
        }
        if !die.p0.is_empty() {
            debug_assert!(
                die.p0.iter().all(|&(t, _)| t == owner),
                "P0 held another read's ops"
            );
            return;
        }
        let job_is_owners = match die.job {
            Some(DieJob::Sense { txn, .. })
            | Some(DieJob::SetFeature { txn })
            | Some(DieJob::Reset { txn }) => txn == owner,
            _ => false,
        };
        if job_is_owners {
            return;
        }
        self.dies[die_idx as usize].owner = None;
        self.maybe_recycle(owner);
    }

    fn handle_transfer_done(&mut self) {
        let t = self.chan.end_transfer();
        match t.step {
            Some(_) => {
                self.chan.enqueue_decode(t);
                self.pump_ecc();
            }
            None => {
                let txn_state = &mut self.txns[t.txn.0 as usize];
                debug_assert!(txn_state.pending_io > 0);
                txn_state.pending_io -= 1;
                let die_idx = txn_state.loc.die_in_chip;
                let until = self.now + self.cfg.timings.t_prog;
                let die = &mut self.dies[die_idx as usize];
                debug_assert!(matches!(
                    die.job,
                    Some(DieJob::Program {
                        data_loaded: false,
                        ..
                    })
                ));
                let gen = die.begin(
                    DieJob::Program {
                        txn: t.txn,
                        data_loaded: true,
                    },
                    until,
                );
                self.events
                    .push(until, CoreEvent::DieDone { die: die_idx, gen });
            }
        }
        self.pump_channel();
    }

    fn handle_ecc_done(&mut self) {
        let d = self.chan.end_decode();
        self.pump_ecc();
        let step = d.step.expect("only reads are decoded");
        {
            let t = &mut self.txns[d.txn.0 as usize];
            debug_assert!(t.pending_io > 0, "decode without a channel reference");
            t.pending_io -= 1;
        }
        if self.txns[d.txn.0 as usize].finished {
            self.maybe_recycle(d.txn);
            return;
        }
        let success = d.errors <= self.cfg.ecc.capability;
        let margin = self.cfg.ecc.capability.saturating_sub(d.errors);
        let ctx = self.txns[d.txn.0 as usize].ctx.expect("decode on a read");
        let actions = self.controller.on_decode_done(&ctx, step, success, margin);
        self.execute_actions(d.txn, actions);
    }

    fn execute_actions(&mut self, txn: TxnId, actions: Actions) {
        let die_idx = self.txns[txn.0 as usize].loc.die_in_chip;
        for a in actions.iter() {
            match a {
                ReadAction::Sense { step } => {
                    self.dies[die_idx as usize]
                        .p0
                        .push_back((txn, QueuedOp::Sense { step }));
                    self.maybe_suspend(die_idx, txn);
                }
                ReadAction::SetFeature { phases } => {
                    self.dies[die_idx as usize]
                        .p0
                        .push_back((txn, QueuedOp::SetFeature { phases }));
                    self.maybe_suspend(die_idx, txn);
                }
                ReadAction::Transfer { step } => {
                    let t = &mut self.txns[txn.0 as usize];
                    let errors = t
                        .sensed
                        .iter()
                        .rev()
                        .find(|&&(s, _)| s == step)
                        .map(|&(_, e)| e)
                        .expect("transfer of a step that was sensed");
                    t.pending_io += 1;
                    self.chan.enqueue_transfer(Transfer {
                        txn,
                        step: Some(step),
                        errors,
                    });
                    self.pump_channel();
                }
                ReadAction::Reset => self.do_reset(txn, die_idx),
                ReadAction::CompleteSuccess { step } => self.finish_read(txn, Some(step)),
                ReadAction::CompleteFailure => self.finish_read(txn, None),
            }
        }
        self.try_release_owner(die_idx);
        self.pump_die(die_idx);
    }

    fn do_reset(&mut self, txn: TxnId, die_idx: u32) {
        self.resets += 1;
        let t_rst = self.cfg.timings.t_rst_read;
        let until = self.now + t_rst;
        let die = &mut self.dies[die_idx as usize];
        match die.job {
            Some(DieJob::Sense { txn: sensing, .. }) if self.now < die.busy_until => {
                assert_eq!(
                    sensing, txn,
                    "RESET may only kill the issuing read's own sensing"
                );
            }
            _ => {}
        }
        while let Some((t, _)) = die.p0.pop_front() {
            debug_assert_eq!(t, txn, "P0 held another read's op during RESET");
        }
        let gen = die.begin(DieJob::Reset { txn }, until);
        self.events
            .push(until, CoreEvent::DieDone { die: die_idx, gen });
    }

    fn pump_channel(&mut self) {
        if self.chan.begin_transfer() {
            self.events
                .push(self.now + self.cfg.timings.t_dma, CoreEvent::TransferDone);
        }
    }

    fn pump_ecc(&mut self) {
        if self.chan.begin_decode() {
            self.events
                .push(self.now + self.cfg.timings.t_ecc, CoreEvent::EccDone);
        }
    }

    fn finish_read(&mut self, txn: TxnId, success_step: Option<u32>) {
        {
            let t = &mut self.txns[txn.0 as usize];
            debug_assert!(!t.finished, "double completion of {txn:?}");
            t.finished = true;
        }
        let (kind, senses, req, ctx, gc_job, gc_src, lpn) = {
            let t = &self.txns[txn.0 as usize];
            (
                t.kind,
                t.senses,
                t.req,
                t.ctx.expect("reads carry a context"),
                t.gc_job,
                t.gc_src,
                t.lpn,
            )
        };
        if kind == TxnKind::HostRead {
            let req = req.expect("host reads carry a request");
            self.emit(RecordKind::ReadDone {
                req,
                senses,
                failed: success_step.is_none(),
            });
        }
        self.controller.on_end(&ctx, success_step);
        if kind == TxnKind::GcRead {
            self.emit(RecordKind::GcReadDone {
                job: gc_job.expect("GC reads carry a job"),
                lpn,
                src: gc_src.expect("GC reads carry a source PPN"),
            });
        }
    }

    fn finish_write(&mut self, txn: TxnId) {
        self.txns[txn.0 as usize].finished = true;
        if let Some(req) = self.txns[txn.0 as usize].req {
            self.emit(RecordKind::WriteDone { req });
        }
        if let Some(job) = self.txns[txn.0 as usize].gc_job {
            self.emit(RecordKind::GcWriteDone { job });
        }
        self.maybe_recycle(txn);
    }

    /// Mirror of the legacy drain assertions, per core.
    fn assert_drained(&self, channel: usize) {
        for (i, d) in self.dies.iter().enumerate() {
            assert!(
                d.p0.is_empty() && d.p1.is_empty() && d.p2.is_empty(),
                "channel {channel} die {i} still has queued work: p0={} p1={} p2={} job={:?} suspended={}",
                d.p0.len(),
                d.p1.len(),
                d.p2.len(),
                d.job,
                d.suspended.is_some(),
            );
            assert!(
                d.suspended.is_none(),
                "channel {channel} die {i} left a suspended op unresumed"
            );
            assert!(
                d.job.is_none(),
                "channel {channel} die {i} left job {:?} in flight",
                d.job
            );
            assert!(
                d.owner.is_none(),
                "channel {channel} die {i} still owned by {:?}",
                d.owner
            );
        }
        assert!(
            !self.chan.has_queued_work(),
            "channel {channel} still has queued transfers/decodes"
        );
        assert!(
            self.events.is_empty(),
            "channel {channel} still has pending events"
        );
    }
}

// ---- the coordinator -------------------------------------------------------

struct Coordinator {
    cfg: Arc<SsdConfig>,
    ftl: Ftl,
    /// Host-request `Arrive` events only; all flash-level events live in
    /// the cores.
    events: EventQueue<ReqId>,
    now: SimTime,
    reqs: Vec<CoordReq>,
    front: FrontEnd,
    metrics: MetricsCollector,
    gc_jobs: Vec<CoordGcJob>,
    gc_throttle: GcThrottle,
    reads_outstanding: Vec<u32>,
    /// Per host queue: requests submitted so far, for reconstructing each
    /// request's trace index (mirror of the legacy engine's).
    queue_seq: Vec<u32>,
    /// Per-channel inbox items accumulated since the last delivery.
    outboxes: Vec<Vec<InboxItem>>,
}

impl Coordinator {
    fn submit(&mut self, arrival: SimTime, queue: u16, r: HostRequest) {
        let id = ReqId(self.reqs.len() as u32);
        let index = queue as u32 + self.queue_seq.len() as u32 * self.queue_seq[queue as usize];
        self.queue_seq[queue as usize] += 1;
        self.reqs.push(CoordReq {
            op: r.op,
            lpn: r.lpn,
            arrival,
            queue,
            remaining: r.len_pages,
            retried: false,
            index,
        });
        self.events.push(arrival, id);
    }

    /// Pops and handles every `Arrive` event at or before `limit`.
    fn drain_arrivals(&mut self, limit: SimTime) {
        while self.events.peek_time().is_some_and(|t| t <= limit) {
            let (t, req) = self.events.pop().expect("peeked arrival");
            self.now = t;
            self.metrics.events_processed += 1;
            self.handle_arrival(req);
        }
    }

    fn handle_arrival(&mut self, req: ReqId) {
        let queue = self.reqs[req.0 as usize].queue;
        if let Some((at, r)) = self.front.next_arrival(queue) {
            self.submit(at, queue, r);
        }
        self.front.enqueue(queue, req);
        self.pump_admission();
    }

    fn pump_admission(&mut self) {
        while let Some(req) = self.front.try_admit() {
            self.dispatch(req);
        }
    }

    /// Splits an admitted request into per-page inbox items for the
    /// owning channels. The items start executing at the next barrier.
    fn dispatch(&mut self, req: ReqId) {
        let r = &self.reqs[req.0 as usize];
        let (op, queue, first, last) = (r.op, r.queue, r.lpn, r.lpn + r.remaining as u64);
        if op == IoOp::Read {
            self.reads_outstanding[queue as usize] += 1;
        }
        match op {
            IoOp::Read => {
                for lpn in first..last {
                    let ppn = self
                        .ftl
                        .translate(lpn)
                        .expect("preconditioned footprint covers all trace LPNs");
                    let loc = self.ftl.locate(ppn);
                    let (condition, cold) = self.condition_for(lpn);
                    self.outboxes[loc.channel as usize].push(InboxItem::HostRead {
                        req,
                        queue,
                        lpn,
                        loc,
                        condition,
                        cold,
                    });
                }
            }
            IoOp::Write => {
                for lpn in first..last {
                    let alloc = self
                        .ftl
                        .allocate_for_write(lpn)
                        .expect("GC keeps free pages available");
                    let loc = self.ftl.locate(alloc.ppn);
                    self.outboxes[loc.channel as usize].push(InboxItem::HostWrite {
                        req,
                        lpn,
                        loc,
                    });
                    if let Some(plane) = alloc.gc_hint {
                        self.maybe_start_gc(plane, queue);
                    }
                }
            }
        }
    }

    fn condition_for(&self, lpn: u64) -> (OperatingCondition, bool) {
        let cold = self.ftl.is_cold(lpn);
        let retention = if cold {
            self.cfg.condition.retention_months
        } else {
            0.0
        };
        (
            OperatingCondition::new(self.cfg.condition.pec, retention, self.cfg.condition.temp_c),
            cold,
        )
    }

    fn gc_policy_admits(&mut self, plane: u32, trigger_queue: u16) -> bool {
        match self.cfg.gc_policy {
            GcPolicy::Greedy | GcPolicy::ReadPreempt { .. } => true,
            GcPolicy::WindowedTokens { tokens, window_us } => {
                if self.ftl.plane_is_critical(plane) {
                    return true;
                }
                if self
                    .gc_throttle
                    .try_take(self.now, tokens, SimTime::from_us(window_us))
                {
                    true
                } else {
                    self.metrics.record_gc_deferral(trigger_queue);
                    false
                }
            }
            GcPolicy::QueueShield { queue } => {
                if self.ftl.plane_is_critical(plane) {
                    return true;
                }
                let shield_busy = self
                    .reads_outstanding
                    .get(queue as usize)
                    .is_some_and(|&n| n > 0);
                if shield_busy {
                    self.metrics.record_gc_deferral(queue);
                    false
                } else {
                    true
                }
            }
        }
    }

    fn maybe_start_gc(&mut self, plane: u32, trigger_queue: u16) {
        if self
            .gc_jobs
            .iter()
            .any(|j| j.plane == plane && (j.remaining_moves > 0 || !j.erase_issued))
        {
            return;
        }
        if !self.gc_policy_admits(plane, trigger_queue) {
            return;
        }
        let Some(job) = self.ftl.start_gc(plane) else {
            return;
        };
        let job_idx = self.gc_jobs.len() as u32;
        self.gc_jobs.push(CoordGcJob {
            victim_block: job.victim_block,
            plane,
            remaining_moves: job.moves.len() as u32,
            erase_issued: false,
        });
        if job.moves.is_empty() {
            self.issue_gc_erase(job_idx);
            return;
        }
        for (lpn, src) in job.moves {
            let loc = self.ftl.locate(src);
            let (condition, cold) = self.condition_for(lpn);
            self.outboxes[loc.channel as usize].push(InboxItem::GcRead {
                job: job_idx,
                lpn,
                src,
                loc,
                condition,
                cold,
            });
        }
    }

    fn gc_move_done(&mut self, job_idx: u32) {
        let job = &mut self.gc_jobs[job_idx as usize];
        job.remaining_moves -= 1;
        if job.remaining_moves == 0 {
            self.issue_gc_erase(job_idx);
        }
    }

    fn issue_gc_erase(&mut self, job_idx: u32) {
        let job = &mut self.gc_jobs[job_idx as usize];
        job.erase_issued = true;
        let victim = job.victim_block;
        let ppb = self.cfg.chip.pages_per_block;
        let loc = self.ftl.locate(Ppn(victim * ppb));
        self.outboxes[loc.channel as usize].push(InboxItem::GcErase { job: job_idx, loc });
    }

    /// Applies one core record, first catching the coordinator's own
    /// arrivals up to the record time (the canonical interleave).
    fn apply_record(&mut self, rec: Record) {
        self.drain_arrivals(rec.time);
        self.now = rec.time;
        match rec.kind {
            RecordKind::ReadDone {
                req,
                senses,
                failed,
            } => {
                self.metrics.record_retry_steps(senses.saturating_sub(1));
                if senses > 1 {
                    self.reqs[req.0 as usize].retried = true;
                }
                if failed {
                    self.metrics.read_failures += 1;
                }
                self.complete_req_part(req);
            }
            RecordKind::WriteDone { req } => self.complete_req_part(req),
            RecordKind::GcReadDone { job, lpn, src } => {
                if self.ftl.gc_move_still_needed(lpn, src) {
                    let plane = self.gc_jobs[job as usize].plane;
                    let dst = self
                        .ftl
                        .allocate_for_gc(lpn, plane)
                        .expect("GC target plane has reserve space");
                    let loc = self.ftl.locate(dst);
                    self.outboxes[loc.channel as usize].push(InboxItem::GcWrite { job, lpn, loc });
                } else {
                    // A host write invalidated the page mid-move.
                    self.gc_move_done(job);
                }
            }
            RecordKind::GcWriteDone { job } => self.gc_move_done(job),
            RecordKind::GcEraseDone { job } => {
                self.ftl.finish_gc(self.gc_jobs[job as usize].victim_block);
                self.metrics.gc_collections += 1;
            }
            RecordKind::GcSuspension { queue, forced } => {
                self.metrics.record_gc_suspension(
                    queue,
                    self.cfg.timings.t_suspend.as_us_f64(),
                    forced,
                );
            }
            RecordKind::GcWait { queue, stall_us } => {
                self.metrics.record_gc_wait(queue, stall_us);
            }
        }
    }

    fn complete_req_part(&mut self, req: ReqId) {
        let r = &mut self.reqs[req.0 as usize];
        r.remaining -= 1;
        if r.remaining == 0 {
            let response = self.now - r.arrival;
            let is_read = r.op == IoOp::Read;
            let retried = r.retried;
            let queue = r.queue;
            let index = r.index;
            if is_read {
                self.reads_outstanding[queue as usize] -= 1;
            }
            self.metrics
                .record_request(queue, is_read, retried, response, self.now);
            self.metrics.record_indexed(index, response, retried);
            if let Some(next) = self.front.complete(queue) {
                self.submit(self.now, queue, next);
            }
            self.pump_admission();
        }
    }

    /// The cross-shard state snapshot for `channel` at the barrier.
    fn snapshot_for(&self, channel: u32) -> BarrierSnapshot {
        let chip_dies = self.cfg.chip.dies;
        let ppd = self.cfg.chip.planes_per_die;
        let planes = (chip_dies * ppd) as usize;
        let base = channel * chip_dies * ppd;
        let plane_critical = (0..planes)
            .map(|p| self.ftl.plane_is_critical(base + p as u32))
            .collect();
        let shield_busy = self.cfg.gc_policy.shield_queue().is_some_and(|q| {
            self.reads_outstanding
                .get(q as usize)
                .is_some_and(|&n| n > 0)
        });
        BarrierSnapshot {
            plane_critical,
            shield_busy,
        }
    }

    fn assert_drained(&self) {
        for (i, r) in self.reqs.iter().enumerate() {
            assert!(
                r.remaining == 0,
                "request {i} ({:?}, arrival {}) never completed: {} pages left",
                r.op,
                r.arrival,
                r.remaining
            );
        }
        assert_eq!(
            self.front.pending_submissions(),
            0,
            "host queues never submitted {} requests",
            self.front.pending_submissions()
        );
        assert_eq!(
            self.front.parked(),
            0,
            "{} submitted requests were never admitted",
            self.front.parked()
        );
        assert_eq!(
            self.front.in_flight(),
            0,
            "{} admitted requests never completed",
            self.front.in_flight()
        );
        assert!(
            self.outboxes.iter().all(|o| o.is_empty()),
            "undelivered inbox items at drain"
        );
    }
}

// ---- window execution backends ---------------------------------------------

/// Runs every core's window for one barrier. The two implementations —
/// inline and thread-pooled — are observationally identical; cores never
/// share state within a window, so only wall-clock differs.
trait WindowExec {
    fn run_windows(
        &mut self,
        lo: SimTime,
        hi: SimTime,
        inputs: Vec<(Vec<InboxItem>, BarrierSnapshot)>,
    ) -> Vec<WindowOut>;
}

struct InlineExec {
    cores: Vec<ChannelCore>,
}

impl WindowExec for InlineExec {
    fn run_windows(
        &mut self,
        lo: SimTime,
        hi: SimTime,
        inputs: Vec<(Vec<InboxItem>, BarrierSnapshot)>,
    ) -> Vec<WindowOut> {
        self.cores
            .iter_mut()
            .zip(inputs)
            .map(|(core, (inbox, snap))| core.run_window(lo, hi, inbox, snap))
            .collect()
    }
}

/// One barrier's worth of work for a worker thread.
struct WorkerCmd {
    lo: SimTime,
    hi: SimTime,
    inputs: Vec<(usize, Vec<InboxItem>, BarrierSnapshot)>,
}

struct ThreadedExec {
    cmd_txs: Vec<mpsc::Sender<WorkerCmd>>,
    out_rx: mpsc::Receiver<(usize, WindowOut)>,
    /// Core index → worker index.
    assignment: Vec<usize>,
    n_cores: usize,
}

impl WindowExec for ThreadedExec {
    fn run_windows(
        &mut self,
        lo: SimTime,
        hi: SimTime,
        inputs: Vec<(Vec<InboxItem>, BarrierSnapshot)>,
    ) -> Vec<WindowOut> {
        let mut per_worker: Vec<Vec<(usize, Vec<InboxItem>, BarrierSnapshot)>> =
            (0..self.cmd_txs.len()).map(|_| Vec::new()).collect();
        for (idx, (inbox, snap)) in inputs.into_iter().enumerate() {
            per_worker[self.assignment[idx]].push((idx, inbox, snap));
        }
        for (tx, inputs) in self.cmd_txs.iter().zip(per_worker) {
            tx.send(WorkerCmd { lo, hi, inputs })
                .expect("shard worker alive");
        }
        let mut outs: Vec<Option<WindowOut>> = (0..self.n_cores).map(|_| None).collect();
        for _ in 0..self.n_cores {
            let (idx, out) = self.out_rx.recv().expect("shard worker alive");
            outs[idx] = Some(out);
        }
        outs.into_iter()
            .map(|o| o.expect("every core reported its window"))
            .collect()
    }
}

/// The conservative time-windowed barrier loop (see the module docs).
fn drive<E: WindowExec>(coord: &mut Coordinator, exec: &mut E) {
    let channels = coord.outboxes.len();
    let window = SimTime::from_us(SHARD_WINDOW_US);
    let mut peeks: Vec<Option<SimTime>> = vec![None; channels];
    let mut merged: Vec<(SimTime, u32, Record)> = Vec::new();
    let mut b = SimTime::ZERO;
    loop {
        coord.drain_arrivals(b);
        let mut t_next = coord.events.peek_time();
        for p in peeks.iter().flatten() {
            t_next = Some(t_next.map_or(*p, |t| t.min(*p)));
        }
        if coord.outboxes.iter().any(|o| !o.is_empty()) {
            // Undelivered work starts at the barrier itself.
            t_next = Some(t_next.map_or(b, |t| t.min(b)));
        }
        let Some(t_next) = t_next else { break };
        let hi = t_next + window;
        let inputs: Vec<(Vec<InboxItem>, BarrierSnapshot)> = (0..channels)
            .map(|ch| {
                (
                    std::mem::take(&mut coord.outboxes[ch]),
                    coord.snapshot_for(ch as u32),
                )
            })
            .collect();
        let outs = exec.run_windows(b, hi, inputs);
        merged.clear();
        for (ch, out) in outs.into_iter().enumerate() {
            peeks[ch] = out.peek;
            for r in out.records {
                merged.push((r.time, ch as u32, r));
            }
        }
        // Stable sort: within one (time, channel) the core's emission
        // order is preserved — the canonical total order for any N.
        merged.sort_by_key(|&(t, ch, _)| (t, ch));
        for &(_, _, rec) in merged.iter() {
            coord.apply_record(rec);
        }
        b = hi;
    }
}

// ---- assembly & the public runner ------------------------------------------

/// Runs one trace through the channel-sharded engine on recycled
/// [`ShardArena`] buffers, optionally warm-started from a device image.
///
/// `workers` is the requested worker-thread count (the CLI's
/// `--shards`); it is clamped to `[1, channels]`, and `<= 1` executes
/// every window inline on the calling thread. **Results are invariant
/// to `workers`** — only wall-clock time changes.
///
/// The report is *not* bit-comparable to the legacy serial engine
/// ([`crate::ssd::Ssd`]): cross-shard interactions quantize to
/// [`SHARD_WINDOW_US`]-wide barriers (see the module docs).
///
/// # Errors
///
/// Propagates configuration/footprint validation errors, plus image
/// mismatches when warm-starting.
///
/// # Panics
///
/// Panics if the front-end configuration is invalid or a request's LPN
/// range exceeds the preconditioned footprint (as the legacy runner
/// does).
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_queued_from(
    arena: &mut ShardArena,
    cfg: impl Into<Arc<SsdConfig>>,
    make_controller: &dyn Fn() -> Box<dyn RetryController + Send>,
    lpn_count: u64,
    trace: &[HostRequest],
    queues: &HostQueueConfig,
    image: Option<&DeviceImage>,
    workers: usize,
) -> Result<SimReport, String> {
    run_sharded_queued_collected_from(
        arena,
        cfg,
        make_controller,
        lpn_count,
        trace,
        queues,
        image,
        workers,
        false,
    )
    .map(|(report, _)| report)
}

/// [`run_sharded_queued_from`] that also hands back the raw latency samples,
/// for the array layer's exact cross-device quantile merge. The report is
/// bit-identical to the plain variant. `track` additionally records
/// per-request responses by trace index (the redundancy layer's
/// copy-matching) without perturbing anything else.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded_queued_collected_from(
    arena: &mut ShardArena,
    cfg: impl Into<Arc<SsdConfig>>,
    make_controller: &dyn Fn() -> Box<dyn RetryController + Send>,
    lpn_count: u64,
    trace: &[HostRequest],
    queues: &HostQueueConfig,
    image: Option<&DeviceImage>,
    workers: usize,
    track: bool,
) -> Result<(SimReport, LatencySamples), String> {
    let cfg: Arc<SsdConfig> = cfg.into();
    cfg.validate()?;
    queues
        .validate()
        .expect("valid host-queue configuration and replay modes");
    let ftl = match image {
        None => {
            let mut ftl = match arena.ftl.take() {
                Some(mut recycled) => {
                    recycled.rebuild(&cfg, lpn_count)?;
                    recycled
                }
                None => Ftl::new(&cfg, lpn_count)?,
            };
            ftl.precondition();
            ftl
        }
        Some(img) => {
            img.validate_for(&cfg, lpn_count)?;
            let mut ftl = match arena.ftl.take() {
                Some(recycled) => recycled,
                None => Ftl::new(&cfg, lpn_count)?,
            };
            ftl.restore(&cfg, img.ftl())?;
            ftl
        }
    };
    for r in trace {
        assert!(
            r.lpn + r.len_pages as u64 <= ftl.lpn_count(),
            "request LPN range {}..{} exceeds footprint {}",
            r.lpn,
            r.lpn + r.len_pages as u64,
            ftl.lpn_count()
        );
    }
    let channels = cfg.channels as usize;
    // Per-shard event queues see ~1/channels of the device's load; the
    // auto backend picks heap/wheel from the per-shard depth hint.
    let use_wheel = cfg
        .hotpath
        .wheel_for_depth(queues.steady_depth_hint() / channels as u64);
    let slab_reuse = cfg.hotpath.txn_slab_reuse;
    if arena.cores.len() != channels {
        arena.cores.resize_with(channels, CoreArena::default);
    }
    let mut cores = Vec::with_capacity(channels);
    for ca in arena.cores.iter_mut() {
        let mut dies = std::mem::take(&mut ca.dies);
        if dies.len() == cfg.chip.dies as usize {
            for d in &mut dies {
                d.reset(cfg.timings.sense);
            }
        } else {
            dies = (0..cfg.chip.dies)
                .map(|_| DieState::new(cfg.timings.sense))
                .collect();
        }
        let mut chan = ca.chan.take().unwrap_or_else(ChannelState::new);
        chan.reset();
        let mut events = std::mem::take(&mut ca.events);
        events.reset();
        events.set_wheel(use_wheel);
        let mut txns = std::mem::take(&mut ca.txns);
        let mut free_txns = std::mem::take(&mut ca.free_txns);
        if !slab_reuse {
            txns.clear();
            free_txns.clear();
        }
        let mut model = ErrorModel::new(cfg.seed)
            .with_outlier_rate(cfg.outlier_rate)
            .with_profile_cache(cfg.hotpath.profile_cache);
        if let Some(img) = image {
            model.restore(img.model())?;
        }
        let max_step = model.retry_table().max_steps();
        cores.push(ChannelCore {
            cfg: Arc::clone(&cfg),
            model,
            controller: make_controller(),
            events,
            now: SimTime::ZERO,
            dies,
            chan,
            txns,
            free_txns,
            gc_budgets: HashMap::new(),
            records: Vec::new(),
            snapshot: BarrierSnapshot::default(),
            max_step,
            slab_reuse,
            events_processed: 0,
            senses: 0,
            resets: 0,
            set_features: 0,
            suspensions: 0,
        });
    }
    let max_step = cores[0].max_step;
    let mut events = std::mem::take(&mut arena.events);
    events.reset();
    let mut reqs = std::mem::take(&mut arena.reqs);
    reqs.clear();
    let mut coord = Coordinator {
        cfg: Arc::clone(&cfg),
        ftl,
        events,
        now: SimTime::ZERO,
        reqs,
        front: FrontEnd::idle(),
        metrics: MetricsCollector::new(max_step, queues.queue_count()),
        gc_jobs: Vec::new(),
        gc_throttle: GcThrottle::default(),
        reads_outstanding: vec![0; queues.queue_count()],
        queue_seq: vec![0; queues.queue_count()],
        outboxes: (0..channels).map(|_| Vec::new()).collect(),
    };
    if track {
        coord.metrics.track_requests(trace.len());
    }
    let (front, initial) = FrontEnd::start(queues, trace);
    coord.front = front;
    for (queue, arrival, r) in initial {
        coord.submit(arrival, queue, r);
    }
    let effective = workers.clamp(1, channels);
    let mut cores = if effective <= 1 {
        let mut exec = InlineExec { cores };
        drive(&mut coord, &mut exec);
        exec.cores
    } else {
        run_threaded(&mut coord, cores, effective)
    };
    coord.assert_drained();
    for (ch, core) in cores.iter().enumerate() {
        core.assert_drained(ch);
        coord.metrics.events_processed += core.events_processed;
        coord.metrics.senses += core.senses;
        coord.metrics.resets += core.resets;
        coord.metrics.set_features += core.set_features;
        coord.metrics.suspensions += core.suspensions;
    }
    let name = cores[0].controller.name().to_string();
    let collector = std::mem::replace(&mut coord.metrics, MetricsCollector::new(max_step, 1));
    let report = collector.finish_with_samples(&name);
    // Return every buffer to the arena for the next run.
    arena.ftl = Some(coord.ftl);
    arena.events = coord.events;
    coord.reqs.clear();
    arena.reqs = coord.reqs;
    for (ca, core) in arena.cores.iter_mut().zip(cores.drain(..)) {
        ca.dies = core.dies;
        ca.chan = Some(core.chan);
        ca.events = core.events;
        let mut txns = core.txns;
        for t in &mut txns {
            t.sensed.clear();
        }
        let mut free = core.free_txns;
        free.clear();
        free.extend((0..txns.len() as u32).rev());
        ca.txns = txns;
        ca.free_txns = free;
    }
    Ok(report)
}

/// Drives the barrier loop with `workers` persistent threads, each
/// owning a fixed round-robin subset of the cores. Blocking channel
/// receives keep idle workers off the CPU; dropping the command senders
/// shuts the pool down and hands the cores back.
fn run_threaded(
    coord: &mut Coordinator,
    cores: Vec<ChannelCore>,
    workers: usize,
) -> Vec<ChannelCore> {
    let n = cores.len();
    std::thread::scope(|s| {
        let (out_tx, out_rx) = mpsc::channel::<(usize, WindowOut)>();
        let mut assignment = vec![0usize; n];
        let mut buckets: Vec<Vec<(usize, ChannelCore)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, core) in cores.into_iter().enumerate() {
            assignment[i] = i % workers;
            buckets[i % workers].push((i, core));
        }
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for bucket in buckets {
            let (tx, rx) = mpsc::channel::<WorkerCmd>();
            cmd_txs.push(tx);
            let out_tx = out_tx.clone();
            handles.push(s.spawn(move || {
                let mut owned = bucket;
                while let Ok(WorkerCmd { lo, hi, inputs }) = rx.recv() {
                    for (idx, inbox, snap) in inputs {
                        let core = owned
                            .iter_mut()
                            .find(|(i, _)| *i == idx)
                            .map(|(_, c)| c)
                            .expect("core assigned to this worker");
                        let out = core.run_window(lo, hi, inbox, snap);
                        if out_tx.send((idx, out)).is_err() {
                            return owned;
                        }
                    }
                }
                owned
            }));
        }
        drop(out_tx);
        let mut exec = ThreadedExec {
            cmd_txs,
            out_rx,
            assignment,
            n_cores: n,
        };
        drive(coord, &mut exec);
        drop(exec);
        let mut returned: Vec<(usize, ChannelCore)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect();
        returned.sort_by_key(|&(i, _)| i);
        returned.into_iter().map(|(_, c)| c).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readflow::BaselineController;
    use crate::replay::ReplayMode;
    use crate::ssd::{SimArena, Ssd};

    fn mk_controller() -> Box<dyn RetryController + Send> {
        Box::new(BaselineController::new())
    }

    /// A GC-heavy geometry plus a mixed read/write closed-loop trace.
    fn gc_cfg() -> SsdConfig {
        let mut cfg = SsdConfig::scaled_for_tests()
            .with_condition(OperatingCondition::new(1000.0, 6.0, 30.0));
        cfg.chip.blocks_per_plane = 16;
        cfg.chip.pages_per_block = 12;
        cfg
    }

    fn mixed_trace(n: u64, footprint: u64) -> Vec<HostRequest> {
        (0..n)
            .map(|i| {
                let op = if i % 3 == 0 { IoOp::Write } else { IoOp::Read };
                HostRequest::new(SimTime::from_us(i * 20), op, (i * 13) % (footprint / 2), 1)
            })
            .collect()
    }

    /// Half writes confined to a hot quarter of the footprint: burns
    /// through free blocks fast enough to force garbage collection (and
    /// read-over-program suspension) on the small test geometry.
    fn gc_trace(n: u64, footprint: u64) -> Vec<HostRequest> {
        let hot = (footprint / 4).max(1);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    HostRequest::new(
                        SimTime::from_us(i * 15),
                        IoOp::Read,
                        (i * 97) % footprint,
                        1,
                    )
                } else {
                    HostRequest::new(SimTime::from_us(i * 15), IoOp::Write, (i * 31) % hot, 1)
                }
            })
            .collect()
    }

    fn run_sharded(workers: usize, queues: &HostQueueConfig) -> SimReport {
        let cfg = gc_cfg();
        let footprint = cfg.max_lpns();
        let mut arena = ShardArena::new();
        run_sharded_queued_from(
            &mut arena,
            cfg,
            &mk_controller,
            footprint,
            &mixed_trace(600, footprint),
            queues,
            None,
            workers,
        )
        .expect("valid configuration")
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let queues = HostQueueConfig::uniform(2, ReplayMode::closed_loop(8))
            .with_weights(&[2, 1])
            .with_window(16);
        let one = run_sharded(1, &queues);
        for workers in [2, 3, 4] {
            let n = run_sharded(workers, &queues);
            assert_eq!(one, n, "workers={workers} diverged from workers=1");
        }
    }

    #[test]
    fn sharded_runs_are_deterministic_and_arena_reuse_is_clean() {
        let queues = HostQueueConfig::single(ReplayMode::closed_loop(16));
        let cfg = gc_cfg();
        let footprint = cfg.max_lpns();
        let trace = gc_trace(1200, footprint);
        let mut arena = ShardArena::new();
        let mut run = |workers| {
            run_sharded_queued_from(
                &mut arena,
                cfg.clone(),
                &mk_controller,
                footprint,
                &trace,
                &queues,
                None,
                workers,
            )
            .expect("valid configuration")
        };
        let a = run(1);
        let b = run(2); // reused arena, different worker count
        let c = run(1);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.gc_collections > 0, "workload must exercise GC");
        assert!(a.suspensions > 0, "workload must exercise suspension");
    }

    #[test]
    fn sharded_results_track_the_legacy_engine() {
        // The sharded engine quantizes cross-shard hops to barriers, so it
        // is not bit-identical to the legacy serial engine — but on the
        // same workload it must complete the same requests with latencies
        // within the quantization error (a few windows per request).
        let cfg = gc_cfg();
        let footprint = cfg.max_lpns();
        let trace = mixed_trace(400, footprint);
        let queues = HostQueueConfig::single(ReplayMode::closed_loop(8));
        let legacy = {
            let mut arena = SimArena::new();
            Ssd::run_pooled_queued_from(
                &mut arena,
                cfg.clone(),
                mk_controller(),
                footprint,
                &trace,
                &queues,
                None,
            )
            .expect("valid configuration")
        };
        let sharded = {
            let mut arena = ShardArena::new();
            run_sharded_queued_from(
                &mut arena,
                cfg,
                &mk_controller,
                footprint,
                &trace,
                &queues,
                None,
                2,
            )
            .expect("valid configuration")
        };
        assert_eq!(legacy.requests_completed, sharded.requests_completed);
        assert_eq!(legacy.senses, sharded.senses);
        let (l, s) = (legacy.avg_response_us(), sharded.avg_response_us());
        assert!(
            (l - s).abs() / l < 0.35,
            "sharded latency drifted too far from legacy: {s} vs {l}"
        );
    }

    #[test]
    fn empty_trace_is_inert() {
        let mut arena = ShardArena::new();
        let cfg = SsdConfig::scaled_for_tests();
        let report = run_sharded_queued_from(
            &mut arena,
            cfg,
            &mk_controller,
            1000,
            &[],
            &HostQueueConfig::single(ReplayMode::OpenLoop),
            None,
            2,
        )
        .expect("valid configuration");
        assert_eq!(report.requests_completed, 0);
        assert_eq!(report.kiops(), 0.0);
    }

    #[test]
    fn worker_budget_is_clamped() {
        assert!(worker_budget(4, 1) >= 1);
        assert!(worker_budget(4, 1) <= 4);
        assert_eq!(worker_budget(0, 1), 1);
        assert_eq!(worker_budget(8, usize::MAX), 1);
    }
}
