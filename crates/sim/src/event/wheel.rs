//! A hierarchical timing wheel: the amortized-`O(1)` calendar-queue backend
//! of [`EventQueue`](super::EventQueue).
//!
//! Simulated time is an integer nanosecond counter that only moves forward,
//! so events can be bucketed by time instead of kept in a comparison-ordered
//! heap. The wheel has [`LEVELS`] (4) levels of [`SLOTS`] (256) slots each,
//! covering 8 bits of the time value per level — level 0 buckets single
//! nanoseconds across the cursor's 256 ns window, level 1 buckets 256 ns
//! spans, and so on up to a 2³² ns (~4.3 s) horizon. Events beyond the
//! horizon overflow into a `(time, seq)`-sorted spill list that re-enters
//! the wheel when the cursor reaches its window (rare in practice: the
//! simulator schedules at most one arrival per host queue ahead, and no
//! flash operation takes more than tBERS = 5 ms).
//!
//! Placement is the kernel-timer scheme: an event's level is the highest
//! bit position in which its time differs from the cursor, divided by 8;
//! its slot is the time's 8-bit digit at that level. Popping drains the
//! first occupied level-0 slot (whose entries all share one exact time, in
//! FIFO order); when level 0 empties, the nearest occupied higher-level
//! slot cascades one rung down. Per-slot occupancy bitmaps make "first
//! occupied slot" four `u64` scans, so a pop touches `O(1)` memory
//! amortized — against the `O(log n)` sift of `BinaryHeap::pop` that PR 3
//! measured at 45 % of single-core runtime before lazy admission.
//!
//! The ordering contract is exactly [`EventQueue`](super::EventQueue)'s:
//! pops come in non-decreasing time order with ties broken by insertion
//! sequence, and scheduling before the last popped time panics
//! unconditionally (the bucket math relies on a monotone cursor, so the
//! check must survive `debug-assertions = false` builds).
//!
//! # Example
//!
//! ```
//! use rr_sim::event::wheel::TimingWheel;
//! use rr_util::time::SimTime;
//!
//! let mut w = TimingWheel::new();
//! w.push(SimTime::from_ms(50), "far");   // level 3
//! w.push(SimTime::from_us(1), "near");   // level 1 (1000 ns)
//! w.push(SimTime::from_ms(50), "tied");  // FIFO behind "far"
//! assert_eq!(w.pop(), Some((SimTime::from_us(1), "near")));
//! assert_eq!(w.pop(), Some((SimTime::from_ms(50), "far")));
//! assert_eq!(w.pop(), Some((SimTime::from_ms(50), "tied")));
//! assert_eq!(w.pop(), None);
//! ```

use rr_util::time::SimTime;
use std::collections::VecDeque;

/// Hierarchy depth: 4 levels × 8 bits cover a 2³² ns horizon.
pub const LEVELS: usize = 4;
/// Time bits per level.
const SLOT_BITS: usize = 8;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Total time bits the wheel spans; times further ahead of the cursor spill.
const WHEEL_BITS: usize = SLOT_BITS * LEVELS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

#[derive(Debug)]
struct Entry<E> {
    /// Absolute time in nanoseconds.
    time: u64,
    seq: u64,
    payload: E,
}

/// 256-bit slot-occupancy map; `first_set` is the wheel's "next occupied
/// slot" primitive.
#[derive(Debug, Clone, Copy, Default)]
struct SlotMap([u64; SLOTS / 64]);

impl SlotMap {
    #[inline]
    fn set(&mut self, slot: usize) {
        self.0[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.0[slot >> 6] &= !(1u64 << (slot & 63));
    }

    #[inline]
    fn first_set(&self) -> Option<usize> {
        self.0
            .iter()
            .enumerate()
            .find(|(_, &bits)| bits != 0)
            .map(|(word, &bits)| (word << 6) | bits.trailing_zeros() as usize)
    }
}

/// A deterministic min-queue of `(time, payload)` events bucketed in a
/// 4-level × 256-slot hierarchical timing wheel.
///
/// Same contract as the heap-backed [`EventQueue`](super::EventQueue):
/// non-decreasing pop times, FIFO tie-break by insertion sequence, panic on
/// scheduling into the past, and [`TimingWheel::reset`] rewinding to
/// fresh-queue semantics while keeping allocations.
#[derive(Debug)]
pub struct TimingWheel<E> {
    /// `LEVELS × SLOTS` buckets, flattened (`level * SLOTS + slot`). Within
    /// a bucket, entries of equal time are in insertion order — direct
    /// pushes append in sequence order, and cascades preserve it.
    slots: Vec<VecDeque<Entry<E>>>,
    occupied: [SlotMap; LEVELS],
    /// Events beyond the wheel horizon, sorted by `(time, seq)`.
    spill: Vec<Entry<E>>,
    /// The last popped time in ns (advanced to empty-region boundaries
    /// during cascades; never past the earliest pending event).
    cursor: u64,
    seq: u64,
    len: usize,
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self::restore(0, SimTime::ZERO)
    }

    /// An empty wheel continuing an existing queue's FIFO sequence and
    /// past-check watermark (the backend-switch path of
    /// [`EventQueue::set_wheel`](super::EventQueue::set_wheel)).
    pub(crate) fn restore(seq: u64, last_popped: SimTime) -> Self {
        Self {
            slots: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [SlotMap::default(); LEVELS],
            spill: Vec::new(),
            cursor: last_popped.as_ns(),
            seq,
            len: 0,
        }
    }

    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    pub(crate) fn last_popped(&self) -> SimTime {
        SimTime::from_ns(self.cursor)
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event. The check is
    /// unconditional — the wheel's bucket math places events relative to the
    /// cursor and would silently misfile a past event, so correctness may
    /// not hinge on `debug-assertions`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        if time.as_ns() < self.cursor {
            panic!(
                "scheduling into the past: {time} < {}",
                SimTime::from_ns(self.cursor)
            );
        }
        let entry = Entry {
            time: time.as_ns(),
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.len += 1;
        self.place(entry);
    }

    /// Buckets an entry by its distance from the cursor. Invariant: an entry
    /// at level `l` agrees with the cursor on all time bits above `8(l+1)`,
    /// so the first occupied slot of the lowest occupied level is always the
    /// earliest pending region, and every level-0 bucket holds exactly one
    /// time value.
    fn place(&mut self, entry: Entry<E>) {
        let xor = entry.time ^ self.cursor;
        if xor >> WHEEL_BITS != 0 {
            // Beyond the horizon: keep the spill sorted by (time, seq) so
            // the re-entry drain preserves FIFO ties.
            let at = self
                .spill
                .partition_point(|e| (e.time, e.seq) < (entry.time, entry.seq));
            self.spill.insert(at, entry);
            return;
        }
        let level = (63 - (xor | 1).leading_zeros() as usize) / SLOT_BITS;
        let slot = ((entry.time >> (SLOT_BITS * level)) & SLOT_MASK) as usize;
        self.occupied[level].set(slot);
        self.slots[level * SLOTS + slot].push_back(entry);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Level 0 buckets exact times within the cursor's 256 ns window,
            // FIFO within a bucket — the first occupied slot is the front of
            // the queue.
            if let Some(slot) = self.occupied[0].first_set() {
                let bucket = &mut self.slots[slot];
                let e = bucket.pop_front().expect("occupied level-0 slot");
                if bucket.is_empty() {
                    self.occupied[0].clear(slot);
                }
                self.len -= 1;
                self.cursor = e.time;
                return Some((SimTime::from_ns(e.time), e.payload));
            }
            if let Some((level, slot)) =
                (1..LEVELS).find_map(|l| self.occupied[l].first_set().map(|s| (l, s)))
            {
                // Cascade the nearest occupied slot down: advance the cursor
                // to the slot's base (no events live in between) and re-file
                // its entries, which now land on lower levels. Draining in
                // stored order keeps equal-time entries FIFO.
                let shift = SLOT_BITS * level;
                let upper = shift + SLOT_BITS;
                self.cursor = ((self.cursor >> upper) << upper) | ((slot as u64) << shift);
                self.occupied[level].clear(slot);
                let mut drained = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                for e in drained.drain(..) {
                    self.place(e);
                }
                // Hand the bucket's allocation back (cascades re-file into
                // strictly lower levels, so the slot is still empty).
                self.slots[level * SLOTS + slot] = drained;
            } else {
                // The wheel is empty but events remain: jump the cursor to
                // the spill's front and re-file the prefix that now fits
                // under the horizon (spill times all exceed wheel times, so
                // no pending event is skipped).
                let front = self.spill[0].time;
                debug_assert!(front >= self.cursor);
                self.cursor = front;
                let horizon = front >> WHEEL_BITS;
                let fits = self
                    .spill
                    .partition_point(|e| e.time >> WHEEL_BITS == horizon);
                let refile: Vec<Entry<E>> = self.spill.drain(..fits).collect();
                for e in refile {
                    self.place(e);
                }
            }
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(slot) = self.occupied[0].first_set() {
            // Level-0 buckets are exact times in the cursor's window.
            return Some(SimTime::from_ns((self.cursor & !SLOT_MASK) | slot as u64));
        }
        for level in 1..LEVELS {
            if let Some(slot) = self.occupied[level].first_set() {
                // The first occupied slot of the lowest occupied level holds
                // the earliest events; its bucket spans a time range, so scan
                // it for the minimum.
                let t = self.slots[level * SLOTS + slot]
                    .iter()
                    .map(|e| e.time)
                    .min()
                    .expect("occupied slot holds entries");
                return Some(SimTime::from_ns(t));
            }
        }
        Some(SimTime::from_ns(self.spill[0].time))
    }

    /// Empties the wheel and rewinds its clock and FIFO tie-break sequence,
    /// keeping every bucket's allocation. A reset wheel behaves
    /// bit-identically to a freshly constructed one (the arena path relies
    /// on this).
    pub fn reset(&mut self) {
        for bucket in &mut self.slots {
            bucket.clear();
        }
        self.occupied = [SlotMap::default(); LEVELS];
        self.spill.clear();
        self.cursor = 0;
        self.seq = 0;
        self.len = 0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_across_every_level_and_the_spill() {
        let mut w = TimingWheel::new();
        // One event per level: ns (L0), µs (L1), ms (L2/L3), plus a
        // beyond-horizon spill entry (> 4.3 s ahead).
        let times = [
            SimTime::from_secs(10), // spill
            SimTime::from_ns(3),    // level 0
            SimTime::from_ms(40),   // level 3
            SimTime::from_us(2),    // level 1
            SimTime::from_us(700),  // level 2
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i);
        }
        let mut sorted = times.to_vec();
        sorted.sort();
        let popped: Vec<SimTime> = std::iter::from_fn(|| w.pop().map(|(t, _)| t)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn fifo_survives_cascades() {
        let mut w = TimingWheel::new();
        // Two same-time events placed at a high level, separated by enough
        // traffic that they cascade down before popping.
        w.push(SimTime::from_us(500), "first");
        w.push(SimTime::from_us(1), "warm");
        w.push(SimTime::from_us(500), "second");
        assert_eq!(w.pop(), Some((SimTime::from_us(1), "warm")));
        // Cursor now sits mid-wheel; a third tie arrives at a lower level
        // than the cascaded pair started on.
        w.push(SimTime::from_us(500), "third");
        assert_eq!(w.pop(), Some((SimTime::from_us(500), "first")));
        assert_eq!(w.pop(), Some((SimTime::from_us(500), "second")));
        assert_eq!(w.pop(), Some((SimTime::from_us(500), "third")));
    }

    #[test]
    fn spill_reenters_the_wheel_in_order() {
        let mut w = TimingWheel::new();
        let horizon_plus = SimTime::from_secs(5);
        w.push(horizon_plus, 1);
        w.push(horizon_plus, 2); // FIFO tie inside the spill
        w.push(SimTime::from_secs(6), 3);
        w.push(SimTime::from_us(1), 0);
        assert_eq!(w.pop(), Some((SimTime::from_us(1), 0)));
        assert_eq!(w.pop(), Some((horizon_plus, 1)));
        assert_eq!(w.pop(), Some((horizon_plus, 2)));
        assert_eq!(w.pop(), Some((SimTime::from_secs(6), 3)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn peek_never_disturbs_pop_order() {
        let mut w = TimingWheel::new();
        let times = [900_000u64, 17, 5_000_000_000, 17, 256, 65_536];
        for (i, &ns) in times.iter().enumerate() {
            w.push(SimTime::from_ns(ns), i);
        }
        while let Some(peeked) = w.peek_time() {
            let (t, _) = w.pop().expect("peek implies non-empty");
            assert_eq!(peeked, t);
        }
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn len_tracks_spill_and_wheel() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_us(1), 0);
        w.push(SimTime::from_secs(100), 1);
        assert_eq!(w.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_us(10), 1);
        w.pop();
        w.push(SimTime::from_us(5), 2);
    }
}
