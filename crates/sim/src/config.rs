//! SSD configuration (§7.1 of the paper) and validation.

use crate::gc::GcPolicy;
use rr_ecc::engine::EccEngineModel;
use rr_flash::calibration::OperatingCondition;
use rr_flash::geometry::ChipGeometry;
use rr_flash::timing::NandTimings;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rejected configuration value, carrying a human-readable description of
/// the first inconsistency found.
///
/// Returned by the fallible constructors and validators of the host-side
/// front end ([`ReplayMode::try_open_loop_rate`](crate::replay::ReplayMode),
/// [`HostQueueConfig::validate`](crate::hostq::HostQueueConfig)) so callers
/// driven by external input (CLI flags, sweep scripts) can surface the
/// problem instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error from a description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> Self {
        e.message
    }
}

/// How the device-side arbiter drains the host submission queues
/// (NVMe §4.13-style command arbitration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ArbPolicy {
    /// Plain round-robin: every queue gets `burst` consecutive commands per
    /// turn, idle queues forfeit their turn.
    #[default]
    RoundRobin,
    /// Weighted round-robin: queue `q` gets `weight_q × burst` consecutive
    /// commands per turn — higher-weight queues drain proportionally faster
    /// while backlogged, and a starved queue still progresses every round.
    WeightedRoundRobin,
}

/// Configuration of the simulated SSD.
///
/// The paper's evaluation SSD: 512 GiB-class, 4 channels × 4 dies × 2 planes,
/// 1,888 blocks/plane, 576 × 16-KiB pages/block, 72 b/1 KiB ECC with
/// tECC = 20 µs, 1 Gb/s channels (tDMA = 16 µs), out-of-order read-priority
/// scheduling and program/erase suspension.
///
/// # Example
///
/// ```
/// use rr_sim::config::SsdConfig;
/// let cfg = SsdConfig::scaled_for_tests();
/// cfg.validate().expect("preset configurations are valid");
/// assert!(cfg.total_pages() > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Number of channels (each with its own DMA bus and ECC decoder).
    pub channels: u32,
    /// Geometry of the chip behind each channel (dies/planes/blocks/pages).
    pub chip: ChipGeometry,
    /// NAND + channel timing parameters (Table 1).
    pub timings: NandTimings,
    /// ECC engine model (capability / codewords / tECC).
    pub ecc: EccEngineModel,
    /// The preconditioned operating point: all blocks carry this P/E-cycle
    /// count, and data written *before* the simulated run (cold data) carries
    /// this retention age. Data written during the run has ~zero retention.
    pub condition: OperatingCondition,
    /// Seed for the per-page error-model variation and any generator noise.
    pub seed: u64,
    /// Ideal-SSD switch: when set, no read ever requires a retry (the paper's
    /// `NoRR` upper-bound configuration).
    pub ideal_no_retry: bool,
    /// Probability that a page is an error-model outlier (see
    /// `ErrorModel::with_outlier_rate`); 0 per the paper's measurements.
    pub outlier_rate: f64,
    /// Free-block low-water mark per plane at which garbage collection starts.
    pub gc_threshold_blocks: u32,
    /// When garbage collection may run and who may preempt it (see
    /// [`crate::gc`]). The default [`GcPolicy::Greedy`] is bit-identical to
    /// the engine's historical behavior.
    pub gc_policy: GcPolicy,
    /// Remaining program/erase time below which suspension is not worth it.
    pub min_suspend_benefit_us: u64,
    /// Hot-path optimization switches (results are bit-identical with any
    /// combination; the equivalence tests flip them).
    pub hotpath: HotpathConfig,
}

/// Switches for the simulator's hot-path optimizations.
///
/// Every switch is **semantics-neutral**: a run produces a bit-identical
/// [`crate::metrics::SimReport`] whether it is on or off (asserted by
/// `tests/hotpath_equiv.rs`). They exist so the equivalence suite can compare
/// both paths and so memory-constrained embeddings can trade speed for
/// footprint; production configurations leave everything on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotpathConfig {
    /// Memoize per-(page, condition) read profiles inside the flash error
    /// model instead of re-deriving the stationary noise on every sense.
    pub profile_cache: bool,
    /// Recycle completed transaction records (and their sense buffers)
    /// through a free list instead of growing the transaction slab forever.
    pub txn_slab_reuse: bool,
    /// Drive the event loop from a hierarchical timing wheel
    /// ([`crate::event::wheel`]) instead of the default binary heap. Off by
    /// default until the wheel accumulates mileage; flip on for amortized
    /// O(1) event pops on long runs.
    pub timing_wheel: bool,
    /// How the event-queue backend is chosen per run (see
    /// [`EventBackend`]). [`EventBackend::Heap`] preserves the historical
    /// behavior where [`HotpathConfig::timing_wheel`] alone decides.
    #[serde(default)]
    pub event_backend: EventBackend,
}

/// Event-queue backend selection policy.
///
/// `Heap` and `Wheel` pin the backend; `Auto` picks the wheel once the
/// steady-state queue depth the run will carry (per shard, when sharded)
/// crosses the measured heap/wheel crossover
/// ([`AUTO_WHEEL_CROSSOVER_DEPTH`]). All three choices are bit-identical
/// in results — only event-pop cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EventBackend {
    /// Defer to [`HotpathConfig::timing_wheel`] (today's default: heap
    /// unless the wheel was explicitly enabled).
    #[default]
    Heap,
    /// Always the hierarchical timing wheel.
    Wheel,
    /// Heap below the crossover depth, wheel at or above it (or whenever
    /// [`HotpathConfig::timing_wheel`] is already set).
    Auto,
}

impl EventBackend {
    /// Parses a CLI spelling (`heap`, `wheel`, `auto`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted spellings on anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "heap" => Ok(Self::Heap),
            "wheel" => Ok(Self::Wheel),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown event backend '{other}' (expected heap|wheel|auto)"
            )),
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Self::Heap => "heap",
            Self::Wheel => "wheel",
            Self::Auto => "auto",
        }
    }
}

/// Steady-state event-queue depth at which [`EventBackend::Auto`]
/// switches from the binary heap to the timing wheel. Chosen from the
/// shard-scaling measurements recorded in `BENCH_sim.json`
/// (`repro perf --shards`): below ~192 resident events the heap's cache
/// locality wins; above it the wheel's amortized O(1) pops do.
pub const AUTO_WHEEL_CROSSOVER_DEPTH: u64 = 192;

impl Default for HotpathConfig {
    fn default() -> Self {
        Self {
            profile_cache: true,
            txn_slab_reuse: true,
            timing_wheel: false,
            event_backend: EventBackend::Heap,
        }
    }
}

impl HotpathConfig {
    /// Resolves the event-queue backend for a run whose steady-state
    /// closed-loop depth is estimated at `steady_depth_hint` (see
    /// [`crate::hostq::HostQueueConfig::steady_depth_hint`]; sharded
    /// runners divide the hint by the shard count first). Returns `true`
    /// for the timing wheel, `false` for the binary heap.
    pub fn wheel_for_depth(&self, steady_depth_hint: u64) -> bool {
        match self.event_backend {
            EventBackend::Heap => self.timing_wheel,
            EventBackend::Wheel => true,
            EventBackend::Auto => {
                self.timing_wheel || steady_depth_hint >= AUTO_WHEEL_CROSSOVER_DEPTH
            }
        }
    }
}

impl SsdConfig {
    /// The paper's §7.1 configuration (full 512 GiB-class geometry).
    pub fn asplos21() -> Self {
        Self {
            channels: 4,
            chip: ChipGeometry::asplos21(),
            timings: NandTimings::table1(),
            ecc: EccEngineModel::asplos21(),
            condition: OperatingCondition::new(0.0, 0.0, 30.0),
            seed: 0x55D_0001,
            ideal_no_retry: false,
            outlier_rate: 0.0,
            gc_threshold_blocks: 4,
            gc_policy: GcPolicy::Greedy,
            min_suspend_benefit_us: 100,
            hotpath: HotpathConfig::default(),
        }
    }

    /// The paper geometry scaled down (64 blocks/plane instead of 1,888) so a
    /// simulation run fits in test budgets. Per-request latency math is
    /// identical; only capacity shrinks, and `tests/scaling.rs` asserts that
    /// response-time *ratios* between mechanisms are insensitive to this.
    pub fn scaled_for_tests() -> Self {
        let mut cfg = Self::asplos21();
        cfg.chip.blocks_per_plane = 64;
        cfg
    }

    /// Sets the operating point (builder-style).
    pub fn with_condition(mut self, condition: OperatingCondition) -> Self {
        self.condition = condition;
        self
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the garbage-collection policy (builder-style).
    pub fn with_gc_policy(mut self, policy: GcPolicy) -> Self {
        self.gc_policy = policy;
        self
    }

    /// Selects the event-queue backend (builder-style): `true` for the
    /// hierarchical timing wheel, `false` for the default binary heap.
    pub fn with_timing_wheel(mut self, on: bool) -> Self {
        self.hotpath.timing_wheel = on;
        self
    }

    /// Sets the event-backend selection policy (builder-style); see
    /// [`EventBackend`].
    pub fn with_event_backend(mut self, backend: EventBackend) -> Self {
        self.hotpath.event_backend = backend;
        self
    }

    /// Marks this configuration as the ideal no-read-retry SSD (builder-style).
    pub fn ideal(mut self) -> Self {
        self.ideal_no_retry = true;
        self
    }

    /// Total dies across all channels.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.chip.dies
    }

    /// Total planes across all channels.
    pub fn total_planes(&self) -> u32 {
        self.total_dies() * self.chip.planes_per_die
    }

    /// Total physical blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() as u64 * self.chip.blocks_per_plane as u64
    }

    /// Total physical pages.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.chip.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn raw_capacity_bytes(&self) -> u64 {
        self.total_pages() * self.chip.page_bytes as u64
    }

    /// Largest LPN count the FTL will accept, leaving room for
    /// over-provisioning (one free block per plane beyond the GC threshold).
    pub fn max_lpns(&self) -> u64 {
        let reserve_blocks = (self.gc_threshold_blocks as u64 + 2) * self.total_planes() as u64;
        let usable_blocks = self.total_blocks().saturating_sub(reserve_blocks);
        usable_blocks * self.chip.pages_per_block as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("at least one channel is required".into());
        }
        self.chip.validate()?;
        if !(0.0..=1.0).contains(&self.outlier_rate) {
            return Err(format!(
                "outlier rate {} must be in [0, 1]",
                self.outlier_rate
            ));
        }
        if self.gc_threshold_blocks < 1 {
            return Err("gc threshold must be at least 1 block".into());
        }
        if self.chip.blocks_per_plane <= self.gc_threshold_blocks + 2 {
            return Err("geometry too small for the GC reserve".into());
        }
        self.gc_policy.validate().map_err(String::from)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_7_1() {
        let cfg = SsdConfig::asplos21();
        cfg.validate().unwrap();
        assert_eq!(cfg.channels, 4);
        assert_eq!(cfg.chip.dies, 4);
        assert_eq!(cfg.chip.planes_per_die, 2);
        assert_eq!(cfg.chip.blocks_per_plane, 1888);
        assert_eq!(cfg.chip.pages_per_block, 576);
        assert_eq!(cfg.ecc.capability, 72);
        // Raw ≈ 531 GB covers the 512 GiB usable capacity.
        assert!(cfg.raw_capacity_bytes() > 512 * 1024 * 1024 * 1024);
        assert!(cfg.max_lpns() > 0);
    }

    #[test]
    fn scaled_config_preserves_latency_parameters() {
        let full = SsdConfig::asplos21();
        let small = SsdConfig::scaled_for_tests();
        small.validate().unwrap();
        assert_eq!(full.timings, small.timings);
        assert_eq!(full.ecc, small.ecc);
        assert_eq!(full.chip.pages_per_block, small.chip.pages_per_block);
        assert!(small.total_pages() < full.total_pages());
    }

    #[test]
    fn builder_methods() {
        let cfg = SsdConfig::scaled_for_tests()
            .with_seed(99)
            .with_condition(OperatingCondition::new(2000.0, 12.0, 30.0))
            .ideal();
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.condition.pec, 2000.0);
        assert!(cfg.ideal_no_retry);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = SsdConfig::scaled_for_tests();
        cfg.channels = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::scaled_for_tests();
        cfg.outlier_rate = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::scaled_for_tests();
        cfg.chip.blocks_per_plane = 5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn max_lpns_leaves_overprovisioning() {
        let cfg = SsdConfig::scaled_for_tests();
        assert!(cfg.max_lpns() < cfg.total_pages());
        // At least the GC reserve per plane is held back.
        let held_back = cfg.total_pages() - cfg.max_lpns();
        assert!(held_back >= cfg.total_planes() as u64 * cfg.chip.pages_per_block as u64);
    }
}
