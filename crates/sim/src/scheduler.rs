//! Die- and channel-level command scheduling state machines.
//!
//! This module holds the per-resource state the SSD orchestrator
//! ([`crate::ssd::Ssd`]) schedules over:
//!
//! * `DieState` (crate-private) — one flash die: the currently executing
//!   `DieJob`, three priority queues (P0 retry continuations, P1 first
//!   sensings, P2 programs/erases), program/erase suspension, and the die's
//!   installed sensing phases;
//! * `ChannelState` (crate-private) — one channel: a DMA bus (tDMA per
//!   page, FIFO arbitration) and a dedicated ECC decoder (tECC per page,
//!   FIFO), so sensing on one die can overlap a transfer and a decode of
//!   other pages (Fig. 6);
//! * `Event` (crate-private) — the discrete-event vocabulary connecting
//!   them.
//!
//! Die-level scheduling priorities (enforced by `Ssd::pump_die`):
//!
//! 1. **P0** — continuations of in-flight read-retry operations (retry
//!    sensings, `SET FEATURE`, pipelined `CACHE READ`s). A read owns its die
//!    for the duration of its retry operation, as prior work assumes
//!    (paper footnote 10).
//! 2. **P1** — first sensings of host/GC reads.
//! 3. resume of a suspended program/erase;
//! 4. **P2** — programs and erases (suspendable; GC ops jump ahead when a
//!    plane runs critically low on free blocks).
//!
//! Generation counters (`gen`) make stale completion events cancellable: any
//! state change that invalidates the in-flight `DieDone` (suspension, RESET)
//! bumps the counter, and the handler drops events whose `gen` mismatches.

use crate::config::ArbPolicy;
use crate::request::{ReqId, TxnId};
use rr_flash::timing::SensePhases;
use rr_util::time::SimTime;
use std::collections::VecDeque;

/// The device-side host-queue arbiter: decides which submission queue the
/// controller fetches its next command from (NVMe §4.13-style round-robin /
/// weighted-round-robin).
///
/// The arbiter is a pure turn-taking state machine — it holds no queue
/// contents, only the rotation cursor and the credits left in the current
/// queue's turn — so the multi-queue front end ([`crate::hostq`]) can consult
/// it against whatever backlog predicate the admission path has. Turns are
/// credit-based: queue `q` may fetch up to `burst` (round-robin) or
/// `weight_q × burst` (weighted) consecutive commands before the cursor
/// rotates; a queue with no fetchable command forfeits the rest of its turn
/// (work-conserving), and a queue is never skipped while it still has both
/// credits and work — which bounds starvation to one full rotation.
///
/// # Example
///
/// ```
/// use rr_sim::config::ArbPolicy;
/// use rr_sim::scheduler::Arbiter;
///
/// // Weights 3:1, burst 1: the drain pattern is q0 q0 q0 q1 …
/// let mut arb = Arbiter::new(ArbPolicy::WeightedRoundRobin, 1, vec![3, 1]);
/// let picks: Vec<usize> = (0..8).map(|_| arb.pick(|_| true).unwrap()).collect();
/// assert_eq!(picks, vec![0, 0, 0, 1, 0, 0, 0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: ArbPolicy,
    burst: u32,
    weights: Vec<u32>,
    current: usize,
    credits: u32,
}

impl Arbiter {
    /// Creates an arbiter over `weights.len()` queues. Weights are ignored
    /// under plain round-robin.
    ///
    /// # Panics
    ///
    /// Panics if there are no queues, `burst` is zero, or any weight is zero.
    pub fn new(policy: ArbPolicy, burst: u32, weights: Vec<u32>) -> Self {
        assert!(!weights.is_empty(), "arbiter needs at least one queue");
        assert!(burst >= 1, "arbitration burst must be at least 1");
        assert!(
            weights.iter().all(|&w| w >= 1),
            "arbitration weights must be at least 1"
        );
        let mut arb = Self {
            policy,
            burst,
            weights,
            current: 0,
            credits: 0,
        };
        arb.credits = arb.allowance(0);
        arb
    }

    /// Number of queues under arbitration.
    pub fn queues(&self) -> usize {
        self.weights.len()
    }

    /// Commands queue `q` may fetch per turn.
    fn allowance(&self, q: usize) -> u32 {
        match self.policy {
            ArbPolicy::RoundRobin => self.burst,
            ArbPolicy::WeightedRoundRobin => self.weights[q].saturating_mul(self.burst),
        }
    }

    /// Picks the queue to fetch the next command from, given which queues
    /// currently have a fetchable command, and consumes one credit from it.
    /// Returns `None` when no queue has work.
    pub fn pick(&mut self, has_work: impl Fn(usize) -> bool) -> Option<usize> {
        let n = self.queues();
        // `n + 1` visits: the current queue may start with zero credits left
        // in its turn, in which case the full rotation must come back around
        // to it with a fresh allowance.
        for _ in 0..=n {
            if self.credits > 0 && has_work(self.current) {
                self.credits -= 1;
                return Some(self.current);
            }
            self.current = (self.current + 1) % n;
            self.credits = self.allowance(self.current);
        }
        None
    }
}

const NIL: u32 = u32::MAX;

/// An index-linked FIFO queue over a slab of reusable nodes.
///
/// The per-die command queues need three operations on the hot path:
/// `push_back`, `pop_front`, and *removal from the middle* (GC commands
/// jumping ahead of host programs, RESET cancelling a read's queued
/// speculation). A `VecDeque` pays O(n) element shifting for the middle
/// removal; here every unlink is O(1) pointer surgery, and freed nodes are
/// recycled through an internal free list so a warmed-up queue never
/// allocates again.
#[derive(Debug, Clone)]
pub(crate) struct LinkedQueue<T> {
    nodes: Vec<Node<T>>,
    free_head: u32,
    head: u32,
    tail: u32,
    len: u32,
}

#[derive(Debug, Clone)]
struct Node<T> {
    prev: u32,
    next: u32,
    item: Option<T>,
}

impl<T> LinkedQueue<T> {
    pub(crate) fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free_head: NIL,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc_node(&mut self, item: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].next;
            let node = &mut self.nodes[idx as usize];
            node.prev = NIL;
            node.next = NIL;
            node.item = Some(item);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NIL, "queue slab exhausted 2^32 nodes");
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                item: Some(item),
            });
            idx
        }
    }

    /// Unlinks `idx` and returns its payload; the node joins the free list.
    fn unlink(&mut self, idx: u32) -> T {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        let node = &mut self.nodes[idx as usize];
        node.prev = NIL;
        node.next = self.free_head;
        self.free_head = idx;
        self.len -= 1;
        node.item.take().expect("unlinked a vacant node")
    }

    pub(crate) fn push_back(&mut self, item: T) {
        let idx = self.alloc_node(item);
        if self.tail == NIL {
            self.head = idx;
        } else {
            self.nodes[self.tail as usize].next = idx;
            self.nodes[idx as usize].prev = self.tail;
        }
        self.tail = idx;
        self.len += 1;
    }

    pub(crate) fn pop_front(&mut self) -> Option<T> {
        (self.head != NIL).then(|| self.unlink(self.head))
    }

    pub(crate) fn front(&self) -> Option<&T> {
        (self.head != NIL).then(|| {
            self.nodes[self.head as usize]
                .item
                .as_ref()
                .expect("linked node holds an item")
        })
    }

    /// Unlinks and returns the first item matching `pred` — the O(1)-unlink
    /// replacement for `VecDeque::remove(position(..))`.
    pub(crate) fn pop_first_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut idx = self.head;
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            if pred(node.item.as_ref().expect("linked node holds an item")) {
                return Some(self.unlink(idx));
            }
            idx = node.next;
        }
        None
    }

    /// Drops every queued item, keeping the slab for reuse.
    pub(crate) fn clear(&mut self) {
        while self.pop_front().is_some() {}
    }

    /// Iterates the queued items front to back.
    pub(crate) fn iter(&self) -> LinkedQueueIter<'_, T> {
        LinkedQueueIter {
            queue: self,
            idx: self.head,
        }
    }
}

pub(crate) struct LinkedQueueIter<'a, T> {
    queue: &'a LinkedQueue<T>,
    idx: u32,
}

impl<'a, T> Iterator for LinkedQueueIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.idx == NIL {
            return None;
        }
        let node = &self.queue.nodes[self.idx as usize];
        self.idx = node.next;
        Some(node.item.as_ref().expect("linked node holds an item"))
    }
}

/// Simulator events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// A host request is admitted to the device.
    Arrive(ReqId),
    /// The die's current operation finishes (stale if `gen` mismatches).
    DieDone { die: u32, gen: u64 },
    /// The channel's current DMA transfer finishes.
    TransferDone { channel: u32 },
    /// The channel's ECC decoder finishes the current page.
    EccDone { channel: u32 },
}

/// Operations a read flow queues on its die (P0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueuedOp {
    Sense { step: u32 },
    SetFeature { phases: Option<SensePhases> },
}

/// What a die is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DieJob {
    Sense {
        txn: TxnId,
        step: u32,
    },
    SetFeature {
        txn: TxnId,
    },
    Reset {
        txn: TxnId,
    },
    /// Write waiting for its data transfer (busy_until = MAX) or programming.
    Program {
        txn: TxnId,
        data_loaded: bool,
    },
    Erase {
        txn: TxnId,
    },
    Suspending,
}

/// One flash die: current job, priority queues, suspension state.
#[derive(Debug)]
pub(crate) struct DieState {
    pub(crate) busy_until: SimTime,
    pub(crate) gen: u64,
    pub(crate) job: Option<DieJob>,
    /// The read transaction whose retry operation currently holds this die.
    ///
    /// A read-retry operation owns its die from dispatch until completion
    /// (incl. trailing RESET / SET FEATURE rollback): prior work models retry
    /// steps of one page as sequential on the die (paper footnote 10), and
    /// exclusive ownership is also what keeps one read's `SET FEATURE` from
    /// contaminating another read's sensing on the same die.
    pub(crate) owner: Option<TxnId>,
    pub(crate) p0: LinkedQueue<(TxnId, QueuedOp)>,
    pub(crate) p1: LinkedQueue<TxnId>,
    pub(crate) p2: LinkedQueue<TxnId>,
    pub(crate) suspended: Option<(DieJob, SimTime)>,
    pub(crate) phases: SensePhases,
}

impl DieState {
    pub(crate) fn new(phases: SensePhases) -> Self {
        Self {
            busy_until: SimTime::ZERO,
            gen: 0,
            job: None,
            owner: None,
            p0: LinkedQueue::new(),
            p1: LinkedQueue::new(),
            p2: LinkedQueue::new(),
            suspended: None,
            phases,
        }
    }

    /// Returns the die to its pristine state while keeping queue slabs —
    /// the arena path reuses one `DieState` set across simulation runs.
    pub(crate) fn reset(&mut self, phases: SensePhases) {
        self.busy_until = SimTime::ZERO;
        self.gen = 0;
        self.job = None;
        self.owner = None;
        self.p0.clear();
        self.p1.clear();
        self.p2.clear();
        self.suspended = None;
        self.phases = phases;
    }

    /// A die is busy until its completion event has been *handled* (the job
    /// cleared) — treating `now >= busy_until` as idle would let a
    /// same-timestamp event clobber a job whose `DieDone` hasn't fired yet.
    pub(crate) fn idle(&self) -> bool {
        self.job.is_none()
    }

    /// Starts `job`, running until `until`; returns the generation the
    /// caller must attach to the completion event.
    pub(crate) fn begin(&mut self, job: DieJob, until: SimTime) -> u64 {
        self.job = Some(job);
        self.gen += 1;
        self.busy_until = until;
        self.gen
    }

    /// Suspends the in-flight program/erase if doing so buys more than
    /// `min_benefit` of read latency (§7.2). On success the die runs a
    /// [`DieJob::Suspending`] job for `t_suspend` and the caller schedules
    /// its completion with the returned generation.
    pub(crate) fn try_suspend(
        &mut self,
        now: SimTime,
        min_benefit: SimTime,
        t_suspend: SimTime,
    ) -> Option<u64> {
        let suspendable = matches!(
            self.job,
            Some(DieJob::Program {
                data_loaded: true,
                ..
            }) | Some(DieJob::Erase { .. })
        );
        if !suspendable || self.suspended.is_some() || self.busy_until == SimTime::MAX {
            return None;
        }
        let remaining = self.busy_until.saturating_sub(now);
        if remaining <= min_benefit {
            return None;
        }
        let job = self.job.take().expect("checked suspendable");
        self.suspended = Some((job, remaining));
        Some(self.begin(DieJob::Suspending, now + t_suspend))
    }

    /// Resumes the suspended program/erase, if any; returns the generation
    /// for its (re-scheduled) completion event.
    pub(crate) fn resume(&mut self, now: SimTime) -> Option<u64> {
        let (job, remaining) = self.suspended.take()?;
        Some(self.begin(job, now + remaining))
    }
}

/// One page's worth of data crossing the channel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Transfer {
    pub(crate) txn: TxnId,
    /// `Some(step)` = read data in; `None` = write data out.
    pub(crate) step: Option<u32>,
    pub(crate) errors: u32,
}

/// One channel: FIFO DMA bus plus FIFO ECC decoder.
///
/// Bus arbitration is first-come-first-served per channel: transfers from
/// all dies behind the channel share one queue, so a single 1 Gb/s bus
/// (tDMA per page) serializes data movement even when the dies sense in
/// parallel — exactly the contention that makes multi-die tail latency a
/// channel-scheduling problem.
#[derive(Debug)]
pub(crate) struct ChannelState {
    transfer_q: VecDeque<Transfer>,
    transferring: Option<Transfer>,
    ecc_q: VecDeque<Transfer>,
    decoding: Option<Transfer>,
}

impl ChannelState {
    pub(crate) fn new() -> Self {
        Self {
            transfer_q: VecDeque::new(),
            transferring: None,
            ecc_q: VecDeque::new(),
            decoding: None,
        }
    }

    /// Empties the channel for arena reuse, keeping queue allocations.
    pub(crate) fn reset(&mut self) {
        self.transfer_q.clear();
        self.transferring = None;
        self.ecc_q.clear();
        self.decoding = None;
    }

    /// Queues a transfer on the DMA bus.
    pub(crate) fn enqueue_transfer(&mut self, t: Transfer) {
        self.transfer_q.push_back(t);
    }

    /// If the bus is idle and work is queued, starts the next transfer;
    /// the caller schedules its completion event on `true`.
    pub(crate) fn begin_transfer(&mut self) -> bool {
        if self.transferring.is_none() {
            if let Some(t) = self.transfer_q.pop_front() {
                self.transferring = Some(t);
                return true;
            }
        }
        false
    }

    /// Completes the in-flight transfer.
    ///
    /// # Panics
    ///
    /// Panics if the bus is idle — a completion event without a transfer is
    /// a scheduling bug.
    pub(crate) fn end_transfer(&mut self) -> Transfer {
        self.transferring
            .take()
            .expect("TransferDone with idle channel")
    }

    /// Queues a decode on the ECC engine.
    pub(crate) fn enqueue_decode(&mut self, t: Transfer) {
        self.ecc_q.push_back(t);
    }

    /// If the decoder is idle and work is queued, starts the next decode;
    /// the caller schedules its completion event on `true`.
    pub(crate) fn begin_decode(&mut self) -> bool {
        if self.decoding.is_none() {
            if let Some(d) = self.ecc_q.pop_front() {
                self.decoding = Some(d);
                return true;
            }
        }
        false
    }

    /// Completes the in-flight decode.
    ///
    /// # Panics
    ///
    /// Panics if the decoder is idle.
    pub(crate) fn end_decode(&mut self) -> Transfer {
        self.decoding.take().expect("EccDone with idle decoder")
    }

    /// Whether any transfer or decode is queued or in flight.
    pub(crate) fn has_queued_work(&self) -> bool {
        !self.transfer_q.is_empty() || !self.ecc_q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_flash::timing::NandTimings;

    fn die() -> DieState {
        DieState::new(NandTimings::table1().sense)
    }

    #[test]
    fn begin_bumps_generation_and_sets_job() {
        let mut d = die();
        assert!(d.idle());
        let g1 = d.begin(DieJob::Erase { txn: TxnId(1) }, SimTime::from_us(10));
        assert_eq!(g1, 1);
        assert!(!d.idle());
        assert_eq!(d.busy_until, SimTime::from_us(10));
        d.job = None;
        let g2 = d.begin(DieJob::Suspending, SimTime::from_us(20));
        assert_eq!(g2, 2);
    }

    #[test]
    fn suspension_only_pays_when_benefit_exceeds_threshold() {
        let min_benefit = SimTime::from_us(100);
        let t_suspend = SimTime::from_us(20);
        let mut d = die();
        // An erase with 5 ms left: worth suspending.
        d.begin(DieJob::Erase { txn: TxnId(0) }, SimTime::from_us(5_000));
        let gen = d.try_suspend(SimTime::ZERO, min_benefit, t_suspend);
        assert!(gen.is_some());
        assert!(matches!(d.job, Some(DieJob::Suspending)));
        assert!(d.suspended.is_some());
        // Already suspended: a second attempt is refused.
        assert!(d
            .try_suspend(SimTime::ZERO, min_benefit, t_suspend)
            .is_none());
        // Resume restores the remaining time.
        d.job = None;
        let now = SimTime::from_us(20);
        assert!(d.resume(now).is_some());
        assert_eq!(d.busy_until, now + SimTime::from_us(5_000));
    }

    #[test]
    fn nearly_finished_program_is_not_suspended() {
        let mut d = die();
        d.begin(
            DieJob::Program {
                txn: TxnId(0),
                data_loaded: true,
            },
            SimTime::from_us(50),
        );
        // Only 50 µs left < 100 µs threshold: not worth the suspend cost.
        let gen = d.try_suspend(SimTime::ZERO, SimTime::from_us(100), SimTime::from_us(20));
        assert!(gen.is_none());
        assert!(d.suspended.is_none());
    }

    #[test]
    fn program_awaiting_data_is_not_suspendable() {
        let mut d = die();
        d.begin(
            DieJob::Program {
                txn: TxnId(0),
                data_loaded: false,
            },
            SimTime::MAX,
        );
        assert!(d
            .try_suspend(SimTime::ZERO, SimTime::from_us(100), SimTime::from_us(20))
            .is_none());
    }

    #[test]
    fn linked_queue_is_fifo() {
        let mut q: LinkedQueue<u32> = LinkedQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop_front(), None);
        for i in 0..5 {
            q.push_back(i);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.front(), Some(&0));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        for i in 0..5 {
            assert_eq!(q.pop_front(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn linked_queue_middle_removal_preserves_order() {
        let mut q: LinkedQueue<u32> = LinkedQueue::new();
        for i in 0..6 {
            q.push_back(i);
        }
        // Remove from the middle, the head, and the tail.
        assert_eq!(q.pop_first_where(|&x| x == 3), Some(3));
        assert_eq!(q.pop_first_where(|&x| x == 0), Some(0));
        assert_eq!(q.pop_first_where(|&x| x == 5), Some(5));
        assert_eq!(q.pop_first_where(|&x| x == 99), None);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![1, 2, 4]);
        // Freed nodes are recycled; pushes go to the back as usual.
        q.push_back(7);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![1, 2, 4, 7]);
        assert_eq!(q.nodes.len(), 6, "slab did not grow past its peak");
    }

    #[test]
    fn linked_queue_clear_keeps_slab() {
        let mut q: LinkedQueue<u32> = LinkedQueue::new();
        for i in 0..4 {
            q.push_back(i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.front(), None);
        for i in 10..14 {
            q.push_back(i);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.nodes.len(), 4, "cleared nodes were reused");
        assert_eq!(q.pop_front(), Some(10));
    }

    #[test]
    fn die_reset_returns_pristine_state() {
        let mut d = die();
        d.begin(DieJob::Erase { txn: TxnId(1) }, SimTime::from_us(10));
        d.p1.push_back(TxnId(2));
        d.p2.push_back(TxnId(3));
        d.owner = Some(TxnId(2));
        d.reset(NandTimings::table1().sense);
        assert!(d.idle());
        assert_eq!(d.gen, 0);
        assert!(d.owner.is_none());
        assert!(d.p0.is_empty() && d.p1.is_empty() && d.p2.is_empty());
        assert!(d.suspended.is_none());
    }

    #[test]
    fn arbiter_round_robin_alternates_with_burst() {
        let mut arb = Arbiter::new(ArbPolicy::RoundRobin, 2, vec![1, 1]);
        let picks: Vec<usize> = (0..8).map(|_| arb.pick(|_| true).unwrap()).collect();
        assert_eq!(picks, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn arbiter_wrr_delivers_the_weight_ratio_while_backlogged() {
        let mut arb = Arbiter::new(ArbPolicy::WeightedRoundRobin, 1, vec![3, 1]);
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            counts[arb.pick(|_| true).expect("both queues backlogged")] += 1;
        }
        // Exactly 3:1 over whole rounds.
        assert_eq!(counts, [300, 100]);
    }

    #[test]
    fn arbiter_idle_queue_forfeits_and_recovers_its_turn() {
        let mut arb = Arbiter::new(ArbPolicy::WeightedRoundRobin, 1, vec![3, 1]);
        // Only q1 has work: q0's turns are forfeited, q1 is served every pick.
        for _ in 0..5 {
            assert_eq!(arb.pick(|q| q == 1), Some(1));
        }
        // q0 comes back: it gets a fresh allowance on its next turn.
        let picks: Vec<usize> = (0..4).map(|_| arb.pick(|_| true).unwrap()).collect();
        assert_eq!(picks.iter().filter(|&&q| q == 0).count(), 3);
        // Nothing to fetch anywhere: no pick, and the arbiter stays usable.
        assert_eq!(arb.pick(|_| false), None);
        assert!(arb.pick(|_| true).is_some());
    }

    #[test]
    fn arbiter_single_queue_always_picks_it() {
        let mut arb = Arbiter::new(ArbPolicy::RoundRobin, 1, vec![1]);
        for _ in 0..10 {
            assert_eq!(arb.pick(|_| true), Some(0));
        }
        assert_eq!(arb.queues(), 1);
    }

    #[test]
    fn channel_bus_and_decoder_are_fifo() {
        let mut ch = ChannelState::new();
        let t = |i| Transfer {
            txn: TxnId(i),
            step: Some(0),
            errors: 0,
        };
        ch.enqueue_transfer(t(1));
        ch.enqueue_transfer(t(2));
        assert!(ch.has_queued_work());
        assert!(ch.begin_transfer());
        // Bus busy: the second transfer must wait.
        assert!(!ch.begin_transfer());
        assert_eq!(ch.end_transfer().txn, TxnId(1));
        assert!(ch.begin_transfer());
        assert_eq!(ch.end_transfer().txn, TxnId(2));
        // Decoder is an independent FIFO.
        ch.enqueue_decode(t(3));
        assert!(ch.begin_decode());
        assert!(!ch.begin_decode());
        assert_eq!(ch.end_decode().txn, TxnId(3));
        assert!(!ch.has_queued_work());
    }
}
