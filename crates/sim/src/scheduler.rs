//! Die- and channel-level command scheduling state machines.
//!
//! This module holds the per-resource state the SSD orchestrator
//! ([`crate::ssd::Ssd`]) schedules over:
//!
//! * [`DieState`] — one flash die: the currently executing [`DieJob`], three
//!   priority queues (P0 retry continuations, P1 first sensings, P2
//!   programs/erases), program/erase suspension, and the die's installed
//!   sensing phases;
//! * [`ChannelState`] — one channel: a DMA bus (tDMA per page, FIFO
//!   arbitration) and a dedicated ECC decoder (tECC per page, FIFO), so
//!   sensing on one die can overlap a transfer and a decode of other pages
//!   (Fig. 6);
//! * [`Event`] — the discrete-event vocabulary connecting them.
//!
//! Die-level scheduling priorities (enforced by `Ssd::pump_die`):
//!
//! 1. **P0** — continuations of in-flight read-retry operations (retry
//!    sensings, `SET FEATURE`, pipelined `CACHE READ`s). A read owns its die
//!    for the duration of its retry operation, as prior work assumes
//!    (paper footnote 10).
//! 2. **P1** — first sensings of host/GC reads.
//! 3. resume of a suspended program/erase;
//! 4. **P2** — programs and erases (suspendable; GC ops jump ahead when a
//!    plane runs critically low on free blocks).
//!
//! Generation counters (`gen`) make stale completion events cancellable: any
//! state change that invalidates the in-flight `DieDone` (suspension, RESET)
//! bumps the counter, and the handler drops events whose `gen` mismatches.

use crate::request::{ReqId, TxnId};
use rr_flash::timing::SensePhases;
use rr_util::time::SimTime;
use std::collections::VecDeque;

/// Simulator events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// A host request is admitted to the device.
    Arrive(ReqId),
    /// The die's current operation finishes (stale if `gen` mismatches).
    DieDone { die: u32, gen: u64 },
    /// The channel's current DMA transfer finishes.
    TransferDone { channel: u32 },
    /// The channel's ECC decoder finishes the current page.
    EccDone { channel: u32 },
}

/// Operations a read flow queues on its die (P0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueuedOp {
    Sense { step: u32 },
    SetFeature { phases: Option<SensePhases> },
}

/// What a die is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DieJob {
    Sense {
        txn: TxnId,
        step: u32,
    },
    SetFeature {
        txn: TxnId,
    },
    Reset {
        txn: TxnId,
    },
    /// Write waiting for its data transfer (busy_until = MAX) or programming.
    Program {
        txn: TxnId,
        data_loaded: bool,
    },
    Erase {
        txn: TxnId,
    },
    Suspending,
}

/// One flash die: current job, priority queues, suspension state.
#[derive(Debug)]
pub(crate) struct DieState {
    pub(crate) busy_until: SimTime,
    pub(crate) gen: u64,
    pub(crate) job: Option<DieJob>,
    /// The read transaction whose retry operation currently holds this die.
    ///
    /// A read-retry operation owns its die from dispatch until completion
    /// (incl. trailing RESET / SET FEATURE rollback): prior work models retry
    /// steps of one page as sequential on the die (paper footnote 10), and
    /// exclusive ownership is also what keeps one read's `SET FEATURE` from
    /// contaminating another read's sensing on the same die.
    pub(crate) owner: Option<TxnId>,
    pub(crate) p0: VecDeque<(TxnId, QueuedOp)>,
    pub(crate) p1: VecDeque<TxnId>,
    pub(crate) p2: VecDeque<TxnId>,
    pub(crate) suspended: Option<(DieJob, SimTime)>,
    pub(crate) phases: SensePhases,
}

impl DieState {
    pub(crate) fn new(phases: SensePhases) -> Self {
        Self {
            busy_until: SimTime::ZERO,
            gen: 0,
            job: None,
            owner: None,
            p0: VecDeque::new(),
            p1: VecDeque::new(),
            p2: VecDeque::new(),
            suspended: None,
            phases,
        }
    }

    /// A die is busy until its completion event has been *handled* (the job
    /// cleared) — treating `now >= busy_until` as idle would let a
    /// same-timestamp event clobber a job whose `DieDone` hasn't fired yet.
    pub(crate) fn idle(&self) -> bool {
        self.job.is_none()
    }

    /// Starts `job`, running until `until`; returns the generation the
    /// caller must attach to the completion event.
    pub(crate) fn begin(&mut self, job: DieJob, until: SimTime) -> u64 {
        self.job = Some(job);
        self.gen += 1;
        self.busy_until = until;
        self.gen
    }

    /// Suspends the in-flight program/erase if doing so buys more than
    /// `min_benefit` of read latency (§7.2). On success the die runs a
    /// [`DieJob::Suspending`] job for `t_suspend` and the caller schedules
    /// its completion with the returned generation.
    pub(crate) fn try_suspend(
        &mut self,
        now: SimTime,
        min_benefit: SimTime,
        t_suspend: SimTime,
    ) -> Option<u64> {
        let suspendable = matches!(
            self.job,
            Some(DieJob::Program {
                data_loaded: true,
                ..
            }) | Some(DieJob::Erase { .. })
        );
        if !suspendable || self.suspended.is_some() || self.busy_until == SimTime::MAX {
            return None;
        }
        let remaining = self.busy_until.saturating_sub(now);
        if remaining <= min_benefit {
            return None;
        }
        let job = self.job.take().expect("checked suspendable");
        self.suspended = Some((job, remaining));
        Some(self.begin(DieJob::Suspending, now + t_suspend))
    }

    /// Resumes the suspended program/erase, if any; returns the generation
    /// for its (re-scheduled) completion event.
    pub(crate) fn resume(&mut self, now: SimTime) -> Option<u64> {
        let (job, remaining) = self.suspended.take()?;
        Some(self.begin(job, now + remaining))
    }
}

/// One page's worth of data crossing the channel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Transfer {
    pub(crate) txn: TxnId,
    /// `Some(step)` = read data in; `None` = write data out.
    pub(crate) step: Option<u32>,
    pub(crate) errors: u32,
}

/// One channel: FIFO DMA bus plus FIFO ECC decoder.
///
/// Bus arbitration is first-come-first-served per channel: transfers from
/// all dies behind the channel share one queue, so a single 1 Gb/s bus
/// (tDMA per page) serializes data movement even when the dies sense in
/// parallel — exactly the contention that makes multi-die tail latency a
/// channel-scheduling problem.
#[derive(Debug)]
pub(crate) struct ChannelState {
    transfer_q: VecDeque<Transfer>,
    transferring: Option<Transfer>,
    ecc_q: VecDeque<Transfer>,
    decoding: Option<Transfer>,
}

impl ChannelState {
    pub(crate) fn new() -> Self {
        Self {
            transfer_q: VecDeque::new(),
            transferring: None,
            ecc_q: VecDeque::new(),
            decoding: None,
        }
    }

    /// Queues a transfer on the DMA bus.
    pub(crate) fn enqueue_transfer(&mut self, t: Transfer) {
        self.transfer_q.push_back(t);
    }

    /// If the bus is idle and work is queued, starts the next transfer;
    /// the caller schedules its completion event on `true`.
    pub(crate) fn begin_transfer(&mut self) -> bool {
        if self.transferring.is_none() {
            if let Some(t) = self.transfer_q.pop_front() {
                self.transferring = Some(t);
                return true;
            }
        }
        false
    }

    /// Completes the in-flight transfer.
    ///
    /// # Panics
    ///
    /// Panics if the bus is idle — a completion event without a transfer is
    /// a scheduling bug.
    pub(crate) fn end_transfer(&mut self) -> Transfer {
        self.transferring
            .take()
            .expect("TransferDone with idle channel")
    }

    /// Queues a decode on the ECC engine.
    pub(crate) fn enqueue_decode(&mut self, t: Transfer) {
        self.ecc_q.push_back(t);
    }

    /// If the decoder is idle and work is queued, starts the next decode;
    /// the caller schedules its completion event on `true`.
    pub(crate) fn begin_decode(&mut self) -> bool {
        if self.decoding.is_none() {
            if let Some(d) = self.ecc_q.pop_front() {
                self.decoding = Some(d);
                return true;
            }
        }
        false
    }

    /// Completes the in-flight decode.
    ///
    /// # Panics
    ///
    /// Panics if the decoder is idle.
    pub(crate) fn end_decode(&mut self) -> Transfer {
        self.decoding.take().expect("EccDone with idle decoder")
    }

    /// Whether any transfer or decode is queued or in flight.
    pub(crate) fn has_queued_work(&self) -> bool {
        !self.transfer_q.is_empty() || !self.ecc_q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_flash::timing::NandTimings;

    fn die() -> DieState {
        DieState::new(NandTimings::table1().sense)
    }

    #[test]
    fn begin_bumps_generation_and_sets_job() {
        let mut d = die();
        assert!(d.idle());
        let g1 = d.begin(DieJob::Erase { txn: TxnId(1) }, SimTime::from_us(10));
        assert_eq!(g1, 1);
        assert!(!d.idle());
        assert_eq!(d.busy_until, SimTime::from_us(10));
        d.job = None;
        let g2 = d.begin(DieJob::Suspending, SimTime::from_us(20));
        assert_eq!(g2, 2);
    }

    #[test]
    fn suspension_only_pays_when_benefit_exceeds_threshold() {
        let min_benefit = SimTime::from_us(100);
        let t_suspend = SimTime::from_us(20);
        let mut d = die();
        // An erase with 5 ms left: worth suspending.
        d.begin(DieJob::Erase { txn: TxnId(0) }, SimTime::from_us(5_000));
        let gen = d.try_suspend(SimTime::ZERO, min_benefit, t_suspend);
        assert!(gen.is_some());
        assert!(matches!(d.job, Some(DieJob::Suspending)));
        assert!(d.suspended.is_some());
        // Already suspended: a second attempt is refused.
        assert!(d
            .try_suspend(SimTime::ZERO, min_benefit, t_suspend)
            .is_none());
        // Resume restores the remaining time.
        d.job = None;
        let now = SimTime::from_us(20);
        assert!(d.resume(now).is_some());
        assert_eq!(d.busy_until, now + SimTime::from_us(5_000));
    }

    #[test]
    fn nearly_finished_program_is_not_suspended() {
        let mut d = die();
        d.begin(
            DieJob::Program {
                txn: TxnId(0),
                data_loaded: true,
            },
            SimTime::from_us(50),
        );
        // Only 50 µs left < 100 µs threshold: not worth the suspend cost.
        let gen = d.try_suspend(SimTime::ZERO, SimTime::from_us(100), SimTime::from_us(20));
        assert!(gen.is_none());
        assert!(d.suspended.is_none());
    }

    #[test]
    fn program_awaiting_data_is_not_suspendable() {
        let mut d = die();
        d.begin(
            DieJob::Program {
                txn: TxnId(0),
                data_loaded: false,
            },
            SimTime::MAX,
        );
        assert!(d
            .try_suspend(SimTime::ZERO, SimTime::from_us(100), SimTime::from_us(20))
            .is_none());
    }

    #[test]
    fn channel_bus_and_decoder_are_fifo() {
        let mut ch = ChannelState::new();
        let t = |i| Transfer {
            txn: TxnId(i),
            step: Some(0),
            errors: 0,
        };
        ch.enqueue_transfer(t(1));
        ch.enqueue_transfer(t(2));
        assert!(ch.has_queued_work());
        assert!(ch.begin_transfer());
        // Bus busy: the second transfer must wait.
        assert!(!ch.begin_transfer());
        assert_eq!(ch.end_transfer().txn, TxnId(1));
        assert!(ch.begin_transfer());
        assert_eq!(ch.end_transfer().txn, TxnId(2));
        // Decoder is an independent FIFO.
        ch.enqueue_decode(t(3));
        assert!(ch.begin_decode());
        assert!(!ch.begin_decode());
        assert_eq!(ch.end_decode().txn, TxnId(3));
        assert!(!ch.has_queued_work());
    }
}
