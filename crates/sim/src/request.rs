//! Host requests and flash transactions.

use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// Host I/O direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Page read.
    Read,
    /// Page write.
    Write,
}

/// One host request as submitted to the SSD (block-trace granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostRequest {
    /// Arrival (submission) time.
    pub arrival: SimTime,
    /// Read or write.
    pub op: IoOp,
    /// First logical page number.
    pub lpn: u64,
    /// Number of consecutive pages.
    pub len_pages: u32,
}

impl HostRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `len_pages` is zero.
    pub fn new(arrival: SimTime, op: IoOp, lpn: u64, len_pages: u32) -> Self {
        assert!(len_pages > 0, "requests must cover at least one page");
        Self {
            arrival,
            op,
            lpn,
            len_pages,
        }
    }

    /// Iterates over the LPNs this request touches.
    pub fn lpns(&self) -> impl Iterator<Item = u64> {
        self.lpn..self.lpn + self.len_pages as u64
    }
}

/// Identifier of an in-flight host request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReqId(pub u32);

/// Identifier of an in-flight flash transaction (one page operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u32);

/// Why a flash transaction exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnKind {
    /// Host read of one page.
    HostRead,
    /// Host write of one page.
    HostWrite,
    /// Garbage-collection read (valid-page move, read half).
    GcRead,
    /// Garbage-collection write (valid-page move, program half).
    GcWrite,
    /// Garbage-collection block erase.
    GcErase,
}

impl TxnKind {
    /// Whether this transaction serves a host request directly.
    pub fn is_host(&self) -> bool {
        matches!(self, TxnKind::HostRead | TxnKind::HostWrite)
    }

    /// Whether this is any kind of read (needs sensing + transfer + decode).
    pub fn is_read(&self) -> bool {
        matches!(self, TxnKind::HostRead | TxnKind::GcRead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lpn_iteration() {
        let r = HostRequest::new(SimTime::ZERO, IoOp::Read, 10, 3);
        assert_eq!(r.lpns().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_length_rejected() {
        HostRequest::new(SimTime::ZERO, IoOp::Write, 0, 0);
    }

    #[test]
    fn txn_kind_classification() {
        assert!(TxnKind::HostRead.is_host());
        assert!(TxnKind::HostRead.is_read());
        assert!(TxnKind::GcRead.is_read());
        assert!(!TxnKind::GcErase.is_read());
        assert!(!TxnKind::GcWrite.is_host());
    }
}
