//! Host-side load generation: how trace requests are admitted to the SSD.
//!
//! The load axis is first-class: the same trace can be replayed
//!
//! * **open-loop** — requests arrive at their trace timestamps regardless of
//!   whether the device keeps up (arrival-rate-driven; the classic block-trace
//!   replay, and the mode every `Ssd::run` call uses);
//! * **closed-loop** — trace timestamps are ignored and a fixed number of
//!   requests (the *queue depth*) is kept outstanding: the next request is
//!   admitted the instant one completes. Sweeping the queue depth sweeps
//!   device load directly, which is how tail-latency-vs-load curves are
//!   measured on real SSDs (`fio --iodepth`, MILC-style cluster sweeps).
//!
//! Closed-loop response time is measured from *admission* (the moment the
//! request is handed to the device), not from any trace timestamp — host-side
//! queueing before admission is the load generator's business, not the
//! device's.
//!
//! # Example
//!
//! ```
//! use rr_sim::config::SsdConfig;
//! use rr_sim::readflow::BaselineController;
//! use rr_sim::replay::ReplayMode;
//! use rr_sim::request::{HostRequest, IoOp};
//! use rr_sim::ssd::Ssd;
//! use rr_util::time::SimTime;
//!
//! let cfg = SsdConfig::scaled_for_tests();
//! let trace: Vec<_> = (0..8)
//!     .map(|i| HostRequest::new(SimTime::ZERO, IoOp::Read, i * 11, 1))
//!     .collect();
//! // Keep 4 requests in flight at all times.
//! let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 1_000).unwrap();
//! let report = ssd.run_with(&trace, ReplayMode::closed_loop(4));
//! assert_eq!(report.requests_completed, 8);
//! assert_eq!(report.read_latency.count, 8);
//! ```

use crate::config::ConfigError;
use crate::request::HostRequest;
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Fixed-point denominator of the open-loop rate multiplier (parts per
/// million, so rates keep derived `Eq`/hash semantics and integer-exact
/// arrival scaling).
pub const RATE_PPM: u64 = 1_000_000;

/// How host requests are admitted to the device.
///
/// # Example
///
/// ```
/// use rr_sim::replay::ReplayMode;
///
/// // Closed loop: 8 requests kept outstanding, trace timestamps ignored.
/// let qd = ReplayMode::closed_loop(8);
/// assert!(qd.is_closed_loop());
///
/// // Open loop at twice the trace's native arrival rate; rate 1.0
/// // degenerates to the plain timestamp-driven replay.
/// let doubled = ReplayMode::open_loop_rate(2.0);
/// assert!(!doubled.is_closed_loop());
/// assert_eq!(ReplayMode::open_loop_rate(1.0), ReplayMode::OpenLoop);
///
/// // Rates from external input validate instead of panicking.
/// assert!(ReplayMode::try_open_loop_rate(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayMode {
    /// Replay requests at their trace timestamps (arrival-rate-driven).
    OpenLoop,
    /// Replay open-loop with every trace inter-arrival time divided by
    /// `rate_ppm / 1e6` — the offered-load multiplier of rate sweeps.
    /// `rate_ppm = 2_000_000` doubles the arrival rate; values below 1e6
    /// stretch the trace out. Build via [`ReplayMode::open_loop_rate`].
    OpenLoopScaled {
        /// Arrival-rate multiplier in parts per million (≥ 1).
        rate_ppm: u64,
    },
    /// Ignore trace timestamps and keep `queue_depth` requests outstanding,
    /// admitting the next request (in trace order) whenever one completes.
    ClosedLoop {
        /// Number of requests kept in flight (≥ 1). Depth 1 degenerates to a
        /// serial device: each request runs in complete isolation.
        queue_depth: u32,
    },
}

impl ReplayMode {
    /// Closed-loop replay at `queue_depth` outstanding requests.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn closed_loop(queue_depth: u32) -> Self {
        assert!(queue_depth >= 1, "queue depth must be at least 1");
        ReplayMode::ClosedLoop { queue_depth }
    }

    /// Open-loop replay with trace arrival times compressed by `rate`
    /// (2.0 = twice the offered load, 0.5 = half). A rate of exactly 1.0
    /// degenerates to plain [`ReplayMode::OpenLoop`].
    ///
    /// # Panics
    ///
    /// Panics if `rate` is rejected by [`ReplayMode::try_open_loop_rate`]
    /// (not finite, or not positive).
    pub fn open_loop_rate(rate: f64) -> Self {
        Self::try_open_loop_rate(rate).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ReplayMode::open_loop_rate`] for rates coming from
    /// external input (CLI flags, sweep scripts).
    ///
    /// The valid range is any finite `rate > 0`. Rates are stored in ppm
    /// fixed point, so values below 1 ppm (10⁻⁶) — including sub-ppm inputs
    /// like `1e-9` — clamp to the 1 ppm floor instead of rounding to an
    /// (invalid) zero multiplier, and values beyond `u64::MAX` ppm saturate.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when `rate` is not finite and positive
    /// (NaN, ±∞, zero, or negative).
    pub fn try_open_loop_rate(rate: f64) -> Result<Self, ConfigError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ConfigError::new(format!(
                "open-loop rate multiplier must be finite and positive, got {rate}"
            )));
        }
        // `as u64` saturates at the type bounds; the max(1) clamps sub-ppm
        // rates onto the documented floor.
        let rate_ppm = ((rate * RATE_PPM as f64).round() as u64).max(1);
        Ok(if rate_ppm == RATE_PPM {
            ReplayMode::OpenLoop
        } else {
            ReplayMode::OpenLoopScaled { rate_ppm }
        })
    }

    /// Whether this mode admits on completion rather than by timestamp.
    pub fn is_closed_loop(&self) -> bool {
        matches!(self, ReplayMode::ClosedLoop { .. })
    }

    /// Validates the mode.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem (zero queue depth or rate).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ReplayMode::OpenLoop => Ok(()),
            ReplayMode::OpenLoopScaled { rate_ppm: 0 } => {
                Err("open-loop rate multiplier must be at least 1 ppm".into())
            }
            ReplayMode::OpenLoopScaled { .. } => Ok(()),
            ReplayMode::ClosedLoop { queue_depth: 0 } => {
                Err("closed-loop queue depth must be at least 1".into())
            }
            ReplayMode::ClosedLoop { .. } => Ok(()),
        }
    }
}

/// Scales an arrival timestamp by `rate_ppm` with exact integer math:
/// `t · 1e6 / rate_ppm`, saturating at the clock's maximum.
fn scale_arrival(t: SimTime, rate_ppm: u64) -> SimTime {
    let scaled = (t.as_ns() as u128) * (RATE_PPM as u128) / (rate_ppm as u128);
    SimTime::from_ns(u64::try_from(scaled).unwrap_or(u64::MAX))
}

/// The host-side load generator driving one replay.
///
/// Owns the not-yet-admitted backlog; the simulator asks it for the initial
/// admissions up front, then for one follow-up admission per processed
/// arrival (open loop) or per completed request (closed loop). Feeding
/// open-loop arrivals one at a time keeps the event heap as small as the
/// device's actual concurrency instead of as deep as the whole trace —
/// a large constant-factor win on heap sift costs.
#[derive(Debug)]
pub(crate) enum LoadGenerator {
    /// Open loop: arrivals not yet scheduled, in trace order, with their
    /// (possibly rate-scaled) admission timestamps.
    Open {
        /// Remaining arrivals, front = next.
        pending: VecDeque<(SimTime, HostRequest)>,
    },
    /// Closed loop: requests not yet handed to the device, in trace order.
    Closed { pending: VecDeque<HostRequest> },
}

impl LoadGenerator {
    /// A generator with nothing to admit (the simulator's pre-run state).
    pub(crate) fn idle() -> Self {
        LoadGenerator::Open {
            pending: VecDeque::new(),
        }
    }

    /// Builds the generator for `mode` over `trace` and returns the requests
    /// to admit immediately, each with its admission timestamp.
    pub(crate) fn start(
        mode: ReplayMode,
        trace: &[HostRequest],
    ) -> (Self, Vec<(SimTime, HostRequest)>) {
        match mode {
            ReplayMode::OpenLoop => Self::start_open(trace.iter().map(|&r| (r.arrival, r))),
            ReplayMode::OpenLoopScaled { rate_ppm } => Self::start_open(
                trace
                    .iter()
                    .map(|&r| (scale_arrival(r.arrival, rate_ppm), r)),
            ),
            ReplayMode::ClosedLoop { queue_depth } => {
                let window = (queue_depth as usize).min(trace.len());
                let initial = trace[..window]
                    .iter()
                    .map(|&r| (SimTime::ZERO, r))
                    .collect();
                (
                    LoadGenerator::Closed {
                        pending: trace[window..].iter().copied().collect(),
                    },
                    initial,
                )
            }
        }
    }

    fn start_open(
        arrivals: impl Iterator<Item = (SimTime, HostRequest)>,
    ) -> (Self, Vec<(SimTime, HostRequest)>) {
        let mut pending: Vec<(SimTime, HostRequest)> = arrivals.collect();
        // Lazy admission schedules each arrival while handling the previous
        // one, so admission order must be time-ordered. Traces built via
        // `Trace::new` already are; raw request slices may not be — a stable
        // sort preserves trace order among equal timestamps.
        if !pending.windows(2).all(|w| w[0].0 <= w[1].0) {
            pending.sort_by_key(|&(at, _)| at);
        }
        let mut pending: VecDeque<(SimTime, HostRequest)> = pending.into();
        let initial = pending.pop_front().into_iter().collect();
        (LoadGenerator::Open { pending }, initial)
    }

    /// An open-loop arrival was processed; returns the next arrival to
    /// schedule (trace order guarantees non-decreasing timestamps).
    pub(crate) fn next_arrival(&mut self) -> Option<(SimTime, HostRequest)> {
        match self {
            LoadGenerator::Open { pending } => pending.pop_front(),
            LoadGenerator::Closed { .. } => None,
        }
    }

    /// A host request completed; returns the next request to admit now (if
    /// the mode admits on completion and backlog remains).
    pub(crate) fn on_completion(&mut self) -> Option<HostRequest> {
        match self {
            LoadGenerator::Open { .. } => None,
            LoadGenerator::Closed { pending } => pending.pop_front(),
        }
    }

    /// Requests the generator has not yet handed out (scheduled arrivals or
    /// closed-loop backlog) — must be zero once a replay drains.
    pub(crate) fn pending_len(&self) -> usize {
        match self {
            LoadGenerator::Open { pending } => pending.len(),
            LoadGenerator::Closed { pending } => pending.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoOp;

    fn trace(n: u64) -> Vec<HostRequest> {
        (0..n)
            .map(|i| HostRequest::new(SimTime::from_us(100 * i), IoOp::Read, i, 1))
            .collect()
    }

    #[test]
    fn open_loop_admits_in_trace_order_one_at_a_time() {
        let t = trace(3);
        let (mut generator, initial) = LoadGenerator::start(ReplayMode::OpenLoop, &t);
        // Only the first arrival is scheduled eagerly; the rest feed in one
        // per processed arrival so the event heap stays shallow.
        assert_eq!(initial.len(), 1);
        assert_eq!(initial[0].0, SimTime::ZERO);
        assert_eq!(
            generator.next_arrival(),
            Some((SimTime::from_us(100), t[1]))
        );
        assert_eq!(
            generator.next_arrival(),
            Some((SimTime::from_us(200), t[2]))
        );
        assert_eq!(generator.next_arrival(), None);
        assert_eq!(generator.on_completion(), None);
    }

    #[test]
    fn closed_loop_admits_window_then_one_per_completion() {
        let t = trace(5);
        let (mut generator, initial) = LoadGenerator::start(ReplayMode::closed_loop(2), &t);
        assert_eq!(initial.len(), 2);
        // Initial admissions happen at t = 0, not at trace timestamps.
        assert!(initial.iter().all(|&(at, _)| at == SimTime::ZERO));
        // Backlog drains one request per completion, in trace order.
        assert_eq!(generator.on_completion().map(|r| r.lpn), Some(2));
        assert_eq!(generator.on_completion().map(|r| r.lpn), Some(3));
        assert_eq!(generator.on_completion().map(|r| r.lpn), Some(4));
        assert_eq!(generator.on_completion(), None);
    }

    #[test]
    fn queue_depth_larger_than_trace_is_fine() {
        let t = trace(2);
        let (mut generator, initial) = LoadGenerator::start(ReplayMode::closed_loop(16), &t);
        assert_eq!(initial.len(), 2);
        assert_eq!(generator.on_completion(), None);
    }

    #[test]
    fn mode_validation() {
        assert!(ReplayMode::OpenLoop.validate().is_ok());
        assert!(ReplayMode::ClosedLoop { queue_depth: 0 }
            .validate()
            .is_err());
        assert!(ReplayMode::OpenLoopScaled { rate_ppm: 0 }
            .validate()
            .is_err());
        assert!(ReplayMode::open_loop_rate(2.0).validate().is_ok());
        assert!(ReplayMode::closed_loop(1).validate().is_ok());
        assert!(ReplayMode::closed_loop(4).is_closed_loop());
        assert!(!ReplayMode::OpenLoop.is_closed_loop());
        assert!(!ReplayMode::open_loop_rate(2.0).is_closed_loop());
    }

    #[test]
    fn rate_one_degenerates_to_plain_open_loop() {
        assert_eq!(ReplayMode::open_loop_rate(1.0), ReplayMode::OpenLoop);
    }

    #[test]
    fn rate_scaling_compresses_and_stretches_arrivals() {
        let t = trace(3);
        let drain = |mode: ReplayMode| -> Vec<SimTime> {
            let (mut generator, initial) = LoadGenerator::start(mode, &t);
            let mut times: Vec<SimTime> = initial.iter().map(|&(at, _)| at).collect();
            while let Some((at, _)) = generator.next_arrival() {
                times.push(at);
            }
            times
        };
        // Rate 2: arrivals at half their trace offsets.
        let doubled = drain(ReplayMode::open_loop_rate(2.0));
        assert_eq!(
            doubled,
            vec![SimTime::ZERO, SimTime::from_us(50), SimTime::from_us(100)]
        );
        // Rate 0.5: arrivals stretched to twice their offsets.
        let halved = drain(ReplayMode::open_loop_rate(0.5));
        assert_eq!(
            halved,
            vec![SimTime::ZERO, SimTime::from_us(200), SimTime::from_us(400)]
        );
        // Scaling preserves trace order.
        assert!(halved.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_constructor_panics() {
        ReplayMode::open_loop_rate(0.0);
    }

    #[test]
    fn sub_ppm_rates_clamp_to_the_fixed_point_floor() {
        // Regression: `(1e-9 · 1e6).round()` is 0 ppm, which used to trip an
        // `assert!(rate_ppm >= 1)` panic. Sub-ppm rates now clamp to 1 ppm.
        for tiny in [1e-9, 1e-7, f64::MIN_POSITIVE] {
            assert_eq!(
                ReplayMode::try_open_loop_rate(tiny),
                Ok(ReplayMode::OpenLoopScaled { rate_ppm: 1 }),
                "rate {tiny} must clamp, not panic"
            );
        }
        // The clamped mode validates and replays (maximally stretched).
        let mode = ReplayMode::open_loop_rate(1e-9);
        assert!(mode.validate().is_ok());
        let t = trace(2);
        let (_, initial) = LoadGenerator::start(mode, &t);
        assert_eq!(initial.len(), 1);
        // Huge rates saturate instead of wrapping.
        assert!(ReplayMode::try_open_loop_rate(1e30).is_ok());
    }

    #[test]
    fn non_finite_and_non_positive_rates_are_config_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let err = ReplayMode::try_open_loop_rate(bad)
                .expect_err("non-finite/non-positive rates must be rejected");
            assert!(
                String::from(err).contains("finite and positive"),
                "error names the valid range"
            );
        }
    }

    #[test]
    fn unsorted_raw_arrivals_are_admitted_in_time_order() {
        // Raw request slices (no Trace::new sorting) must still replay:
        // lazy admission sorts them stably by arrival first.
        let reqs = vec![
            HostRequest::new(SimTime::from_us(300), IoOp::Read, 0, 1),
            HostRequest::new(SimTime::from_us(100), IoOp::Read, 1, 1),
            HostRequest::new(SimTime::from_us(200), IoOp::Read, 2, 1),
        ];
        let (mut generator, initial) = LoadGenerator::start(ReplayMode::OpenLoop, &reqs);
        assert_eq!(initial[0].0, SimTime::from_us(100));
        assert_eq!(
            generator.next_arrival(),
            Some((SimTime::from_us(200), reqs[2]))
        );
        assert_eq!(
            generator.next_arrival(),
            Some((SimTime::from_us(300), reqs[0]))
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_queue_depth_constructor_panics() {
        ReplayMode::closed_loop(0);
    }
}
