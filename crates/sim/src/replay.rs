//! Host-side load generation: how trace requests are admitted to the SSD.
//!
//! The load axis is first-class: the same trace can be replayed
//!
//! * **open-loop** — requests arrive at their trace timestamps regardless of
//!   whether the device keeps up (arrival-rate-driven; the classic block-trace
//!   replay, and the mode every `Ssd::run` call uses);
//! * **closed-loop** — trace timestamps are ignored and a fixed number of
//!   requests (the *queue depth*) is kept outstanding: the next request is
//!   admitted the instant one completes. Sweeping the queue depth sweeps
//!   device load directly, which is how tail-latency-vs-load curves are
//!   measured on real SSDs (`fio --iodepth`, MILC-style cluster sweeps).
//!
//! Closed-loop response time is measured from *admission* (the moment the
//! request is handed to the device), not from any trace timestamp — host-side
//! queueing before admission is the load generator's business, not the
//! device's.
//!
//! # Example
//!
//! ```
//! use rr_sim::config::SsdConfig;
//! use rr_sim::readflow::BaselineController;
//! use rr_sim::replay::ReplayMode;
//! use rr_sim::request::{HostRequest, IoOp};
//! use rr_sim::ssd::Ssd;
//! use rr_util::time::SimTime;
//!
//! let cfg = SsdConfig::scaled_for_tests();
//! let trace: Vec<_> = (0..8)
//!     .map(|i| HostRequest::new(SimTime::ZERO, IoOp::Read, i * 11, 1))
//!     .collect();
//! // Keep 4 requests in flight at all times.
//! let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 1_000).unwrap();
//! let report = ssd.run_with(&trace, ReplayMode::closed_loop(4));
//! assert_eq!(report.requests_completed, 8);
//! assert_eq!(report.read_latency.count, 8);
//! ```

use crate::request::HostRequest;
use rr_util::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How host requests are admitted to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayMode {
    /// Replay requests at their trace timestamps (arrival-rate-driven).
    OpenLoop,
    /// Ignore trace timestamps and keep `queue_depth` requests outstanding,
    /// admitting the next request (in trace order) whenever one completes.
    ClosedLoop {
        /// Number of requests kept in flight (≥ 1). Depth 1 degenerates to a
        /// serial device: each request runs in complete isolation.
        queue_depth: u32,
    },
}

impl ReplayMode {
    /// Closed-loop replay at `queue_depth` outstanding requests.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn closed_loop(queue_depth: u32) -> Self {
        assert!(queue_depth >= 1, "queue depth must be at least 1");
        ReplayMode::ClosedLoop { queue_depth }
    }

    /// Whether this mode admits on completion rather than by timestamp.
    pub fn is_closed_loop(&self) -> bool {
        matches!(self, ReplayMode::ClosedLoop { .. })
    }

    /// Validates the mode.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem (zero queue depth).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ReplayMode::OpenLoop => Ok(()),
            ReplayMode::ClosedLoop { queue_depth: 0 } => {
                Err("closed-loop queue depth must be at least 1".into())
            }
            ReplayMode::ClosedLoop { .. } => Ok(()),
        }
    }
}

/// The host-side load generator driving one replay.
///
/// Owns the not-yet-admitted backlog; the simulator asks it for the initial
/// admissions up front and for one follow-up admission per completed request.
#[derive(Debug)]
pub(crate) enum LoadGenerator {
    /// Open loop: everything was admitted up front at trace timestamps.
    Open,
    /// Closed loop: requests not yet handed to the device, in trace order.
    Closed { pending: VecDeque<HostRequest> },
}

impl LoadGenerator {
    /// Builds the generator for `mode` over `trace` and returns the requests
    /// to admit immediately, each with its admission timestamp.
    pub(crate) fn start(
        mode: ReplayMode,
        trace: &[HostRequest],
    ) -> (Self, Vec<(SimTime, HostRequest)>) {
        match mode {
            ReplayMode::OpenLoop => (
                LoadGenerator::Open,
                trace.iter().map(|&r| (r.arrival, r)).collect(),
            ),
            ReplayMode::ClosedLoop { queue_depth } => {
                let window = (queue_depth as usize).min(trace.len());
                let initial = trace[..window]
                    .iter()
                    .map(|&r| (SimTime::ZERO, r))
                    .collect();
                (
                    LoadGenerator::Closed {
                        pending: trace[window..].iter().copied().collect(),
                    },
                    initial,
                )
            }
        }
    }

    /// A host request completed; returns the next request to admit now (if
    /// the mode admits on completion and backlog remains).
    pub(crate) fn on_completion(&mut self) -> Option<HostRequest> {
        match self {
            LoadGenerator::Open => None,
            LoadGenerator::Closed { pending } => pending.pop_front(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoOp;

    fn trace(n: u64) -> Vec<HostRequest> {
        (0..n)
            .map(|i| HostRequest::new(SimTime::from_us(100 * i), IoOp::Read, i, 1))
            .collect()
    }

    #[test]
    fn open_loop_admits_everything_at_trace_times() {
        let t = trace(3);
        let (mut generator, initial) = LoadGenerator::start(ReplayMode::OpenLoop, &t);
        assert_eq!(initial.len(), 3);
        assert_eq!(initial[1].0, SimTime::from_us(100));
        assert_eq!(generator.on_completion(), None);
    }

    #[test]
    fn closed_loop_admits_window_then_one_per_completion() {
        let t = trace(5);
        let (mut generator, initial) = LoadGenerator::start(ReplayMode::closed_loop(2), &t);
        assert_eq!(initial.len(), 2);
        // Initial admissions happen at t = 0, not at trace timestamps.
        assert!(initial.iter().all(|&(at, _)| at == SimTime::ZERO));
        // Backlog drains one request per completion, in trace order.
        assert_eq!(generator.on_completion().map(|r| r.lpn), Some(2));
        assert_eq!(generator.on_completion().map(|r| r.lpn), Some(3));
        assert_eq!(generator.on_completion().map(|r| r.lpn), Some(4));
        assert_eq!(generator.on_completion(), None);
    }

    #[test]
    fn queue_depth_larger_than_trace_is_fine() {
        let t = trace(2);
        let (mut generator, initial) = LoadGenerator::start(ReplayMode::closed_loop(16), &t);
        assert_eq!(initial.len(), 2);
        assert_eq!(generator.on_completion(), None);
    }

    #[test]
    fn mode_validation() {
        assert!(ReplayMode::OpenLoop.validate().is_ok());
        assert!(ReplayMode::ClosedLoop { queue_depth: 0 }
            .validate()
            .is_err());
        assert!(ReplayMode::closed_loop(1).validate().is_ok());
        assert!(ReplayMode::closed_loop(4).is_closed_loop());
        assert!(!ReplayMode::OpenLoop.is_closed_loop());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_queue_depth_constructor_panics() {
        ReplayMode::closed_loop(0);
    }
}
