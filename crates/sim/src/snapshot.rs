//! Warm-start device images: the snapshotable boundary around all mutable
//! device state.
//!
//! Every sweep cell used to re-age and re-precondition the whole device from
//! scratch even though that work never varies across cells. A
//! [`DeviceImage`] turns the aged device into a first-class artifact: capture
//! it once (from a preconditioned or mid-life [`crate::ssd::Ssd`]), then fork
//! it across sweep cells, `--jobs` workers, or a long-lived `repro serve`
//! process — each restore is allocation-retaining and bit-identical to
//! rebuilding from scratch. Redundant arrays (`--redundancy replicate:R` /
//! `ec:K:N`) fork the same footprint image across every device of a replica
//! or stripe set: each copy carries identical preconditioned state, so the
//! wait-for-k order statistic measures scheduling and GC skew, not
//! initial-state skew. An [`ImageBank`] is the on-disk unit: one image
//! per distinct trace footprint, so a whole multi-workload experiment
//! warm-starts from a single `.rrimg` file.
//!
//! # What is (and is not) in an image
//!
//! * **In**: the full [`FtlState`] — logical→physical map, reverse map,
//!   per-block metadata, per-plane open blocks and free lists, the
//!   write-striping cursor, and the per-page freshness bitmap (which pages
//!   still hold their long-retention preconditioned data vs. having been
//!   reprogrammed). Plus the error model's [`ModelState`] (seed + outlier
//!   rate): the model is stationary, so those two numbers *are* its entire
//!   replayable state.
//! * **Out**: the operating condition (P/E cycles, retention age,
//!   temperature) — that is an *input* of a run, not device state; the same
//!   image replays under every operating point of a sweep matrix. Also out:
//!   in-flight events, transactions and host queues (images are captured at
//!   quiescence, where those are empty by construction) and the profile
//!   memo cache (pure memoization, observationally neutral).
//!
//! # Version policy
//!
//! Image files carry the `RRIMG` magic, a format version, and a trailing
//! checksum (see [`rr_util::codec`]). Version bumps append fields; a reader
//! accepts any version from 1 up to [`ImageBank::VERSION`] so a checked-in
//! v1 image keeps loading forever, and rejects newer versions loudly.
//!
//! # Example
//!
//! ```
//! use rr_sim::config::SsdConfig;
//! use rr_sim::snapshot::{DeviceImage, ImageBank};
//!
//! let cfg = SsdConfig::scaled_for_tests();
//! let image = DeviceImage::preconditioned(&cfg, 10_000).expect("footprint fits");
//! let bank = ImageBank::single(image);
//! let bytes = bank.to_bytes();
//! let back = ImageBank::from_bytes(&bytes).expect("intact file");
//! assert_eq!(bank, back);
//! assert!(back.get(10_000).is_some());
//! ```

use crate::config::{ConfigError, SsdConfig};
use crate::ftl::{Ftl, FtlState};
use rr_flash::error_model::ModelState;
use rr_util::codec::{CodecError, Decoder, Encoder, MAGIC_LEN};
use std::fmt;
use std::path::Path;

/// A snapshot of all mutable device state for one footprint: the artifact a
/// sweep forks across cells and a `repro serve` process answers queries
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceImage {
    ftl: FtlState,
    model: ModelState,
}

/// Why an image file could not be loaded.
#[derive(Debug)]
pub enum ImageLoadError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The bytes were not an intact, current-or-older device image.
    Codec(CodecError),
}

impl fmt::Display for ImageLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageLoadError::Io(e) => write!(f, "reading image: {e}"),
            ImageLoadError::Codec(e) => write!(f, "decoding image: {e}"),
        }
    }
}

impl std::error::Error for ImageLoadError {}

impl From<CodecError> for ImageLoadError {
    fn from(e: CodecError) -> Self {
        ImageLoadError::Codec(e)
    }
}

impl From<std::io::Error> for ImageLoadError {
    fn from(e: std::io::Error) -> Self {
        ImageLoadError::Io(e)
    }
}

impl DeviceImage {
    /// Builds an image from already-captured parts (see
    /// [`Ftl::capture`] and `ErrorModel::capture`).
    pub fn from_parts(ftl: FtlState, model: ModelState) -> Self {
        Self { ftl, model }
    }

    /// The cheap capture point: a freshly preconditioned device. This is
    /// exactly the state every sweep cell used to rebuild from scratch —
    /// capturing it once and forking is what `--from-image` and the sweep
    /// runners' internal warm start skip per cell.
    ///
    /// # Errors
    ///
    /// Propagates configuration/footprint validation.
    pub fn preconditioned(cfg: &SsdConfig, lpn_count: u64) -> Result<Self, ConfigError> {
        let mut ftl = Ftl::new(cfg, lpn_count)?;
        ftl.precondition();
        Ok(Self {
            ftl: ftl.capture(),
            model: ModelState {
                seed: cfg.seed,
                outlier_rate: cfg.outlier_rate,
            },
        })
    }

    /// The captured FTL state.
    pub fn ftl(&self) -> &FtlState {
        &self.ftl
    }

    /// The captured error-model state.
    pub fn model(&self) -> ModelState {
        self.model
    }

    /// Number of logical pages the imaged device serves.
    pub fn lpn_count(&self) -> u64 {
        self.ftl.lpn_count()
    }

    /// Checks that a run under `cfg` with `lpn_count` logical pages may be
    /// warm-started from this image and stay bit-identical to a cold start:
    /// the footprint and the model inputs must match exactly (geometry is
    /// checked by [`Ftl::restore`] itself). The operating condition is
    /// deliberately *not* checked — it is a run input, and one image serves
    /// every operating point of a sweep.
    ///
    /// # Errors
    ///
    /// A typed description of the first mismatch.
    pub fn validate_for(&self, cfg: &SsdConfig, lpn_count: u64) -> Result<(), ConfigError> {
        if self.ftl.lpn_count() != lpn_count {
            return Err(ConfigError::new(format!(
                "image holds a {}-page footprint but the run needs {lpn_count} pages",
                self.ftl.lpn_count()
            )));
        }
        if self.model.seed != cfg.seed {
            return Err(ConfigError::new(format!(
                "image was captured under seed {:#x}, run uses {:#x}",
                self.model.seed, cfg.seed
            )));
        }
        if self.model.outlier_rate.to_bits() != cfg.outlier_rate.to_bits() {
            return Err(ConfigError::new(format!(
                "image was captured with outlier rate {}, run uses {}",
                self.model.outlier_rate, cfg.outlier_rate
            )));
        }
        Ok(())
    }

    /// Appends this image to an artifact being encoded.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.model.seed);
        enc.put_f64(self.model.outlier_rate);
        self.ftl.encode(enc);
    }

    /// Reads one image section written by [`DeviceImage::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation or a structurally impossible device.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let seed = dec.take_u64()?;
        let outlier_rate = dec.take_f64()?;
        if !(0.0..=1.0).contains(&outlier_rate) {
            return Err(CodecError::invalid(format!(
                "outlier rate {outlier_rate} out of [0, 1]"
            )));
        }
        let ftl = FtlState::decode(dec)?;
        Ok(Self {
            ftl,
            model: ModelState { seed, outlier_rate },
        })
    }
}

/// The on-disk unit of warm starts: one [`DeviceImage`] per distinct trace
/// footprint, so a multi-workload sweep (whose traces legitimately differ in
/// footprint) forks from a single `.rrimg` file. A single-workload file is
/// simply a bank of one.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImageBank {
    images: Vec<DeviceImage>,
}

impl ImageBank {
    /// Artifact-kind magic of an image file.
    pub const MAGIC: [u8; MAGIC_LEN] = *b"RRIMG\0\0\0";
    /// Newest format version this build writes (and the newest it reads).
    pub const VERSION: u32 = 1;

    /// A bank of one image.
    pub fn single(image: DeviceImage) -> Self {
        Self {
            images: vec![image],
        }
    }

    /// A bank over explicit images.
    pub fn from_images(images: Vec<DeviceImage>) -> Self {
        Self { images }
    }

    /// Preconditions one image per *distinct* footprint — the "age once,
    /// fork everywhere" constructor every sweep runner calls internally.
    ///
    /// # Errors
    ///
    /// Propagates configuration/footprint validation.
    pub fn preconditioned(
        cfg: &SsdConfig,
        footprints: impl IntoIterator<Item = u64>,
    ) -> Result<Self, ConfigError> {
        let mut bank = Self::default();
        for lpn_count in footprints {
            if bank.get(lpn_count).is_none() {
                bank.images
                    .push(DeviceImage::preconditioned(cfg, lpn_count)?);
            }
        }
        Ok(bank)
    }

    /// The image for a footprint, if the bank holds one.
    pub fn get(&self, lpn_count: u64) -> Option<&DeviceImage> {
        self.images.iter().find(|i| i.lpn_count() == lpn_count)
    }

    /// Forks one warm image across every device of an array: `devices`
    /// references to the bank's image for `lpn_count` (the devices are
    /// full-footprint replicas, so they all restore from the *same* image).
    /// No image bytes are cloned here — each device's
    /// [`crate::array::DeviceSet`] slot restores from the shared reference
    /// into its own retained allocations, query after query.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] when `devices` is zero or the bank holds no
    /// image for the footprint (a device-count/footprint mismatch must not
    /// silently fall back to a cold start).
    pub fn fork_for_array(
        &self,
        lpn_count: u64,
        devices: u32,
    ) -> Result<Vec<&DeviceImage>, ConfigError> {
        if devices == 0 {
            return Err(ConfigError::new(
                "an array needs at least one device (devices = 0)",
            ));
        }
        let image = self.get(lpn_count).ok_or_else(|| {
            ConfigError::new(format!(
                "image bank holds no {lpn_count}-page image to fork across {devices} devices"
            ))
        })?;
        Ok(vec![image; devices as usize])
    }

    /// The images, in insertion order.
    pub fn images(&self) -> &[DeviceImage] {
        &self.images
    }

    /// Number of images in the bank.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Serializes to the framed `RRIMG` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new(Self::MAGIC, Self::VERSION);
        enc.put_u64(self.images.len() as u64);
        for image in &self.images {
            image.encode(&mut enc);
        }
        enc.finish()
    }

    /// Deserializes a bank, verifying framing, checksum, version and the
    /// structural consistency of every image. Never panics on arbitrary
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError`] describing the first problem found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes, Self::MAGIC)?;
        let version = dec.version();
        if version == 0 || version > Self::VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: Self::VERSION,
            });
        }
        let n = dec.take_u64()?;
        if n > dec.remaining() as u64 {
            return Err(CodecError::Truncated { what: "image bank" });
        }
        let mut images = Vec::with_capacity(n as usize);
        for _ in 0..n {
            images.push(DeviceImage::decode(&mut dec)?);
        }
        if version == Self::VERSION {
            dec.finish()?;
        } else {
            // A version-1 reader decoding a newer-but-compatible file
            // tolerates appended fields; at version 1 this arm is
            // unreachable and exists to document the policy.
            dec.finish_lenient();
        }
        Ok(Self { images })
    }

    /// Writes the bank to a file.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a bank from a file.
    ///
    /// # Errors
    ///
    /// [`ImageLoadError`] on I/O or decode failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ImageLoadError> {
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SsdConfig {
        let mut cfg = SsdConfig::scaled_for_tests();
        cfg.chip.blocks_per_plane = 16;
        cfg.chip.pages_per_block = 12;
        cfg.with_seed(0xA6ED)
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let cfg = small_cfg();
        let bank = ImageBank::preconditioned(&cfg, [400, 200, 400]).unwrap();
        // Duplicate footprints collapse to one image.
        assert_eq!(bank.len(), 2);
        let bytes = bank.to_bytes();
        let back = ImageBank::from_bytes(&bytes).unwrap();
        assert_eq!(bank, back);
        assert_eq!(back.get(400).unwrap().lpn_count(), 400);
        assert_eq!(back.get(200).unwrap().model().seed, 0xA6ED);
        assert!(back.get(300).is_none());
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let cfg = small_cfg();
        let bank = ImageBank::preconditioned(&cfg, [200]).unwrap();
        let dir = std::env::temp_dir().join("rr_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.rrimg");
        bank.save(&path).unwrap();
        let back = ImageBank::load(&path).unwrap();
        assert_eq!(bank, back);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(ImageBank::load(&path), Err(ImageLoadError::Io(_))));
    }

    #[test]
    fn wrong_version_is_rejected_with_the_typed_error() {
        let cfg = small_cfg();
        let bank = ImageBank::preconditioned(&cfg, [100]).unwrap();
        // Re-frame the same payload under a future version.
        let mut enc = Encoder::new(ImageBank::MAGIC, ImageBank::VERSION + 1);
        enc.put_u64(1);
        bank.images()[0].encode(&mut enc);
        let future = enc.finish();
        assert!(matches!(
            ImageBank::from_bytes(&future),
            Err(CodecError::UnsupportedVersion {
                found,
                supported: ImageBank::VERSION,
            }) if found == ImageBank::VERSION + 1
        ));
    }

    #[test]
    fn corrupt_image_count_is_rejected_without_allocation() {
        let mut enc = Encoder::new(ImageBank::MAGIC, ImageBank::VERSION);
        enc.put_u64(u64::MAX);
        let bytes = enc.finish();
        assert!(matches!(
            ImageBank::from_bytes(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn fork_for_array_shares_one_image_without_cloning() {
        let cfg = small_cfg();
        let bank = ImageBank::preconditioned(&cfg, [300]).unwrap();
        let forks = bank.fork_for_array(300, 4).unwrap();
        assert_eq!(forks.len(), 4);
        let base = bank.get(300).unwrap() as *const DeviceImage;
        // Every device slot points at the same image — forking is free.
        assert!(forks.iter().all(|f| std::ptr::eq(*f, base)));
        assert!(bank.fork_for_array(300, 0).is_err());
        assert!(bank.fork_for_array(301, 4).is_err());
    }

    #[test]
    fn validate_for_pins_footprint_and_model_inputs() {
        let cfg = small_cfg();
        let image = DeviceImage::preconditioned(&cfg, 300).unwrap();
        image.validate_for(&cfg, 300).unwrap();
        assert!(image.validate_for(&cfg, 301).is_err());
        let reseeded = cfg.clone().with_seed(1);
        assert!(image.validate_for(&reseeded, 300).is_err());
        let mut outliers = cfg.clone();
        outliers.outlier_rate = 0.5;
        assert!(image.validate_for(&outliers, 300).is_err());
        // The operating condition is a run input, not device state.
        let aged = cfg
            .clone()
            .with_condition(rr_flash::calibration::OperatingCondition::new(
                8000.0, 12.0, 55.0,
            ));
        image.validate_for(&aged, 300).unwrap();
    }
}
