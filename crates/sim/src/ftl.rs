//! Flash Translation Layer: page-level mapping, write allocation, and
//! greedy garbage collection bookkeeping.
//!
//! The FTL here is deliberately the *standard* design MQSim implements
//! (page-level mapping, channel/die/plane-striped write allocation, greedy
//! min-valid GC) — the paper's contribution sits below it, in how individual
//! flash reads are retried. All timing lives in the event engine
//! ([`crate::ssd`]); this module is pure bookkeeping.

use crate::config::{ConfigError, SsdConfig};
use rr_util::codec::{CodecError, Decoder, Encoder};

/// A physical page number: flat index over the whole SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppn(pub u32);

const UNMAPPED: u32 = u32::MAX;
const NO_LPN: u32 = u32::MAX;

/// Where a physical page lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpnLocation {
    /// Channel index.
    pub channel: u32,
    /// Die index *within the channel's chip*.
    pub die_in_chip: u32,
    /// Global die index across the SSD (`channel·dies + die`).
    pub die_global: u32,
    /// Global plane index across the SSD.
    pub plane_global: u32,
    /// Global block index across the SSD (the error model's block key).
    pub block_global: u64,
    /// Page index within the block.
    pub page_in_block: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Open,
    Full,
    GcVictim,
}

impl BlockState {
    fn to_u8(self) -> u8 {
        match self {
            BlockState::Free => 0,
            BlockState::Open => 1,
            BlockState::Full => 2,
            BlockState::GcVictim => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            0 => Ok(BlockState::Free),
            1 => Ok(BlockState::Open),
            2 => Ok(BlockState::Full),
            3 => Ok(BlockState::GcVictim),
            other => Err(CodecError::invalid(format!(
                "unknown block state discriminant {other}"
            ))),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct BlockMeta {
    state: BlockState,
    next_page: u32,
    valid_count: u32,
}

/// Result of allocating a physical page for a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAlloc {
    /// The newly allocated physical page.
    pub ppn: Ppn,
    /// A plane whose free-block count dropped to the GC threshold, if any —
    /// the engine should start garbage collection there.
    pub gc_hint: Option<u32>,
}

/// Page-level FTL state.
///
/// # Example
///
/// ```
/// use rr_sim::config::SsdConfig;
/// use rr_sim::ftl::Ftl;
///
/// let cfg = SsdConfig::scaled_for_tests();
/// let mut ftl = Ftl::new(&cfg, 1000).expect("footprint fits");
/// ftl.precondition();
/// let ppn = ftl.translate(42).expect("preconditioned LPN is mapped");
/// assert!(ftl.is_cold(42));
/// let alloc = ftl.allocate_for_write(42).expect("space available");
/// assert_ne!(alloc.ppn, ppn, "overwrite moves the page");
/// assert!(!ftl.is_cold(42));
/// ```
#[derive(Debug)]
pub struct Ftl {
    // Geometry (copied out of the config for locality).
    channels: u32,
    dies_per_chip: u32,
    planes_per_die: u32,
    blocks_per_plane: u32,
    pages_per_block: u32,
    gc_threshold: u32,

    lpn_count: u64,
    /// lpn → ppn.
    map: Vec<u32>,
    /// ppn → lpn.
    rmap: Vec<u32>,
    blocks: Vec<BlockMeta>,
    /// Per plane: the block currently receiving writes (global block id).
    open_block: Vec<Option<u32>>,
    /// Per plane: free block list (global block ids).
    free_blocks: Vec<Vec<u32>>,
    /// Round-robin plane cursor for write striping (CWDP order).
    next_plane: u32,
    /// lpn bit: physically (re)programmed during the run ⇒ zero retention.
    fresh: Vec<u64>,
}

impl Ftl {
    /// Creates an FTL for `lpn_count` logical pages.
    ///
    /// # Errors
    ///
    /// Returns an error when the footprint exceeds
    /// [`SsdConfig::max_lpns`] or the config is invalid.
    pub fn new(cfg: &SsdConfig, lpn_count: u64) -> Result<Self, ConfigError> {
        let mut ftl = Self {
            channels: 0,
            dies_per_chip: 0,
            planes_per_die: 0,
            blocks_per_plane: 0,
            pages_per_block: 1,
            gc_threshold: 0,
            lpn_count: 0,
            map: Vec::new(),
            rmap: Vec::new(),
            blocks: Vec::new(),
            open_block: Vec::new(),
            free_blocks: Vec::new(),
            next_plane: 0,
            fresh: Vec::new(),
        };
        ftl.rebuild(cfg, lpn_count)?;
        Ok(ftl)
    }

    /// Rebuilds this FTL in place for a (possibly different) configuration
    /// and footprint, reusing its allocations — semantically identical to
    /// replacing it with `Ftl::new(cfg, lpn_count)?`. The simulation arena
    /// calls this between runs so the multi-megabyte mapping tables are not
    /// reallocated per experiment cell.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ftl::new`]; on error the FTL must not be used
    /// until a subsequent rebuild succeeds.
    pub fn rebuild(&mut self, cfg: &SsdConfig, lpn_count: u64) -> Result<(), ConfigError> {
        cfg.validate().map_err(ConfigError::new)?;
        if lpn_count == 0 {
            return Err(ConfigError::new("lpn_count must be positive"));
        }
        if lpn_count > cfg.max_lpns() {
            return Err(ConfigError::new(format!(
                "footprint of {lpn_count} pages exceeds usable capacity of {} pages",
                cfg.max_lpns()
            )));
        }
        let total_planes = cfg.total_planes();
        let total_blocks = cfg.total_blocks() as usize;
        let total_pages = cfg.total_pages();
        if total_pages > u32::MAX as u64 || lpn_count > NO_LPN as u64 {
            return Err(ConfigError::new("geometry exceeds 32-bit page indexing"));
        }
        self.channels = cfg.channels;
        self.dies_per_chip = cfg.chip.dies;
        self.planes_per_die = cfg.chip.planes_per_die;
        self.blocks_per_plane = cfg.chip.blocks_per_plane;
        self.pages_per_block = cfg.chip.pages_per_block;
        self.gc_threshold = cfg.gc_threshold_blocks;
        self.lpn_count = lpn_count;
        self.map.clear();
        self.map.resize(lpn_count as usize, UNMAPPED);
        self.rmap.clear();
        self.rmap.resize(total_pages as usize, NO_LPN);
        self.blocks.clear();
        self.blocks.resize(
            total_blocks,
            BlockMeta {
                state: BlockState::Free,
                next_page: 0,
                valid_count: 0,
            },
        );
        self.open_block.clear();
        self.open_block.resize(total_planes as usize, None);
        self.free_blocks.truncate(total_planes as usize);
        self.free_blocks
            .resize_with(total_planes as usize, Vec::new);
        for (p, list) in self.free_blocks.iter_mut().enumerate() {
            list.clear();
            // Highest ids first so pops allocate in ascending order.
            list.extend(
                (0..cfg.chip.blocks_per_plane)
                    .rev()
                    .map(|b| p as u32 * cfg.chip.blocks_per_plane + b),
            );
        }
        self.next_plane = 0;
        self.fresh.clear();
        self.fresh.resize((lpn_count as usize).div_ceil(64), 0);
        Ok(())
    }

    /// Number of logical pages.
    pub fn lpn_count(&self) -> u64 {
        self.lpn_count
    }

    /// Decomposes a PPN into its physical location.
    pub fn locate(&self, ppn: Ppn) -> PpnLocation {
        let page_in_block = ppn.0 % self.pages_per_block;
        let block_global = (ppn.0 / self.pages_per_block) as u64;
        let plane_global = (block_global / self.blocks_per_plane as u64) as u32;
        let die_global = plane_global / self.planes_per_die;
        let channel = die_global / self.dies_per_chip;
        PpnLocation {
            channel,
            die_in_chip: die_global % self.dies_per_chip,
            die_global,
            plane_global,
            block_global,
            page_in_block,
        }
    }

    /// Current mapping of an LPN.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is outside the footprint.
    pub fn translate(&self, lpn: u64) -> Option<Ppn> {
        let v = self.map[lpn as usize];
        (v != UNMAPPED).then_some(Ppn(v))
    }

    /// The LPN stored at a physical page, if the page is valid.
    pub fn reverse(&self, ppn: Ppn) -> Option<u64> {
        let v = self.rmap[ppn.0 as usize];
        (v != NO_LPN).then_some(v as u64)
    }

    /// Whether the LPN still holds its preconditioned (long-retention) data —
    /// i.e. it has not been physically reprogrammed during the run.
    pub fn is_cold(&self, lpn: u64) -> bool {
        self.fresh[(lpn / 64) as usize] >> (lpn % 64) & 1 == 0
    }

    fn mark_fresh(&mut self, lpn: u64) {
        self.fresh[(lpn / 64) as usize] |= 1 << (lpn % 64);
    }

    /// Free blocks currently available in a plane.
    pub fn free_blocks_in_plane(&self, plane: u32) -> u32 {
        self.free_blocks[plane as usize].len() as u32
    }

    /// Whether a plane urgently needs GC to make progress.
    pub fn plane_is_critical(&self, plane: u32) -> bool {
        self.free_blocks_in_plane(plane) <= 1
    }

    /// Maps the whole footprint sequentially, striped across planes — the
    /// "preconditioned SSD" starting state (§7.1: the retention age of this
    /// data is the configured operating condition).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-empty FTL.
    pub fn precondition(&mut self) {
        assert!(
            self.map.iter().all(|&m| m == UNMAPPED),
            "precondition requires an empty FTL"
        );
        // Equivalent to `allocate_raw((lpn % planes) as u32)` + commit per
        // LPN, but filling each plane's blocks wholesale: the per-page
        // allocator bookkeeping (open-block checks, free-list pops) runs
        // once per block instead of once per page, which matters because
        // every experiment cell preconditions a fresh footprint.
        let planes = self.total_planes() as u64;
        let ppb = self.pages_per_block as u64;
        for plane in 0..planes.min(self.lpn_count) {
            // LPNs striped onto this plane: plane, plane + planes, ...
            let lpns_here = (self.lpn_count - plane).div_ceil(planes);
            let mut open: Option<u32> = None;
            let mut filled = 0u64;
            for k in 0..lpns_here {
                if open.is_none() || filled == ppb {
                    // Retire the filled block and open a fresh one, exactly
                    // as the per-page allocator would (the last block stays
                    // Open even when exactly full — retirement is lazy).
                    if let Some(b) = open {
                        let meta = &mut self.blocks[b as usize];
                        meta.state = BlockState::Full;
                        meta.next_page = ppb as u32;
                        meta.valid_count = ppb as u32;
                    }
                    let b = self.free_blocks[plane as usize]
                        .pop()
                        .expect("footprint was validated to fit");
                    self.blocks[b as usize] = BlockMeta {
                        state: BlockState::Open,
                        next_page: 0,
                        valid_count: 0,
                    };
                    open = Some(b);
                    filled = 0;
                }
                let b = open.expect("just opened");
                let lpn = plane + k * planes;
                let ppn = b as u64 * ppb + filled;
                self.map[lpn as usize] = ppn as u32;
                self.rmap[ppn as usize] = lpn as u32;
                filled += 1;
            }
            if let Some(b) = open {
                let meta = &mut self.blocks[b as usize];
                meta.next_page = filled as u32;
                meta.valid_count = filled as u32;
            }
            self.open_block[plane as usize] = open;
        }
        // Preconditioned data is cold, not fresh.
        self.fresh.fill(0);
    }

    fn total_planes(&self) -> u32 {
        self.channels * self.dies_per_chip * self.planes_per_die
    }

    /// Allocates the next physical page for a host write of `lpn`, striping
    /// writes round-robin across planes, and invalidates the old copy.
    ///
    /// # Errors
    ///
    /// Returns an error if no plane has a free page (GC has fallen
    /// irrecoverably behind — a simulation configuration bug).
    pub fn allocate_for_write(&mut self, lpn: u64) -> Result<WriteAlloc, String> {
        assert!(lpn < self.lpn_count, "lpn {lpn} outside footprint");
        // Round-robin over planes; skip planes with no space at all.
        let planes = self.total_planes();
        let mut alloc = None;
        for offset in 0..planes {
            let plane = (self.next_plane + offset) % planes;
            if let Some(a) = self.allocate_raw(plane) {
                self.next_plane = (plane + 1) % planes;
                alloc = Some(a);
                break;
            }
        }
        let alloc = alloc.ok_or_else(|| "SSD out of free pages (GC starved)".to_string())?;
        self.invalidate(lpn);
        self.commit_write(lpn, alloc);
        self.mark_fresh(lpn);
        let plane = self.locate(alloc.0).plane_global;
        Ok(WriteAlloc {
            ppn: alloc.0,
            gc_hint: self.gc_hint(plane),
        })
    }

    /// Allocates a page *in a specific plane* for a GC move of `lpn`.
    ///
    /// # Errors
    ///
    /// Returns an error if the plane is completely out of pages.
    pub fn allocate_for_gc(&mut self, lpn: u64, plane: u32) -> Result<Ppn, String> {
        let alloc = self
            .allocate_raw(plane)
            .ok_or_else(|| format!("plane {plane} out of free pages during GC"))?;
        self.invalidate(lpn);
        self.commit_write(lpn, alloc);
        // A GC move physically reprograms the data: retention resets.
        self.mark_fresh(lpn);
        Ok(alloc.0)
    }

    /// `(ppn, block)` of a fresh page in `plane`, or `None` if exhausted.
    fn allocate_raw(&mut self, plane: u32) -> Option<(Ppn, u32)> {
        let open = match self.open_block[plane as usize] {
            Some(b) if self.blocks[b as usize].next_page < self.pages_per_block => b,
            _ => {
                // Retire the filled open block and open a fresh one.
                if let Some(b) = self.open_block[plane as usize] {
                    self.blocks[b as usize].state = BlockState::Full;
                }
                let b = self.free_blocks[plane as usize].pop()?;
                self.blocks[b as usize] = BlockMeta {
                    state: BlockState::Open,
                    next_page: 0,
                    valid_count: 0,
                };
                self.open_block[plane as usize] = Some(b);
                b
            }
        };
        let meta = &mut self.blocks[open as usize];
        let page = meta.next_page;
        meta.next_page += 1;
        meta.valid_count += 1;
        Some((Ppn(open * self.pages_per_block + page), open))
    }

    fn commit_write(&mut self, lpn: u64, alloc: (Ppn, u32)) {
        self.map[lpn as usize] = alloc.0 .0;
        self.rmap[alloc.0 .0 as usize] = lpn as u32;
    }

    /// Invalidates the current copy of `lpn`, if any.
    fn invalidate(&mut self, lpn: u64) {
        let old = self.map[lpn as usize];
        if old != UNMAPPED {
            self.rmap[old as usize] = NO_LPN;
            let block = (old / self.pages_per_block) as usize;
            debug_assert!(self.blocks[block].valid_count > 0);
            self.blocks[block].valid_count -= 1;
        }
    }

    fn gc_hint(&self, plane: u32) -> Option<u32> {
        (self.free_blocks_in_plane(plane) <= self.gc_threshold).then_some(plane)
    }

    /// Picks the greedy (min-valid) GC victim in a plane and marks it,
    /// returning the block and the LPNs that must be moved. Returns `None`
    /// when no Full block exists.
    pub fn start_gc(&mut self, plane: u32) -> Option<GcJob> {
        let base = plane * self.blocks_per_plane;
        let mut best: Option<(u32, u32)> = None;
        for b in base..base + self.blocks_per_plane {
            let meta = &self.blocks[b as usize];
            if meta.state == BlockState::Full {
                let better = match best {
                    None => true,
                    Some((_, v)) => meta.valid_count < v,
                };
                if better {
                    best = Some((b, meta.valid_count));
                }
            }
        }
        let (victim, _) = best?;
        self.blocks[victim as usize].state = BlockState::GcVictim;
        let first = victim * self.pages_per_block;
        let moves: Vec<(u64, Ppn)> = (first..first + self.pages_per_block)
            .filter_map(|p| self.reverse(Ppn(p)).map(|lpn| (lpn, Ppn(p))))
            .collect();
        Some(GcJob {
            plane,
            victim_block: victim,
            moves,
        })
    }

    /// Whether a page still holds the same valid LPN it did when a GC job was
    /// created (a host overwrite invalidates the move).
    pub fn gc_move_still_needed(&self, lpn: u64, src: Ppn) -> bool {
        self.map[lpn as usize] == src.0
    }

    /// Completes GC of a victim: returns the (now empty) block to the free
    /// list. The engine calls this after the erase transaction finishes.
    ///
    /// # Panics
    ///
    /// Panics if the block still holds valid pages (GC logic bug) or was not
    /// marked as a victim.
    pub fn finish_gc(&mut self, victim_block: u32) {
        let meta = &mut self.blocks[victim_block as usize];
        assert_eq!(meta.state, BlockState::GcVictim, "finish_gc on non-victim");
        assert_eq!(meta.valid_count, 0, "erasing a block with valid pages");
        meta.state = BlockState::Free;
        meta.next_page = 0;
        let plane = victim_block / self.blocks_per_plane;
        self.free_blocks[plane as usize].push(victim_block);
    }

    /// Valid-page count of a block (test/diagnostic aid).
    pub fn block_valid_count(&self, block: u32) -> u32 {
        self.blocks[block as usize].valid_count
    }

    /// Snapshots the FTL's entire mutable state — mapping tables, block
    /// metadata, open blocks, free lists, the write-striping cursor, and the
    /// per-page freshness (retention) bitmap.
    ///
    /// The returned [`FtlState`] is the device-side half of a
    /// [`crate::snapshot::DeviceImage`]; feeding it back through
    /// [`Ftl::restore`] reproduces this FTL bit for bit.
    pub fn capture(&self) -> FtlState {
        FtlState {
            channels: self.channels,
            dies_per_chip: self.dies_per_chip,
            planes_per_die: self.planes_per_die,
            blocks_per_plane: self.blocks_per_plane,
            pages_per_block: self.pages_per_block,
            lpn_count: self.lpn_count,
            map: self.map.clone(),
            rmap: self.rmap.clone(),
            blocks: self.blocks.clone(),
            open_block: self
                .open_block
                .iter()
                .map(|b| b.unwrap_or(UNMAPPED))
                .collect(),
            free_blocks: self.free_blocks.clone(),
            next_plane: self.next_plane,
            fresh: self.fresh.clone(),
        }
    }

    /// Restores a previously captured state into this FTL, reusing its
    /// allocations — the snapshot analogue of [`Ftl::rebuild`] (and like
    /// `EventQueue::reset`, it only ever copies into buffers it already
    /// owns, so forking one image across many arena-pooled simulators does
    /// not reallocate the multi-megabyte tables per cell).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `cfg` is invalid, when the state was
    /// captured under a different geometry, or when the state is internally
    /// inconsistent (a decoded image that passed its checksum but whose
    /// fields contradict each other must still never build a silently wrong
    /// device).
    pub fn restore(&mut self, cfg: &SsdConfig, state: &FtlState) -> Result<(), ConfigError> {
        cfg.validate().map_err(ConfigError::new)?;
        state.check_geometry(cfg)?;
        state.check_consistency()?;
        if state.lpn_count > cfg.max_lpns() {
            return Err(ConfigError::new(format!(
                "image footprint of {} pages exceeds usable capacity of {} pages",
                state.lpn_count,
                cfg.max_lpns()
            )));
        }
        self.channels = state.channels;
        self.dies_per_chip = state.dies_per_chip;
        self.planes_per_die = state.planes_per_die;
        self.blocks_per_plane = state.blocks_per_plane;
        self.pages_per_block = state.pages_per_block;
        self.gc_threshold = cfg.gc_threshold_blocks;
        self.lpn_count = state.lpn_count;
        self.map.clear();
        self.map.extend_from_slice(&state.map);
        self.rmap.clear();
        self.rmap.extend_from_slice(&state.rmap);
        self.blocks.clear();
        self.blocks.extend_from_slice(&state.blocks);
        self.open_block.clear();
        self.open_block.extend(
            state
                .open_block
                .iter()
                .map(|&b| (b != UNMAPPED).then_some(b)),
        );
        self.free_blocks.truncate(state.free_blocks.len());
        self.free_blocks
            .resize_with(state.free_blocks.len(), Vec::new);
        for (dst, src) in self.free_blocks.iter_mut().zip(&state.free_blocks) {
            dst.clear();
            dst.extend_from_slice(src);
        }
        self.next_plane = state.next_plane;
        self.fresh.clear();
        self.fresh.extend_from_slice(&state.fresh);
        Ok(())
    }
}

/// A verbatim snapshot of an [`Ftl`]'s mutable state.
///
/// Produced by [`Ftl::capture`], consumed by [`Ftl::restore`], and carried
/// inside a [`crate::snapshot::DeviceImage`]. The geometry fields pin the
/// configuration the snapshot was taken under; restore refuses a mismatched
/// target instead of reinterpreting the tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtlState {
    channels: u32,
    dies_per_chip: u32,
    planes_per_die: u32,
    blocks_per_plane: u32,
    pages_per_block: u32,
    lpn_count: u64,
    map: Vec<u32>,
    rmap: Vec<u32>,
    blocks: Vec<BlockMeta>,
    /// Per plane: open block id, [`UNMAPPED`] when the plane has none.
    open_block: Vec<u32>,
    free_blocks: Vec<Vec<u32>>,
    next_plane: u32,
    fresh: Vec<u64>,
}

impl FtlState {
    /// Number of logical pages the captured device was preconditioned for.
    pub fn lpn_count(&self) -> u64 {
        self.lpn_count
    }

    fn total_planes(&self) -> u64 {
        self.channels as u64 * self.dies_per_chip as u64 * self.planes_per_die as u64
    }

    fn total_blocks(&self) -> u64 {
        self.total_planes() * self.blocks_per_plane as u64
    }

    fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    fn check_geometry(&self, cfg: &SsdConfig) -> Result<(), ConfigError> {
        let same = self.channels == cfg.channels
            && self.dies_per_chip == cfg.chip.dies
            && self.planes_per_die == cfg.chip.planes_per_die
            && self.blocks_per_plane == cfg.chip.blocks_per_plane
            && self.pages_per_block == cfg.chip.pages_per_block;
        if !same {
            return Err(ConfigError::new(format!(
                "image geometry {}ch × {}d × {}p × {}b × {}pg does not match the target \
                 configuration ({}ch × {}d × {}p × {}b × {}pg)",
                self.channels,
                self.dies_per_chip,
                self.planes_per_die,
                self.blocks_per_plane,
                self.pages_per_block,
                cfg.channels,
                cfg.chip.dies,
                cfg.chip.planes_per_die,
                cfg.chip.blocks_per_plane,
                cfg.chip.pages_per_block
            )));
        }
        Ok(())
    }

    /// Structural consistency: every table has the length its geometry
    /// implies and every index is in range.
    fn check_consistency(&self) -> Result<(), ConfigError> {
        let planes = self.total_planes();
        let blocks = self.total_blocks();
        let pages = self.total_pages();
        let bad = |what: String| Err(ConfigError::new(format!("inconsistent image: {what}")));
        if self.lpn_count == 0 {
            return bad("zero-page footprint".into());
        }
        if pages > u32::MAX as u64 || self.lpn_count > NO_LPN as u64 {
            return bad("geometry exceeds 32-bit page indexing".into());
        }
        if self.map.len() as u64 != self.lpn_count {
            return bad(format!(
                "map holds {} entries for a {}-page footprint",
                self.map.len(),
                self.lpn_count
            ));
        }
        if self.rmap.len() as u64 != pages {
            return bad(format!(
                "rmap holds {} entries for {pages} physical pages",
                self.rmap.len()
            ));
        }
        if self.blocks.len() as u64 != blocks {
            return bad(format!(
                "{} block records for {blocks} blocks",
                self.blocks.len()
            ));
        }
        if self.open_block.len() as u64 != planes || self.free_blocks.len() as u64 != planes {
            return bad(format!(
                "{} open-block / {} free-list entries for {planes} planes",
                self.open_block.len(),
                self.free_blocks.len()
            ));
        }
        if self.fresh.len() != (self.lpn_count as usize).div_ceil(64) {
            return bad("freshness bitmap length mismatch".into());
        }
        if self.next_plane as u64 >= planes {
            return bad(format!("striping cursor {} out of range", self.next_plane));
        }
        if let Some(&m) = self
            .map
            .iter()
            .find(|&&m| m != UNMAPPED && m as u64 >= pages)
        {
            return bad(format!("map points at nonexistent page {m}"));
        }
        if let Some(&r) = self
            .rmap
            .iter()
            .find(|&&r| r != NO_LPN && r as u64 >= self.lpn_count)
        {
            return bad(format!("rmap names out-of-footprint lpn {r}"));
        }
        for meta in &self.blocks {
            if meta.next_page > self.pages_per_block || meta.valid_count > self.pages_per_block {
                return bad(format!(
                    "block record {}/{} exceeds {} pages per block",
                    meta.next_page, meta.valid_count, self.pages_per_block
                ));
            }
        }
        for (plane, &open) in self.open_block.iter().enumerate() {
            if open != UNMAPPED && open as u64 / self.blocks_per_plane as u64 != plane as u64 {
                return bad(format!("open block {open} not in plane {plane}"));
            }
        }
        for (plane, list) in self.free_blocks.iter().enumerate() {
            if list
                .iter()
                .any(|&b| b as u64 / self.blocks_per_plane as u64 != plane as u64)
            {
                return bad(format!("free list of plane {plane} names a foreign block"));
            }
        }
        Ok(())
    }

    /// Appends this state to an artifact being encoded.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.channels);
        enc.put_u32(self.dies_per_chip);
        enc.put_u32(self.planes_per_die);
        enc.put_u32(self.blocks_per_plane);
        enc.put_u32(self.pages_per_block);
        enc.put_u64(self.lpn_count);
        enc.put_u32_slice(&self.map);
        enc.put_u32_slice(&self.rmap);
        enc.put_u64(self.blocks.len() as u64);
        for b in &self.blocks {
            enc.put_u8(b.state.to_u8());
            enc.put_u32(b.next_page);
            enc.put_u32(b.valid_count);
        }
        enc.put_u32_slice(&self.open_block);
        enc.put_u64(self.free_blocks.len() as u64);
        for list in &self.free_blocks {
            enc.put_u32_slice(list);
        }
        enc.put_u32(self.next_plane);
        enc.put_u64_slice(&self.fresh);
    }

    /// Reads a state previously written by [`FtlState::encode`] and verifies
    /// its structural consistency.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation, bad discriminants, or a structurally
    /// impossible device.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let channels = dec.take_u32()?;
        let dies_per_chip = dec.take_u32()?;
        let planes_per_die = dec.take_u32()?;
        let blocks_per_plane = dec.take_u32()?;
        let pages_per_block = dec.take_u32()?;
        let lpn_count = dec.take_u64()?;
        let map = dec.take_u32_vec()?;
        let rmap = dec.take_u32_vec()?;
        let n_blocks = dec.take_u64()? as usize;
        if n_blocks.checked_mul(9).is_none_or(|b| b > dec.remaining()) {
            return Err(CodecError::Truncated {
                what: "block records",
            });
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            blocks.push(BlockMeta {
                state: BlockState::from_u8(dec.take_u8()?)?,
                next_page: dec.take_u32()?,
                valid_count: dec.take_u32()?,
            });
        }
        let open_block = dec.take_u32_vec()?;
        let n_planes = dec.take_u64()? as usize;
        if n_planes.checked_mul(8).is_none_or(|b| b > dec.remaining()) {
            return Err(CodecError::Truncated { what: "free lists" });
        }
        let mut free_blocks = Vec::with_capacity(n_planes);
        for _ in 0..n_planes {
            free_blocks.push(dec.take_u32_vec()?);
        }
        let next_plane = dec.take_u32()?;
        let fresh = dec.take_u64_vec()?;
        let state = Self {
            channels,
            dies_per_chip,
            planes_per_die,
            blocks_per_plane,
            pages_per_block,
            lpn_count,
            map,
            rmap,
            blocks,
            open_block,
            free_blocks,
            next_plane,
            fresh,
        };
        state.check_consistency().map_err(CodecError::invalid)?;
        Ok(state)
    }
}

/// A garbage-collection unit of work: move the `moves`, then erase the victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcJob {
    /// The plane being collected.
    pub plane: u32,
    /// Victim block (global id).
    pub victim_block: u32,
    /// `(lpn, source ppn)` pairs that were valid when GC started.
    pub moves: Vec<(u64, Ppn)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SsdConfig {
        let mut cfg = SsdConfig::scaled_for_tests();
        cfg.chip.blocks_per_plane = 16;
        cfg.chip.pages_per_block = 12;
        cfg
    }

    #[test]
    fn precondition_maps_everything_cold() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg, 500).unwrap();
        ftl.precondition();
        for lpn in 0..500 {
            assert!(ftl.translate(lpn).is_some());
            assert!(ftl.is_cold(lpn));
        }
        // Mapping is injective.
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..500 {
            assert!(seen.insert(ftl.translate(lpn).unwrap()));
        }
    }

    #[test]
    fn precondition_stripes_across_planes() {
        let cfg = small_cfg();
        let planes = cfg.total_planes() as u64;
        let mut ftl = Ftl::new(&cfg, 4 * planes).unwrap();
        ftl.precondition();
        // Consecutive LPNs land on different planes (CWDP striping).
        let p0 = ftl.locate(ftl.translate(0).unwrap()).plane_global;
        let p1 = ftl.locate(ftl.translate(1).unwrap()).plane_global;
        assert_ne!(p0, p1);
    }

    #[test]
    fn overwrite_moves_and_invalidates() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg, 100).unwrap();
        ftl.precondition();
        let old = ftl.translate(7).unwrap();
        let old_block = ftl.locate(old).block_global as u32;
        let before = ftl.block_valid_count(old_block);
        let alloc = ftl.allocate_for_write(7).unwrap();
        assert_ne!(alloc.ppn, old);
        assert_eq!(ftl.block_valid_count(old_block), before - 1);
        assert_eq!(ftl.reverse(old), None);
        assert_eq!(ftl.reverse(alloc.ppn), Some(7));
        assert!(!ftl.is_cold(7));
    }

    #[test]
    fn locate_roundtrip_consistency() {
        let cfg = small_cfg();
        let ftl = Ftl::new(&cfg, 10).unwrap();
        let pages_per_plane = cfg.chip.blocks_per_plane * cfg.chip.pages_per_block;
        // Page 0 of plane 1.
        let ppn = Ppn(pages_per_plane);
        let loc = ftl.locate(ppn);
        assert_eq!(loc.plane_global, 1);
        assert_eq!(loc.page_in_block, 0);
        assert_eq!(loc.channel, 0);
        // Last page of the SSD.
        let last = Ppn(cfg.total_pages() as u32 - 1);
        let loc = ftl.locate(last);
        assert_eq!(loc.channel, cfg.channels - 1);
        assert_eq!(loc.page_in_block, cfg.chip.pages_per_block - 1);
    }

    #[test]
    fn gc_picks_min_valid_victim() {
        let cfg = small_cfg();
        let planes = cfg.total_planes() as u64;
        let ppb = cfg.chip.pages_per_block as u64;
        // Fill several blocks in plane 0 by writing LPNs striped there.
        let mut ftl = Ftl::new(&cfg, planes * ppb * 4).unwrap();
        ftl.precondition();
        // Overwrite most of one early plane-0 block's LPNs to make it sparse:
        // plane-0 pages hold LPNs ≡ 0 (mod planes) in precondition order.
        for i in 0..ppb - 2 {
            ftl.allocate_for_write(i * planes).unwrap();
        }
        let job = ftl.start_gc(0).expect("a full block exists");
        assert_eq!(job.plane, 0);
        assert!(
            job.moves.len() as u64 <= 2,
            "victim should be the sparsest block, had {} moves",
            job.moves.len()
        );
    }

    #[test]
    fn gc_move_and_finish_cycle() {
        let cfg = small_cfg();
        let planes = cfg.total_planes() as u64;
        let ppb = cfg.chip.pages_per_block as u64;
        let mut ftl = Ftl::new(&cfg, planes * ppb * 3).unwrap();
        ftl.precondition();
        let job = ftl.start_gc(0).unwrap();
        for &(lpn, src) in &job.moves {
            assert!(ftl.gc_move_still_needed(lpn, src));
            ftl.allocate_for_gc(lpn, job.plane).unwrap();
            assert!(!ftl.gc_move_still_needed(lpn, src));
            // Moved data is physically fresh now.
            assert!(!ftl.is_cold(lpn));
        }
        assert_eq!(ftl.block_valid_count(job.victim_block), 0);
        let free_before = ftl.free_blocks_in_plane(0);
        ftl.finish_gc(job.victim_block);
        assert_eq!(ftl.free_blocks_in_plane(0), free_before + 1);
    }

    #[test]
    fn footprint_validation() {
        let cfg = small_cfg();
        assert!(Ftl::new(&cfg, 0).is_err());
        assert!(Ftl::new(&cfg, cfg.max_lpns() + 1).is_err());
        assert!(Ftl::new(&cfg, cfg.max_lpns()).is_ok());
    }

    #[test]
    fn bulk_precondition_matches_per_page_allocator() {
        let cfg = small_cfg();
        for count in [1u64, 5, 37, 500, cfg.max_lpns()] {
            let mut fast = Ftl::new(&cfg, count).unwrap();
            fast.precondition();
            // The reference: the per-page allocator the bulk path replaces.
            let mut slow = Ftl::new(&cfg, count).unwrap();
            let planes = slow.total_planes() as u64;
            for lpn in 0..count {
                let alloc = slow.allocate_raw((lpn % planes) as u32).unwrap();
                slow.commit_write(lpn, alloc);
            }
            slow.fresh.fill(0);
            assert_eq!(fast.map, slow.map, "map diverged at footprint {count}");
            assert_eq!(fast.rmap, slow.rmap, "rmap diverged at footprint {count}");
            assert_eq!(
                fast.blocks, slow.blocks,
                "blocks diverged at footprint {count}"
            );
            assert_eq!(fast.open_block, slow.open_block);
            assert_eq!(fast.free_blocks, slow.free_blocks);
            assert_eq!(fast.fresh, slow.fresh);
        }
    }

    #[test]
    fn rebuild_matches_fresh_construction() {
        let cfg = small_cfg();
        // Dirty an FTL with writes and GC, then rebuild it for a different
        // footprint: it must behave exactly like a fresh one.
        let mut recycled = Ftl::new(&cfg, 500).unwrap();
        recycled.precondition();
        for lpn in 0..200 {
            recycled.allocate_for_write(lpn % 50).unwrap();
        }
        recycled.rebuild(&cfg, 300).unwrap();
        let mut fresh = Ftl::new(&cfg, 300).unwrap();
        recycled.precondition();
        fresh.precondition();
        assert_eq!(recycled.lpn_count(), fresh.lpn_count());
        for lpn in 0..300 {
            assert_eq!(recycled.translate(lpn), fresh.translate(lpn), "lpn {lpn}");
            assert_eq!(recycled.is_cold(lpn), fresh.is_cold(lpn));
        }
        let a = recycled.allocate_for_write(7).unwrap();
        let b = fresh.allocate_for_write(7).unwrap();
        assert_eq!(a, b);
        // Invalid rebuilds are rejected like invalid constructions.
        assert!(recycled.rebuild(&cfg, 0).is_err());
        assert!(recycled.rebuild(&cfg, cfg.max_lpns() + 1).is_err());
    }

    /// An FTL dirtied by host writes and a full GC cycle — the state a
    /// warm-start image is meant to carry.
    fn aged_ftl(cfg: &SsdConfig) -> Ftl {
        let mut ftl = Ftl::new(cfg, 500).unwrap();
        ftl.precondition();
        for lpn in 0..300 {
            ftl.allocate_for_write(lpn % 120).unwrap();
        }
        let job = ftl.start_gc(0).expect("full blocks exist");
        for &(lpn, src) in &job.moves {
            if ftl.gc_move_still_needed(lpn, src) {
                ftl.allocate_for_gc(lpn, job.plane).unwrap();
            }
        }
        ftl.finish_gc(job.victim_block);
        ftl
    }

    #[test]
    fn capture_restore_round_trip_is_exact() {
        let cfg = small_cfg();
        let ftl = aged_ftl(&cfg);
        let state = ftl.capture();
        // Restore into a recycled FTL of a *different* footprint.
        let mut restored = Ftl::new(&cfg, 64).unwrap();
        restored.precondition();
        restored.restore(&cfg, &state).unwrap();
        assert_eq!(restored.lpn_count(), ftl.lpn_count());
        for lpn in 0..500 {
            assert_eq!(restored.translate(lpn), ftl.translate(lpn), "lpn {lpn}");
            assert_eq!(restored.is_cold(lpn), ftl.is_cold(lpn), "lpn {lpn}");
        }
        assert_eq!(restored.capture(), state);
        // And the two devices evolve identically afterwards.
        let mut a = ftl;
        let mut b = restored;
        for lpn in 0..100 {
            assert_eq!(a.allocate_for_write(lpn), b.allocate_for_write(lpn));
        }
        assert_eq!(a.capture(), b.capture());
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let cfg = small_cfg();
        let state = aged_ftl(&cfg).capture();
        let mut other = cfg.clone();
        other.chip.blocks_per_plane = 32;
        let mut target = Ftl::new(&other, 500).unwrap();
        let err = target.restore(&other, &state).unwrap_err();
        assert!(err.to_string().contains("geometry"), "{err}");
    }

    #[test]
    fn encode_decode_round_trip_and_consistency_guard() {
        let cfg = small_cfg();
        let state = aged_ftl(&cfg).capture();
        let mut enc = Encoder::new(*b"FTLTEST\0", 1);
        state.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, *b"FTLTEST\0").unwrap();
        let decoded = FtlState::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(decoded, state);
        // A structurally impossible device is rejected even when framing is
        // intact: shrink the footprint without shrinking the map.
        let mut bad = state.clone();
        bad.lpn_count -= 1;
        let mut enc = Encoder::new(*b"FTLTEST\0", 1);
        bad.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes, *b"FTLTEST\0").unwrap();
        assert!(matches!(
            FtlState::decode(&mut dec),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn gc_hint_fires_at_threshold() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg, cfg.max_lpns()).unwrap();
        ftl.precondition();
        // Writing continuously must eventually produce a GC hint.
        let mut hinted = false;
        for lpn in 0..cfg.max_lpns() {
            if ftl.allocate_for_write(lpn).unwrap().gc_hint.is_some() {
                hinted = true;
                break;
            }
        }
        assert!(hinted, "filling the SSD should trigger a GC hint");
    }
}
