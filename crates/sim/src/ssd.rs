//! The event-driven multi-die SSD simulator (orchestrator).
//!
//! Architecture (paper §7.1's baseline high-end SSD):
//!
//! * host requests are admitted by the [`crate::replay`] load generator —
//!   open-loop (trace timestamps) or closed-loop (fixed queue depth) — and
//!   split into page-level flash transactions;
//! * each **die** executes one operation at a time, scheduled out-of-order
//!   with read priority and program/erase suspension; independent reads on
//!   different dies overlap freely (multi-die interleaving);
//! * each **channel** has a DMA bus (tDMA per page, FIFO) and a dedicated
//!   ECC decoder (tECC per page, FIFO) — so sensing on one die can overlap a
//!   transfer and a decode of other pages (Fig. 6);
//! * read-retry behaviour is delegated to a [`RetryController`]
//!   (Baseline here; PR²/AR²/PnAR²/PSO in `rr-core`).
//!
//! The per-die priority queues and per-channel FIFO arbitration live in
//! [`crate::scheduler`]; this module owns the FTL, the error model, garbage
//! collection (whose start/preempt/yield decisions are delegated to the
//! configured [`crate::gc::GcPolicy`], with per-queue stall attribution in
//! [`crate::metrics::GcStalls`]), the retry controller, and metrics
//! collection.

use crate::config::SsdConfig;
use crate::event::EventQueue;
use crate::ftl::{Ftl, Ppn, PpnLocation};
use crate::gc::{GcPolicy, GcThrottle};
use crate::hostq::{FrontEnd, HostQueueConfig};
use crate::metrics::{LatencySamples, MetricsCollector, SimReport};
use crate::readflow::{Actions, ReadAction, ReadContext, RetryController};
use crate::replay::ReplayMode;
use crate::request::{HostRequest, IoOp, ReqId, TxnId, TxnKind};
use crate::scheduler::{ChannelState, DieJob, DieState, Event, QueuedOp, Transfer};
use crate::snapshot::DeviceImage;
use rr_flash::calibration::OperatingCondition;
use rr_flash::error_model::{ErrorModel, PageId};
use rr_util::time::SimTime;
use std::sync::Arc;

#[derive(Debug)]
struct TxnState {
    kind: TxnKind,
    req: Option<ReqId>,
    lpn: u64,
    loc: PpnLocation,
    ctx: Option<ReadContext>,
    /// `(step, raw errors)` pairs recorded at sense time. The buffer is
    /// recycled with its slot, so a warmed-up pool stops allocating.
    sensed: Vec<(u32, u32)>,
    senses: u32,
    finished: bool,
    /// Channel-side references (queued/in-flight transfers and decodes)
    /// still carrying this transaction's id. A slot may only return to the
    /// free list once this reaches zero — stale pipelined decodes of a
    /// completed read must find the slot intact, not recycled.
    pending_io: u32,
    /// For GC reads: the source PPN (to detect concurrent invalidation) and
    /// the GC job index.
    gc_src: Option<(Ppn, usize)>,
    /// For GC writes/erases: the GC job index.
    gc_job: Option<usize>,
}

#[derive(Debug)]
struct ReqState {
    op: IoOp,
    lpn: u64,
    /// Submission time: the trace timestamp (open loop) or the instant the
    /// load generator submitted the request (closed loop). Response times
    /// run from here, so any submission-queue wait before the arbiter
    /// admits the request counts as host-observed latency.
    arrival: SimTime,
    /// The host submission queue this request was submitted to.
    queue: u16,
    /// Page transactions not yet completed. Equals the request length until
    /// admission spawns the transactions.
    remaining: u32,
    /// Whether any page read of this request needed ≥ 1 retry step.
    retried: bool,
    /// The request's position in the run's trace. The front end stripes
    /// trace request `i` to queue `i mod n` and hands each queue's stripe
    /// out FIFO, so the position is reconstructed at submission from the
    /// per-queue sequence counters — the redundancy merge keys on it.
    index: u32,
}

#[derive(Debug)]
struct GcJobState {
    victim_block: u32,
    plane: u32,
    remaining_moves: u32,
    erase_issued: bool,
    /// Unconditional read preemptions this job may still absorb
    /// ([`GcPolicy::ReadPreempt`]'s per-job budget; 0 under other policies).
    preemptions_left: u32,
}

/// The simulated SSD.
///
/// # Example
///
/// ```
/// use rr_sim::config::SsdConfig;
/// use rr_sim::readflow::BaselineController;
/// use rr_sim::request::{HostRequest, IoOp};
/// use rr_sim::ssd::Ssd;
/// use rr_util::time::SimTime;
///
/// let cfg = SsdConfig::scaled_for_tests();
/// let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 1000)
///     .expect("valid configuration");
/// let trace = vec![HostRequest::new(SimTime::ZERO, IoOp::Read, 5, 1)];
/// let report = ssd.run(&trace);
/// assert_eq!(report.requests_completed, 1);
/// ```
pub struct Ssd {
    cfg: Arc<SsdConfig>,
    ftl: Ftl,
    model: ErrorModel,
    controller: Box<dyn RetryController>,
    events: EventQueue<Event>,
    now: SimTime,
    dies: Vec<DieState>,
    channels: Vec<ChannelState>,
    txns: Vec<TxnState>,
    /// Recycled transaction slots (indices into `txns`), LIFO.
    free_txns: Vec<u32>,
    reqs: Vec<ReqState>,
    front: FrontEnd,
    metrics: MetricsCollector,
    gc_jobs: Vec<GcJobState>,
    gc_policy: GcPolicy,
    gc_throttle: GcThrottle,
    /// Per host queue: admitted read requests not yet completed — the
    /// "queue is busy" signal of [`GcPolicy::QueueShield`].
    reads_outstanding: Vec<u32>,
    /// Per host queue: requests submitted so far, for reconstructing each
    /// request's trace index (`queue + queues * seq`).
    queue_seq: Vec<u32>,
    /// Whether the run records per-request responses by trace index (the
    /// redundancy layer's copy-matching; off for every other path).
    track_requests: bool,
    max_step: u32,
    slab_reuse: bool,
}

/// Reusable simulation buffers: one arena per worker amortizes the FTL's
/// multi-megabyte mapping tables, the die/channel queue slabs, the event
/// queue (heap or timing wheel), and the transaction pool (with its sense
/// buffers) across the many short runs of an experiment matrix or sweep.
///
/// Runs through an arena are **bit-identical** to fresh [`Ssd::new`] runs:
/// every buffer is reset to its pristine observable state before reuse
/// (`tests/hotpath_equiv.rs` asserts this).
///
/// # Example
///
/// ```
/// use rr_sim::config::SsdConfig;
/// use rr_sim::readflow::BaselineController;
/// use rr_sim::replay::ReplayMode;
/// use rr_sim::request::{HostRequest, IoOp};
/// use rr_sim::ssd::{SimArena, Ssd};
/// use rr_util::time::SimTime;
///
/// let cfg = SsdConfig::scaled_for_tests();
/// let trace = vec![HostRequest::new(SimTime::ZERO, IoOp::Read, 5, 1)];
/// let mut arena = SimArena::new();
/// for _ in 0..2 {
///     let report = Ssd::run_pooled(
///         &mut arena,
///         cfg.clone(),
///         Box::new(BaselineController::new()),
///         1000,
///         &trace,
///         ReplayMode::OpenLoop,
///     )
///     .expect("valid configuration");
///     assert_eq!(report.requests_completed, 1);
/// }
/// ```
#[derive(Debug, Default)]
pub struct SimArena {
    ftl: Option<Ftl>,
    dies: Vec<DieState>,
    channels: Vec<ChannelState>,
    events: EventQueue<Event>,
    txns: Vec<TxnState>,
    free_txns: Vec<u32>,
    reqs: Vec<ReqState>,
}

impl SimArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Ssd {
    /// Builds a preconditioned SSD: `lpn_count` logical pages are mapped and
    /// carry the configured retention age (cold data).
    ///
    /// Accepts the configuration by value or as a pre-shared
    /// `Arc<SsdConfig>`; experiment runners share one `Arc` across cells so
    /// sweep setup stops copying the config per simulator.
    ///
    /// # Errors
    ///
    /// Propagates configuration/footprint validation errors.
    pub fn new(
        cfg: impl Into<Arc<SsdConfig>>,
        controller: Box<dyn RetryController>,
        lpn_count: u64,
    ) -> Result<Self, String> {
        Self::assemble(&mut SimArena::new(), cfg.into(), controller, lpn_count)
    }

    /// Builds an SSD out of `arena`'s recycled buffers (the arena is left
    /// empty until the SSD returns them via [`Ssd::run_pooled`]).
    fn assemble(
        arena: &mut SimArena,
        cfg: Arc<SsdConfig>,
        controller: Box<dyn RetryController>,
        lpn_count: u64,
    ) -> Result<Self, String> {
        Self::assemble_from(arena, cfg, controller, lpn_count, None)
    }

    /// [`Ssd::assemble`], warm-started from a device image when one is given:
    /// instead of rebuilding and re-preconditioning the FTL, the image's
    /// captured state is restored into the arena's recycled tables
    /// (allocation-retaining, like the rebuild path). The image must have
    /// been captured for the same geometry, footprint and model inputs —
    /// restoring is then bit-identical to preconditioning from scratch.
    fn assemble_from(
        arena: &mut SimArena,
        cfg: Arc<SsdConfig>,
        controller: Box<dyn RetryController>,
        lpn_count: u64,
        image: Option<&DeviceImage>,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let ftl = match image {
            None => {
                let mut ftl = match arena.ftl.take() {
                    Some(mut recycled) => {
                        recycled.rebuild(&cfg, lpn_count)?;
                        recycled
                    }
                    None => Ftl::new(&cfg, lpn_count)?,
                };
                ftl.precondition();
                ftl
            }
            Some(img) => {
                img.validate_for(&cfg, lpn_count)?;
                let mut ftl = match arena.ftl.take() {
                    Some(recycled) => recycled,
                    // A throwaway seed FTL for restore to fill; geometry
                    // checks happen inside `restore` against the image.
                    None => Ftl::new(&cfg, lpn_count)?,
                };
                ftl.restore(&cfg, img.ftl())?;
                ftl
            }
        };
        let mut model = ErrorModel::new(cfg.seed)
            .with_outlier_rate(cfg.outlier_rate)
            .with_profile_cache(cfg.hotpath.profile_cache);
        if let Some(img) = image {
            model.restore(img.model())?;
        }
        let model = model;
        let max_step = model.retry_table().max_steps();
        let mut dies = std::mem::take(&mut arena.dies);
        if dies.len() == cfg.total_dies() as usize {
            for d in &mut dies {
                d.reset(cfg.timings.sense);
            }
        } else {
            dies = (0..cfg.total_dies())
                .map(|_| DieState::new(cfg.timings.sense))
                .collect();
        }
        let mut channels = std::mem::take(&mut arena.channels);
        if channels.len() == cfg.channels as usize {
            for c in &mut channels {
                c.reset();
            }
        } else {
            channels = (0..cfg.channels).map(|_| ChannelState::new()).collect();
        }
        let mut events = std::mem::take(&mut arena.events);
        events.reset();
        // A pooled queue may carry the previous run's backend; align it with
        // this run's config (a no-op — allocations kept — when it matches).
        events.set_wheel(cfg.hotpath.timing_wheel);
        let slab_reuse = cfg.hotpath.txn_slab_reuse;
        let mut txns = std::mem::take(&mut arena.txns);
        let mut free_txns = std::mem::take(&mut arena.free_txns);
        if !slab_reuse {
            // Fresh-allocation semantics: ids must be assigned in append
            // order with no pooled slots.
            txns.clear();
            free_txns.clear();
        }
        let mut reqs = std::mem::take(&mut arena.reqs);
        reqs.clear();
        Ok(Self {
            metrics: MetricsCollector::new(max_step, 1),
            gc_policy: cfg.gc_policy,
            cfg,
            ftl,
            model,
            controller,
            events,
            now: SimTime::ZERO,
            dies,
            channels,
            txns,
            free_txns,
            reqs,
            front: FrontEnd::idle(),
            gc_jobs: Vec::new(),
            gc_throttle: GcThrottle::default(),
            reads_outstanding: Vec::new(),
            queue_seq: Vec::new(),
            track_requests: false,
            max_step,
            slab_reuse,
        })
    }

    /// Returns the simulation buffers to `arena` for the next run.
    fn release_into(mut self, arena: &mut SimArena) {
        arena.ftl = Some(self.ftl);
        arena.dies = self.dies;
        arena.channels = self.channels;
        arena.events = self.events;
        // Every slot is free for the next run; keep the sense buffers.
        for t in &mut self.txns {
            t.sensed.clear();
        }
        self.free_txns.clear();
        self.free_txns.extend((0..self.txns.len() as u32).rev());
        arena.free_txns = self.free_txns;
        arena.txns = self.txns;
        self.reqs.clear();
        arena.reqs = self.reqs;
    }

    /// Runs one trace on recycled `arena` buffers and returns them to the
    /// arena afterwards — the per-worker fast path of the experiment
    /// runners. Reports are bit-identical to `Ssd::new(..).run_with(..)`.
    ///
    /// # Errors
    ///
    /// Propagates configuration/footprint validation errors.
    ///
    /// # Panics
    ///
    /// Panics if the replay mode is invalid or a request's LPN range exceeds
    /// the preconditioned footprint (as [`Ssd::run_with`] does).
    pub fn run_pooled(
        arena: &mut SimArena,
        cfg: impl Into<Arc<SsdConfig>>,
        controller: Box<dyn RetryController>,
        lpn_count: u64,
        trace: &[HostRequest],
        mode: ReplayMode,
    ) -> Result<SimReport, String> {
        Self::run_pooled_queued(
            arena,
            cfg,
            controller,
            lpn_count,
            trace,
            &HostQueueConfig::single(mode),
        )
    }

    /// [`Ssd::run_pooled`] under a multi-queue host front end (see
    /// [`crate::hostq`]).
    ///
    /// # Errors
    ///
    /// Propagates configuration/footprint validation errors.
    ///
    /// # Panics
    ///
    /// Panics if the front-end configuration is invalid or a request's LPN
    /// range exceeds the preconditioned footprint.
    pub fn run_pooled_queued(
        arena: &mut SimArena,
        cfg: impl Into<Arc<SsdConfig>>,
        controller: Box<dyn RetryController>,
        lpn_count: u64,
        trace: &[HostRequest],
        queues: &HostQueueConfig,
    ) -> Result<SimReport, String> {
        Self::run_pooled_queued_from(arena, cfg, controller, lpn_count, trace, queues, None)
    }

    /// [`Ssd::run_pooled_queued`], warm-started from a device image when one
    /// is given: the expensive precondition step is replaced by an
    /// allocation-retaining restore of the image into the arena's recycled
    /// tables, and the run is bit-identical to a cold start (the sweep
    /// equivalence suite pins this).
    ///
    /// # Errors
    ///
    /// Propagates configuration/footprint validation errors, plus image
    /// mismatches (wrong geometry, footprint, seed or outlier rate).
    ///
    /// # Panics
    ///
    /// Panics if the front-end configuration is invalid or a request's LPN
    /// range exceeds the preconditioned footprint.
    pub fn run_pooled_queued_from(
        arena: &mut SimArena,
        cfg: impl Into<Arc<SsdConfig>>,
        controller: Box<dyn RetryController>,
        lpn_count: u64,
        trace: &[HostRequest],
        queues: &HostQueueConfig,
        image: Option<&DeviceImage>,
    ) -> Result<SimReport, String> {
        let mut ssd = Self::assemble_from(arena, cfg.into(), controller, lpn_count, image)?;
        let report = ssd.run_mut(trace, queues);
        ssd.release_into(arena);
        Ok(report)
    }

    /// [`Ssd::run_pooled_queued_from`] that also hands back the raw latency
    /// samples, for the array layer's exact cross-device quantile merge. The
    /// report is bit-identical to the plain variant. `track` additionally
    /// records per-request responses by trace index (the redundancy layer's
    /// copy-matching) without perturbing anything else.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_pooled_queued_collected_from(
        arena: &mut SimArena,
        cfg: impl Into<Arc<SsdConfig>>,
        controller: Box<dyn RetryController>,
        lpn_count: u64,
        trace: &[HostRequest],
        queues: &HostQueueConfig,
        image: Option<&DeviceImage>,
        track: bool,
    ) -> Result<(SimReport, LatencySamples), String> {
        let mut ssd = Self::assemble_from(arena, cfg.into(), controller, lpn_count, image)?;
        ssd.track_requests = track;
        let (name, collector) = ssd.run_core(trace, queues);
        let out = collector.finish_with_samples(&name);
        ssd.release_into(arena);
        Ok(out)
    }

    /// Snapshots this device's mutable state into a [`DeviceImage`].
    ///
    /// Capture happens at quiescence (before a run, or conceptually between
    /// runs), where all in-flight structures — events, transactions, host
    /// queues — are empty by construction; what remains is exactly the FTL
    /// tables, the freshness bitmap, and the error-model inputs.
    pub fn capture_image(&self) -> DeviceImage {
        DeviceImage::from_parts(self.ftl.capture(), self.model.capture())
    }

    /// Runs the trace to completion open-loop (requests arrive at their
    /// trace timestamps) and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if a request's LPN range exceeds the preconditioned footprint.
    pub fn run(self, trace: &[HostRequest]) -> SimReport {
        self.run_with(trace, ReplayMode::OpenLoop)
    }

    /// Runs the trace to completion under the given replay mode.
    ///
    /// Closed-loop replay ignores trace timestamps and keeps
    /// `queue_depth` requests outstanding; see [`ReplayMode`].
    ///
    /// # Panics
    ///
    /// Panics if the replay mode is invalid (zero queue depth or rate) or a
    /// request's LPN range exceeds the preconditioned footprint.
    pub fn run_with(mut self, trace: &[HostRequest], mode: ReplayMode) -> SimReport {
        self.run_mut(trace, &HostQueueConfig::single(mode))
    }

    /// Runs the trace under a multi-queue host front end: the trace is
    /// striped over the configured submission queues, each queue replays its
    /// stripe under its own [`ReplayMode`], and the device admits from the
    /// queues through the configured RR/WRR arbiter and admission window
    /// (see [`crate::hostq`]).
    ///
    /// A [`HostQueueConfig::single`] front end is bit-identical to
    /// [`Ssd::run_with`] with the same mode.
    ///
    /// # Panics
    ///
    /// Panics if the front-end configuration is invalid or a request's LPN
    /// range exceeds the preconditioned footprint.
    pub fn run_with_queues(mut self, trace: &[HostRequest], queues: &HostQueueConfig) -> SimReport {
        self.run_mut(trace, queues)
    }

    fn run_mut(&mut self, trace: &[HostRequest], queues: &HostQueueConfig) -> SimReport {
        let (name, collector) = self.run_core(trace, queues);
        collector.finish(&name)
    }

    /// The shared event loop behind [`Ssd::run_mut`] and the collected
    /// variant: runs the trace to completion and returns the controller name
    /// plus the filled collector, leaving finalization to the caller.
    fn run_core(
        &mut self,
        trace: &[HostRequest],
        queues: &HostQueueConfig,
    ) -> (String, MetricsCollector) {
        queues
            .validate()
            .expect("valid host-queue configuration and replay modes");
        // The queue is empty here, so retargeting the backend is free; the
        // default `heap` backend leaves `timing_wheel` in charge, so this is
        // a no-op unless `hotpath.event_backend` asks for `wheel`/`auto`.
        self.events
            .set_wheel(self.cfg.hotpath.wheel_for_depth(queues.steady_depth_hint()));
        for r in trace {
            assert!(
                r.lpn + r.len_pages as u64 <= self.ftl.lpn_count(),
                "request LPN range {}..{} exceeds footprint {}",
                r.lpn,
                r.lpn + r.len_pages as u64,
                self.ftl.lpn_count()
            );
        }
        self.metrics = MetricsCollector::new(self.max_step, queues.queue_count());
        if self.track_requests {
            self.metrics.track_requests(trace.len());
        }
        self.reads_outstanding.clear();
        self.reads_outstanding.resize(queues.queue_count(), 0);
        self.queue_seq.clear();
        self.queue_seq.resize(queues.queue_count(), 0);
        self.gc_throttle.reset();
        let (front, initial) = FrontEnd::start(queues, trace);
        self.front = front;
        for (queue, arrival, r) in initial {
            self.submit(arrival, queue, r);
        }
        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            self.metrics.events_processed += 1;
            match ev {
                Event::Arrive(id) => self.handle_arrival(id),
                Event::DieDone { die, gen } => self.handle_die_done(die, gen),
                Event::TransferDone { channel } => self.handle_transfer_done(channel),
                Event::EccDone { channel } => self.handle_ecc_done(channel),
            }
        }
        self.assert_drained();
        let name = self.controller.name().to_string();
        let collector =
            std::mem::replace(&mut self.metrics, MetricsCollector::new(self.max_step, 1));
        (name, collector)
    }

    /// After the event queue empties, nothing may remain queued anywhere —
    /// a leftover means a lost wakeup (a scheduling bug), so fail loudly.
    fn assert_drained(&self) {
        for (i, d) in self.dies.iter().enumerate() {
            assert!(
                d.p0.is_empty() && d.p1.is_empty() && d.p2.is_empty(),
                "die {i} still has queued work: p0={} p1={} p2={} job={:?} suspended={}",
                d.p0.len(),
                d.p1.len(),
                d.p2.len(),
                d.job,
                d.suspended.is_some(),
            );
            assert!(
                d.suspended.is_none(),
                "die {i} left a suspended op unresumed"
            );
            assert!(d.job.is_none(), "die {i} left job {:?} in flight", d.job);
            assert!(d.owner.is_none(), "die {i} still owned by {:?}", d.owner);
        }
        for (i, c) in self.channels.iter().enumerate() {
            assert!(
                !c.has_queued_work(),
                "channel {i} still has queued transfers/decodes"
            );
        }
        for (i, r) in self.reqs.iter().enumerate() {
            assert!(
                r.remaining == 0,
                "request {i} ({:?}, arrival {}) never completed: {} pages left",
                r.op,
                r.arrival,
                r.remaining
            );
        }
        assert_eq!(
            self.front.pending_submissions(),
            0,
            "host queues never submitted {} requests",
            self.front.pending_submissions()
        );
        assert_eq!(
            self.front.parked(),
            0,
            "{} submitted requests were never admitted",
            self.front.parked()
        );
        assert_eq!(
            self.front.in_flight(),
            0,
            "{} admitted requests never completed",
            self.front.in_flight()
        );
    }

    // ---- submission, arbitration & transaction creation -------------------

    /// Submits one host request of `queue` at `arrival` (schedules its
    /// `Arrive` event; the request reaches its submission queue when the
    /// event fires).
    fn submit(&mut self, arrival: SimTime, queue: u16, r: HostRequest) {
        let id = ReqId(self.reqs.len() as u32);
        let index = queue as u32 + self.queue_seq.len() as u32 * self.queue_seq[queue as usize];
        self.queue_seq[queue as usize] += 1;
        self.reqs.push(ReqState {
            op: r.op,
            lpn: r.lpn,
            arrival,
            queue,
            remaining: r.len_pages,
            retried: false,
            index,
        });
        self.events.push(arrival, Event::Arrive(id));
    }

    fn handle_arrival(&mut self, req: ReqId) {
        let queue = self.reqs[req.0 as usize].queue;
        // Open loop feeds each queue's arrivals one at a time (stripes are
        // time-sorted, so the next submission is never in the past);
        // scheduling it before the spawned flash work keeps the event-queue
        // footprint minimal.
        if let Some((at, r)) = self.front.next_arrival(queue) {
            self.submit(at, queue, r);
        }
        self.front.enqueue(queue, req);
        self.pump_admission();
    }

    /// Drains the submission queues into the device while the admission
    /// window has room, in the arbiter's RR/WRR order — the front-end hook
    /// of the admission path. With an unbounded window this degenerates to
    /// admit-on-submission.
    fn pump_admission(&mut self) {
        while let Some(req) = self.front.try_admit() {
            self.dispatch(req);
        }
    }

    /// Splits an admitted request into its per-page flash transactions.
    fn dispatch(&mut self, req: ReqId) {
        let r = &self.reqs[req.0 as usize];
        // No page has completed yet, so `remaining` is the request length.
        let (op, first, last) = (r.op, r.lpn, r.lpn + r.remaining as u64);
        if op == IoOp::Read {
            self.reads_outstanding[r.queue as usize] += 1;
        }
        match op {
            IoOp::Read => {
                for lpn in first..last {
                    self.spawn_host_read(req, lpn);
                }
            }
            IoOp::Write => {
                for lpn in first..last {
                    self.spawn_host_write(req, lpn);
                }
            }
        }
    }

    fn condition_for(&self, lpn: u64) -> (OperatingCondition, bool) {
        let cold = self.ftl.is_cold(lpn);
        let retention = if cold {
            self.cfg.condition.retention_months
        } else {
            0.0
        };
        (
            OperatingCondition::new(self.cfg.condition.pec, retention, self.cfg.condition.temp_c),
            cold,
        )
    }

    fn spawn_host_read(&mut self, req: ReqId, lpn: u64) {
        let ppn = self
            .ftl
            .translate(lpn)
            .expect("preconditioned footprint covers all trace LPNs");
        let loc = self.ftl.locate(ppn);
        let (condition, cold) = self.condition_for(lpn);
        let txn = self.new_txn(TxnKind::HostRead, Some(req), lpn, loc, None, None);
        let ctx = ReadContext {
            txn,
            die: loc.die_global,
            condition,
            cold,
            max_step: self.max_step,
        };
        self.txns[txn.0 as usize].ctx = Some(ctx);
        self.enqueue_read(txn, loc.die_global);
    }

    fn spawn_host_write(&mut self, req: ReqId, lpn: u64) {
        let alloc = self
            .ftl
            .allocate_for_write(lpn)
            .expect("GC keeps free pages available");
        let loc = self.ftl.locate(alloc.ppn);
        let txn = self.new_txn(TxnKind::HostWrite, Some(req), lpn, loc, None, None);
        self.dies[loc.die_global as usize].p2.push_back(txn);
        self.pump_die(loc.die_global);
        if let Some(plane) = alloc.gc_hint {
            let trigger_queue = self.reqs[req.0 as usize].queue;
            self.maybe_start_gc(plane, trigger_queue);
        }
    }

    /// Allocates a transaction record, preferring a recycled slot (whose
    /// sense buffer is kept, cleared) over growing the slab.
    fn new_txn(
        &mut self,
        kind: TxnKind,
        req: Option<ReqId>,
        lpn: u64,
        loc: PpnLocation,
        gc_src: Option<(Ppn, usize)>,
        gc_job: Option<usize>,
    ) -> TxnId {
        let mut state = TxnState {
            kind,
            req,
            lpn,
            loc,
            ctx: None,
            sensed: Vec::new(),
            senses: 0,
            finished: false,
            pending_io: 0,
            gc_src,
            gc_job,
        };
        if let Some(i) = self.free_txns.pop() {
            let slot = &mut self.txns[i as usize];
            let mut sensed = std::mem::take(&mut slot.sensed);
            sensed.clear();
            state.sensed = sensed;
            *slot = state;
            TxnId(i)
        } else {
            let id = TxnId(self.txns.len() as u32);
            self.txns.push(state);
            id
        }
    }

    /// Returns a finished transaction's slot to the free list once nothing
    /// in the machine references it anymore: the die has released ownership
    /// (reads) or never owned it (writes/erases), and no channel transfer or
    /// decode still carries its id.
    fn maybe_recycle(&mut self, txn: TxnId) {
        if !self.slab_reuse {
            return;
        }
        let t = &self.txns[txn.0 as usize];
        if !t.finished || t.pending_io != 0 {
            return;
        }
        if self.dies[t.loc.die_global as usize].owner == Some(txn) {
            return;
        }
        self.free_txns.push(txn.0);
    }

    fn enqueue_read(&mut self, txn: TxnId, die: u32) {
        self.dies[die as usize].p1.push_back(txn);
        self.maybe_suspend(die, txn);
        self.record_gc_wait_if_blocked(die, txn);
        self.pump_die(die);
    }

    // ---- garbage collection ------------------------------------------------

    /// Whether the GC policy admits a new non-critical job on `plane` right
    /// now, recording a deferral against the accountable queue when it does
    /// not. Critically low planes (≤ 1 free block) always collect.
    fn gc_policy_admits(&mut self, plane: u32, trigger_queue: u16) -> bool {
        match self.gc_policy {
            GcPolicy::Greedy | GcPolicy::ReadPreempt { .. } => true,
            GcPolicy::WindowedTokens { tokens, window_us } => {
                if self.ftl.plane_is_critical(plane) {
                    return true;
                }
                if self
                    .gc_throttle
                    .try_take(self.now, tokens, SimTime::from_us(window_us))
                {
                    true
                } else {
                    self.metrics.record_gc_deferral(trigger_queue);
                    false
                }
            }
            GcPolicy::QueueShield { queue } => {
                if self.ftl.plane_is_critical(plane) {
                    return true;
                }
                let shield_busy = self
                    .reads_outstanding
                    .get(queue as usize)
                    .is_some_and(|&n| n > 0);
                if shield_busy {
                    self.metrics.record_gc_deferral(queue);
                    false
                } else {
                    true
                }
            }
        }
    }

    fn maybe_start_gc(&mut self, plane: u32, trigger_queue: u16) {
        // One active job per plane at a time.
        if self
            .gc_jobs
            .iter()
            .any(|j| j.plane == plane && (j.remaining_moves > 0 || !j.erase_issued))
        {
            return;
        }
        if !self.gc_policy_admits(plane, trigger_queue) {
            return;
        }
        let Some(job) = self.ftl.start_gc(plane) else {
            return;
        };
        let job_idx = self.gc_jobs.len();
        self.gc_jobs.push(GcJobState {
            victim_block: job.victim_block,
            plane,
            remaining_moves: job.moves.len() as u32,
            erase_issued: false,
            preemptions_left: self.gc_policy.job_preempt_budget(),
        });
        if job.moves.is_empty() {
            self.issue_gc_erase(job_idx);
            return;
        }
        for (lpn, src) in job.moves {
            let loc = self.ftl.locate(src);
            let (condition, cold) = self.condition_for(lpn);
            let txn = self.new_txn(TxnKind::GcRead, None, lpn, loc, Some((src, job_idx)), None);
            let ctx = ReadContext {
                txn,
                die: loc.die_global,
                condition,
                cold,
                max_step: self.max_step,
            };
            self.txns[txn.0 as usize].ctx = Some(ctx);
            self.enqueue_read(txn, loc.die_global);
        }
    }

    fn gc_read_finished(&mut self, txn: TxnId) {
        let (src, job_idx) = self.txns[txn.0 as usize]
            .gc_src
            .expect("gc_read_finished on a non-GC read");
        let lpn = self.txns[txn.0 as usize].lpn;
        let plane = self.gc_jobs[job_idx].plane;
        if self.ftl.gc_move_still_needed(lpn, src) {
            let dst = self
                .ftl
                .allocate_for_gc(lpn, plane)
                .expect("GC target plane has reserve space");
            let loc = self.ftl.locate(dst);
            let wtxn = self.new_txn(TxnKind::GcWrite, None, lpn, loc, None, Some(job_idx));
            self.dies[loc.die_global as usize].p2.push_back(wtxn);
            self.pump_die(loc.die_global);
        } else {
            // A host write invalidated the page mid-move; nothing to copy.
            self.gc_move_done(job_idx);
        }
    }

    fn gc_move_done(&mut self, job_idx: usize) {
        let job = &mut self.gc_jobs[job_idx];
        job.remaining_moves -= 1;
        if job.remaining_moves == 0 {
            self.issue_gc_erase(job_idx);
        }
    }

    fn issue_gc_erase(&mut self, job_idx: usize) {
        let job = &mut self.gc_jobs[job_idx];
        job.erase_issued = true;
        let victim = job.victim_block;
        let ppb = self.cfg.chip.pages_per_block;
        let loc = self.ftl.locate(Ppn(victim * ppb));
        let txn = self.new_txn(TxnKind::GcErase, None, 0, loc, None, Some(job_idx));
        self.dies[loc.die_global as usize].p2.push_back(txn);
        self.pump_die(loc.die_global);
    }

    // ---- die scheduling -----------------------------------------------------

    /// Suspend an in-flight program/erase because `reader` is waiting
    /// (§7.2). Host programs always arbitrate under the default
    /// minimum-benefit rule; for GC programs/erases the [`GcPolicy`] may
    /// force the suspension (ignoring the benefit rule) or veto it outright,
    /// and every GC suspension is attributed to the waiting read's host
    /// queue ([`crate::metrics::GcStalls`]).
    fn maybe_suspend(&mut self, die_idx: u32, reader: TxnId) {
        let min_benefit = SimTime::from_us(self.cfg.min_suspend_benefit_us);
        let t_suspend = self.cfg.timings.t_suspend;
        // The in-flight GC program/erase this suspension would interrupt,
        // if any (only data-loaded programs and erases are suspendable).
        let gc_job = match self.dies[die_idx as usize].job {
            Some(DieJob::Program {
                txn,
                data_loaded: true,
            })
            | Some(DieJob::Erase { txn }) => self.txns[txn.0 as usize].gc_job,
            _ => None,
        };
        let reader_queue = self.txns[reader.0 as usize]
            .req
            .map(|r| self.reqs[r.0 as usize].queue);
        let mut benefit_floor = min_benefit;
        let mut forced = false;
        if let Some(job_idx) = gc_job {
            match self.gc_policy {
                GcPolicy::Greedy | GcPolicy::WindowedTokens { .. } => {}
                GcPolicy::ReadPreempt { .. } => {
                    // GC readers keep the default rule; host reads spend the
                    // job's preemption budget, after which the job's
                    // operations run to completion unsuspended.
                    if reader_queue.is_some() {
                        if self.gc_jobs[job_idx].preemptions_left > 0 {
                            benefit_floor = SimTime::ZERO;
                            forced = true;
                        } else {
                            return;
                        }
                    }
                }
                GcPolicy::QueueShield { queue } => {
                    if reader_queue == Some(queue) {
                        benefit_floor = SimTime::ZERO;
                        forced = true;
                    }
                }
            }
        }
        let now = self.now;
        let die = &mut self.dies[die_idx as usize];
        if let Some(gen) = die.try_suspend(now, benefit_floor, t_suspend) {
            let at = die.busy_until;
            self.events.push(at, Event::DieDone { die: die_idx, gen });
            self.metrics.suspensions += 1;
            if let Some(job_idx) = gc_job {
                if forced {
                    let left = &mut self.gc_jobs[job_idx].preemptions_left;
                    *left = left.saturating_sub(1);
                }
                if let Some(queue) = reader_queue {
                    self.metrics
                        .record_gc_suspension(queue, t_suspend.as_us_f64(), forced);
                }
            }
        }
    }

    /// If the just-enqueued read is a host read stuck behind a GC die
    /// operation that was not (or could not be) suspended, attribute the
    /// residual busy time to the read's queue as a GC wait. A GC program
    /// still awaiting its data transfer has no bounded completion time yet;
    /// the wait is counted with zero residual.
    fn record_gc_wait_if_blocked(&mut self, die_idx: u32, reader: TxnId) {
        let Some(req) = self.txns[reader.0 as usize].req else {
            return;
        };
        let die = &self.dies[die_idx as usize];
        let blocking_gc = match die.job {
            Some(
                DieJob::Sense { txn, .. }
                | DieJob::SetFeature { txn }
                | DieJob::Reset { txn }
                | DieJob::Program { txn, .. }
                | DieJob::Erase { txn },
            ) => !self.txns[txn.0 as usize].kind.is_host(),
            Some(DieJob::Suspending) | None => false,
        };
        if !blocking_gc {
            return;
        }
        let residual = if die.busy_until == SimTime::MAX {
            0.0
        } else {
            die.busy_until.saturating_sub(self.now).as_us_f64()
        };
        let queue = self.reqs[req.0 as usize].queue;
        self.metrics.record_gc_wait(queue, residual);
    }

    /// Starts the next operation on an idle die, by priority (see
    /// [`crate::scheduler`] for the priority rationale).
    fn pump_die(&mut self, die_idx: u32) {
        loop {
            let die = &self.dies[die_idx as usize];
            if !die.idle() {
                return;
            }
            // P0: continuations of the owning read's retry operation.
            if let Some(&(txn, op)) = self.dies[die_idx as usize].p0.front() {
                debug_assert_eq!(
                    self.dies[die_idx as usize].owner,
                    Some(txn),
                    "P0 ops always belong to the die owner"
                );
                self.dies[die_idx as usize].p0.pop_front();
                self.start_queued_op(die_idx, txn, op);
                return;
            }
            // While a read-retry operation owns the die, nothing else runs —
            // its next step arrives after the in-flight transfer/decode.
            if self.dies[die_idx as usize].owner.is_some() {
                return;
            }
            // P1: first sensings of reads — the new owner.
            if let Some(txn) = self.dies[die_idx as usize].p1.pop_front() {
                self.dies[die_idx as usize].owner = Some(txn);
                let ctx = self.txns[txn.0 as usize]
                    .ctx
                    .expect("reads carry a context");
                let actions = self.controller.on_start(&ctx);
                self.execute_actions(txn, actions);
                // Actions queued into P0; loop to start them.
                continue;
            }
            // Resume a suspended program/erase before starting new P2 work.
            if let Some(gen) = self.dies[die_idx as usize].resume(self.now) {
                let at = self.dies[die_idx as usize].busy_until;
                self.events.push(at, Event::DieDone { die: die_idx, gen });
                return;
            }
            // P2: programs and erases; GC jumps ahead when a plane is
            // critical — an O(1) unlink from the middle of the linked queue.
            if self.dies[die_idx as usize].p2.is_empty() {
                return;
            }
            let urgent = self.die_has_critical_plane(die_idx);
            // QueueShield: while the shielded queue has reads outstanding
            // (and no plane is critical), queued GC operations yield to
            // host operations on this die.
            let shield_yields = !urgent
                && self.gc_policy.shield_queue().is_some_and(|q| {
                    self.reads_outstanding
                        .get(q as usize)
                        .is_some_and(|&n| n > 0)
                });
            let txn = {
                let Self { dies, txns, .. } = self;
                let p2 = &mut dies[die_idx as usize].p2;
                let promoted = if urgent {
                    p2.pop_first_where(|&t| !txns[t.0 as usize].kind.is_host())
                } else if shield_yields {
                    p2.pop_first_where(|&t| txns[t.0 as usize].kind.is_host())
                } else {
                    None
                };
                promoted
                    .or_else(|| p2.pop_front())
                    .expect("P2 checked non-empty")
            };
            self.start_p2_txn(die_idx, txn);
            return;
        }
    }

    fn die_has_critical_plane(&self, die_idx: u32) -> bool {
        let ppd = self.cfg.chip.planes_per_die;
        (0..ppd).any(|p| self.ftl.plane_is_critical(die_idx * ppd + p))
    }

    fn start_queued_op(&mut self, die_idx: u32, txn: TxnId, op: QueuedOp) {
        match op {
            QueuedOp::Sense { step } => {
                let loc = self.txns[txn.0 as usize].loc;
                let phases = self.dies[die_idx as usize].phases;
                let kind = self.cfg.chip.page_kind(loc.page_in_block);
                let errors = if self.cfg.ideal_no_retry {
                    0
                } else {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("sense on a read");
                    self.model.errors_at_step(
                        PageId::new(loc.block_global, loc.page_in_block),
                        ctx.condition,
                        step,
                        &phases,
                    )
                };
                let t = &mut self.txns[txn.0 as usize];
                t.sensed.push((step, errors));
                t.senses += 1;
                self.metrics.senses += 1;
                let until = self.now + phases.t_r(kind);
                let die = &mut self.dies[die_idx as usize];
                let gen = die.begin(DieJob::Sense { txn, step }, until);
                self.events
                    .push(until, Event::DieDone { die: die_idx, gen });
            }
            QueuedOp::SetFeature { phases } => {
                self.metrics.set_features += 1;
                let default = self.cfg.timings.sense;
                let until = self.now + self.cfg.timings.t_set;
                let die = &mut self.dies[die_idx as usize];
                die.phases = phases.unwrap_or(default);
                let gen = die.begin(DieJob::SetFeature { txn }, until);
                self.events
                    .push(until, Event::DieDone { die: die_idx, gen });
            }
        }
    }

    fn start_p2_txn(&mut self, die_idx: u32, txn: TxnId) {
        let kind = self.txns[txn.0 as usize].kind;
        match kind {
            TxnKind::HostWrite | TxnKind::GcWrite => {
                // Reserve the die, then move the data over the channel;
                // programming starts when the transfer lands.
                let die = &mut self.dies[die_idx as usize];
                die.begin(
                    DieJob::Program {
                        txn,
                        data_loaded: false,
                    },
                    SimTime::MAX,
                );
                let t = &mut self.txns[txn.0 as usize];
                t.pending_io += 1;
                let channel = t.loc.channel;
                self.channels[channel as usize].enqueue_transfer(Transfer {
                    txn,
                    step: None,
                    errors: 0,
                });
                self.pump_channel(channel);
            }
            TxnKind::GcErase => {
                let until = self.now + self.cfg.timings.t_bers;
                let die = &mut self.dies[die_idx as usize];
                let gen = die.begin(DieJob::Erase { txn }, until);
                self.events
                    .push(until, Event::DieDone { die: die_idx, gen });
            }
            TxnKind::HostRead | TxnKind::GcRead => {
                unreachable!("reads are dispatched from P1, not P2")
            }
        }
    }

    // ---- event handlers ------------------------------------------------------

    fn handle_die_done(&mut self, die_idx: u32, gen: u64) {
        if self.dies[die_idx as usize].gen != gen {
            return; // cancelled by RESET or suspension
        }
        let job = self.dies[die_idx as usize]
            .job
            .take()
            .expect("DieDone with empty job");
        match job {
            DieJob::Sense { txn, step } => {
                if !self.txns[txn.0 as usize].finished {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("sense on a read");
                    let actions = self.controller.on_sense_done(&ctx, step);
                    self.execute_actions(txn, actions);
                }
            }
            DieJob::SetFeature { txn } => {
                if !self.txns[txn.0 as usize].finished {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("feature on a read");
                    let actions = self.controller.on_feature_applied(&ctx);
                    self.execute_actions(txn, actions);
                }
            }
            DieJob::Reset { txn } => {
                if !self.txns[txn.0 as usize].finished {
                    let ctx = self.txns[txn.0 as usize].ctx.expect("reset on a read");
                    let actions = self.controller.on_reset_done(&ctx);
                    self.execute_actions(txn, actions);
                }
            }
            DieJob::Program { txn, .. } => {
                self.finish_write(txn);
            }
            DieJob::Erase { txn } => {
                let job_idx = self.txns[txn.0 as usize].gc_job.expect("erases are GC ops");
                let victim = self.gc_jobs[job_idx].victim_block;
                self.ftl.finish_gc(victim);
                self.metrics.gc_collections += 1;
                self.txns[txn.0 as usize].finished = true;
                self.maybe_recycle(txn);
            }
            DieJob::Suspending => {}
        }
        self.try_release_owner(die_idx);
        self.pump_die(die_idx);
    }

    /// Releases die ownership once the owning read has completed and all of
    /// its trailing die operations (speculation RESET, `SET FEATURE`
    /// rollback) have drained.
    fn try_release_owner(&mut self, die_idx: u32) {
        let die = &self.dies[die_idx as usize];
        let Some(owner) = die.owner else {
            return;
        };
        if !self.txns[owner.0 as usize].finished {
            return;
        }
        // P0 ops belong exclusively to the die owner, so a non-empty P0
        // means the owner still has queued work (O(1) check).
        if !die.p0.is_empty() {
            debug_assert!(
                die.p0.iter().all(|&(t, _)| t == owner),
                "P0 held another read's ops"
            );
            return;
        }
        let job_is_owners = match die.job {
            Some(DieJob::Sense { txn, .. })
            | Some(DieJob::SetFeature { txn })
            | Some(DieJob::Reset { txn }) => txn == owner,
            _ => false,
        };
        if job_is_owners {
            return;
        }
        self.dies[die_idx as usize].owner = None;
        self.maybe_recycle(owner);
    }

    fn handle_transfer_done(&mut self, channel: u32) {
        let t = self.channels[channel as usize].end_transfer();
        match t.step {
            Some(_) => {
                // Read data arrived at the controller: queue ECC decode.
                // The channel reference lives on (transfer → decode), so
                // `pending_io` stays held until the decode completes.
                self.channels[channel as usize].enqueue_decode(t);
                self.pump_ecc(channel);
            }
            None => {
                // Write data arrived at the chip: the channel reference
                // drops and programming starts.
                let txn_state = &mut self.txns[t.txn.0 as usize];
                debug_assert!(txn_state.pending_io > 0);
                txn_state.pending_io -= 1;
                let die_idx = txn_state.loc.die_global;
                let until = self.now + self.cfg.timings.t_prog;
                let die = &mut self.dies[die_idx as usize];
                debug_assert!(matches!(
                    die.job,
                    Some(DieJob::Program {
                        data_loaded: false,
                        ..
                    })
                ));
                let gen = die.begin(
                    DieJob::Program {
                        txn: t.txn,
                        data_loaded: true,
                    },
                    until,
                );
                self.events
                    .push(until, Event::DieDone { die: die_idx, gen });
            }
        }
        self.pump_channel(channel);
    }

    fn handle_ecc_done(&mut self, channel: u32) {
        let d = self.channels[channel as usize].end_decode();
        self.pump_ecc(channel);
        let step = d.step.expect("only reads are decoded");
        {
            let t = &mut self.txns[d.txn.0 as usize];
            debug_assert!(t.pending_io > 0, "decode without a channel reference");
            t.pending_io -= 1;
        }
        if self.txns[d.txn.0 as usize].finished {
            // Stale pipelined transfer after completion: the dropped channel
            // reference may have been the last thing pinning the slot.
            self.maybe_recycle(d.txn);
            return;
        }
        let success = d.errors <= self.cfg.ecc.capability;
        let margin = self.cfg.ecc.capability.saturating_sub(d.errors);
        let ctx = self.txns[d.txn.0 as usize].ctx.expect("decode on a read");
        let actions = self.controller.on_decode_done(&ctx, step, success, margin);
        self.execute_actions(d.txn, actions);
    }

    // ---- action execution ----------------------------------------------------

    fn execute_actions(&mut self, txn: TxnId, actions: Actions) {
        let die_idx = self.txns[txn.0 as usize].loc.die_global;
        for a in actions.iter() {
            match a {
                ReadAction::Sense { step } => {
                    self.dies[die_idx as usize]
                        .p0
                        .push_back((txn, QueuedOp::Sense { step }));
                    self.maybe_suspend(die_idx, txn);
                }
                ReadAction::SetFeature { phases } => {
                    self.dies[die_idx as usize]
                        .p0
                        .push_back((txn, QueuedOp::SetFeature { phases }));
                    self.maybe_suspend(die_idx, txn);
                }
                ReadAction::Transfer { step } => {
                    let t = &mut self.txns[txn.0 as usize];
                    let errors = t
                        .sensed
                        .iter()
                        .rev()
                        .find(|&&(s, _)| s == step)
                        .map(|&(_, e)| e)
                        .expect("transfer of a step that was sensed");
                    t.pending_io += 1;
                    let channel = t.loc.channel;
                    self.channels[channel as usize].enqueue_transfer(Transfer {
                        txn,
                        step: Some(step),
                        errors,
                    });
                    self.pump_channel(channel);
                }
                ReadAction::Reset => self.do_reset(txn, die_idx),
                ReadAction::CompleteSuccess { step } => self.finish_read(txn, Some(step)),
                ReadAction::CompleteFailure => self.finish_read(txn, None),
            }
        }
        self.try_release_owner(die_idx);
        self.pump_die(die_idx);
    }

    /// `RESET` immediately terminates the die's in-flight sensing for `txn`
    /// (the speculative extra retry step of PR², §6.1).
    fn do_reset(&mut self, txn: TxnId, die_idx: u32) {
        self.metrics.resets += 1;
        let t_rst = self.cfg.timings.t_rst_read;
        let until = self.now + t_rst;
        let die = &mut self.dies[die_idx as usize];
        match die.job {
            Some(DieJob::Sense { txn: sensing, .. }) if self.now < die.busy_until => {
                assert_eq!(
                    sensing, txn,
                    "RESET may only kill the issuing read's own sensing"
                );
            }
            _ => {
                // The die already finished (or never started) the speculative
                // step; RESET still costs tRST to return the die to ready.
            }
        }
        // Drop any not-yet-started ops this txn queued (stale speculation).
        // P0 holds only the issuing read's (the owner's) ops, so the whole
        // queue empties — no scan-and-compare retain.
        while let Some((t, _)) = die.p0.pop_front() {
            debug_assert_eq!(t, txn, "P0 held another read's op during RESET");
        }
        let gen = die.begin(DieJob::Reset { txn }, until);
        self.events
            .push(until, Event::DieDone { die: die_idx, gen });
    }

    fn pump_channel(&mut self, channel: u32) {
        if self.channels[channel as usize].begin_transfer() {
            self.events.push(
                self.now + self.cfg.timings.t_dma,
                Event::TransferDone { channel },
            );
        }
    }

    fn pump_ecc(&mut self, channel: u32) {
        if self.channels[channel as usize].begin_decode() {
            self.events.push(
                self.now + self.cfg.timings.t_ecc,
                Event::EccDone { channel },
            );
        }
    }

    // ---- completion -----------------------------------------------------------

    fn finish_read(&mut self, txn: TxnId, success_step: Option<u32>) {
        {
            let t = &mut self.txns[txn.0 as usize];
            debug_assert!(!t.finished, "double completion of {txn:?}");
            t.finished = true;
        }
        let t = &self.txns[txn.0 as usize];
        let kind = t.kind;
        let senses = t.senses;
        let req = t.req;
        let ctx = t.ctx.expect("reads carry a context");
        if kind == TxnKind::HostRead {
            // Retry steps = sensings beyond the first.
            self.metrics.record_retry_steps(senses.saturating_sub(1));
            if senses > 1 {
                if let Some(req) = req {
                    self.reqs[req.0 as usize].retried = true;
                }
            }
            if success_step.is_none() {
                self.metrics.read_failures += 1;
            }
        }
        self.controller.on_end(&ctx, success_step);
        if let Some(req) = req {
            self.complete_req_part(req);
        }
        if kind == TxnKind::GcRead {
            self.gc_read_finished(txn);
        }
    }

    fn finish_write(&mut self, txn: TxnId) {
        self.txns[txn.0 as usize].finished = true;
        if let Some(req) = self.txns[txn.0 as usize].req {
            self.complete_req_part(req);
        }
        if let Some(job_idx) = self.txns[txn.0 as usize].gc_job {
            self.gc_move_done(job_idx);
        }
        // Writes never own their die and their lone data transfer completed
        // before programming began, so the slot frees immediately.
        self.maybe_recycle(txn);
    }

    fn complete_req_part(&mut self, req: ReqId) {
        let r = &mut self.reqs[req.0 as usize];
        r.remaining -= 1;
        if r.remaining == 0 {
            let response = self.now - r.arrival;
            let is_read = r.op == IoOp::Read;
            let retried = r.retried;
            let queue = r.queue;
            let index = r.index;
            if is_read {
                self.reads_outstanding[queue as usize] -= 1;
            }
            self.metrics
                .record_request(queue, is_read, retried, response, self.now);
            self.metrics.record_indexed(index, response, retried);
            // Closed loop: the completing queue submits its next backlog
            // request (an `Arrive` event at `now`, FIFO within the tick, so
            // same-tick completion bursts submit in trace order per queue).
            if let Some(next) = self.front.complete(queue) {
                self.submit(self.now, queue, next);
            }
            // The freed window slot can admit a parked submission from
            // whichever queue the arbiter picks.
            self.pump_admission();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readflow::BaselineController;

    fn cfg_at(pec: f64, months: f64) -> SsdConfig {
        SsdConfig::scaled_for_tests().with_condition(OperatingCondition::new(pec, months, 30.0))
    }

    fn run_reads(cfg: SsdConfig, lpns: &[u64], spacing_us: u64) -> SimReport {
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 50_000).unwrap();
        let trace: Vec<HostRequest> = lpns
            .iter()
            .enumerate()
            .map(|(i, &lpn)| {
                HostRequest::new(SimTime::from_us(i as u64 * spacing_us), IoOp::Read, lpn, 1)
            })
            .collect();
        ssd.run(&trace)
    }

    #[test]
    fn fresh_read_latency_matches_eq2_no_retry() {
        // Fresh SSD (0 PEC, 0 retention): no retry. tREAD = tR + tDMA + tECC.
        let report = run_reads(cfg_at(0.0, 0.0), &[0, 1, 2], 1000);
        assert_eq!(report.requests_completed, 3);
        assert_eq!(report.avg_retry_steps(), 0.0);
        // LPNs 0,1,2 land on different planes/dies (striping), all are LSB
        // pages (page 0 of their blocks): tR = 78, +16 +20 = 114 µs.
        assert!(
            (report.avg_read_response_us() - 114.0).abs() < 1.0,
            "avg = {}",
            report.avg_read_response_us()
        );
        // No retried reads on a fresh SSD, and no writes at all: those
        // classes report no tail instead of a fake 0 µs one.
        assert_eq!(report.retried_read_latency.count, 0);
        assert_eq!(report.retried_read_latency.p99, None);
        assert_eq!(report.write_latency.p99, None);
        assert_eq!(report.read_latency.count, 3);
        assert!(report.read_p99_us().is_some());
    }

    #[test]
    fn retry_latency_matches_eq3_for_isolated_read() {
        // One isolated cold read at (1K, 6 mo): N_RR retries, each costing
        // tR + tDMA + tECC (Eq. 3), all on an otherwise idle SSD.
        let cfg = cfg_at(1000.0, 6.0);
        let seed = cfg.seed;
        let ssd = Ssd::new(cfg.clone(), Box::new(BaselineController::new()), 50_000).unwrap();
        // Recompute the expected N_RR from the model directly.
        let model = ErrorModel::new(seed);
        let lpn = 17u64;
        let ppn = {
            // Re-derive mapping: build an identical FTL.
            let mut ftl = Ftl::new(&cfg, 50_000).unwrap();
            ftl.precondition();
            ftl.translate(lpn).unwrap()
        };
        let loc = {
            let ftl = Ftl::new(&cfg, 50_000).unwrap();
            ftl.locate(ppn)
        };
        let n_rr = model.required_step_index(
            PageId::new(loc.block_global, loc.page_in_block),
            OperatingCondition::new(1000.0, 6.0, 30.0),
        );
        assert!(n_rr >= 8, "aged cold read must retry (Fig. 5)");
        let kind = cfg.chip.page_kind(loc.page_in_block);
        let t_r = cfg.timings.sense.t_r(kind).as_us_f64();
        let expected = (n_rr as f64 + 1.0) * (t_r + 16.0 + 20.0);
        let trace = vec![HostRequest::new(SimTime::ZERO, IoOp::Read, lpn, 1)];
        let report = ssd.run(&trace);
        assert!(
            (report.avg_read_response_us() - expected).abs() < 1.0,
            "measured {} vs Eq.2/3 expectation {expected}",
            report.avg_read_response_us()
        );
        assert_eq!(report.retry_steps.mean(), n_rr as f64);
        // The lone read retried, so the retried class holds exactly it.
        assert_eq!(report.retried_read_latency.count, 1);
        assert_eq!(report.retried_read_latency.p99, report.read_latency.p99);
    }

    #[test]
    fn write_latency_is_tdma_plus_tprog() {
        let cfg = cfg_at(0.0, 0.0);
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 10_000).unwrap();
        let trace = vec![HostRequest::new(SimTime::ZERO, IoOp::Write, 5, 1)];
        let report = ssd.run(&trace);
        assert_eq!(report.requests_completed, 1);
        assert!(
            (report.write_response_us.mean() - 716.0).abs() < 1.0,
            "write = {} µs",
            report.write_response_us.mean()
        );
        // A write-only run must not fabricate a read tail.
        assert_eq!(report.read_p99_us(), None);
        assert_eq!(report.write_latency.count, 1);
    }

    #[test]
    fn ideal_norr_never_retries_even_when_aged() {
        let cfg = cfg_at(2000.0, 12.0).ideal();
        let report = {
            let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 10_000).unwrap();
            let trace: Vec<HostRequest> = (0..20)
                .map(|i| HostRequest::new(SimTime::from_ms(i), IoOp::Read, i * 3, 1))
                .collect();
            ssd.run(&trace)
        };
        assert_eq!(report.avg_retry_steps(), 0.0);
        assert_eq!(report.read_failures, 0);
        assert_eq!(report.retried_read_latency.count, 0);
    }

    #[test]
    fn hot_data_reads_fresh_after_overwrite() {
        // Write an LPN, then read it: retention resets to ~0 ⇒ no retry even
        // on an aged SSD (the cold/hot distinction behind Table 2's ratios).
        let cfg = cfg_at(1000.0, 12.0);
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 10_000).unwrap();
        let trace = vec![
            HostRequest::new(SimTime::ZERO, IoOp::Write, 9, 1),
            HostRequest::new(SimTime::from_ms(10), IoOp::Read, 9, 1),
        ];
        let report = ssd.run(&trace);
        // At (1K, 0 months) the mean retry count is ~1.5, so the single hot
        // read needs only a few steps, far below the cold ~16.5 (Fig. 5).
        assert!(
            report.avg_retry_steps() <= 4.0,
            "hot read took {} steps",
            report.avg_retry_steps()
        );
    }

    #[test]
    fn suspension_lets_read_preempt_program() {
        let cfg = cfg_at(0.0, 0.0);
        // One write then immediately a read on the same die. LPN layout:
        // consecutive LPNs stripe across planes; same-die pairs are
        // (lpn, lpn + planes_per_die·…): lpn and lpn + total_planes hit the
        // same plane. Writing lpn 0 targets plane of the round-robin cursor
        // (plane 0 = die 0); reading lpn 0 also targets die 0 (precondition
        // put lpn 0 in plane 0).
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 10_000).unwrap();
        let trace = vec![
            HostRequest::new(SimTime::ZERO, IoOp::Write, 0, 1),
            // Arrives while the program (700 µs) is in flight.
            HostRequest::new(SimTime::from_us(100), IoOp::Read, 0, 1),
        ];
        let report = ssd.run(&trace);
        assert_eq!(report.requests_completed, 2);
        assert_eq!(report.suspensions, 1, "the read should suspend the program");
        // The read waited ~t_suspend, not the full remaining program time:
        // response ≈ suspend(20) + tR(78) + 16 + 20 ≈ 134 µs ≪ 700.
        assert!(
            report.read_response_us.mean() < 300.0,
            "read = {} µs",
            report.read_response_us.mean()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let cfg = cfg_at(1000.0, 6.0);
            let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 20_000).unwrap();
            let trace: Vec<HostRequest> = (0..100)
                .map(|i| {
                    let op = if i % 4 == 0 { IoOp::Write } else { IoOp::Read };
                    HostRequest::new(SimTime::from_us(i * 50), op, (i * 13) % 5000, 1)
                })
                .collect();
            ssd.run(&trace)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.avg_response_us(), b.avg_response_us());
        assert_eq!(a.senses, b.senses);
        assert_eq!(a.suspensions, b.suspensions);
        assert_eq!(a, b, "full reports must be bit-identical");
    }

    #[test]
    fn gc_reclaims_blocks_under_write_pressure() {
        let mut cfg = cfg_at(0.0, 0.0);
        cfg.chip.blocks_per_plane = 16;
        cfg.chip.pages_per_block = 12;
        let footprint = cfg.max_lpns();
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), footprint).unwrap();
        // Hammer overwrites on a small hot range to generate invalid pages,
        // then keep writing to force allocation past the free pool.
        let trace: Vec<HostRequest> = (0..3000)
            .map(|i| {
                HostRequest::new(
                    SimTime::from_us(i * 40),
                    IoOp::Write,
                    (i * 7) % (footprint / 4),
                    1,
                )
            })
            .collect();
        let report = ssd.run(&trace);
        assert_eq!(report.requests_completed, 3000);
        assert!(report.gc_collections > 0, "GC must have run");
    }

    #[test]
    fn open_loop_accepts_unsorted_raw_request_slices() {
        // `run` takes a raw slice, not a (pre-sorted) Trace; arrivals out of
        // trace order must replay as if time-sorted, not panic.
        let cfg = cfg_at(0.0, 0.0);
        let mk = |reqs: Vec<HostRequest>| {
            Ssd::new(cfg.clone(), Box::new(BaselineController::new()), 10_000)
                .unwrap()
                .run(&reqs)
        };
        let unsorted = mk(vec![
            HostRequest::new(SimTime::from_ms(2), IoOp::Read, 7, 1),
            HostRequest::new(SimTime::from_ms(1), IoOp::Read, 11, 1),
            HostRequest::new(SimTime::ZERO, IoOp::Write, 3, 1),
        ]);
        let sorted = mk(vec![
            HostRequest::new(SimTime::ZERO, IoOp::Write, 3, 1),
            HostRequest::new(SimTime::from_ms(1), IoOp::Read, 11, 1),
            HostRequest::new(SimTime::from_ms(2), IoOp::Read, 7, 1),
        ]);
        assert_eq!(unsorted.requests_completed, 3);
        assert_eq!(unsorted, sorted);
    }

    #[test]
    fn multi_page_requests_complete_once() {
        let cfg = cfg_at(0.0, 0.0);
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 10_000).unwrap();
        let trace = vec![HostRequest::new(SimTime::ZERO, IoOp::Read, 100, 8)];
        let report = ssd.run(&trace);
        assert_eq!(report.requests_completed, 1);
        // 8 pages across 8 planes: mostly parallel, bounded by channel DMA.
        assert!(report.read_response_us.mean() < 400.0);
    }

    #[test]
    fn empty_trace_reports_zero_throughput_without_nan() {
        // Regression (zero-duration runs): an empty trace must report 0
        // kIOPS and finite means — never ∞/NaN from a 0/0 — and the report
        // must stay comparable (the CLI prints these fields verbatim).
        let cfg = cfg_at(0.0, 0.0);
        let mk = || {
            Ssd::new(cfg.clone(), Box::new(BaselineController::new()), 1_000)
                .unwrap()
                .run(&[])
        };
        let report = mk();
        assert_eq!(report.requests_completed, 0);
        assert_eq!(report.kiops(), 0.0);
        assert!(report.kiops().is_finite());
        assert_eq!(report.avg_response_us(), 0.0);
        assert!(report.avg_response_us().is_finite());
        assert_eq!(report.read_p99_us(), None);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert_eq!(report, mk(), "empty runs are comparable and stable");
        // Closed loop over an empty trace is equally inert.
        let closed = Ssd::new(cfg.clone(), Box::new(BaselineController::new()), 1_000)
            .unwrap()
            .run_with(&[], ReplayMode::closed_loop(4));
        assert_eq!(closed.kiops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds footprint")]
    fn out_of_range_lpn_panics() {
        let cfg = cfg_at(0.0, 0.0);
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 100).unwrap();
        let trace = vec![HostRequest::new(SimTime::ZERO, IoOp::Read, 100, 1)];
        ssd.run(&trace);
    }

    // ---- closed-loop replay --------------------------------------------------

    fn fresh_reads(n: u64) -> Vec<HostRequest> {
        (0..n)
            .map(|l| HostRequest::new(SimTime::ZERO, IoOp::Read, l, 1))
            .collect()
    }

    #[test]
    fn closed_loop_qd1_runs_requests_in_isolation() {
        // QD = 1 degenerates to a serial device: each read runs alone, so
        // the average equals the isolated Eq. 2 latency and the makespan is
        // the sum of the individual latencies.
        let cfg = cfg_at(0.0, 0.0);
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 50_000).unwrap();
        let report = ssd.run_with(&fresh_reads(3), ReplayMode::closed_loop(1));
        assert_eq!(report.requests_completed, 3);
        assert!(
            (report.avg_read_response_us() - 114.0).abs() < 1.0,
            "avg = {}",
            report.avg_read_response_us()
        );
        assert!(
            (report.makespan.as_us_f64() - 3.0 * 114.0).abs() < 3.0,
            "makespan = {}",
            report.makespan.as_us_f64()
        );
    }

    #[test]
    fn closed_loop_higher_qd_overlaps_independent_reads() {
        let cfg = cfg_at(0.0, 0.0);
        let mk = || Ssd::new(cfg.clone(), Box::new(BaselineController::new()), 50_000).unwrap();
        let serial = mk().run_with(&fresh_reads(8), ReplayMode::closed_loop(1));
        let loaded = mk().run_with(&fresh_reads(8), ReplayMode::closed_loop(8));
        assert_eq!(loaded.requests_completed, 8);
        // Multi-die interleaving: 8 outstanding reads finish sooner in
        // wall-clock (sensing overlaps across dies) ...
        assert!(
            loaded.makespan < serial.makespan,
            "QD 8 makespan {} must beat QD 1 makespan {}",
            loaded.makespan,
            serial.makespan
        );
        // ... while per-request latency can only grow under contention
        // (shared channel bus and ECC decoder).
        assert!(loaded.avg_read_response_us() >= serial.avg_read_response_us() - 1e-9);
        assert!(loaded.kiops() > serial.kiops());
    }

    #[test]
    fn closed_loop_report_is_deterministic() {
        let mk = || {
            let cfg = cfg_at(1000.0, 6.0);
            let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 20_000).unwrap();
            let trace: Vec<HostRequest> = (0..120)
                .map(|i| {
                    let op = if i % 5 == 0 { IoOp::Write } else { IoOp::Read };
                    HostRequest::new(SimTime::ZERO, op, (i * 17) % 5000, 1)
                })
                .collect();
            ssd.run_with(&trace, ReplayMode::closed_loop(8))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn closed_loop_queue_depth_beyond_trace_len() {
        let cfg = cfg_at(0.0, 0.0);
        let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 10_000).unwrap();
        let report = ssd.run_with(&fresh_reads(4), ReplayMode::closed_loop(64));
        assert_eq!(report.requests_completed, 4);
    }
}
