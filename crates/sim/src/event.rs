//! The discrete-event core: a deterministic time-ordered event queue.
//!
//! Ties are broken by insertion order (a monotonically increasing sequence
//! number), which makes simulation runs bit-reproducible regardless of the
//! backing data structure.
//!
//! Two interchangeable backends implement the same contract:
//!
//! * a binary **heap** (`BinaryHeap<Reverse<_>>`, the historical default) —
//!   `O(log n)` push/pop, no assumptions about the time domain;
//! * a hierarchical **timing wheel** ([`wheel::TimingWheel`], selected by the
//!   `hotpath.timing_wheel` switch in
//!   [`HotpathConfig`](crate::config::HotpathConfig)) — amortized `O(1)`
//!   push/pop over bucketed integer-nanosecond slots, exploiting the
//!   simulator's monotonically advancing clock.
//!
//! `tests/hotpath_equiv.rs` and the event-queue proptests pin the two
//! backends to identical `(time, payload)` pop sequences, so flipping the
//! switch is semantics-neutral by construction.

pub mod wheel;

use rr_util::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wheel::TimingWheel;

/// A deterministic min-queue of `(time, payload)` events.
///
/// # Example
///
/// ```
/// use rr_sim::event::EventQueue;
/// use rr_util::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(5), "b");
/// q.push(SimTime::from_us(1), "a");
/// q.push(SimTime::from_us(5), "c"); // same time as "b": FIFO order
/// assert_eq!(q.pop(), Some((SimTime::from_us(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(5), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
///
/// The timing-wheel backend pops the identical sequence:
///
/// ```
/// use rr_sim::event::EventQueue;
/// use rr_util::time::SimTime;
///
/// let mut q = EventQueue::new_wheel();
/// q.push(SimTime::from_us(5), "b");
/// q.push(SimTime::from_us(1), "a");
/// q.push(SimTime::from_us(5), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_us(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(5), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(5), "c")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
}

#[derive(Debug)]
enum Backend<E> {
    Heap(HeapQueue<E>),
    Wheel(TimingWheel<E>),
}

/// The binary-heap backend (the historical `EventQueue`).
#[derive(Debug)]
struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    last_popped: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> HeapQueue<E> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    fn push(&mut self, time: SimTime, payload: E) {
        // Unconditional (not a debug assertion): the simulator's correctness
        // — and the wheel backend's bucket math — rely on time never moving
        // backwards, in every build profile.
        if time < self.last_popped {
            panic!("scheduling into the past: {time} < {}", self.last_popped);
        }
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.last_popped = SimTime::ZERO;
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default binary-heap backend.
    pub fn new() -> Self {
        Self {
            backend: Backend::Heap(HeapQueue::new()),
        }
    }

    /// Creates an empty queue on the hierarchical timing-wheel backend.
    pub fn new_wheel() -> Self {
        Self {
            backend: Backend::Wheel(TimingWheel::new()),
        }
    }

    /// Creates an empty queue on the requested backend (`true` = timing
    /// wheel) — the constructor form of the `hotpath.timing_wheel` switch.
    pub fn with_wheel(use_wheel: bool) -> Self {
        if use_wheel {
            Self::new_wheel()
        } else {
            Self::new()
        }
    }

    /// Whether this queue runs on the timing-wheel backend.
    pub fn uses_wheel(&self) -> bool {
        matches!(self.backend, Backend::Wheel(_))
    }

    /// Switches the backend (`true` = timing wheel), preserving the queue's
    /// clock and FIFO sequence. A no-op when the backend already matches —
    /// so a pooled queue keeps its allocations across same-config runs.
    ///
    /// # Panics
    ///
    /// Panics if events are pending: entries cannot migrate between
    /// backends without disturbing the FIFO tie-break contract. (`SimArena`
    /// reuse calls this immediately after [`EventQueue::reset`].)
    pub fn set_wheel(&mut self, use_wheel: bool) {
        if use_wheel == self.uses_wheel() {
            return;
        }
        assert!(
            self.is_empty(),
            "cannot switch the event-queue backend with {} events pending",
            self.len()
        );
        let (seq, last_popped) = match &self.backend {
            Backend::Heap(h) => (h.seq, h.last_popped),
            Backend::Wheel(w) => (w.seq(), w.last_popped()),
        };
        self.backend = if use_wheel {
            Backend::Wheel(TimingWheel::restore(seq, last_popped))
        } else {
            Backend::Heap(HeapQueue {
                heap: BinaryHeap::new(),
                seq,
                last_popped,
            })
        };
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event — scheduling
    /// into the past is always a simulator bug. The check is unconditional
    /// (present in release builds) on both backends.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        match &mut self.backend {
            Backend::Heap(h) => h.push(time, payload),
            Backend::Wheel(w) => w.push(time, payload),
        }
    }

    /// Removes and returns the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop(),
            Backend::Wheel(w) => w.pop(),
        }
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek_time(),
            Backend::Wheel(w) => w.peek_time(),
        }
    }

    /// Empties the queue and rewinds its clock and FIFO tie-break sequence,
    /// keeping the backend's allocations. A reset queue behaves
    /// bit-identically to a freshly constructed one (the arena path relies
    /// on this).
    pub fn reset(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.reset(),
            Backend::Wheel(w) => w.reset(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.heap.len(),
            Backend::Wheel(w) => w.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends, so every contract test below runs against each.
    fn backends() -> [EventQueue<i32>; 2] {
        [EventQueue::new(), EventQueue::new_wheel()]
    }

    #[test]
    fn orders_by_time_then_fifo() {
        for mut q in backends() {
            q.push(SimTime::from_us(10), 1);
            q.push(SimTime::from_us(5), 2);
            q.push(SimTime::from_us(10), 3);
            q.push(SimTime::from_us(7), 4);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![2, 4, 1, 3]);
        }
    }

    #[test]
    fn peek_matches_pop() {
        for mut q in backends() {
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_us(3), 0);
            q.push(SimTime::from_us(1), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_us(1)));
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.peek_time(), Some(SimTime::from_us(3)));
        }
    }

    #[test]
    fn same_time_as_last_popped_is_allowed() {
        for mut q in backends() {
            q.push(SimTime::from_us(1), 1);
            q.pop();
            q.push(SimTime::from_us(1), 2); // zero-latency follow-up event
            assert_eq!(q.pop(), Some((SimTime::from_us(1), 2)));
        }
    }

    #[test]
    fn reset_rewinds_clock_and_sequence() {
        for mut q in backends() {
            q.push(SimTime::from_us(10), 1);
            q.pop();
            q.reset();
            assert!(q.is_empty());
            // Scheduling before the pre-reset watermark is legal again, and
            // ties break FIFO from a fresh sequence.
            q.push(SimTime::from_us(1), 2);
            q.push(SimTime::from_us(1), 3);
            assert_eq!(q.pop(), Some((SimTime::from_us(1), 2)));
            assert_eq!(q.pop(), Some((SimTime::from_us(1), 3)));
        }
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics_on_the_heap() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), 1);
        q.pop();
        q.push(SimTime::from_us(5), 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics_on_the_wheel() {
        let mut q = EventQueue::new_wheel();
        q.push(SimTime::from_us(10), 1);
        q.pop();
        q.push(SimTime::from_us(5), 2);
    }

    #[test]
    fn backend_switch_preserves_clock_and_sequence() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), 1);
        q.pop();
        q.set_wheel(true);
        assert!(q.uses_wheel());
        // The past-check watermark survives the switch...
        let past = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push(SimTime::from_us(5), 2)
        }));
        assert!(past.is_err(), "watermark lost across backend switch");
        // ...and so does the FIFO sequence when switching back.
        q.set_wheel(false);
        assert!(!q.uses_wheel());
        q.push(SimTime::from_us(10), 3);
        q.push(SimTime::from_us(10), 4);
        assert_eq!(q.pop(), Some((SimTime::from_us(10), 3)));
        assert_eq!(q.pop(), Some((SimTime::from_us(10), 4)));
    }

    #[test]
    #[should_panic(expected = "cannot switch the event-queue backend")]
    fn backend_switch_requires_an_empty_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(1), 1);
        q.set_wheel(true);
    }

    #[test]
    fn set_wheel_is_a_noop_on_matching_backend() {
        let mut q = EventQueue::new_wheel();
        q.push(SimTime::from_us(1), 1); // non-empty: a real switch would panic
        q.set_wheel(true);
        assert_eq!(q.len(), 1);
    }
}
