//! The discrete-event core: a deterministic time-ordered event queue.
//!
//! Ties are broken by insertion order (a monotonically increasing sequence
//! number), which makes simulation runs bit-reproducible regardless of heap
//! internals.

use rr_util::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic min-heap of `(time, payload)` events.
///
/// # Example
///
/// ```
/// use rr_sim::event::EventQueue;
/// use rr_util::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(5), "b");
/// q.push(SimTime::from_us(1), "a");
/// q.push(SimTime::from_us(5), "c"); // same time as "b": FIFO order
/// assert_eq!(q.pop(), Some((SimTime::from_us(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(5), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_us(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    last_popped: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event — scheduling
    /// into the past is always a simulator bug.
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = e.time;
        Some((e.time, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Empties the queue and rewinds its clock and FIFO tie-break sequence,
    /// keeping the heap allocation. A reset queue behaves bit-identically to
    /// a freshly constructed one (the arena path relies on this).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.last_popped = SimTime::ZERO;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), 1);
        q.push(SimTime::from_us(5), 2);
        q.push(SimTime::from_us(10), 3);
        q.push(SimTime::from_us(7), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_us(3), ());
        q.push(SimTime::from_us(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_us(1)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_us(3)));
    }

    #[test]
    fn same_time_as_last_popped_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(1), 1);
        q.pop();
        q.push(SimTime::from_us(1), 2); // zero-latency follow-up event
        assert_eq!(q.pop(), Some((SimTime::from_us(1), 2)));
    }

    #[test]
    fn reset_rewinds_clock_and_sequence() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), 1);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        // Scheduling before the pre-reset watermark is legal again, and ties
        // break FIFO from a fresh sequence.
        q.push(SimTime::from_us(1), 2);
        q.push(SimTime::from_us(1), 3);
        assert_eq!(q.pop(), Some((SimTime::from_us(1), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_us(1), 3)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), 1);
        q.pop();
        q.push(SimTime::from_us(5), 2);
    }
}
