//! # rr-sim — an event-driven multi-queue SSD simulator
//!
//! This crate is the MQSim-equivalent substrate of the reproduction of Park
//! et al., *"Reducing Solid-State Drive Read Latency by Optimizing
//! Read-Retry"* (ASPLOS 2021): a deterministic discrete-event simulator of a
//! high-end SSD with
//!
//! * page-level FTL (mapping, striped allocation, greedy GC) — [`ftl`];
//! * per-die command queues with out-of-order read priority and
//!   program/erase suspension, plus per-channel FIFO bus/decoder
//!   arbitration — [`scheduler`], orchestrated by [`ssd`] — so sensing
//!   overlaps transfer and decode (Fig. 6) and independent reads interleave
//!   across dies;
//! * a host-side load generator — [`replay`] — replaying traces open-loop
//!   (trace timestamps) or closed-loop (fixed queue depth, the load knob of
//!   tail-latency sweeps);
//! * a pluggable read-retry mechanism — [`readflow::RetryController`] — with
//!   the regular baseline (Fig. 12a) built in; `rr-core` supplies PR², AR²,
//!   PnAR² and the PSO-augmented variants.
//!
//! Reads experience the number of retry steps and the raw-bit-error counts of
//! the calibrated `rr-flash` error model; the paper's operating conditions
//! (P/E cycles × retention age × temperature) are set in [`config::SsdConfig`].
//!
//! # Example
//!
//! ```
//! use rr_sim::config::SsdConfig;
//! use rr_sim::readflow::BaselineController;
//! use rr_sim::request::{HostRequest, IoOp};
//! use rr_sim::ssd::Ssd;
//! use rr_flash::calibration::OperatingCondition;
//! use rr_util::time::SimTime;
//!
//! // An aged SSD: 1K P/E cycles, 6-month-old cold data.
//! let cfg = SsdConfig::scaled_for_tests()
//!     .with_condition(OperatingCondition::new(1000.0, 6.0, 30.0));
//! let ssd = Ssd::new(cfg, Box::new(BaselineController::new()), 10_000).unwrap();
//! let trace: Vec<_> = (0..50)
//!     .map(|i| HostRequest::new(SimTime::from_us(100 * i), IoOp::Read, i * 7, 1))
//!     .collect();
//! let report = ssd.run(&trace);
//! assert_eq!(report.requests_completed, 50);
//! // Cold reads at this operating point need many retry steps (Fig. 5).
//! assert!(report.avg_retry_steps() > 8.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod config;
pub mod event;
pub mod ftl;
pub mod gc;
pub mod hostq;
pub mod metrics;
pub mod readflow;
pub mod replay;
pub mod request;
pub mod scheduler;
pub mod shard;
pub mod snapshot;
pub mod ssd;

pub use array::{
    route_redundant, ArrayReport, DeviceSet, FailurePlan, Placement, PlacementPolicy, Redundancy,
    RedundancyStats, RedundantRouting,
};
pub use config::{ArbPolicy, ConfigError, EventBackend, SsdConfig};
pub use gc::GcPolicy;
pub use hostq::{HostQueueConfig, QueueSpec};
pub use metrics::{GcStalls, LatencySummary, QueueLatency, SimReport};
pub use readflow::{BaselineController, ReadAction, ReadContext, RetryController};
pub use replay::ReplayMode;
pub use request::{HostRequest, IoOp};
pub use scheduler::Arbiter;
pub use shard::{run_sharded_queued_from, worker_budget, ShardArena, SHARD_WINDOW_US};
pub use snapshot::{DeviceImage, ImageBank};
pub use ssd::Ssd;
